#include "sim/engine.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"

namespace manet::sim {

EventId Engine::schedule_at(Time when, EventClosure fn) {
  MANET_CHECK_MSG(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Engine::schedule_in(Time delay, EventClosure fn) {
  MANET_CHECK(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

Engine::RecurringHandle Engine::schedule_every(Time period, EventClosure fn) {
  MANET_CHECK(period > 0.0);
  const std::uint64_t token = next_recurring_token_++;
  auto rec = std::make_unique<Recurring>();
  rec->fn = std::move(fn);
  rec->origin = now_;
  rec->period = period;
  recurring_[token] = std::move(rec);
  // Each firing is a 16-byte closure (inline in the queue's slab); the k-th
  // occurrence is placed at origin + k * period (one multiply, one rounding)
  // rather than by accumulating now() + period: summed rounding error in the
  // accumulation drifts for periods with no exact binary representation and
  // can skip or repeat a firing against a run horizon.
  schedule_at(now_ + period, [this, token] { fire_recurring(token); });
  return RecurringHandle{token};
}

void Engine::fire_recurring(std::uint64_t token) {
  auto* held = recurring_.find(token);
  if (held == nullptr) return;
  Recurring* rec = held->get();
  if (!rec->alive) {
    // stop_recurring() took effect at this tick boundary; retire the state.
    recurring_.erase(token);
    return;
  }
  rec->fn();
  ++rec->fired;
  schedule_at(rec->origin + static_cast<Time>(rec->fired + 1) * rec->period,
              [this, token] { fire_recurring(token); });
}

void Engine::stop_recurring(RecurringHandle handle) {
  auto* held = recurring_.find(handle.token);
  if (held != nullptr) (*held)->alive = false;
}

Size Engine::run_until(Time horizon) {
  Size executed = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    MANET_CHECK(fired.time >= now_);
    now_ = fired.time;
    fired.fn();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  MANET_CHECK(fired.time >= now_);
  now_ = fired.time;
  fired.fn();
  return true;
}

}  // namespace manet::sim
