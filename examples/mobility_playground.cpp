/// Mobility model playground: runs each model over the same deployment,
/// reports link-dynamics statistics (f0 of paper eq. 4, mean degree,
/// connectivity), and writes a replayable trace of the random waypoint run.
///
/// Usage: ./build/examples/mobility_playground [n] [trace_file]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exp/scenario.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "mobility/trace.hpp"
#include "net/link_tracker.hpp"
#include "net/unit_disk.hpp"

namespace {

using namespace manet;

void profile_model(exp::MobilityKind kind, const char* label, Size n) {
  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.mobility = kind;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.seed = 11;
  auto scenario = exp::Scenario::materialize(cfg);

  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  auto g = disk.build(scenario.mobility->positions());
  net::LinkTracker tracker(g, 0.0);

  Size connected_ticks = 0;
  const int ticks = 60;
  double degree_sum = 0.0;
  for (int t = 1; t <= ticks; ++t) {
    scenario.mobility->advance_to(static_cast<Time>(t));
    g = disk.build(scenario.mobility->positions());
    tracker.update(g, static_cast<Time>(t));
    degree_sum += g.average_degree();
    if (disk.last_augmented_edges() == 0) ++connected_ticks;
  }

  std::printf("%-18s f0 = %6.3f events/node/s   mean degree %5.2f   natively connected %2zu/%d ticks\n",
              label, tracker.events_per_node_per_second(), degree_sum / ticks,
              connected_ticks, ticks);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 300;
  const char* trace_path = argc > 2 ? argv[2] : nullptr;

  std::printf("mobility survey over %zu nodes, 60 s, 1 m/s class speeds\n\n", n);
  profile_model(exp::MobilityKind::kRandomWaypoint, "random_waypoint", n);
  profile_model(exp::MobilityKind::kRandomDirection, "random_direction", n);
  profile_model(exp::MobilityKind::kGaussMarkov, "gauss_markov", n);
  profile_model(exp::MobilityKind::kStatic, "static", n);

  // Record and replay a short random waypoint trace.
  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  auto scenario = exp::Scenario::materialize(cfg);
  auto trace = mobility::Trace::record(*scenario.mobility, 30.0, 1.0);
  std::printf("\nrecorded %zu trace frames; mean per-second displacement %.3f m\n",
              trace.frame_count(), trace.mean_step_displacement());

  mobility::TraceReplay replay(trace);
  replay.advance_to(15.5);
  std::printf("replay at t = 15.5 s: node 0 at (%.2f, %.2f)\n", replay.positions()[0].x,
              replay.positions()[0].y);

  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    trace.save(out);
    std::printf("trace written to %s\n", trace_path);
  } else {
    std::printf("pass a second argument to save the trace to a file\n");
  }
  return 0;
}
