/// E19: the paper's closing significance claim — "the capacity of MANET
/// links need only grow at a polylogarithmic rate in order to scale
/// gracefully with increasing node count." We measure total LM control
/// overhead (handoff + registration) against the data-plane load of a fixed
/// per-node session workload: data transmissions per node grow as the mean
/// path length Theta(sqrt n), so the control fraction must *vanish* as the
/// network grows.
///
/// E30: the 10^5-node capacity demonstration for the sharded parallel tick.
/// The hot tick kernel — mobility advance, unit-disk delta update, link
/// diffing, and a fixed batch of hop queries — runs at n = 100 000 under
/// 1/2/8 worker threads. The sharded path is bit-identical to sequential by
/// construction (fixed sim::kDefaultShardCount decomposition, shard-order
/// merges), so the bench also folds every delta edge and hop answer into a
/// digest and reports `identity_violations` when any thread count diverges.
/// The committed baseline carries `min_capacity_n` = 100000, turning
/// tools/check_bench.py into the capacity acceptance gate.

#include <chrono>
#include <memory>

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "net/hop_oracle.hpp"
#include "net/link_tracker.hpp"
#include "net/unit_disk.hpp"
#include "sim/shard.hpp"
#include "traffic/sessions.hpp"

using namespace manet;

namespace {

struct KernelResult {
  double ticks_per_sec = 0.0;
  std::uint64_t digest = 0;  ///< FNV over the delta stream + hop answers
};

/// One deterministic (src, dst) hop-query pair per index (Weyl-style mixing;
/// no RNG so every thread count prices the identical batch).
std::pair<NodeId, NodeId> query_pair(Size q, Size n) {
  const auto src = static_cast<NodeId>((q * 2654435761ull) % n);
  auto dst = static_cast<NodeId>((q * 0x9E3779B97F4A7C15ull + 12345) % n);
  if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
  return {src, dst};
}

/// Run `ticks` steps of the sharded tick kernel (RWP mobility -> unit-disk
/// delta -> link diff -> kQueries hop lookups) and time it. threads == 1
/// runs the pure sequential path (no pool, no executor); any other count
/// attaches a ShardExecutor over sim::kDefaultShardCount shards.
KernelResult run_shard_kernel(Size n, Size threads, Size ticks) {
  constexpr Size kQueries = 256;
  auto cfg = bench::paper_scenario();
  cfg.n = n;
  auto scenario = exp::Scenario::materialize(cfg);

  std::unique_ptr<common::ThreadPool> pool;
  std::unique_ptr<sim::ShardExecutor> exec;
  net::UnitDiskBuilder disk(cfg.tx_radius());
  if (threads != 1) {
    pool = std::make_unique<common::ThreadPool>(threads);
    exec = std::make_unique<sim::ShardExecutor>(*pool, sim::kDefaultShardCount);
    disk.set_parallel(exec.get());
  }

  const auto& g0 = disk.update(scenario.mobility->positions());
  net::LinkTracker links(g0, 0.0);
  if (exec != nullptr) links.set_parallel(exec.get());
  net::HopOracle oracle;
  std::vector<net::HopOracle::Scratch> scratch(
      exec != nullptr ? exec->shard_count() : 1);
  std::vector<std::uint64_t> partial(scratch.size(), 0);
  net::LinkDelta delta;

  KernelResult out;
  auto mix = [&out](std::uint64_t v) {
    out.digest = (out.digest ^ v) * 1099511628211ull;
  };

  const auto started = std::chrono::steady_clock::now();
  for (Size step = 1; step <= ticks; ++step) {
    const Time t = static_cast<double>(step);
    scenario.mobility->advance_to(t);
    const auto& g = disk.update(scenario.mobility->positions());
    links.update_into(g, t, delta);
    for (const auto& e : delta.up) mix((std::uint64_t{e.first} << 32) | e.second);
    for (const auto& e : delta.down) mix((std::uint64_t{e.first} << 32) | e.second);

    oracle.prepare(g);
    if (exec != nullptr) {
      const Size shards = exec->shard_count();
      exec->for_each_shard([&](Size s) {
        const auto [begin, end] = sim::ShardExecutor::slice(kQueries, s, shards);
        std::uint64_t sum = 0;
        for (Size q = begin; q < end; ++q) {
          const auto [src, dst] = query_pair(q, n);
          sum += oracle.hops(src, dst, scratch[s]);
        }
        partial[s] = sum;
      });
      // Fold the shard partials into one total (integer addition, so the
      // grouping is immaterial) — the digest must see exactly what the
      // sequential arm sees: one sum per tick.
      std::uint64_t total = 0;
      for (Size s = 0; s < shards; ++s) total += partial[s];
      mix(total);
    } else {
      std::uint64_t sum = 0;
      for (Size q = 0; q < kQueries; ++q) {
        const auto [src, dst] = query_pair(q, n);
        sum += oracle.hops(src, dst, scratch[0]);
      }
      mix(sum);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  out.ticks_per_sec =
      elapsed.count() > 0.0 ? static_cast<double>(ticks) / elapsed.count() : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "E19  bench_capacity — control overhead vs data-plane load",
      "control/data -> 0: links need only polylog capacity headroom (paper Sec. 6)");

  // Data workload: each node opens `kSessionsPerNodePerSec` unicast sessions
  // to uniform random peers, each carrying kPacketsPerSession packets along
  // shortest paths.
  constexpr double kSessionsPerNodePerSec = 0.2;
  constexpr double kPacketsPerSession = 10.0;

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.track_registration = true;

  analysis::TextTable table({"|V|", "control (pkts/node/s)", "data (pkts/node/s)",
                             "pkts/session", "control/data"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double control = agg.mean("total_rate") + agg.mean("reg_rate");

    // Data plane: route the session workload over *strict hierarchical
    // routing* on a static snapshot of the same scenario, so stretch and
    // recovery detours are charged to the data side too.
    auto static_cfg = cfg;
    static_cfg.mobility = exp::MobilityKind::kStatic;
    auto scenario = exp::Scenario::materialize(static_cfg);
    net::UnitDiskBuilder disk(static_cfg.tx_radius(), true);
    const auto g = disk.build(scenario.mobility->positions());
    const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);
    const routing::RoutingTables tables(g, h);

    traffic::SessionConfig session_cfg;
    session_cfg.sessions_per_node_per_sec = kSessionsPerNodePerSec;
    session_cfg.packets_per_session = static_cast<Size>(kPacketsPerSession);
    traffic::SessionWorkload workload(session_cfg, common::derive_seed(cfg.seed, 0xCAFE));
    for (int t = 0; t < 30; ++t) workload.tick(tables, n, 1.0);
    const double data = workload.stats().rate(n);

    table.add_row({std::to_string(n), bench::fixed(control, 5), bench::fixed(data, 5),
                   bench::fixed(workload.stats().mean_transmissions_per_session(), 4),
                   bench::fixed(control / data, 4)});
  }
  std::printf("%s", table.to_string("control-plane vs data-plane load").c_str());

  std::printf(
      "\nreading: data load grows ~sqrt(n) with the session path length while\n"
      "control grows ~log^2(n), so asymptotically the ratio falls to 0. At\n"
      "these scales the two growth rates are still close (log^2 elasticity\n"
      "~0.3 vs sqrt's 0.5), so expect the ratio to stop rising after the\n"
      "smallest scales and drift down from there — boundedness is the\n"
      "operative check; the decline is gentle. Paper Section 6.\n");

  // ---- E30: sharded-tick capacity at n = 10^5 ------------------------------
  bench::print_header(
      "E30  bench_capacity — sharded parallel tick at 10^5 nodes",
      "the tick kernel shards across threads with bit-identical output");

  auto artifact_cfg = bench::paper_scenario();
  artifact_cfg.n = 100000;
  bench::Artifact artifact("capacity", artifact_cfg, 1,
                           std::thread::hardware_concurrency());

  // Identity sweep: every thread count must fold the identical delta stream
  // and hop answers into the identical digest.
  const Size kIdentityN = 10000;
  Size identity_violations = 0;
  const auto seq = run_shard_kernel(kIdentityN, 1, 3);
  for (const Size threads : {Size{2}, Size{8}}) {
    const auto par = run_shard_kernel(kIdentityN, threads, 3);
    if (par.digest != seq.digest) ++identity_violations;
  }
  std::printf("identity @ n=%zu: digest %016llx, violations %zu\n",
              static_cast<std::size_t>(kIdentityN),
              static_cast<unsigned long long>(seq.digest),
              static_cast<std::size_t>(identity_violations));
  artifact.set_scalar("identity_violations",
                      static_cast<double>(identity_violations));

  // Throughput sweep, culminating in the n = 100 000 acceptance point.
  analysis::TextTable capacity_table({"|V|", "threads", "ticks/s", "digest"});
  for (const Size n : {Size{25000}, Size{100000}}) {
    const Size ticks = n >= 100000 ? 5 : 8;
    for (const Size threads : {Size{1}, Size{2}, Size{8}}) {
      const auto r = run_shard_kernel(n, threads, ticks);
      char digest_hex[24];
      std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                    static_cast<unsigned long long>(r.digest));
      capacity_table.add_row({std::to_string(n), std::to_string(threads),
                              bench::fixed(r.ticks_per_sec, 3), digest_hex});
      artifact.add_point("ticks_per_sec_t" + std::to_string(threads),
                         exp::SeriesPoint{static_cast<double>(n),
                                          r.ticks_per_sec, 0.0, 1});
    }
  }
  std::printf("%s", capacity_table.to_string("sharded tick kernel throughput")
                        .c_str());
  // Mirrors the gate floor committed in the baseline so the artifact is
  // self-describing; check_bench.py reads the *baseline's* copy.
  artifact.set_scalar("min_capacity_n", 100000.0);
  artifact.write();

  std::printf(
      "\nreading: the digest column is constant down each |V| block — the\n"
      "sharded decomposition (fixed %zu shards, shard-order merges) makes the\n"
      "parallel tick bit-identical to sequential at every thread count, so\n"
      "threads buy wall-clock only. tools/check_bench.py enforces the\n"
      "n=100000 capacity point and identity_violations == 0.\n",
      static_cast<std::size_t>(sim::kDefaultShardCount));
  return 0;
}
