#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file bfs.hpp
/// Breadth-first search utilities. Hop counts on the level-0 graph are the
/// library's packet-transmission metric: one LM entry moved from node a to
/// node b costs hops(a, b) transmissions (strict hierarchical routing
/// forwards along shortest paths, paper Section 2.1).

namespace manet::graph {

/// Hop distance marker for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Single-source BFS: hop counts from \p source to every vertex.
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

/// Multi-source BFS: hop count to the *nearest* of \p sources.
std::vector<std::uint32_t> bfs_hops_multi(const Graph& g, std::span<const NodeId> sources);

/// Reusable BFS workspace: avoids reallocating the frontier and distance
/// arrays when many searches run against graphs of the same size (the
/// handoff engine performs one BFS per unique transfer source per tick).
class BfsScratch {
 public:
  /// Runs BFS from \p source and returns a view of the internal distance
  /// array, valid until the next run() call.
  std::span<const std::uint32_t> run(const Graph& g, NodeId source);

  /// Distance from the last run's source to \p v.
  std::uint32_t hops_to(NodeId v) const;

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> queue_;
};

/// Reusable single-pair hop query via bidirectional BFS.
///
/// The handoff/GLS/registration pricing loops ask for hops(u, v) between
/// specific endpoint pairs — typically nearby cluster heads — and a full
/// single-source sweep per query is O(V + E) regardless of how close v is.
/// This scratch expands the smaller of two level-synchronized frontiers
/// (one rooted at each endpoint) and stops as soon as the best meeting
/// distance can no longer improve, which costs O(paths of length <= L/2)
/// around each endpoint instead of the whole graph.
///
/// Exactness: candidates best = min(ds(w) + dt(w)) are recorded whenever a
/// node w receives its second stamp, and the search only returns best once
/// best <= radius_s + radius_t. Any true shortest path of length L has a
/// node at distance radius_s from u and L - radius_s <= radius_t from v, so
/// it was doubly stamped and recorded; hence best == L exactly — callers
/// (and the paper's packet accounting) see values identical to a full BFS,
/// bit for bit.
///
/// Distance arrays are epoch-stamped, so repeated queries clear nothing.
class BfsPairScratch {
 public:
  /// Exact hop distance between \p u and \p v (kUnreachable when they are
  /// in different components).
  std::uint32_t hops(const Graph& g, NodeId u, NodeId v);

 private:
  std::vector<std::uint32_t> mark_s_, mark_t_;  ///< epoch stamps per side
  std::vector<std::uint32_t> ds_, dt_;          ///< valid where stamped
  std::vector<NodeId> frontier_s_, frontier_t_, next_;
  std::uint32_t epoch_ = 0;
};

}  // namespace manet::graph
