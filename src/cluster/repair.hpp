#pragma once

#include <span>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "geom/vec2.hpp"
#include "graph/graph.hpp"

/// \file repair.hpp
/// Churn-proportional hierarchy maintenance: event-driven, localized repair
/// of the recursive ALCA hierarchy (ROADMAP item 1).
///
/// The full builder re-derives every level's election from scratch each
/// tick — O(|V| + |E|) at level 0 no matter how little actually moved. The
/// repairer instead consumes the exact `links_up` / `links_down` edge delta
/// maintained by net::UnitDiskBuilder::update() and re-evaluates elections
/// only inside the delta's dirty region:
///
///   * A raw election target raw_elect[u] = argmax_{w in N[u] + {u}} id(w)
///     depends only on u's closed neighborhood, so a link flip (u, v) can
///     change raw elections at u and v only (the 1-hop dirty region).
///   * Clusterhead status is derived: v heads iff someone (possibly v
///     itself) elects it. Maintaining the raw elector count per vertex turns
///     head gain/loss into 0 <-> >0 transitions of that count — reachable
///     only from vertices within 2 hops of a flipped link.
///   * A level k >= 1 exists only through the level-(k-1) head set, so
///     repairs bubble upward only when a level's head set (or its level-k
///     link set) actually changed; otherwise the level's election state is
///     spliced through untouched.
///
/// Bit-identity contract: HierarchyRepairer::repair() produces a Hierarchy
/// equal member-for-member to `HierarchyBuilder(Alca, options).build(g, ids,
/// positions, &prev)`. Every output table is a canonical pure function of
/// (g, ids, positions, options) — elections break ties by unique ids, head
/// lists and rollups are emitted in ascending dense order, level-k edge
/// lists are produced by the same loops as the builder — so producing them
/// from incremental state instead of a full scan cannot change a single
/// byte. tests/cluster/repair_test.cpp re-verifies this against the builder
/// on randomized dynamic topologies; the golden-artifact suite enforces it
/// end-to-end.
///
/// See docs/ARCHITECTURE.md "Incremental hierarchy repair" for the worked
/// example and docs/PAPER_NOTES.md for how the paper's Section 5 events
/// (i)-(vii) map onto the repair triggers here.

namespace manet::cluster {

/// Incrementally maintained ALCA election over one level's (topology, ids).
///
/// State: raw_elect (each vertex's closed-neighborhood argmax by id) and
/// raw_votes (number of raw electors per vertex, self included). The
/// canonical ElectionResult of cluster/alca.cpp is a pure projection of
/// this state, written by emit().
class IncrementalAlca {
 public:
  /// Full (re)seed from \p g: O(|V| + |E|). Equivalent to forgetting all
  /// state and observing the topology whole.
  void seed(const graph::Graph& g, std::span<const NodeId> ids);

  /// Consume the edge flips that turned the previously observed topology
  /// into \p g (same vertex set, same ids). Cost is proportional to the
  /// dirty region: a removed edge rescans an endpoint only when it lost its
  /// elected target; an added edge retargets an endpoint only when the new
  /// neighbor out-ranks its current target.
  void apply(const graph::Graph& g, std::span<const NodeId> ids,
             std::span<const graph::Edge> ups, std::span<const graph::Edge> downs);

  /// Write the election for the last observed (g, ids) — bit-identical to
  /// alca_elect(g, ids).
  void emit(ElectionResult& out) const;

  /// Sorted dense vertices with at least one raw elector (the clusterheads).
  const std::vector<NodeId>& heads() const { return heads_; }

  // Dirty-region accounting for the last apply() (zeroed by seed()).
  Size last_dirty_vertices() const { return last_dirty_; }
  Size last_heads_gained() const { return last_gained_; }
  Size last_heads_lost() const { return last_lost_; }

 private:
  /// Move u's raw election to \p to, maintaining votes and the head set.
  void retarget(NodeId u, NodeId to);
  /// Recompute u's raw election from its current closed neighborhood.
  void rescan(const graph::Graph& g, std::span<const NodeId> ids, NodeId u);

  std::vector<NodeId> raw_elect_;  ///< closed-neighborhood argmax by id
  std::vector<Size> raw_votes_;    ///< raw electors per vertex (self included)
  std::vector<NodeId> heads_;      ///< sorted vertices with raw_votes_ > 0
  Size last_dirty_ = 0;
  Size last_gained_ = 0;
  Size last_lost_ = 0;
};

/// Dirty-region accounting for one level of one repair() call.
struct LevelRepairStats {
  Size edge_flips = 0;      ///< level-k link flips consumed
  Size dirty_vertices = 0;  ///< vertices whose raw election changed
  Size heads_gained = 0;
  Size heads_lost = 0;
  bool reelected = false;  ///< vertex set changed: level fully re-seeded
  bool spliced = false;    ///< no flips: election spliced through unchanged
};

struct RepairStats {
  /// Per-level accounting of the most recent repair() call (entry k covers
  /// the election run on level k, i.e. the one producing level k+1).
  std::vector<LevelRepairStats> levels;
  Size repairs = 0;  ///< repair() calls serviced
  Size reseeds = 0;  ///< level re-elections across all calls (bubbled repairs)
};

/// Event-driven replacement for the per-tick HierarchyBuilder::build() call
/// on the incremental simulation path (RunOptions::localized_repair).
///
/// Usage contract: repair() must be handed the snapshot it produced for the
/// previous tick (`prev`) together with the exact level-0 edge delta between
/// prev's topology and \p g. Whenever a tick's snapshot is produced by any
/// other means — builder fallback on down-mask changes, augmentation
/// bridges, a different election algorithm — call invalidate() so the next
/// repair() re-seeds instead of trusting stale state. ALCA only: max-min
/// elections have no incremental form here and take the builder path.
class HierarchyRepairer {
 public:
  explicit HierarchyRepairer(HierarchyOptions options = {});

  /// Drop all incremental election state; the next repair() re-seeds every
  /// level (O(full build), after which repairs are churn-proportional again).
  void invalidate() { valid_ = false; }

  /// Produce into \p out the hierarchy for (\p g, \p ids, \p positions) —
  /// bit-identical to HierarchyBuilder(Alca, options).build(g, ids,
  /// positions, &prev). \p links_up / \p links_down are the exact edge delta
  /// from prev.level(0).topo to g; they are ignored on re-seeding calls.
  /// Pass \p level0_delta_exact = false when no trustworthy raw delta exists
  /// (augmentation bridges entered or left the graph, the fault down-mask
  /// flipped) — the repairer then edge-diffs level 0 against prev itself,
  /// exactly as it already does for every higher level: O(|E|) set
  /// differences instead of O(delta), still far cheaper than re-electing.
  void repair(const graph::Graph& g, std::span<const graph::Edge> links_up,
              std::span<const graph::Edge> links_down, std::span<const NodeId> ids,
              std::span<const geom::Vec2> positions, const Hierarchy& prev,
              Hierarchy& out, bool level0_delta_exact = true);

  const RepairStats& stats() const { return stats_; }

 private:
  HierarchyOptions options_;
  bool valid_ = false;
  std::vector<IncrementalAlca> alca_;  ///< per-level election state
  RepairStats stats_;
  // Scratch reused across ticks (level-k edge diffs).
  std::vector<graph::Edge> ups_scratch_, downs_scratch_;
};

}  // namespace manet::cluster
