/// E27: allocator traffic in the tick loop — throughput + allocs-per-tick.
///
/// The kernel's steady-state tick is supposed to be allocation-free: flat
/// hash containers (common::FlatMap), slab-pooled event closures
/// (sim::EventClosure) and reused per-tick scratch replace the per-event
/// std::function and per-tick std::unordered_map churn. This bench measures
/// both halves of that claim:
///
///   throughput — ticks/sec on the paper scenario at n in {1024, 4096} under
///     low (static, gated) and high (random waypoint, mu = 1) mobility. The
///     committed baseline (tools/baselines/BENCH_memory.json) was produced by
///     the pre-migration kernel, and its `min_speedup` scalar makes
///     tools/check_bench.py require >= that factor on every series — the
///     regression gate doubles as the speedup acceptance gate.
///
///   allocator traffic — with -DMANET_PROFILE_ALLOC=ON, run_simulation
///     publishes alloc.* metrics from the interposed global new/delete
///     (common/alloc_profile.hpp); the low-mobility n=4096 run's
///     allocations-per-measured-tick lands in the `allocs_per_tick` scalar,
///     capped by the baseline's `max_allocs_per_tick`. Default builds skip
///     this half (scalar `alloc_profile` = 0) since nothing is interposed.

#include "bench_util.hpp"
#include "common/alloc_profile.hpp"
#include "common/metrics.hpp"

using namespace manet;

namespace {

exp::RunOptions bench_options() {
  exp::RunOptions opts;
  // Per-tick cost only: the sampled end-of-run measurements (h_k BFS, state
  // chains) would dilute both the throughput and the alloc counts.
  opts.measure_hops = false;
  opts.track_states = false;
  return opts;
}

struct TimedRun {
  exp::RunMetrics metrics;
  double ticks_per_sec = 0.0;  // best of `reps` runs (min wall time)
};

TimedRun run_timed(const exp::ScenarioConfig& cfg, Size reps) {
  TimedRun out;
  double best_wall = std::numeric_limits<double>::infinity();
  for (Size r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto metrics = exp::run_simulation(cfg, bench_options());
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    best_wall = std::min(best_wall, wall.count());
    if (r == 0) out.metrics = std::move(metrics);
  }
  out.ticks_per_sec = out.metrics.get("ticks") / best_wall;
  return out;
}

/// One extra run with a registry attached, returning allocations per
/// measured tick from the interposed counters. Only called in
/// MANET_PROFILE_ALLOC builds (the registry itself perturbs throughput, so
/// the timed runs above never attach one).
double measure_allocs_per_tick(const exp::ScenarioConfig& cfg) {
  common::MetricsRegistry registry;
  auto opts = bench_options();
  opts.metrics = &registry;
  exp::run_simulation(cfg, opts);
  const auto* per_tick = registry.find_gauge("alloc.per_tick");
  return per_tick != nullptr ? per_tick->value() : -1.0;
}

}  // namespace

int main() {
  bench::print_header(
      "E27  bench_memory — allocator traffic and steady-state tick throughput",
      "flat maps + slab events + arena scratch: >=1.3x ticks/sec on the hot "
      "scenario, <=8 allocations per steady-state tick");

  auto base = bench::paper_scenario();
  base.warmup = 5.0;
  base.duration = 20.0;

  const std::vector<Size> nodes{1024, 4096};
  const Size reps = 2;
  const bool profiled = common::alloc_profile::enabled();
  bench::Artifact artifact("memory", base, reps);

  double gated_allocs_per_tick = -1.0;
  for (const bool high_mobility : {false, true}) {
    const char* regime = high_mobility ? "high" : "low";
    auto cfg = base;
    cfg.mobility = high_mobility ? exp::MobilityKind::kRandomWaypoint
                                 : exp::MobilityKind::kStatic;

    analysis::TextTable table({"|V|", "ticks/s", "allocs/tick"});
    for (const Size n : nodes) {
      cfg.n = n;
      const auto timed = run_timed(cfg, reps);

      double allocs_per_tick = -1.0;
      if (profiled && n == nodes.back()) {
        allocs_per_tick = measure_allocs_per_tick(cfg);
        if (!high_mobility) gated_allocs_per_tick = allocs_per_tick;
      }
      table.add_row({std::to_string(n), bench::fixed(timed.ticks_per_sec, 5),
                     allocs_per_tick < 0.0 ? "-" : bench::fixed(allocs_per_tick, 2)});

      artifact.add_point(
          std::string("ticks_per_sec_") + regime,
          exp::SeriesPoint{static_cast<double>(n), timed.ticks_per_sec, 0.0, reps});
    }
    std::printf("%s", table.to_string(high_mobility
                                          ? "high mobility (random waypoint, mu=1)"
                                          : "low mobility (static, gated ticks)")
                          .c_str());
  }

  artifact.set_scalar("alloc_profile", profiled ? 1.0 : 0.0);
  if (gated_allocs_per_tick >= 0.0) {
    artifact.set_scalar("allocs_per_tick", gated_allocs_per_tick);
  }

  std::printf(
      "\nreading: the low-mobility rows are the gated steady state the paper's\n"
      "large-|V| sweeps live in; allocs/tick there must stay near zero (the\n"
      "baseline caps it). %s\n",
      profiled ? "alloc profiling: ON (MANET_PROFILE_ALLOC)."
               : "alloc profiling: OFF — rebuild with -DMANET_PROFILE_ALLOC=ON "
                 "for the allocs/tick column.");
  artifact.write();
  return 0;
}
