#pragma once

#include "common/rng.hpp"
#include "mobility/model.hpp"

/// \file gauss_markov.hpp
/// Gauss-Markov mobility (extension; not in the paper). Velocity evolves as a
/// discrete AR(1) process with memory parameter alpha in [0, 1]:
///   s_t = alpha*s_{t-1} + (1-alpha)*s_mean + sqrt(1-alpha^2)*sigma*N(0,1)
/// and likewise for heading. alpha -> 1 gives smooth, temporally correlated
/// motion; alpha -> 0 degenerates to a memoryless random walk. Used to test
/// sensitivity of handoff rates to motion temporal correlation.

namespace manet::mobility {

class GaussMarkov final : public MobilityModel {
 public:
  struct Params {
    double mean_speed = 1.0;   ///< m/s
    double speed_sigma = 0.3;  ///< m/s
    double alpha = 0.85;       ///< memory, in [0, 1)
    double step = 1.0;         ///< s, internal update interval
  };

  GaussMarkov(const geom::Region& region, Size n, Params params, std::uint64_t seed);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "gauss_markov"; }

 private:
  struct State {
    double speed;
    double heading;  ///< radians
  };

  void update_step(Time dt);

  const geom::Region& region_;
  Params params_;
  common::Xoshiro256 rng_;
  std::vector<geom::Vec2> positions_;
  std::vector<State> states_;
  Time now_ = 0.0;
  Time next_update_ = 0.0;
};

}  // namespace manet::mobility
