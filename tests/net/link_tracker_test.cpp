#include "net/link_tracker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "geom/region.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/unit_disk.hpp"

namespace manet::net {
namespace {

using graph::Edge;
using graph::Graph;

TEST(EdgeDifference, BasicSetDifference) {
  const std::vector<Edge> a{{0, 1}, {1, 2}, {2, 3}};
  const std::vector<Edge> b{{1, 2}};
  const auto diff = edge_difference(a, b);
  EXPECT_EQ(diff, (std::vector<Edge>{{0, 1}, {2, 3}}));
  EXPECT_TRUE(edge_difference(b, b).empty());
}

TEST(LinkTracker, DetectsLinkUpAndDown) {
  const Graph g1(4, std::vector<Edge>{{0, 1}, {1, 2}});
  const Graph g2(4, std::vector<Edge>{{1, 2}, {2, 3}});
  LinkTracker tracker(g1, 0.0);
  const auto delta = tracker.update(g2, 1.0);
  EXPECT_EQ(delta.up, (std::vector<Edge>{{2, 3}}));
  EXPECT_EQ(delta.down, (std::vector<Edge>{{0, 1}}));
  EXPECT_EQ(delta.event_count(), 2u);
  EXPECT_EQ(tracker.total_events(), 2u);
}

TEST(LinkTracker, NoChangeMeansNoEvents) {
  const Graph g(3, std::vector<Edge>{{0, 1}});
  LinkTracker tracker(g, 0.0);
  const auto delta = tracker.update(g, 1.0);
  EXPECT_EQ(delta.event_count(), 0u);
}

TEST(LinkTracker, RatePerNodePerSecond) {
  const Graph g1(10, std::vector<Edge>{});
  const Graph g2(10, std::vector<Edge>{{0, 1}, {2, 3}});
  LinkTracker tracker(g1, 0.0);
  tracker.update(g2, 2.0);  // 2 events over 10 nodes in 2 s
  EXPECT_DOUBLE_EQ(tracker.events_per_node_per_second(), 0.1);
}

TEST(LinkTracker, AccumulatesAcrossUpdates) {
  const Graph g1(4, std::vector<Edge>{});
  const Graph g2(4, std::vector<Edge>{{0, 1}});
  const Graph g3(4, std::vector<Edge>{{2, 3}});
  LinkTracker tracker(g1, 0.0);
  tracker.update(g2, 1.0);
  tracker.update(g3, 2.0);  // one down, one up
  EXPECT_EQ(tracker.total_events(), 3u);
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 2.0);
}

TEST(LinkTracker, F0IsSpeedProportional) {
  // Paper eq. (4): link event frequency scales as mu / R_TX; doubling node
  // speed should roughly double f0 under random waypoint.
  const geom::DiskRegion disk = geom::DiskRegion::with_density(200, 1.0);
  const double radius = 2.0;

  auto measure_f0 = [&](double mu) {
    mobility::RandomWaypoint model(disk, 200,
                                   mobility::RandomWaypoint::Params::fixed_speed(mu), 99);
    UnitDiskBuilder builder(radius);
    LinkTracker tracker(builder.build(model.positions()), 0.0);
    for (Time t = 1.0; t <= 60.0; t += 1.0) {
      model.advance_to(t);
      tracker.update(builder.build(model.positions()), t);
    }
    return tracker.events_per_node_per_second();
  };

  const double f_slow = measure_f0(0.5);
  const double f_fast = measure_f0(1.0);
  EXPECT_GT(f_fast, f_slow * 1.5);
  EXPECT_LT(f_fast, f_slow * 2.6);
}

TEST(LinkTrackerDeath, NodeCountMismatch) {
  const Graph g1(4, std::vector<Edge>{});
  const Graph g2(5, std::vector<Edge>{});
  LinkTracker tracker(g1, 0.0);
  EXPECT_DEATH(tracker.update(g2, 1.0), "node count");
}

TEST(LinkTrackerDeath, TimeMustBeMonotone) {
  const Graph g(4, std::vector<Edge>{});
  LinkTracker tracker(g, 5.0);
  EXPECT_DEATH(tracker.update(g, 4.0), "monotone");
}

}  // namespace
}  // namespace manet::net
