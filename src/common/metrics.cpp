#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace manet::common {

// --- RateMeter ---

RateMeter::RateMeter(Time window, Size buckets)
    : window_(window),
      bucket_width_(window / static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets, 0) {
  MANET_CHECK_MSG(window > 0.0, "RateMeter window must be positive");
}

void RateMeter::advance_to(Time now) {
  const auto target = static_cast<std::int64_t>(now / bucket_width_);
  if (!any_) {
    head_index_ = target;
    return;
  }
  const std::int64_t steps = target - head_index_;
  if (steps <= 0) return;
  const auto n = static_cast<std::int64_t>(counts_.size());
  for (std::int64_t s = 1; s <= std::min(steps, n); ++s) {
    counts_[static_cast<Size>((head_index_ + s) % n)] = 0;
  }
  head_index_ = target;
}

void RateMeter::mark(Time now, std::uint64_t events) {
  advance_to(now);
  if (!any_) {
    first_mark_ = now;
    any_ = true;
  }
  last_mark_ = std::max(last_mark_, now);
  counts_[static_cast<Size>(head_index_ % static_cast<std::int64_t>(counts_.size()))] +=
      events;
  total_ += events;
}

double RateMeter::rate(Time now) const {
  if (!any_) return 0.0;
  std::uint64_t in_window = 0;
  const auto n = static_cast<std::int64_t>(counts_.size());
  const auto now_index = static_cast<std::int64_t>(now / bucket_width_);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t abs_index = head_index_ - i;
    if (abs_index < 0 || now_index - abs_index >= n) continue;
    in_window += counts_[static_cast<Size>(abs_index % n)];
  }
  const double span = std::min(window_, std::max(now - first_mark_, bucket_width_));
  return static_cast<double>(in_window) / span;
}

void RateMeter::merge(const RateMeter& other) {
  total_ += other.total_;
  if (!other.any_) return;
  if (!any_ || other.last_mark_ >= last_mark_) {
    // Adopt the later shard's windowed state (deterministic: shards are
    // folded in index order, so ties resolve to the higher index).
    window_ = other.window_;
    bucket_width_ = other.bucket_width_;
    counts_ = other.counts_;
    head_index_ = other.head_index_;
    first_mark_ = any_ ? std::min(first_mark_, other.first_mark_) : other.first_mark_;
    last_mark_ = other.last_mark_;
    any_ = true;
  }
}

// --- Histogram ---

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  MANET_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
  bounds_.push_back(std::numeric_limits<double>::infinity());
  buckets_.assign(bounds_.size(), 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<Size>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  max_ = std::max(max_, x);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (Size i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double lo_cum = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = std::isinf(bounds_[i]) ? max_ : bounds_[i];
    const double frac = (target - lo_cum) / static_cast<double>(buckets_[i]);
    return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  MANET_CHECK_MSG(bounds_ == other.bounds_, "histogram merge requires identical buckets");
  for (Size i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

// --- MetricsRegistry ---

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

RateMeter& MetricsRegistry::rate_meter(const std::string& name, Time window, Size buckets) {
  const auto it = rate_meters_.find(name);
  if (it != rate_meters_.end()) return it->second;
  return rate_meters_.emplace(name, RateMeter(window, buckets)).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(upper_bounds)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const RateMeter* MetricsRegistry::find_rate_meter(const std::string& name) const {
  const auto it = rate_meters_.find(name);
  return it == rate_meters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, r] : other.rate_meters_) {
    const auto it = rate_meters_.find(name);
    if (it == rate_meters_.end()) {
      rate_meters_.emplace(name, r);
    } else {
      it->second.merge(r);
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

Size MetricsRegistry::instrument_count() const {
  return counters_.size() + gauges_.size() + rate_meters_.size() + histograms_.size();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::entries() const {
  std::vector<Entry> out;
  out.reserve(instrument_count());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, Entry::Kind::kCounter, &c, nullptr, nullptr, nullptr});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, Entry::Kind::kGauge, nullptr, &g, nullptr, nullptr});
  }
  for (const auto& [name, r] : rate_meters_) {
    out.push_back({name, Entry::Kind::kRateMeter, nullptr, nullptr, &r, nullptr});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, Entry::Kind::kHistogram, nullptr, nullptr, nullptr, &h});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

// --- ShardedMetrics ---

ShardedMetrics::ShardedMetrics(Size shard_count) : shards_(shard_count) {
  MANET_CHECK_MSG(shard_count > 0, "ShardedMetrics needs at least one shard");
}

MetricsRegistry& ShardedMetrics::shard(Size index) {
  MANET_CHECK_MSG(index < shards_.size(), "shard index out of range");
  return shards_[index];
}

MetricsRegistry ShardedMetrics::merged() const {
  MetricsRegistry out;
  for (const auto& s : shards_) out.merge(s);
  return out;
}

}  // namespace manet::common
