#include "geom/region.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace manet::geom {

DiskRegion::DiskRegion(Vec2 center, double radius) : center_(center), radius_(radius) {
  MANET_CHECK(radius > 0.0);
}

DiskRegion DiskRegion::with_density(std::size_t n_nodes, double density) {
  MANET_CHECK(n_nodes > 0);
  MANET_CHECK(density > 0.0);
  const double area = static_cast<double>(n_nodes) / density;
  return DiskRegion({0.0, 0.0}, std::sqrt(area / std::numbers::pi));
}

bool DiskRegion::contains(Vec2 p) const {
  return distance2(p, center_) <= radius_ * radius_ * (1.0 + 1e-12);
}

Vec2 DiskRegion::sample(common::Xoshiro256& rng) const {
  // Inverse-CDF sampling in polar coordinates: r = R*sqrt(u) is uniform in
  // area; rejection sampling would be equally valid but this is branch-free.
  const double r = radius_ * std::sqrt(common::uniform01(rng));
  const double theta = common::uniform(rng, 0.0, 2.0 * std::numbers::pi);
  return center_ + Vec2{r * std::cos(theta), r * std::sin(theta)};
}

double DiskRegion::area() const { return std::numbers::pi * radius_ * radius_; }

Vec2 DiskRegion::clamp(Vec2 p) const {
  const Vec2 d = p - center_;
  const double n = d.norm();
  if (n <= radius_) return p;
  return center_ + d * (radius_ / n);
}

SquareRegion::SquareRegion(Vec2 origin, double side) : origin_(origin), side_(side) {
  MANET_CHECK(side > 0.0);
}

SquareRegion SquareRegion::with_density(std::size_t n_nodes, double density) {
  MANET_CHECK(n_nodes > 0);
  MANET_CHECK(density > 0.0);
  const double area = static_cast<double>(n_nodes) / density;
  return SquareRegion({0.0, 0.0}, std::sqrt(area));
}

bool SquareRegion::contains(Vec2 p) const {
  return p.x >= origin_.x && p.x <= origin_.x + side_ && p.y >= origin_.y &&
         p.y <= origin_.y + side_;
}

Vec2 SquareRegion::sample(common::Xoshiro256& rng) const {
  return origin_ + Vec2{common::uniform(rng, 0.0, side_), common::uniform(rng, 0.0, side_)};
}

double SquareRegion::area() const { return side_ * side_; }

Vec2 SquareRegion::center() const { return origin_ + Vec2{side_ / 2.0, side_ / 2.0}; }

Vec2 SquareRegion::clamp(Vec2 p) const {
  return {std::clamp(p.x, origin_.x, origin_.x + side_),
          std::clamp(p.y, origin_.y, origin_.y + side_)};
}

}  // namespace manet::geom
