/// Bit-identity of the sharded parallel tick (RunOptions::threads) against
/// the sequential legacy path.
///
/// The contract (sim/shard.hpp): the shard decomposition is fixed at
/// sim::kDefaultShardCount regardless of worker count, every per-shard
/// output is merged in shard index order, and boundary work is owned by
/// exactly one shard — so every run product (flattened RunMetrics, trace
/// stream, metrics registry) must be byte-identical at *any* thread count.
/// Like the golden fixtures, the config uses a dyadic tick (0.5) so float
/// accumulation is order-exact and byte-identity is a meaningful contract.
///
/// The only permitted difference: parallel runs additionally publish par.*
/// telemetry counters (sharded-work accounting) that a sequential run never
/// creates. Those are excluded when comparing sequential vs parallel and
/// compared in full between two parallel thread counts.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/metrics.hpp"
#include "exp/montecarlo.hpp"
#include "exp/simulation.hpp"
#include "sim/trace.hpp"

using namespace manet;

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

exp::ScenarioConfig base_config() {
  exp::ScenarioConfig cfg;
  cfg.n = 96;
  cfg.density = 1.0;
  cfg.mu = 1.0;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  cfg.tick = 0.5;  // dyadic — see file comment
  cfg.warmup = 2.0;
  cfg.duration = 6.0;
  cfg.seed = 424242;
  return cfg;
}

/// Faults + long-lived sessions: covers the ARQ-attached regime where batch
/// pricing must stay inert (the per-transfer RNG stream is order-sensitive)
/// while unit-disk and link diffing still shard.
exp::ScenarioConfig faulted_sessions_config() {
  auto cfg = base_config();
  cfg.fault.loss = 0.05;
  cfg.fault.crash_rate = 0.02;
  cfg.fault.mean_downtime = 3.0;
  cfg.sessions = true;
  return cfg;
}

std::string serialize(const exp::RunMetrics& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics.values) {
    out += name + '=' + fmt(value) + '\n';
  }
  return out;
}

std::string serialize(const sim::TraceSink& sink) {
  std::string out;
  for (const auto& e : sink.snapshot()) {
    out += fmt(e.t);
    out += ' ';
    out += sim::to_string(e.type);
    out += " k=" + std::to_string(e.level);
    out += " a=" + std::to_string(e.a);
    out += " b=" + std::to_string(e.b);
    out += " v=" + fmt(e.value);
    out += '\n';
  }
  out += "seen=" + std::to_string(sink.seen()) + '\n';
  return out;
}

/// alloc.* exists only under MANET_PROFILE_ALLOC; par.* exists only when an
/// executor is attached (skip_par excludes it for seq-vs-par comparisons).
std::string serialize(const common::MetricsRegistry& registry, bool skip_par) {
  std::string out;
  for (const auto& entry : registry.entries()) {
    if (entry.name.rfind("alloc.", 0) == 0) continue;
    if (skip_par && entry.name.rfind("par.", 0) == 0) continue;
    switch (entry.kind) {
      case common::MetricsRegistry::Entry::Kind::kCounter:
        out += "C " + entry.name + " " + std::to_string(entry.counter->value());
        break;
      case common::MetricsRegistry::Entry::Kind::kGauge:
        out += "G " + entry.name + " " + fmt(entry.gauge->value());
        break;
      case common::MetricsRegistry::Entry::Kind::kRateMeter:
        out += "R " + entry.name + " " + std::to_string(entry.rate_meter->total());
        break;
      case common::MetricsRegistry::Entry::Kind::kHistogram:
        out += "H " + entry.name + " " + std::to_string(entry.histogram->count()) +
               " " + fmt(entry.histogram->sum()) + " " + fmt(entry.histogram->max_seen());
        break;
    }
    out += '\n';
  }
  return out;
}

struct Products {
  std::string metrics;
  std::string trace;
  std::string registry;       ///< par.* excluded (comparable to sequential)
  std::string registry_full;  ///< par.* included (parallel-vs-parallel)
};

Products run_with_threads(const exp::ScenarioConfig& cfg, Size threads,
                          Size query_load = 0) {
  exp::RunOptions opts;
  opts.run_gls = true;
  opts.track_registration = true;
  opts.measure_routing = true;
  opts.threads = threads;
  opts.query_load = query_load;
  common::MetricsRegistry registry;
  sim::TraceSink trace;
  opts.metrics = &registry;
  opts.trace = &trace;
  const auto metrics = exp::run_simulation(cfg, opts);
  return Products{serialize(metrics), serialize(trace),
                  serialize(registry, /*skip_par=*/true),
                  serialize(registry, /*skip_par=*/false)};
}

void expect_thread_identity(const exp::ScenarioConfig& cfg) {
  const auto seq = run_with_threads(cfg, 1);
  const auto par2 = run_with_threads(cfg, 2);
  const auto par8 = run_with_threads(cfg, 8);

  EXPECT_EQ(seq.metrics, par2.metrics) << "RunMetrics diverged at threads=2";
  EXPECT_EQ(seq.metrics, par8.metrics) << "RunMetrics diverged at threads=8";
  EXPECT_EQ(seq.trace, par2.trace) << "trace stream diverged at threads=2";
  EXPECT_EQ(seq.trace, par8.trace) << "trace stream diverged at threads=8";
  EXPECT_EQ(seq.registry, par2.registry) << "registry diverged at threads=2";
  EXPECT_EQ(seq.registry, par8.registry) << "registry diverged at threads=8";
  // Between two parallel runs even the par.* telemetry must agree: the
  // sharded workload accounting is a pure function of the (fixed) shard
  // decomposition, never of the worker count.
  EXPECT_EQ(par2.registry_full, par8.registry_full)
      << "par.* telemetry depends on the thread count";
  EXPECT_NE(par2.registry_full, par2.registry)
      << "parallel run published no par.* telemetry — executor not attached?";
}

TEST(ShardedTick, FaultFreeRunIsThreadCountInvariant) {
  expect_thread_identity(base_config());
}

TEST(ShardedTick, FaultedSessionsRunIsThreadCountInvariant) {
  expect_thread_identity(faulted_sessions_config());
}

TEST(ShardedTick, QueryServingRunIsThreadCountInvariant) {
  // The query plane (RunOptions::query_load, lm::QueryEngine) serves its
  // deterministic lookup stream over the same canonical shard slices in the
  // sequential and parallel paths, so query_lookups / query_hits /
  // query_digest must be byte-identical at every thread count.
  const auto cfg = base_config();
  const auto seq = run_with_threads(cfg, 1, /*query_load=*/512);
  const auto par2 = run_with_threads(cfg, 2, /*query_load=*/512);
  const auto par8 = run_with_threads(cfg, 8, /*query_load=*/512);
  EXPECT_NE(seq.metrics.find("query_digest"), std::string::npos)
      << "query plane was not enabled";
  EXPECT_EQ(seq.metrics, par2.metrics) << "query metrics diverged at threads=2";
  EXPECT_EQ(seq.metrics, par8.metrics) << "query metrics diverged at threads=8";
  EXPECT_EQ(seq.trace, par2.trace);
  EXPECT_EQ(seq.registry, par2.registry);
}

TEST(ShardedTick, HardwareConcurrencyMatchesSequential) {
  const auto cfg = base_config();
  const auto seq = run_with_threads(cfg, 1);
  const auto par = run_with_threads(cfg, 0);  // 0 = hardware concurrency
  EXPECT_EQ(seq.metrics, par.metrics);
  EXPECT_EQ(seq.trace, par.trace);
  EXPECT_EQ(seq.registry, par.registry);
}

}  // namespace
