#include "lm/chlm.hpp"

#include "common/check.hpp"
#include "lm/address.hpp"

namespace manet::lm {

ChlmService::ChlmService(ServerSelectConfig config) : config_(config) {}

void ChlmService::rebuild(const cluster::Hierarchy& h, Time now) {
  const Size n = h.level(0).vertex_count();
  top_level_ = h.top_level();
  const Size levels = served_levels();

  servers_ = select_all_servers(h, config_);
  db_.reset(n);
  for (NodeId owner = 0; owner < n; ++owner) {
    for (Size i = 0; i < levels; ++i) {
      const Level k = static_cast<Level>(i) + kFirstServedLevel;
      db_.put(servers_[owner][i], LocationRecord{owner, k, now, 0});
    }
  }
}

Size ChlmService::served_levels() const {
  return top_level_ >= kFirstServedLevel ? top_level_ - kFirstServedLevel + 1 : 0;
}

NodeId ChlmService::server_of(NodeId owner, Level k) const {
  MANET_CHECK(owner < servers_.size());
  if (k < kFirstServedLevel || k > top_level_) return kInvalidNode;
  return servers_[owner][k - kFirstServedLevel];
}

std::span<const NodeId> ChlmService::servers_of(NodeId owner) const {
  MANET_CHECK(owner < servers_.size());
  return servers_[owner];
}

PacketCount ChlmService::query_cost(const cluster::Hierarchy& h, const graph::Graph& g,
                                    NodeId requester, NodeId target) const {
  MANET_CHECK(requester < g.vertex_count() && target < g.vertex_count());
  if (requester == target) return 0;

  const Level shared = lowest_common_level(h, requester, target);
  graph::BfsScratch bfs;

  // Within a shared level-1 cluster the full topology is known (paper
  // Section 3.2) — route directly.
  if (shared <= 1) {
    bfs.run(g, requester);
    return bfs.hops_to(target);
  }

  // Probe chain: the requester asks the *would-be* level-k server of the
  // target inside its own level-k cluster; every probe below `shared`
  // misses and the lookup escalates one level. The level-`shared` probe
  // lands on the target's true server (same cluster at that level), which
  // forwards the query to the target.
  PacketCount cost = 0;
  NodeId cursor = requester;
  for (Level k = kFirstServedLevel; k <= shared && k <= top_level_; ++k) {
    const NodeId probe = select_server_in(h, h.ancestor(requester, k), k, target, config_);
    bfs.run(g, cursor);
    const auto hops = bfs.hops_to(probe);
    MANET_CHECK_MSG(hops != graph::kUnreachable, "query path through disconnected graph");
    cost += hops;
    cursor = probe;
  }
  bfs.run(g, cursor);
  const auto final_hops = bfs.hops_to(target);
  MANET_CHECK_MSG(final_hops != graph::kUnreachable, "query path through disconnected graph");
  return cost + final_hops;
}

}  // namespace manet::lm
