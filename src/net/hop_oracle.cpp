#include "net/hop_oracle.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "graph/bfs.hpp"

namespace manet::net {

void HopOracle::prepare(const graph::Graph& g) {
  g_ = &g;
  n_ = g.vertex_count();
  const Size k_count = std::min<Size>(kLandmarks, n_);
  land_.resize(n_ * kLandmarks);
  if (sweep_dist_.size() < n_) {
    sweep_dist_.resize(n_);
    sweep_queue_.resize(n_);
  }
  min_dist_.assign(n_, graph::kUnreachable);

  // Farthest-point sampling from vertex 0: each landmark is the vertex
  // maximizing the distance to all previous ones (ties -> lowest id), which
  // spreads them toward the deployment boundary where the bounds are
  // tightest. Vertices outside landmark 0's component report kUnreachable
  // and are never promoted — minor components keep h = 0 and degrade to
  // plain BFS, which their size makes cheap anyway.
  NodeId next = 0;
  active_ = false;
  for (Size k = 0; k < kLandmarks; ++k) {
    if (k >= k_count) {
      // Fewer vertices than table slots: duplicate the last sweep so every
      // slot stays a valid bound.
      for (NodeId v = 0; v < n_; ++v) land_[v * kLandmarks + k] = land_[v * kLandmarks + k - 1];
      continue;
    }
    // Plain BFS sweep into reusable scratch.
    std::fill_n(sweep_dist_.begin(), n_, graph::kUnreachable);
    Size head = 0, tail = 0;
    sweep_dist_[next] = 0;
    sweep_queue_[tail++] = next;
    while (head < tail) {
      const NodeId u = sweep_queue_[head++];
      const std::uint32_t d = sweep_dist_[u] + 1;
      for (const NodeId w : g.neighbors(u)) {
        if (sweep_dist_[w] != graph::kUnreachable) continue;
        sweep_dist_[w] = d;
        sweep_queue_[tail++] = w;
      }
    }
    std::uint32_t ecc = 0;
    for (NodeId v = 0; v < n_; ++v) {
      land_[v * kLandmarks + k] = sweep_dist_[v];
      const std::uint32_t dv = sweep_dist_[v] == graph::kUnreachable ? 0 : sweep_dist_[v];
      if (dv > ecc) ecc = dv;
      if (dv < min_dist_[v]) min_dist_[v] = dv;
    }
    next = 0;
    for (NodeId v = 1; v < n_; ++v) {
      if (min_dist_[v] != graph::kUnreachable && min_dist_[v] > min_dist_[next]) next = v;
    }
    // Shallow-graph gate, decided on the cheapest usable depth estimates.
    // Sweep 0 starts from the arbitrary vertex 0, whose eccentricity only
    // brackets the diameter within [D/2, D] — a conclusive lower reading
    // stops after one sweep. Sweep 1 starts from the graph's first landmark
    // (the vertex farthest from vertex 0, necessarily peripheral), whose
    // eccentricity is a tight diameter estimate — it cleanly separates
    // mid-size deployments (D ~ 20, where bidirectional BFS wins at every
    // distance) from large ones (D ~ 40+) regardless of where vertex 0
    // landed. Below the cutoffs the remaining sweeps would be pure overhead:
    // stop, leave the oracle in pass-through mode, and every query routes to
    // bidirectional BFS.
    if (k == 0 && ecc < kMinEccentricity) return;
    if (k == 1 && ecc < kMinDiameter) return;
  }
  active_ = true;
}

std::uint32_t HopOracle::hops(NodeId s, NodeId t, Scratch& scratch) const {
  MANET_CHECK_MSG(ready(), "HopOracle::hops before prepare");
  MANET_CHECK(s < n_ && t < n_);
  if (s == t) return 0;
  const graph::Graph& g = *g_;
  if (!active_) return scratch.pair_bfs.hops(g, s, t);  // shallow graph: prep skipped

  const std::uint32_t* lt = &land_[static_cast<Size>(t) * kLandmarks];
  const std::uint32_t* ls = &land_[static_cast<Size>(s) * kLandmarks];
  // Component screen and landmark bounds in one pass. By the triangle
  // inequality each landmark L yields |d(L,s) - d(L,t)| <= d(s,t) <=
  // d(L,s) + d(L,t). A landmark reaching exactly one endpoint separates
  // them; all landmarks share a component by construction, so a vertex's
  // row is either all-finite or all-unreachable — one unreachable entry
  // (with the screen already passed) means both endpoints sit in a minor
  // component about which the table knows nothing.
  std::uint32_t lb = 0, ub = graph::kUnreachable;
  for (Size k = 0; k < kLandmarks; ++k) {
    const std::uint32_t a = ls[k], b = lt[k];
    if ((a == graph::kUnreachable) != (b == graph::kUnreachable)) return graph::kUnreachable;
    if (a == graph::kUnreachable) break;
    const std::uint32_t d = a > b ? a - b : b - a;
    if (d > lb) lb = d;
    if (a + b < ub) ub = a + b;
  }
  // Certified distance: when the bounds meet (the pair is radially aligned
  // with some landmark) the answer costs nothing beyond the scan above.
  if (lb == ub) return lb;
  // Near-query dispatch: a small lower bound means the endpoints are close
  // enough that bidirectional BFS meets in a couple of rings — cheaper than
  // A*'s per-vertex h() work.
  if (lb < kNearCut) return scratch.pair_bfs.hops(g, s, t);

  const auto h = [&](NodeId u) -> std::uint32_t {
    const std::uint32_t* lu = &land_[static_cast<Size>(u) * kLandmarks];
    std::uint32_t best = 0;
    for (Size k = 0; k < kLandmarks; ++k) {
      const std::uint32_t a = lu[k], b = lt[k];
      // Unreachable entries only occur when u, t and all landmarks of that
      // slot share the "unseen" state (the screen above handled the rest),
      // in which case a == b and the term is 0 — no special case needed.
      const std::uint32_t d = a > b ? a - b : b - a;
      if (d > best) best = d;
    }
    return best;
  };

  auto& mark = scratch.mark;
  auto& dist = scratch.dist;
  auto& done = scratch.done;
  auto& buckets = scratch.buckets;
  if (mark.size() < n_) {
    mark.assign(n_, 0);
    dist.resize(n_);
    done.resize(n_);
  }
  if (++scratch.epoch == 0) {  // stamp wraparound: old stamps become ambiguous
    std::fill(mark.begin(), mark.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;

  for (auto& b : buckets) b.clear();
  mark[s] = epoch;
  dist[s] = 0;
  done[s] = 0;
  std::uint32_t f = h(s);
  buckets[f % 3].push_back(s);

  // Unit edges + consistent h keep every pushed key in [f, f + 2], so three
  // rotating buckets form a complete priority queue. Entries are settled
  // lazily: a vertex re-pushed with an improved distance leaves its stale
  // copy behind, skipped via done_ when popped.
  while (true) {
    auto& bucket = buckets[f % 3];
    // Index loop: expanding a key-f vertex may push same-key entries.
    for (Size i = 0; i < bucket.size(); ++i) {
      const NodeId u = bucket[i];
      if (done[u]) continue;
      if (u == t) return dist[u];
      done[u] = 1;
      const std::uint32_t ng = dist[u] + 1;
      for (const NodeId w : g.neighbors(u)) {
        if (mark[w] == epoch && (done[w] || dist[w] <= ng)) continue;
        const std::uint32_t hw = h(w);
        mark[w] = epoch;
        dist[w] = ng;
        done[w] = 0;
        // Upper-bound prune: any s-t path through w is at least ng + h(w)
        // long, so when that exceeds the certified upper bound, w cannot lie
        // on a shortest path — record the tentative distance (so equal-or-
        // worse revisits are skipped cheaply above) but skip the push. A
        // strictly shorter prefix found later re-tests the prune.
        if (ng + hw > ub) continue;
        buckets[(ng + hw) % 3].push_back(w);
      }
    }
    bucket.clear();
    ++f;
    if (buckets[0].empty() && buckets[1].empty() && buckets[2].empty()) {
      return graph::kUnreachable;
    }
  }
}

}  // namespace manet::net
