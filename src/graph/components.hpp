#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file components.hpp
/// Connectivity analysis. The paper assumes G is connected (Section 1.2);
/// scenario setup verifies this and, where a sampled deployment is
/// disconnected, resamples or restricts to the giant component.

namespace manet::graph {

/// Union-find over [0, n) with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(Size n);

  NodeId find(NodeId v);
  /// Returns true iff u and v were in different sets.
  bool unite(NodeId u, NodeId v);
  bool connected(NodeId u, NodeId v);
  Size component_count() const noexcept { return components_; }
  Size component_size(NodeId v);

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  Size components_;
};

/// Component label (0-based, by discovery order) for each vertex.
std::vector<std::uint32_t> component_labels(const Graph& g);

/// Number of connected components.
Size component_count(const Graph& g);

/// True iff the graph has exactly one component (and at least one vertex).
bool is_connected(const Graph& g);

/// Vertex ids of the largest component (ties broken by smallest label).
std::vector<NodeId> giant_component(const Graph& g);

}  // namespace manet::graph
