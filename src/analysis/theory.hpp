#pragma once

#include <vector>

#include "common/types.hpp"

/// \file theory.hpp
/// Closed-form evaluations of the paper's analytical expressions, used by
/// the benchmark tables to print theory columns beside measurements. These
/// are Theta-expressions: each carries an explicit scale constant argument,
/// because the paper's results are growth orders, not absolute values.

namespace manet::analysis {

struct TheoryParams {
  double alpha = 4.0;   ///< per-level aggregation ratio alpha_k (assumed level-invariant)
  double mu = 1.0;      ///< node speed, m/s
  double tx_radius = 1.0;  ///< R_TX, m
  double scale = 1.0;   ///< overall Theta constant
};

/// L = Theta(log |V|): number of clustered levels, log base alpha.
double expected_levels(double n, const TheoryParams& p);

/// c_k = alpha^k (paper eq. (2a) with level-invariant alpha).
double aggregation_ck(Level k, const TheoryParams& p);

/// h_k = Theta(sqrt(c_k)) (paper eq. (3)).
double hop_count_hk(Level k, const TheoryParams& p);

/// f_0 = Theta(mu / R_TX) (paper eq. (4)): level-0 link events per node/s.
double link_change_f0(const TheoryParams& p);

/// f_k = Theta(f_0 / h_k) (paper eqs. (8)-(9)): level-k migrations per
/// node per second.
double migration_fk(Level k, const TheoryParams& p);

/// phi_k = Theta(f_k h_k log n) (paper eq. (6a)) — per-level migration
/// handoff; constant in k once (9) holds, so each level contributes
/// Theta(log n).
double phi_k(Level k, double n, const TheoryParams& p);

/// phi = sum_k phi_k = Theta(log^2 n) (paper eq. (6c)).
double phi_total(double n, const TheoryParams& p);

/// gamma_k = Theta(g_k c_k h_k log n) evaluated at the paper's satisfied
/// condition g_k = Theta(1 / (c_k h_k)) (eq. (12)): again Theta(log n).
double gamma_k(Level k, double n, const TheoryParams& p);

/// gamma = Theta(log^2 n) (paper eq. (11) + Section 5.3).
double gamma_total(double n, const TheoryParams& p);

/// |E_k| / |V| = Theta(1 / c_k) (paper eq. (13b)).
double level_link_density(Level k, const TheoryParams& p);

/// Expected LM entries per node: the owner registers at levels 2..L, so the
/// database holds ~ (L - 1) * n entries over n nodes = Theta(log n) each.
double entries_per_node(double n, const TheoryParams& p);

/// T_R lower bound of eq. (23a): T_R >= (q1 / (p^2 + q1)) * h_{k-2}.
double recursion_time_bound(Level k, double q1, double p_max, const TheoryParams& p);

}  // namespace manet::analysis
