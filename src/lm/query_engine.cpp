#include "lm/query_engine.hpp"

#include <thread>

#include "cluster/hierarchy.hpp"
#include "common/check.hpp"

namespace manet::lm {

QueryEngine::QueryEngine(ServerSelectConfig select) : select_(select) {}

void QueryEngine::publish(const cluster::Hierarchy& h, const LmDatabase& db, Time now) {
  const std::uint32_t back = 1u - front_.load(std::memory_order_relaxed);
  Slot& slot = slots_[back];

  // Drain stragglers still pinned on the back slot (reader calls in flight
  // since two publishes ago). seq_cst pairs with the readers' pin/validate
  // so a reader that validated the back slot as front is always visible
  // here, and a reader we observe as gone has finished its data reads.
  while (slot.readers.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }

  Snapshot& s = slot.snap;
  s.epoch = ++epoch_counter_;
  s.published_at = now;
  s.n = h.level(0).vertex_count();
  s.top = h.top_level();
  s.width = select_all_servers_into(h, select_, s.servers);
  const Size total = s.n * s.width;
  s.versions.assign(total, 0);
  s.updated.assign(total, 0.0);
  s.present.assign(total, 0);
  for (NodeId owner = 0; owner < s.n; ++owner) {
    const Size row = static_cast<Size>(owner) * s.width;
    for (Level k = kFirstServedLevel; k <= s.top; ++k) {
      const Size idx = row + (k - kFirstServedLevel);
      const NodeId server = s.servers[idx];
      if (const LocationRecord* rec = db.find(server, owner, k)) {
        s.present[idx] = 1;
        s.versions[idx] = rec->version;
        s.updated[idx] = rec->updated;
      }
    }
  }

  front_.store(back, std::memory_order_seq_cst);
  epoch_.store(s.epoch, std::memory_order_release);
}

const QueryEngine::Slot* QueryEngine::acquire() const {
  for (;;) {
    const std::uint32_t f = front_.load(std::memory_order_seq_cst);
    const Slot& slot = slots_[f];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);  // pin
    if (front_.load(std::memory_order_seq_cst) == f) {
      return &slot;  // validated: the writer cannot rebuild this slot now
    }
    // The front moved between pin and validation: the pin may be on a slot
    // the writer is about to rebuild. Retract without having read any data
    // and retry against the new front.
    slot.readers.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void QueryEngine::release(const Slot* slot) const {
  slot->readers.fetch_sub(1, std::memory_order_seq_cst);
}

QueryResult QueryEngine::lookup_in(const Snapshot& s, NodeId owner, Level k) {
  QueryResult r;
  if (owner >= s.n || k < kFirstServedLevel || k > s.top || s.width == 0) {
    return r;  // out of range: not found, server == kInvalidNode
  }
  const Size idx = static_cast<Size>(owner) * s.width + (k - kFirstServedLevel);
  r.server = s.servers[idx];
  r.found = s.present[idx] != 0;
  if (r.found) {
    r.version = s.versions[idx];
    r.updated = s.updated[idx];
  }
  return r;
}

QueryResult QueryEngine::lookup(NodeId owner, Level k) const {
  const Slot* slot = acquire();
  const QueryResult r = lookup_in(slot->snap, owner, k);
  release(slot);
  return r;
}

Size QueryEngine::lookup_batch(std::span<const NodeId> owners, Level k,
                               std::span<QueryResult> out) const {
  MANET_CHECK(out.size() == owners.size());
  const Slot* slot = acquire();  // one pin serves the whole batch
  const Snapshot& s = slot->snap;
  Size found = 0;
  for (Size i = 0; i < owners.size(); ++i) {
    out[i] = lookup_in(s, owners[i], k);
    found += out[i].found ? 1 : 0;
  }
  release(slot);
  return found;
}

}  // namespace manet::lm
