#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/regression.hpp"

/// \file model_fit.hpp
/// Scaling-model selection: given measurements y(n) over node counts n, fit
/// y = a + b * f(n) for every candidate growth law f and rank the fits.
/// Experiment E14 uses this to check the paper's headline claim: the
/// measured handoff overhead should be explained best by f(n) = log^2 n
/// among {1, log n, log^2 n, sqrt n, n}.

namespace manet::analysis {

enum class GrowthLaw {
  kConstant = 0,  ///< f(n) = 1
  kLog,           ///< f(n) = ln n
  kLogSquared,    ///< f(n) = (ln n)^2
  kSqrt,          ///< f(n) = sqrt(n)
  kLinear,        ///< f(n) = n
};

inline constexpr std::size_t kGrowthLawCount = 5;

const char* to_string(GrowthLaw law);

/// f(n) for the given law.
double growth_value(GrowthLaw law, double n);

struct ModelFit {
  GrowthLaw law{};
  LinearFit fit;    ///< y = intercept + slope * f(n)
  double aic = 0.0; ///< Akaike information criterion (Gaussian residuals)
};

struct ModelSelection {
  /// All candidate fits, ranked best-first by RSS (equivalently AIC, since
  /// every candidate has the same parameter count).
  std::vector<ModelFit> ranked;

  GrowthLaw best() const { return ranked.front().law; }
  const ModelFit& best_fit() const { return ranked.front(); }

  /// Fitted power-law exponent (log-log slope) as a secondary diagnostic:
  /// polylog growth shows an exponent drifting toward 0, sqrt toward 0.5,
  /// linear toward 1.
  LinearFit power_law;

  std::string to_text() const;
};

/// Requires >= 3 points and positive n, y.
ModelSelection select_model(std::span<const double> ns, std::span<const double> ys);

}  // namespace manet::analysis
