#include "lm/handoff.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

#include "common/check.hpp"

namespace manet::lm {

namespace {
/// Transfer-cost histogram buckets (hops per moved entry).
constexpr double kHopBuckets[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}  // namespace

HandoffEngine::HandoffEngine(HandoffConfig config) : config_(config) {}

void HandoffEngine::set_metrics(common::MetricsRegistry* registry) {
  metrics_ = registry;
  phi_level_c_.clear();
  gamma_level_c_.clear();
  migration_level_c_.clear();
  if (registry == nullptr) {
    phi_packets_c_ = gamma_packets_c_ = phi_entries_c_ = gamma_entries_c_ = nullptr;
    level_churn_c_ = unreachable_c_ = nullptr;
    entry_moves_rate_ = nullptr;
    transfer_hops_h_ = nullptr;
    return;
  }
  phi_packets_c_ = &registry->counter("lm.phi_packets");
  gamma_packets_c_ = &registry->counter("lm.gamma_packets");
  phi_entries_c_ = &registry->counter("lm.phi_entries");
  gamma_entries_c_ = &registry->counter("lm.gamma_entries");
  level_churn_c_ = &registry->counter("lm.level_churn");
  unreachable_c_ = &registry->counter("lm.unreachable");
  entry_moves_rate_ = &registry->rate_meter("lm.entry_moves", 10.0);
  transfer_hops_h_ = &registry->histogram("lm.transfer_hops", kHopBuckets);
}

common::Counter* HandoffEngine::level_counter(std::vector<common::Counter*>& cache,
                                              const char* base, Level k) {
  if (cache.size() <= k) cache.resize(k + 1, nullptr);
  if (cache[k] == nullptr) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s.%u", base, k);
    cache[k] = &metrics_->counter(name);
  }
  return cache[k];
}

void HandoffEngine::publish_rates() {
  metrics_->gauge("lm.phi_rate").set(phi_rate());
  metrics_->gauge("lm.gamma_rate").set(gamma_rate());
  metrics_->gauge("lm.total_rate").set(phi_rate() + gamma_rate());
  if (arq_ != nullptr) {
    metrics_->gauge("lm.fault.stale_entries").set(static_cast<double>(stale_.size()));
    metrics_->gauge("lm.fault.phi_retx_rate").set(phi_retx_rate());
    metrics_->gauge("lm.fault.gamma_retx_rate").set(gamma_retx_rate());
  }
}

void HandoffEngine::capture(const cluster::Hierarchy& h, Snapshot& snap) const {
  const Size n = h.level(0).vertex_count();
  snap.top = h.top_level();
  snap.served_width = select_all_servers_into(h, config_.select, snap.servers);
  snap.anc_ids.resize(n * snap.top);  // row-major [owner][k-1], k = 1..top
  for (NodeId v = 0; v < n; ++v) {
    NodeId* anc = snap.anc_ids.data() + static_cast<Size>(v) * snap.top;
    for (Level k = 1; k <= snap.top; ++k) anc[k - 1] = h.ancestor_id(v, k);
  }
}

void HandoffEngine::prime(const cluster::Hierarchy& h, Time t) {
  capture(h, prev_);
  node_count_ = h.level(0).vertex_count();
  start_time_ = last_time_ = t;
  primed_ = true;
  migrations_.assign(prev_.top + 2, 0);
  levels_.assign(prev_.top + 2, LevelOverhead{});

  db_.reset(node_count_);
  for (NodeId owner = 0; owner < node_count_; ++owner) {
    for (Size i = 0; i < prev_.served_width; ++i) {
      const Level k = static_cast<Level>(i) + kFirstServedLevel;
      db_.put(prev_.server(owner, k), LocationRecord{owner, k, t, version_counter_++});
    }
  }
}

LevelOverhead& HandoffEngine::ledger(Level k) {
  if (levels_.size() <= k) levels_.resize(k + 1, LevelOverhead{});
  return levels_[k];
}

std::uint32_t HandoffEngine::hops_between(const graph::Graph& g0, NodeId from, NodeId to) {
  // All branches are exact on g0, so this dispatch can never change a
  // priced value — only how fast it is produced. The batch cache (filled by
  // batch_price_pairs under a sharded executor) is consulted first; hop
  // distance is symmetric, so the canonical pair key covers both directions.
  if (!price_keys_.empty()) {
    const std::uint64_t key = pack_pair(from, to);
    const auto it = std::lower_bound(price_keys_.begin(), price_keys_.end(), key);
    if (it != price_keys_.end() && *it == key) {
      return price_vals_[static_cast<Size>(it - price_keys_.begin())];
    }
  }
  if (oracle_.ready()) return oracle_.hops(from, to);
  return pair_bfs_.hops(g0, from, to);
}

void HandoffEngine::batch_price_pairs(const graph::Graph& g0, const Snapshot& next) {
  // Read-only pre-scan of the snapshot diff, replicating exactly the branch
  // structure of update()'s entry-move loop so the collected pair set is
  // precisely the set of hops_between() queries that loop will issue (price()
  // never queries equal endpoints). Runs before any mutation, so the scan
  // and the loop see identical prev_/next state.
  price_keys_.clear();
  price_vals_.clear();
  const Level max_top = std::max(prev_.top, next.top);
  for (NodeId v = 0; v < node_count_; ++v) {
    for (Level k = kFirstServedLevel; k <= max_top; ++k) {
      const bool had = k <= prev_.top;
      const bool has = k <= next.top;
      NodeId from = kInvalidNode;
      NodeId to = kInvalidNode;
      if (had && has) {
        from = prev_.server(v, k);
        to = next.server(v, k);
      } else if (had) {
        from = prev_.server(v, k);
        to = v;
      } else if (has) {
        from = v;
        to = next.server(v, k);
      } else {
        continue;
      }
      if (from == to) continue;
      price_keys_.push_back(pack_pair(from, to));
    }
  }
  std::sort(price_keys_.begin(), price_keys_.end());
  price_keys_.erase(std::unique(price_keys_.begin(), price_keys_.end()), price_keys_.end());
  if (price_keys_.empty()) return;

  price_vals_.resize(price_keys_.size());
  const Size shards = par_->shard_count();
  if (par_scratch_.size() < shards) par_scratch_.resize(shards);
  par_->for_each_shard([&](Size s) {
    const auto [begin, end] = sim::ShardExecutor::slice(price_keys_.size(), s, shards);
    auto& scratch = par_scratch_[s];
    for (Size i = begin; i < end; ++i) {
      const auto a = static_cast<NodeId>(price_keys_[i] >> 32);
      const auto b = static_cast<NodeId>(price_keys_[i] & 0xFFFFFFFF);
      price_vals_[i] = oracle_.ready() ? oracle_.hops(a, b, scratch)
                                       : scratch.pair_bfs.hops(g0, a, b);
    }
    par_->metrics(s).counter("par.priced_pairs").add(end - begin);
  });
}

PacketCount HandoffEngine::price(const graph::Graph& g0, NodeId from, NodeId to) {
  if (from == to) return 0;
  if (config_.metric == HopMetric::kUnit) return 1;
  const std::uint32_t hops = hops_between(g0, from, to);
  if (hops == graph::kUnreachable) {
    ++unreachable_;
    if (unreachable_c_ != nullptr) unreachable_c_->add(1);
    return 0;
  }
  return hops;
}

TransferOutcome HandoffEngine::attempt_transfer(const graph::Graph& g0, NodeId from,
                                                NodeId to) {
  if (is_down(from) || is_down(to)) return arq_->transfer_unroutable();
  const std::uint32_t hops = hops_between(g0, from, to);
  if (hops == graph::kUnreachable) return arq_->transfer_unroutable();
  return arq_->transfer(hops);
}

void HandoffEngine::set_resilience(ReliableTransfer* arq,
                                   const std::vector<std::uint8_t>* down) {
  arq_ = arq;
  down_ = down;
}

void HandoffEngine::on_node_down(NodeId v, Time t) {
  if (arq_ == nullptr) return;
  const auto dropped = db_.drop_all(v);
  resil_.entries_dropped += dropped.size();
  for (const auto& rec : dropped) {
    // The entry is gone; if it was already stale keep the original
    // stale-since timestamp (repair latency is measured from first loss).
    const auto [it, inserted] =
        stale_.try_emplace(stale_key(rec.owner, rec.level), StaleEntry{kInvalidNode, t});
    if (!inserted) it->second.holder = kInvalidNode;
    if (observer_ != nullptr) observer_->on_entry_stale(rec.owner, rec.level, kInvalidNode, t);
  }
  if (trace_ != nullptr) {
    trace_->record(sim::TraceEvent{t, sim::TraceEventType::kNodeCrash, 0, v, kInvalidNode,
                                   static_cast<double>(dropped.size())});
  }
}

void HandoffEngine::on_node_up(const graph::Graph& g0, NodeId v, Time t) {
  if (arq_ == nullptr) return;
  if (trace_ != nullptr) {
    trace_->record(sim::TraceEvent{t, sim::TraceEventType::kNodeRejoin, 0, v, kInvalidNode});
  }
  if (v >= node_count_) return;
  // The rejoined node re-registers with each of its current servers so its
  // own entries are fresh again; successful refreshes also clear any stale
  // flag for the (owner, level).
  for (Size i = 0; i < prev_.served_width; ++i) {
    const Level k = static_cast<Level>(i) + kFirstServedLevel;
    const NodeId s = prev_.server(v, k);
    if (s == kInvalidNode) continue;
    const TransferOutcome out = attempt_transfer(g0, v, s);
    resil_.repair_packets += out.packets;
    if (out.delivered) {
      db_.put(s, LocationRecord{v, k, t, version_counter_++});
      const auto st = stale_.find(stale_key(v, k));
      if (st != stale_.end()) {
        if (st->second.holder != kInvalidNode && st->second.holder != s) {
          db_.take(st->second.holder, v, k);
        }
        ++resil_.repairs;
        resil_.repair_time_sum += t - st->second.since;
        stale_.erase(st);
        if (observer_ != nullptr) observer_->on_entry_repaired(v, k, s, t);
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{t, sim::TraceEventType::kRepair, k, v, s,
                                         static_cast<double>(out.packets)});
        }
      }
    } else if (db_.find(s, v, k) == nullptr) {
      const bool fresh = stale_.try_emplace(stale_key(v, k), StaleEntry{kInvalidNode, t}).second;
      if (fresh && observer_ != nullptr) observer_->on_entry_stale(v, k, kInvalidNode, t);
    }
  }
}

HandoffEngine::RepairResult HandoffEngine::audit_repair(const graph::Graph& g0, Time t) {
  RepairResult result;
  if (arq_ == nullptr) {
    result.remaining = stale_.size();
    return result;
  }
  for (auto it = stale_.begin(); it != stale_.end();) {
    const auto owner = static_cast<NodeId>(it->first >> 16);
    const auto k = static_cast<Level>(it->first & 0xFFFF);
    if (k > prev_.top || owner >= node_count_ ||
        static_cast<Size>(k - kFirstServedLevel) >= prev_.served_width) {
      // Level no longer served: discard the residue, nothing to repair.
      if (it->second.holder != kInvalidNode) db_.take(it->second.holder, owner, k);
      it = stale_.erase(it);
      if (observer_ != nullptr) observer_->on_entry_retired(owner, k, t);
      continue;
    }
    if (is_down(owner)) {
      ++it;  // the owner re-registers on rejoin
      continue;
    }
    const NodeId s = prev_.server(owner, k);
    const TransferOutcome out = attempt_transfer(g0, owner, s);
    resil_.repair_packets += out.packets;
    result.packets += out.packets;
    if (!out.delivered) {
      ++it;  // stays stale; retried at the next audit
      continue;
    }
    if (it->second.holder != kInvalidNode && it->second.holder != s) {
      db_.take(it->second.holder, owner, k);
    }
    db_.put(s, LocationRecord{owner, k, t, version_counter_++});
    ++resil_.repairs;
    resil_.repair_time_sum += t - it->second.since;
    ++result.repaired;
    if (observer_ != nullptr) observer_->on_entry_repaired(owner, k, s, t);
    if (trace_ != nullptr) {
      trace_->record(sim::TraceEvent{t, sim::TraceEventType::kRepair, k, owner, s,
                                     static_cast<double>(out.packets)});
    }
    it = stale_.erase(it);
  }
  result.remaining = stale_.size();
  return result;
}

double HandoffEngine::query_probe(common::Xoshiro256& rng, Size samples) const {
  if (node_count_ == 0 || prev_.top < kFirstServedLevel) return 1.0;
  Size asked = 0;
  Size ok = 0;
  for (Size attempt = 0; attempt < samples * 4 && asked < samples; ++attempt) {
    const auto owner = static_cast<NodeId>(common::uniform_index(rng, node_count_));
    if (is_down(owner)) continue;  // nobody queries a dead node's location
    ++asked;
    bool found = false;
    for (Size i = 0; i < prev_.served_width && !found; ++i) {
      const Level k = static_cast<Level>(i) + kFirstServedLevel;
      const NodeId s = prev_.server(owner, k);
      if (s == kInvalidNode || is_down(s)) continue;
      found = db_.find(s, owner, k) != nullptr;
    }
    if (found) ++ok;
  }
  return asked > 0 ? static_cast<double>(ok) / static_cast<double>(asked) : 1.0;
}

double HandoffEngine::phi_retx_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(resil_.phi_retx) / denom : 0.0;
}

double HandoffEngine::gamma_retx_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(resil_.gamma_retx) / denom : 0.0;
}

HandoffEngine::TickResult HandoffEngine::update(const cluster::Hierarchy& h,
                                                const graph::Graph& g0, Time t) {
  MANET_CHECK_MSG(primed_, "HandoffEngine::update before prime");
  MANET_CHECK_MSG(t >= last_time_, "handoff time must be monotone");
  MANET_CHECK_MSG(h.level(0).vertex_count() == node_count_, "node population changed");

  if (fast_pricing_) oracle_.prepare(g0);
  arena_.rewind();
  capture(h, next_scratch_);
  const Snapshot& next = next_scratch_;
  TickResult tick;

  // Sharded pricing: compute every hop distance the loop below will ask for
  // up front, in parallel. Gated off the ARQ path (lossy transfers consume
  // RNG in loop order) and the unit metric (which never prices hops).
  if (par_ != nullptr && arq_ == nullptr && config_.metric == HopMetric::kBfsExact) {
    batch_price_pairs(g0, next);
  }

  // Count per-level cluster membership changes (f_k numerators).
  const Level common_top = std::min(prev_.top, next.top);
  if (migrations_.size() <= common_top) migrations_.resize(common_top + 1, 0);
  std::span<Size> migrations_before;
  if (metrics_ != nullptr) {
    migrations_before = arena_.alloc_span<Size>(migrations_.size());
    std::copy(migrations_.begin(), migrations_.end(), migrations_before.begin());
  }
  for (NodeId v = 0; v < node_count_; ++v) {
    for (Level k = 1; k <= common_top; ++k) {
      if (prev_.anc_id(v, k) != next.anc_id(v, k)) ++migrations_[k];
    }
  }
  if (metrics_ != nullptr) {
    for (Level k = 1; k <= common_top; ++k) {
      const Size before = k < migrations_before.size() ? migrations_before[k] : 0;
      const Size delta = migrations_[k] - before;
      if (delta > 0) level_counter(migration_level_c_, "lm.migrations", k)->add(delta);
    }
  }

  // Entry moves.
  const Level max_top = std::max(prev_.top, next.top);
  for (NodeId v = 0; v < node_count_; ++v) {
    for (Level k = kFirstServedLevel; k <= max_top; ++k) {
      const bool had = k <= prev_.top;
      const bool has = k <= next.top;
      const NodeId s_old = had ? prev_.server(v, k) : kInvalidNode;
      const NodeId s_new = has ? next.server(v, k) : kInvalidNode;
      if (had && has) {
        if (s_old == s_new) continue;
        // Attribution: migration when the owner's level-k cluster changed;
        // otherwise the cluster kept its head but recomposed (reorg).
        const bool anc_known =
            k <= prev_.top && k <= next.top;
        const bool migrated = anc_known && prev_.anc_id(v, k) != next.anc_id(v, k);
        PacketCount cost = 0;
        if (arq_ == nullptr) {
          cost = price(g0, s_old, s_new);
        } else {
          // Unreliable path: a stale entry is not at s_old, so there is
          // nothing the old server could send — the repair path owns it.
          const std::uint64_t sk = stale_key(v, k);
          if (stale_.contains(sk)) continue;
          const TransferOutcome out = attempt_transfer(g0, s_old, s_new);
          auto& retx_ledger = migrated ? resil_.phi_retx : resil_.gamma_retx;
          if (!out.delivered) {
            retx_ledger += out.packets;
            ++resil_.failed_transfers;
            stale_.emplace(sk, StaleEntry{s_old, t});
            if (observer_ != nullptr) observer_->on_entry_stale(v, k, s_old, t);
            if (trace_ != nullptr) {
              trace_->record(sim::TraceEvent{t, sim::TraceEventType::kPacketDropped, k,
                                             s_old, s_new,
                                             static_cast<double>(out.packets)});
            }
            continue;
          }
          retx_ledger += out.retx;
          if (trace_ != nullptr && out.attempts > 1) {
            trace_->record(sim::TraceEvent{t, sim::TraceEventType::kRetransmit, k, s_old,
                                           s_new, static_cast<double>(out.attempts - 1)});
          }
          cost = out.packets - out.retx;  // the ideal hops(s_old, s_new)
        }
        auto& lvl = ledger(k);
        if (migrated) {
          lvl.phi_packets += cost;
          ++lvl.phi_entries;
          tick.phi_packets += cost;
          if (metrics_ != nullptr) {
            phi_packets_c_->add(cost);
            phi_entries_c_->add(1);
            level_counter(phi_level_c_, "lm.phi_packets", k)->add(cost);
          }
        } else {
          lvl.gamma_packets += cost;
          ++lvl.gamma_entries;
          tick.gamma_packets += cost;
          if (metrics_ != nullptr) {
            gamma_packets_c_->add(cost);
            gamma_entries_c_->add(1);
            level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          }
        }
        ++tick.entries_moved;
        if (metrics_ != nullptr) {
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{
              t, migrated ? sim::TraceEventType::kHandoffPhi
                          : sim::TraceEventType::kHandoffGamma,
              k, s_old, s_new, static_cast<double>(cost)});
        }
        const LocationRecord rec = db_.take(s_old, v, k);
        db_.put(s_new, LocationRecord{v, k, t, rec.owner == kInvalidNode
                                                   ? version_counter_++
                                                   : rec.version + 1});
        if (observer_ != nullptr) observer_->on_entry_move(v, k, s_old, s_new, t, migrated, cost);
      } else if (had && !has) {
        // Hierarchy lost level k: the entry retires to its owner.
        PacketCount cost = 0;
        if (arq_ == nullptr) {
          cost = price(g0, s_old, v);
        } else {
          const std::uint64_t sk = stale_key(v, k);
          const auto st = stale_.find(sk);
          if (st != stale_.end()) {
            // The level retired while the entry was stale: whoever still
            // holds it just discards it; nothing is transmitted.
            if (st->second.holder != kInvalidNode) db_.take(st->second.holder, v, k);
            stale_.erase(st);
            ++level_churn_;
            if (level_churn_c_ != nullptr) level_churn_c_->add(1);
            if (observer_ != nullptr) observer_->on_entry_retired(v, k, t);
            continue;
          }
          const TransferOutcome out = attempt_transfer(g0, s_old, v);
          if (!out.delivered) {
            // The retirement notice was lost; the serving plane drops the
            // entry regardless (level k no longer exists), the owner just
            // never hears the final ack. Harmless data loss.
            resil_.gamma_retx += out.packets;
            ++resil_.failed_transfers;
            db_.take(s_old, v, k);
            ++level_churn_;
            if (level_churn_c_ != nullptr) level_churn_c_->add(1);
            if (observer_ != nullptr) observer_->on_entry_retired(v, k, t);
            if (trace_ != nullptr) {
              trace_->record(sim::TraceEvent{t, sim::TraceEventType::kPacketDropped, k,
                                             s_old, v, static_cast<double>(out.packets)});
            }
            continue;
          }
          resil_.gamma_retx += out.retx;
          cost = out.packets - out.retx;
        }
        auto& lvl = ledger(k);
        lvl.gamma_packets += cost;
        ++lvl.gamma_entries;
        tick.gamma_packets += cost;
        ++tick.entries_moved;
        ++level_churn_;
        db_.take(s_old, v, k);
        if (observer_ != nullptr) observer_->on_entry_retired(v, k, t);
        if (metrics_ != nullptr) {
          gamma_packets_c_->add(cost);
          gamma_entries_c_->add(1);
          level_churn_c_->add(1);
          level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{t, sim::TraceEventType::kLevelChurn, k, s_old, v,
                                         static_cast<double>(cost)});
        }
      } else if (!had && has) {
        // Hierarchy gained level k: the owner registers with the new server.
        PacketCount cost = 0;
        if (arq_ == nullptr) {
          cost = price(g0, v, s_new);
        } else {
          const TransferOutcome out = attempt_transfer(g0, v, s_new);
          if (!out.delivered) {
            resil_.gamma_retx += out.packets;
            ++resil_.failed_transfers;
            const bool fresh =
                stale_.try_emplace(stale_key(v, k), StaleEntry{kInvalidNode, t}).second;
            if (fresh && observer_ != nullptr) observer_->on_entry_stale(v, k, kInvalidNode, t);
            if (trace_ != nullptr) {
              trace_->record(sim::TraceEvent{t, sim::TraceEventType::kPacketDropped, k, v,
                                             s_new, static_cast<double>(out.packets)});
            }
            continue;
          }
          resil_.gamma_retx += out.retx;
          cost = out.packets - out.retx;
        }
        auto& lvl = ledger(k);
        lvl.gamma_packets += cost;
        ++lvl.gamma_entries;
        tick.gamma_packets += cost;
        ++tick.entries_moved;
        ++level_churn_;
        db_.put(s_new, LocationRecord{v, k, t, version_counter_++});
        if (metrics_ != nullptr) {
          gamma_packets_c_->add(cost);
          gamma_entries_c_->add(1);
          level_churn_c_->add(1);
          level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{t, sim::TraceEventType::kLevelChurn, k, v, s_new,
                                         static_cast<double>(cost)});
        }
      }
    }
  }

  std::swap(prev_, next_scratch_);  // both snapshots keep their buffer capacity
  last_time_ = t;
  price_keys_.clear();  // answers are only valid against this tick's g0
  price_vals_.clear();
  if (metrics_ != nullptr) publish_rates();
  return tick;
}

HandoffEngine::TickResult HandoffEngine::advance_unchanged(Time t) {
  MANET_CHECK_MSG(primed_, "HandoffEngine::advance_unchanged before prime");
  MANET_CHECK_MSG(t >= last_time_, "handoff time must be monotone");
  // An identical snapshot diffs to zero everywhere: update() would leave the
  // ledgers, migration counts and database untouched and only move the
  // clock. Reproduce exactly that end state.
  last_time_ = t;
  if (metrics_ != nullptr) publish_rates();
  return TickResult{};
}

PacketCount HandoffEngine::total_phi() const {
  PacketCount sum = 0;
  for (const auto& lvl : levels_) sum += lvl.phi_packets;
  return sum;
}

PacketCount HandoffEngine::total_gamma() const {
  PacketCount sum = 0;
  for (const auto& lvl : levels_) sum += lvl.gamma_packets;
  return sum;
}

double HandoffEngine::phi_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_phi()) / denom : 0.0;
}

double HandoffEngine::gamma_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_gamma()) / denom : 0.0;
}

double HandoffEngine::phi_rate_at(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  if (denom <= 0.0 || k >= levels_.size()) return 0.0;
  return static_cast<double>(levels_[k].phi_packets) / denom;
}

double HandoffEngine::gamma_rate_at(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  if (denom <= 0.0 || k >= levels_.size()) return 0.0;
  return static_cast<double>(levels_[k].gamma_packets) / denom;
}

Size HandoffEngine::migration_count(Level k) const {
  return k < migrations_.size() ? migrations_[k] : 0;
}

double HandoffEngine::migration_rate(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(migration_count(k)) / denom : 0.0;
}

}  // namespace manet::lm
