#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

/// \file arena.hpp
/// Bump-pointer scratch arena for transient per-tick workspaces.
///
/// The tick hot paths (handoff snapshot capture, hierarchy diffing, the
/// unit-disk delta update) need short-lived arrays whose lifetime is exactly
/// one tick; growing std::vectors for them re-ran the allocator thousands of
/// times per second. An ArenaScratch owner instead calls rewind() at the top
/// of each tick and carves spans out of retained blocks — after the first
/// few ticks have sized the arena, allocation is pointer arithmetic.
///
/// Restrictions (checked at compile time): only trivially destructible
/// element types, because rewind() never runs destructors. Spans are
/// invalidated by rewind(); holding one across ticks is a bug.

namespace manet::common {

class ArenaScratch {
 public:
  explicit ArenaScratch(Size first_block_bytes = 4096)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  /// Reset every block to empty without releasing memory. O(1).
  void rewind() noexcept {
    block_ = 0;
    offset_ = 0;
  }

  /// \p count default-initialized elements of T. The span lives until the
  /// next rewind(); it is never resized in place, so callers size it up
  /// front (the per-tick sizes are known: n nodes, level count, ...).
  template <typename T>
  std::span<T> alloc_span(Size count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are freed by rewind() without destructors");
    if (count == 0) return {};
    T* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (Size i = 0; i < count; ++i) ::new (static_cast<void*>(p + i)) T();
    return {p, count};
  }

  /// Same, filled with \p fill.
  template <typename T>
  std::span<T> alloc_span(Size count, const T& fill) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are freed by rewind() without destructors");
    if (count == 0) return {};
    T* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (Size i = 0; i < count; ++i) ::new (static_cast<void*>(p + i)) T(fill);
    return {p, count};
  }

  /// Raw aligned bytes with span lifetime rules.
  void* allocate(Size bytes, Size align);

  /// Bytes currently held across all blocks (diagnostics / tests).
  Size capacity() const noexcept {
    Size total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    Size size = 0;
  };

  Size first_block_bytes_;
  std::vector<Block> blocks_;
  Size block_ = 0;   ///< index of the block being bumped
  Size offset_ = 0;  ///< bump offset into blocks_[block_]
};

}  // namespace manet::common
