#pragma once

#include <vector>

#include "common/types.hpp"
#include "geom/region.hpp"
#include "geom/vec2.hpp"

/// \file model.hpp
/// Mobility model interface. Models evolve per-node positions in continuous
/// time; the simulation harness advances them from sampling-tick events.
/// The paper's analysis (Section 1.2) uses random waypoint with fixed speed
/// mu and zero pause; other models are provided as extensions and for
/// sensitivity checks.

namespace manet::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advance all nodes to absolute time \p t (monotone: t >= now()).
  virtual void advance_to(Time t) = 0;

  /// Current positions, indexed by NodeId. Valid until the next advance_to.
  virtual const std::vector<geom::Vec2>& positions() const = 0;

  /// Current model time.
  virtual Time now() const = 0;

  /// Number of nodes.
  virtual Size node_count() const = 0;

  /// Human-readable model name for reports.
  virtual const char* name() const = 0;
};

}  // namespace manet::mobility
