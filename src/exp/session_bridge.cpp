#include "exp/session_bridge.hpp"

namespace manet::exp {

traffic::LocateOutcome LmSessionLocator::locate(NodeId dst) {
  using traffic::LocateOutcome;
  using traffic::LocateResult;
  LocateOutcome best;  // kMiss
  const Level top = engine_.top_level();
  for (Level k = lm::kFirstServedLevel; k <= top; ++k) {
    if (engine_.is_stale(dst, k)) {
      const NodeId holder = engine_.stale_holder(dst, k);
      if (holder != kInvalidNode && !is_down(holder) &&
          best.result < LocateResult::kStaleHit) {
        best = LocateOutcome{LocateResult::kStaleHit, holder, holder};
      }
      continue;
    }
    if (manager_ != nullptr) {
      const auto flight = manager_->view(dst, k);
      if (flight.in_flight) {
        // Make-before-break: the old server's retained copy answers until
        // the procedure completes; after a rollback that pinned copy is out
        // of date and misroutes.
        if (flight.server == kInvalidNode || is_down(flight.server)) continue;
        if (flight.rolled_back) {
          if (best.result < LocateResult::kStaleHit) {
            best = LocateOutcome{LocateResult::kStaleHit, flight.server, flight.server};
          }
        } else {
          return LocateOutcome{LocateResult::kFresh, flight.server, kInvalidNode};
        }
        continue;
      }
    }
    const NodeId server = engine_.current_server(dst, k);
    if (server == kInvalidNode || is_down(server)) continue;
    if (engine_.database().find(server, dst, k) == nullptr) continue;
    return LocateOutcome{LocateResult::kFresh, server, kInvalidNode};
  }
  return best;
}

}  // namespace manet::exp
