#include "viz/svg.hpp"

#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace manet::viz {

SvgCanvas::SvgCanvas(geom::Vec2 world_min, geom::Vec2 world_max, double pixels)
    : world_min_(world_min) {
  const double w = world_max.x - world_min.x;
  const double h = world_max.y - world_min.y;
  MANET_CHECK(w > 0.0 && h > 0.0 && pixels > 0.0);
  scale_ = pixels / w;
  width_px_ = pixels;
  height_px_ = h * scale_;
}

geom::Vec2 SvgCanvas::to_px(geom::Vec2 world) const {
  // Flip y: SVG grows downward.
  return {(world.x - world_min_.x) * scale_,
          height_px_ - (world.y - world_min_.y) * scale_};
}

double SvgCanvas::scale_px(double world) const { return world * scale_; }

void SvgCanvas::circle(geom::Vec2 center, double world_radius, const Style& style) {
  const auto c = to_px(center);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\" stroke=\"%s\" "
                "stroke-width=\"%.2f\" opacity=\"%.3f\"/>",
                c.x, c.y, scale_px(world_radius), style.fill.c_str(), style.stroke.c_str(),
                style.stroke_width, style.opacity);
  shapes_.emplace_back(buf);
}

void SvgCanvas::line(geom::Vec2 a, geom::Vec2 b, const Style& style) {
  const auto pa = to_px(a);
  const auto pb = to_px(b);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" "
                "stroke-width=\"%.2f\" opacity=\"%.3f\"/>",
                pa.x, pa.y, pb.x, pb.y, style.stroke.c_str(), style.stroke_width,
                style.opacity);
  shapes_.emplace_back(buf);
}

void SvgCanvas::text(geom::Vec2 at, const std::string& content, double px_size,
                     const std::string& color) {
  const auto p = to_px(at);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" font-family=\"monospace\" "
                "fill=\"%s\">%s</text>",
                p.x, p.y, px_size, color.c_str(), content.c_str());
  shapes_.emplace_back(buf);
}

void SvgCanvas::write(std::ostream& os) const {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_ << "\" height=\""
     << height_px_ << "\" viewBox=\"0 0 " << width_px_ << ' ' << height_px_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& shape : shapes_) os << shape << '\n';
  os << "</svg>\n";
}

std::string SvgCanvas::palette(Size i) {
  static const char* kColors[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
                                  "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"};
  return kColors[i % 10];
}

}  // namespace manet::viz
