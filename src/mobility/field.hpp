#pragma once

#include "common/rng.hpp"
#include "mobility/model.hpp"

/// \file field.hpp
/// Static (frozen) node field. Used by the structural experiments (hierarchy
/// shape, LM database census) that need a snapshot deployment with no motion,
/// and as a degenerate mobility model in tests.

namespace manet::mobility {

class StaticField final : public MobilityModel {
 public:
  /// Uniformly sample \p n positions in \p region.
  StaticField(const geom::Region& region, Size n, std::uint64_t seed);

  /// Wrap externally supplied positions (e.g. a crafted test layout).
  explicit StaticField(std::vector<geom::Vec2> positions);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "static"; }

  /// Mutable access for tests that perturb single nodes between samples.
  std::vector<geom::Vec2>& mutable_positions() { return positions_; }

 private:
  std::vector<geom::Vec2> positions_;
  Time now_ = 0.0;
};

}  // namespace manet::mobility
