#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

/// \file trace.hpp
/// Structured event tracing for simulation runs. Producers (the handoff
/// engine, the snapshot differ bridge in exp::run_simulation, registration)
/// emit typed TraceEvents; a TraceSink stores them in a bounded ring buffer,
/// optionally sampling 1-in-N so long runs stay cheap.
///
/// Tracing is opt-in and zero-cost when off: producers hold a TraceSink
/// pointer that defaults to nullptr, so the disabled path is one predictable
/// branch and no allocation ever happens.
///
/// Event vocabulary: the paper's Section 5.2 reorganization taxonomy
/// (i)-(vii) maps 1:1 onto kReorg* values; migration, handoff transfer
/// (phi/gamma attribution), level churn, registration and lookup events
/// cover the LM plane.

namespace manet::sim {

enum class TraceEventType : std::uint8_t {
  // LM plane.
  kMigration = 0,     ///< node crossed a level-k cluster boundary
  kHandoffPhi,        ///< entry transfer attributed to migration (phi_k)
  kHandoffGamma,      ///< entry transfer attributed to reorganization (gamma_k)
  kLevelChurn,        ///< entry created/retired because level k appeared/vanished
  kRegistration,      ///< owner-driven location update
  kLookup,            ///< location query served
  // Paper Section 5.2 reorganization taxonomy (i)-(vii).
  kReorgLinkUp,            ///< (i)
  kReorgLinkDown,          ///< (ii)
  kReorgElectMigration,    ///< (iii)
  kReorgRejectMigration,   ///< (iv)
  kReorgElectRecursive,    ///< (v)
  kReorgRejectRecursive,   ///< (vi)
  kReorgNeighborPromoted,  ///< (vii)
  // Fault-injection plane (see sim/fault.hpp): lossy control packets, ARQ
  // retransmissions, node churn and CHLM repair.
  kPacketDropped,  ///< control packet lost in transit (value = packets lost)
  kRetransmit,     ///< ARQ retransmission attempt (value = attempt index)
  kNodeCrash,      ///< node went down (crash plan or regional outage)
  kNodeRejoin,     ///< node came back up and re-registered
  kRepair,         ///< stale/missing CHLM entry repaired (value = packets)
  // Handover FSM plane (see lm/handover_fsm.hpp): per-(owner, level) control
  // procedures riding every server move, with rollback-to-old-server on
  // failure (a = old server, b = new server unless noted).
  kHandoverStart,     ///< FSM spawned for an entry move (value = hops)
  kHandoverComplete,  ///< new server confirmed live (value = latency, s)
  kHandoverRetry,     ///< signalling attempt timed out, retrying (value = attempt)
  kHandoverRollback,  ///< procedure aborted; sessions stay on the old server
  kHandoverFail,      ///< rollback impossible (old server also dark)
};

inline constexpr std::size_t kTraceEventTypeCount = 23;

const char* to_string(TraceEventType type);

struct TraceEvent {
  Time t = 0.0;                               ///< simulation time
  TraceEventType type = TraceEventType::kMigration;
  Level level = 0;                            ///< hierarchy level k
  NodeId a = kInvalidNode;                    ///< primary id (owner / head / endpoint)
  NodeId b = kInvalidNode;                    ///< secondary id (server / other endpoint)
  double value = 0.0;                         ///< cost payload (packet transmissions)
};

class TraceSink {
 public:
  struct Config {
    Size capacity = 4096;     ///< ring-buffer slots (>= 1)
    Size sample_every = 1;    ///< keep every Nth record() call (1 = keep all)
  };

  TraceSink();  ///< default Config
  explicit TraceSink(Config config);

  /// Record one event. When the ring is full the oldest event is overwritten;
  /// with sample_every = N only every Nth call is stored (the rest are
  /// counted in seen() and discarded).
  void record(const TraceEvent& event);

  /// All record() calls, including sampled-out and overwritten ones.
  Size seen() const noexcept { return seen_; }
  /// Events currently held (<= capacity).
  Size size() const noexcept { return stored_ < ring_.size() ? stored_ : ring_.size(); }
  /// Stored events that were later overwritten by wraparound.
  Size dropped() const noexcept {
    return stored_ > ring_.size() ? stored_ - ring_.size() : 0;
  }
  Size capacity() const noexcept { return ring_.size(); }

  /// Events oldest-to-newest. Copies; intended for end-of-run export.
  std::vector<TraceEvent> snapshot() const;

  /// Per-type counts over every *stored* event (survives wraparound —
  /// counts are accumulated at record time, not derived from the ring).
  const std::array<Size, kTraceEventTypeCount>& type_counts() const noexcept {
    return type_counts_;
  }

  void clear();

 private:
  std::vector<TraceEvent> ring_;
  Size next_ = 0;    ///< ring slot for the next stored event
  Size stored_ = 0;  ///< total events ever stored
  Size seen_ = 0;
  Size sample_every_;
  std::array<Size, kTraceEventTypeCount> type_counts_{};
};

}  // namespace manet::sim
