/// Renders a deployment and its clustered hierarchy as an SVG: level-0
/// radio links in light gray, nodes colored by their level-1 cluster, and
/// concentric rings marking clusterheads (one ring per level they head).
/// The visual counterpart of the paper's Fig. 1.
///
/// Usage: ./build/examples/render_hierarchy [n] [out.svg] [seed]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cluster/hierarchy_builder.hpp"
#include "exp/scenario.hpp"
#include "net/unit_disk.hpp"
#include "viz/svg.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 300;
  const char* out_path = argc > 2 ? argv[2] : "hierarchy.svg";
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 4;

  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;

  auto scenario = exp::Scenario::materialize(cfg);
  const auto& pts = scenario.mobility->positions();
  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  const auto g = disk.build(pts);
  const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

  const auto* region = dynamic_cast<const geom::DiskRegion*>(scenario.region.get());
  const double r = region->radius() * 1.05;
  viz::SvgCanvas canvas({-r, -r}, {r, r}, 1000.0);

  // Radio links.
  viz::Style link_style;
  link_style.stroke = "#cccccc";
  link_style.stroke_width = 0.6;
  link_style.opacity = 0.7;
  for (const auto& [a, b] : g.edges()) canvas.line(pts[a], pts[b], link_style);

  // Nodes colored by level-1 cluster.
  const double node_r = cfg.tx_radius() * 0.12;
  for (NodeId v = 0; v < n; ++v) {
    viz::Style s;
    s.fill = viz::SvgCanvas::palette(h.ancestor(v, std::min<Level>(1, h.top_level())));
    s.stroke = "#333333";
    s.stroke_width = 0.5;
    canvas.circle(pts[v], node_r, s);
  }

  // Clusterhead rings: one ring per level a node heads, radius grows with
  // level so deep heads are visually prominent.
  for (Level k = 1; k <= h.top_level(); ++k) {
    const auto& view = h.level(k);
    for (NodeId c = 0; c < view.vertex_count(); ++c) {
      viz::Style ring;
      ring.stroke = k == h.top_level() ? "#000000" : "#555555";
      ring.stroke_width = 1.2;
      canvas.circle(pts[view.node0[c]], node_r * (1.0 + 0.9 * k), ring);
    }
  }

  // Label the top-level head.
  const auto& top = h.level(h.top_level());
  canvas.text(pts[top.node0[0]] + geom::Vec2{node_r * 6, node_r * 6},
              "top head " + std::to_string(top.ids[0]), 14.0, "#000000");

  std::ofstream file(out_path);
  canvas.write(file);
  std::printf("rendered %zu nodes, %zu links, %u hierarchy levels -> %s (%zu shapes)\n", n,
              g.edge_count(), h.top_level(), out_path, canvas.shape_count());
  std::printf("open it in any browser; rings mark clusterheads (more rings = higher level)\n");
  return 0;
}
