/// Regenerates the paper's Fig. 1 experience on a random deployment: builds
/// a small network, runs the recursive ALCA, and prints every level of the
/// clustered hierarchy — which node heads which cluster, who its members
/// are, and the resulting hierarchical addresses (e.g. 100.85.68.63).
///
/// Usage: ./build/examples/hierarchy_explorer [n] [seed]

#include <cstdio>
#include <cstdlib>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "exp/scenario.hpp"
#include "lm/address.hpp"
#include "net/unit_disk.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 48;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3;

  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.shuffle_ids = true;  // ids are arbitrary, as in the paper

  auto scenario = exp::Scenario::materialize(cfg);
  net::UnitDiskBuilder disk(cfg.tx_radius(), /*ensure_connected=*/true);
  const auto g = disk.build(scenario.mobility->positions());
  const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

  std::printf("network: %zu nodes, %zu links, R_TX = %.2f m\n", g.vertex_count(),
              g.edge_count(), cfg.tx_radius());
  std::printf("clustered hierarchy: %u levels above the physical one\n\n", h.top_level());

  for (Level k = h.top_level(); k >= 1; --k) {
    std::printf("--- level %u: %zu cluster(s) ---\n", k, h.cluster_count(k));
    for (NodeId c = 0; c < h.cluster_count(k); ++c) {
      const auto& view = h.level(k);
      std::printf("  cluster %-4u (head node %u): level-0 members {", view.ids[c],
                  view.ids[c]);
      const auto& members = h.members0(k, c);
      for (Size i = 0; i < members.size(); ++i) {
        std::printf("%s%u", i ? ", " : "", h.level(0).ids[members[i]]);
      }
      std::printf("}\n");
    }
  }

  std::printf("\nhierarchical addresses (top-down, paper Sec. 2.1):\n");
  const Size show = std::min<Size>(n, 12);
  for (NodeId v = 0; v < show; ++v) {
    const auto addr = lm::make_address(h, v);
    std::printf("  node %-4u -> %s\n", h.level(0).ids[v], lm::to_string(addr).c_str());
  }
  if (show < n) std::printf("  ... (%zu more)\n", n - show);

  std::printf(
      "\nNote the paper's Fig. 1 phenomenon: some clusterheads are NOT the\n"
      "largest id in their own neighborhood — they lead because a smaller\n"
      "neighbor elected them (look for adjacent clusters whose head ids are\n"
      "close together).\n");
  return 0;
}
