#include "exp/campaign.hpp"

#include <cmath>

#include "common/check.hpp"

namespace manet::exp {

void Campaign::series(const std::string& metric, std::vector<double>& ns,
                      std::vector<double>& ys) const {
  ns.clear();
  ys.clear();
  for (const auto& point : points) {
    const double y = point.metrics.mean(metric);
    if (std::isnan(y)) continue;
    ns.push_back(static_cast<double>(point.n));
    ys.push_back(y);
  }
}

void Campaign::series_with_error(const std::string& metric, std::vector<double>& ns,
                                 std::vector<double>& ys,
                                 std::vector<double>& stderrs) const {
  ns.clear();
  ys.clear();
  stderrs.clear();
  for (const auto& point : points) {
    const auto s = point.metrics.summary(metric);
    if (s.count == 0) continue;
    ns.push_back(static_cast<double>(point.n));
    ys.push_back(s.mean);
    stderrs.push_back(s.ci95 / 1.96);
  }
}

Campaign sweep_node_count(const ScenarioConfig& base, std::span<const Size> node_counts,
                          Size replications, const RunOptions& options,
                          common::ThreadPool* pool) {
  MANET_CHECK(!node_counts.empty());
  Campaign campaign;
  campaign.points.reserve(node_counts.size());
  for (const Size n : node_counts) {
    ScenarioConfig cfg = base;
    cfg.n = n;
    SweepPoint point;
    point.n = n;
    point.metrics = run_replications(cfg, replications, options, pool);
    campaign.points.push_back(std::move(point));
  }
  return campaign;
}

}  // namespace manet::exp
