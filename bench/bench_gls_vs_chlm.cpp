/// E12: CHLM vs GLS (paper Section 3; GLS is ref [5] and the design CHLM is
/// modelled on). Both services run over the same mobility with identical
/// BFS-hop pricing, so their update/handoff rates are directly comparable.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E12  bench_gls_vs_chlm — CHLM vs Grid Location Service",
      "comparable polylog update/handoff overhead on the same motion (Sec. 3)");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.run_gls = true;

  exp::Campaign campaign;
  analysis::TextTable table({"|V|", "CHLM phi+gamma", "GLS handoff", "GLS update",
                             "GLS total", "CHLM/GLS"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double chlm = point.metrics.mean("total_rate");
    const double gls = point.metrics.mean("gls_total_rate");
    table.add_row({std::to_string(n), bench::cell(point.metrics, "total_rate"),
                   bench::cell(point.metrics, "gls_handoff_rate"),
                   bench::cell(point.metrics, "gls_update_rate"),
                   bench::cell(point.metrics, "gls_total_rate"),
                   bench::fixed(chlm / gls, 3)});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", table.to_string("LM maintenance rates (pkts/node/s)").c_str());

  bench::print_model_selection("CHLM total", campaign, "total_rate");
  bench::print_model_selection("GLS total", campaign, "gls_total_rate");

  std::printf(
      "\nreading: both columns grow polylogarithmically and stay within a\n"
      "small constant factor of one another — CHLM matches the GLS template\n"
      "it adapts (paper Section 3.2).\n");
  return 0;
}
