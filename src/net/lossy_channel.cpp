#include "net/lossy_channel.hpp"

namespace manet::net {

LossyChannel::LossyChannel(const sim::FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

LossyChannel::Attempt LossyChannel::try_deliver(Size hops) {
  Attempt attempt;
  attempt.delivered = true;
  for (Size hop = 0; hop < hops; ++hop) {
    // Advance the Gilbert-Elliott chain once per transmission. With
    // burst_loss == 0 the chain never matters but is still stepped, so
    // enabling bursts later does not perturb the Bernoulli draw sequence.
    if (config_.burst_loss > 0.0) {
      if (bad_state_) {
        if (config_.burst_len > 0.0 &&
            common::uniform01(rng_) < 1.0 / config_.burst_len) {
          bad_state_ = false;
        }
      } else if (common::uniform01(rng_) < config_.burst_on) {
        bad_state_ = true;
      }
    }
    ++packets_sent_;
    ++attempt.packets;
    const double p = current_loss();
    if (p > 0.0 && common::uniform01(rng_) < p) {
      ++packets_dropped_;
      attempt.delivered = false;
      break;  // the packet died at this hop; downstream hops never transmit
    }
  }
  return attempt;
}

}  // namespace manet::net
