#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace manet::common {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ResultsAreIndexAddressable) {
  ThreadPool pool(3);
  std::vector<int> out(50, -1);
  pool.parallel_for(50, [&](std::size_t i) { out[i] = static_cast<int>(i * i); });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotPoisonPool) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ManySmallTasksComplete) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor must wait for all 20
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ShutdownWhileDeeplyQueuedRunsEverything) {
  // A single worker with a long backlog of slow-ish tasks, destroyed while
  // most of them are still queued: the destructor drains the queue rather
  // than dropping it — every future must become ready, none broken.
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  {
    ThreadPool pool(1);
    futures.reserve(64);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&done, i] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1);
        return i;
      }));
    }
  }  // most of the 64 are still queued here
  EXPECT_EQ(done.load(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ProgressHookSeesMonotoneCompleteCounts) {
  ThreadPool pool(4);
  std::vector<std::size_t> seen;
  pool.parallel_for(
      25, [](std::size_t) {},
      [&seen](std::size_t completed) { seen.push_back(completed); });
  // Hook calls are serialized, so no lock needed above; counts must be
  // strictly increasing and end at n.
  ASSERT_EQ(seen.size(), 25u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(ThreadPool, ProgressHookOverloadPropagatesFirstExceptionInIndexOrder) {
  // Two failing indices: the one with the smaller index wins regardless of
  // completion order, the hook keeps firing for successful units, and the
  // pool stays usable afterwards.
  ThreadPool pool(2);
  std::atomic<int> hook_calls{0};
  try {
    pool.parallel_for(
        16,
        [](std::size_t i) {
          if (i == 11) throw std::runtime_error("late");
          if (i == 5) throw std::logic_error("early");
        },
        [&hook_calls](std::size_t) { hook_calls.fetch_add(1); });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "early");  // index 5 beats index 11
  }
  EXPECT_EQ(hook_calls.load(), 14);  // 16 units minus the two that threw

  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace manet::common
