#pragma once

#include <string>
#include <vector>

#include "exp/simulation.hpp"

/// \file cli.hpp
/// Command-line configuration for scenario-driven binaries (the manet_sim
/// tool and any user-written driver). Flags map 1:1 onto ScenarioConfig /
/// RunOptions fields; unknown flags produce an error with the usage text so
/// typos never silently run the default scenario.

namespace manet::exp {

struct CliOptions {
  ScenarioConfig scenario;
  RunOptions run;
  Size replications = 1;
  std::vector<Size> sweep;   ///< non-empty => sweep node counts
  std::string csv_path;      ///< non-empty => write sweep CSV here
  std::string json_path;     ///< non-empty => write single-run metrics JSON
  std::string metrics_json_path;  ///< non-empty => write registry+manifest JSON
  bool trace = false;        ///< attach a TraceSink and print an event summary
  Size trace_capacity = 4096;     ///< ring-buffer slots for --trace
  Size trace_sample = 1;          ///< keep every Nth event for --trace
  bool show_help = false;
};

struct CliParseResult {
  CliOptions options;
  bool ok = false;
  std::string error;  ///< set when !ok and !options.show_help
};

/// Options for the `manet_sim campaign` subcommand (see exp/campaign_runner.hpp
/// and docs/CAMPAIGNS.md). Exactly one of three modes runs: --plan (print the
/// unit ledger), --merge (validate coverage + write the merged artifact), or
/// execute (the default: run this shard's pending units).
struct CampaignCliOptions {
  std::string spec_path;  ///< --spec FILE (optional when the dir has campaign.json)
  std::string dir;        ///< --out DIR for a fresh run, --resume DIR to continue
  bool plan = false;      ///< --plan: print the unit ledger and exit
  bool resume = false;    ///< set by --resume DIR
  bool merge = false;     ///< --merge: coverage-validated index-ordered merge
  Size shard_index = 0;   ///< --shard i/k: own units with index % k == i
  Size shard_count = 1;
  Size threads = 0;       ///< --threads N replication workers (0 = hardware)
  Size max_units = 0;     ///< --max-units N: stop after N units (time-boxing)
  bool show_help = false;
};

struct CampaignCliParseResult {
  CampaignCliOptions options;
  bool ok = false;
  std::string error;  ///< set when !ok and !options.show_help
};

/// Parse the argv of `manet_sim campaign ...` (argv[0] is the subcommand
/// itself and is skipped). Accepted flags: --spec FILE, --out DIR,
/// --resume DIR, --plan, --merge, --shard i/k, --threads N, --max-units N,
/// --help.
CampaignCliParseResult parse_campaign_cli(int argc, const char* const* argv);

/// Usage text for the campaign subcommand.
std::string campaign_cli_usage(const std::string& program);

/// Parse argv (argv[0] skipped). Accepted flags:
///   --n N            --density D        --mu V          --seed S
///   --tick T         --warmup T         --duration T    --reps R
///   --mobility {rwp|rd|gm|static}
///   --radius {connectivity|degree}      --degree D      --margin C
///   --algo {alca|maxmin1|maxmin2}
///   --strategy {successor|weighted|unweighted}
///   --links {geometric|contraction}     --beta B
///   --gls  --registration  --routing  --no-events  --no-states  --no-hops
///   --threads N (sharded tick)          --query-load N (E31 query serving)
///   --sweep N1,N2,...                   --csv PATH
///   --json PATH (single-run metrics as JSON)
///   --trace  --trace-capacity N  --trace-sample N
///   --metrics-json PATH (live registry + manifest + trace as JSON)
///   --help
CliParseResult parse_cli(int argc, const char* const* argv);

/// Usage text for --help / errors.
std::string cli_usage(const std::string& program);

}  // namespace manet::exp
