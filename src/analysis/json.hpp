#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json.hpp
/// Machine-readable run artifacts: a streaming JSON writer (used by the
/// bench artifact emitter and the manet_sim --metrics-json path) and a small
/// recursive-descent parser (used by tests to round-trip and schema-check
/// the artifacts — no external JSON dependency).
///
/// Writer invariants: keys only inside objects, values only where valid;
/// violations abort via MANET_CHECK, so a malformed artifact can never be
/// written silently. Numbers render as %.17g (doubles round-trip exactly);
/// NaN/inf, which JSON cannot represent, render as null.

namespace manet::analysis {

std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  /// \p pretty adds newlines + two-space indentation.
  explicit JsonWriter(std::ostream& os, bool pretty = false);
  ~JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Shorthand: key(name) then value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// True once every container opened has been closed and one top-level
  /// value was written.
  bool complete() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool top_level_done_ = false;
};

/// Parsed JSON document (tests + schema validation). Object member order is
/// preserved.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that aborts the walk gracefully: returns the member's number or
  /// \p fallback when the member is absent / not a number.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
};

struct JsonParseResult {
  JsonValue value;
  bool ok = false;
  std::string error;  ///< set when !ok, includes the byte offset
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
JsonParseResult parse_json(std::string_view text);

}  // namespace manet::analysis
