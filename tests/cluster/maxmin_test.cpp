#include "cluster/maxmin.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

std::vector<NodeId> identity_ids(Size n) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

TEST(MaxMin, SingleVertex) {
  const Graph g(1);
  const auto result = MaxMinDCluster(2).elect(g, identity_ids(1));
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{0}));
}

TEST(MaxMin, PartitionIsWellFormed) {
  common::Xoshiro256 rng(3);
  const auto disk = geom::DiskRegion::with_density(150, 1.0);
  std::vector<geom::Vec2> pts(150);
  for (auto& p : pts) p = disk.sample(rng);
  const auto g = net::build_unit_disk_graph(pts, 2.2);
  const auto ids = identity_ids(150);

  for (const Level d : {1u, 2u, 3u}) {
    const auto result = MaxMinDCluster(d).elect(g, ids);
    EXPECT_FALSE(result.clusterheads.empty());
    for (NodeId v = 0; v < g.vertex_count(); ++v) {
      const NodeId h = result.head_of[v];
      EXPECT_EQ(result.head_of[h], h) << "head must self-affiliate";
    }
  }
}

TEST(MaxMin, HeadsWithinDHopsOfMembers) {
  common::Xoshiro256 rng(5);
  const auto disk = geom::DiskRegion::with_density(120, 1.0);
  std::vector<geom::Vec2> pts(120);
  for (auto& p : pts) p = disk.sample(rng);
  const auto g = net::build_unit_disk_graph(pts, 2.4);
  const Level d = 2;
  const auto result = MaxMinDCluster(d).elect(g, identity_ids(120));

  graph::BfsScratch bfs;
  Size violations = 0;
  for (NodeId v = 0; v < g.vertex_count(); ++v) {
    bfs.run(g, v);
    const auto hops = bfs.hops_to(result.head_of[v]);
    if (hops == graph::kUnreachable || hops > d) ++violations;
  }
  // Amis et al. guarantee d-hop domination on connected graphs; fragments of
  // a disconnected sample may violate, so tolerate a tiny residue.
  EXPECT_LE(violations, g.vertex_count() / 20);
}

TEST(MaxMin, LargerDYieldsFewerClusters) {
  common::Xoshiro256 rng(7);
  const auto disk = geom::DiskRegion::with_density(200, 1.0);
  std::vector<geom::Vec2> pts(200);
  for (auto& p : pts) p = disk.sample(rng);
  const auto g = net::build_unit_disk_graph(pts, 2.2);
  const auto ids = identity_ids(200);
  const auto d1 = MaxMinDCluster(1).elect(g, ids);
  const auto d3 = MaxMinDCluster(3).elect(g, ids);
  EXPECT_LT(d3.cluster_count(), d1.cluster_count());
}

TEST(MaxMin, MaxIdNodeIsAlwaysAHead) {
  const Graph g(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto result = MaxMinDCluster(2).elect(g, identity_ids(5));
  bool found = false;
  for (const NodeId h : result.clusterheads) found |= (h == 4);
  EXPECT_TRUE(found);
}

TEST(MaxMin, PathGraphD1MatchesLocalMaxima) {
  // Path 0-1-2-3-4: with d=1, floodmax winners are {1,2,3,4,4}; rule 1 fires
  // for 4; others resolve via pairs/rule 3 toward nearby heads.
  const Graph g(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto result = MaxMinDCluster(1).elect(g, identity_ids(5));
  for (NodeId v = 0; v < 5; ++v) {
    const NodeId h = result.head_of[v];
    EXPECT_TRUE(h == v || g.has_edge(v, h));
  }
}

}  // namespace
}  // namespace manet::cluster
