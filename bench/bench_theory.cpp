/// E24: consolidated theory-vs-measured comparison. The analysis module's
/// closed forms (analysis/theory.hpp — eqs. 3, 4, 8/9, 6, 10/11 with a
/// single scale constant calibrated at the smallest sweep point) are printed
/// beside the measurements, so the Theta-shape agreement is visible in one
/// table per quantity.

#include "analysis/theory.hpp"
#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E24  bench_theory — closed forms vs measurements",
      "calibrate each Theta constant once at |V|=128, predict the rest of the sweep");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = true;
  opts.hop_sample_pairs = 64;

  const auto campaign = exp::sweep_node_count(cfg, bench::standard_nodes(),
                                              bench::standard_replications(), opts);

  // Calibrate the theory parameters from the first sweep point. The
  // effective aggregation ratio is the geometric mean over the realized
  // depth, alpha = n^(1/L): the level-1 arity alone overweights the bushiest
  // level and exaggerates high-level cluster sizes.
  const auto& base = campaign.points.front();
  analysis::TheoryParams params;
  params.alpha =
      std::pow(static_cast<double>(base.n), 1.0 / base.metrics.mean("levels"));
  params.mu = cfg.mu;
  params.tx_radius = cfg.tx_radius();
  const double n0 = static_cast<double>(base.n);

  // phi_total is linear in the scale constant; solve for it directly.
  analysis::TheoryParams phi_params = params;
  phi_params.scale = base.metrics.mean("phi_rate") / analysis::phi_total(n0, params);

  analysis::TheoryParams gamma_params = params;
  gamma_params.scale = base.metrics.mean("gamma_rate") / analysis::gamma_total(n0, params);

  analysis::TextTable table({"|V|", "phi meas", "phi theory", "gamma meas", "gamma theory",
                             "L meas", "L theory"});
  for (const auto& point : campaign.points) {
    const double n = static_cast<double>(point.n);
    table.add_row({std::to_string(point.n), bench::fixed(point.metrics.mean("phi_rate")),
                   bench::fixed(analysis::phi_total(n, phi_params)),
                   bench::fixed(point.metrics.mean("gamma_rate")),
                   bench::fixed(analysis::gamma_total(n, gamma_params)),
                   bench::fixed(point.metrics.mean("levels"), 3),
                   bench::fixed(analysis::expected_levels(n, params), 3)});
  }
  std::printf("%s",
              table.to_string("handoff totals: measured vs Theta(log^2 n) closed form")
                  .c_str());

  // Per-level h_k at the largest scale.
  const auto& last = campaign.points.back();
  analysis::TextTable hk({"level", "h_k meas", "Theta(sqrt(c_k))"});
  analysis::TheoryParams hk_params = params;
  {
    const double h1 = last.metrics.mean("h_k.1");
    hk_params.scale = h1 / analysis::hop_count_hk(1, params);
  }
  for (Level k = 1; k <= 8; ++k) {
    char key[32];
    std::snprintf(key, sizeof(key), "h_k.%u", k);
    if (!last.metrics.has(key)) break;
    hk.add_row({std::to_string(k), bench::fixed(last.metrics.mean(key), 4),
                bench::fixed(analysis::hop_count_hk(k, hk_params), 4)});
  }
  char title[64];
  std::snprintf(title, sizeof(title), "h_k (eq. 3) at |V| = %zu", last.n);
  std::printf("%s", hk.to_string(title).c_str());

  // f_k cancellation (eqs. 8/9) at the largest scale.
  analysis::TextTable fk({"level", "f_k meas", "Theta(f0/h_k)"});
  analysis::TheoryParams fk_params = params;
  {
    const double f1 = last.metrics.mean("f_k.1");
    fk_params.scale = f1 / analysis::migration_fk(1, params);
  }
  for (Level k = 1; k <= 8; ++k) {
    char key[32];
    std::snprintf(key, sizeof(key), "f_k.%u", k);
    if (!last.metrics.has(key)) break;
    fk.add_row({std::to_string(k), bench::fixed(last.metrics.mean(key), 4),
                bench::fixed(analysis::migration_fk(k, fk_params), 4)});
  }
  std::snprintf(title, sizeof(title), "f_k (eq. 9) at |V| = %zu", last.n);
  std::printf("%s", fk.to_string(title).c_str());

  std::printf(
      "\nreading: each theory column carries ONE constant fitted at the\n"
      "calibration point; agreement of the remaining points tests the\n"
      "functional form, not the constant. L tracks closely; h_k tracks until\n"
      "it saturates at the network diameter (top clusters span the whole\n"
      "deployment, so measured h_k cannot keep growing as sqrt(c_k)); f_k\n"
      "decays slower than 1/h_k at mid levels because ancestor relabeling\n"
      "(head renames) counts as membership change; phi/gamma sit above the\n"
      "pure log^2 curve while the top levels mature — see EXPERIMENTS.md.\n");
  return 0;
}
