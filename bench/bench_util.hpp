#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "analysis/model_fit.hpp"
#include "analysis/table.hpp"
#include "exp/artifacts.hpp"
#include "exp/campaign.hpp"

/// \file bench_util.hpp
/// Shared scaffolding for the experiment binaries in bench/. Every binary
/// regenerates one row-set of EXPERIMENTS.md: it prints fixed-width tables
/// via analysis::TextTable plus, where the claim is a growth order, the
/// scaling-model ranking. Scales are sized so that the whole bench suite
/// completes in minutes on one core while still spanning a 16x node range.
///
/// Binaries additionally write a machine-readable BENCH_<name>.json artifact
/// (see Artifact below and exp/artifacts.hpp for the schema) so every number
/// in EXPERIMENTS.md can be re-audited and diffed without parsing prose.

namespace manet::bench {

/// Node counts for scaling sweeps (16x range, log-spaced).
inline std::vector<Size> standard_nodes() { return {128, 256, 512, 1024, 2048}; }

/// Reduced sweep for the more expensive experiments.
inline std::vector<Size> small_nodes() { return {128, 256, 512, 1024}; }

/// The paper's scenario defaults (Section 1.2): random waypoint, constant
/// density, fixed R_TX (the paper drops the connectivity log-factor, so the
/// fixed-degree radius policy is the faithful default — see DESIGN.md).
inline exp::ScenarioConfig paper_scenario() {
  exp::ScenarioConfig cfg;
  cfg.density = 1.0;
  cfg.mu = 1.0;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  cfg.warmup = 15.0;
  cfg.duration = 45.0;
  cfg.seed = 20020415;  // IPPS 2002
  return cfg;
}

inline Size standard_replications() { return 3; }

/// Print a mean +- ci cell.
inline std::string cell(const exp::AggregatedMetrics& metrics, const std::string& name) {
  const auto s = metrics.summary(name);
  if (s.count == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g +-%.2g", s.mean, s.ci95);
  return buf;
}

inline std::string fixed(double v, int precision = 4) {
  return analysis::TextTable::fmt(v, precision);
}

/// Print the growth-law ranking for one (n, y) series.
inline void print_model_selection(const std::string& label, const exp::Campaign& campaign,
                                  const std::string& metric) {
  std::vector<double> ns, ys;
  campaign.series(metric, ns, ys);
  if (ns.size() < 3) {
    std::printf("[%s] not enough points for a model fit\n", label.c_str());
    return;
  }
  const auto sel = analysis::select_model(ns, ys);
  std::printf("-- model ranking for %s (best first) --\n%s", label.c_str(),
              sel.to_text().c_str());
}

/// Banner for one experiment regime. Pass \p artifact_schema (e.g.
/// "manet-bench-artifact/1") when the regime writes a BENCH_<name>.json so
/// the schema ID the artifact carries is visible in the text output too.
inline void print_header(const char* experiment, const char* claim,
                         const char* artifact_schema = nullptr) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  if (artifact_schema != nullptr) std::printf("artifact schema: %s\n", artifact_schema);
  std::printf("================================================================\n");
}

/// Machine-readable artifact accumulator: collect the exact values printed
/// in the text tables, then write() a BENCH_<name>.json next to the binary's
/// stdout (into $MANET_BENCH_DIR when set, else the working directory).
/// Wall time from construction to write() lands in the manifest, as does the
/// producing machine's hardware_concurrency (captured by RunManifest) — the
/// header field that makes speedup scalars interpretable across machines and
/// that check_bench.py reads to skip parallel-speedup gates on single-core
/// runners.
class Artifact {
 public:
  Artifact(std::string name, const exp::ScenarioConfig& base, Size replications,
           Size thread_count = 1)
      : manifest_(exp::RunManifest::capture(std::move(name), base, replications,
                                            thread_count)),
        started_(std::chrono::steady_clock::now()) {}

  /// Hardware threads on this machine, as captured into the manifest header.
  Size hardware_concurrency() const { return manifest_.hardware_concurrency; }

  /// Record the ACTUAL worker count the bench ran with (e.g. the resolved
  /// pool size, or the largest thread count of a shards x threads matrix)
  /// when it differs from the count passed at construction.
  void set_thread_count(Size actual) { manifest_.thread_count = actual; }

  /// One aggregated sweep point of a named series (phi_rate, gamma_rate, ...).
  void add_point(const std::string& series, double n, const exp::AggregatedMetrics& agg,
                 const std::string& metric) {
    const auto s = agg.summary(metric);
    series_[series].push_back(exp::SeriesPoint{n, s.mean, s.ci95, s.count});
  }

  void add_point(const std::string& series, exp::SeriesPoint point) {
    series_[series].push_back(point);
  }

  /// Campaign shorthand: one point per sweep node count.
  void add_campaign(const exp::Campaign& campaign, const std::string& metric,
                    const std::string& series_name = "") {
    const std::string& key = series_name.empty() ? metric : series_name;
    for (const auto& point : campaign.points) {
      add_point(key, static_cast<double>(point.n), point.metrics, metric);
    }
  }

  /// Standalone scalar result (model-fit R^2, bootstrap win fraction, ...).
  void set_scalar(const std::string& key, double value) { scalars_[key] = value; }

  /// Write BENCH_<name>.json; returns the path ("" on I/O failure, already
  /// reported on stderr). Call once, at the end of main().
  std::string write() {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - started_;
    manifest_.wall_seconds = wall.count();
    const char* dir = std::getenv("MANET_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
        "BENCH_" + manifest_.name + ".json";
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return "";
    }
    analysis::JsonWriter w(file, /*pretty=*/true);
    w.begin_object();
    w.field("schema", "manet-bench-artifact/1");
    w.key("manifest");
    manifest_.write_json(w);
    w.key("series").begin_object();
    for (const auto& [name, points] : series_) {
      w.key(name).begin_array();
      for (const auto& point : points) exp::write_series_point_json(w, point);
      w.end_array();
    }
    w.end_object();
    w.key("scalars").begin_object();
    for (const auto& [key, value] : scalars_) w.field(key, value);
    w.end_object();
    w.end_object();
    file << '\n';
    std::printf("wrote artifact %s (threads=%zu, hardware_concurrency=%zu)\n", path.c_str(),
                static_cast<std::size_t>(manifest_.thread_count),
                static_cast<std::size_t>(manifest_.hardware_concurrency));
    return path;
  }

 private:
  exp::RunManifest manifest_;
  std::chrono::steady_clock::time_point started_;
  std::map<std::string, std::vector<exp::SeriesPoint>> series_;
  std::map<std::string, double> scalars_;
};

}  // namespace manet::bench
