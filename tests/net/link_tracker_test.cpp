#include "net/link_tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geom/region.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/unit_disk.hpp"
#include "sim/shard.hpp"

namespace manet::net {
namespace {

using graph::Edge;
using graph::Graph;

TEST(EdgeDifference, BasicSetDifference) {
  const std::vector<Edge> a{{0, 1}, {1, 2}, {2, 3}};
  const std::vector<Edge> b{{1, 2}};
  const auto diff = edge_difference(a, b);
  EXPECT_EQ(diff, (std::vector<Edge>{{0, 1}, {2, 3}}));
  EXPECT_TRUE(edge_difference(b, b).empty());
}

TEST(LinkTracker, DetectsLinkUpAndDown) {
  const Graph g1(4, std::vector<Edge>{{0, 1}, {1, 2}});
  const Graph g2(4, std::vector<Edge>{{1, 2}, {2, 3}});
  LinkTracker tracker(g1, 0.0);
  const auto delta = tracker.update(g2, 1.0);
  EXPECT_EQ(delta.up, (std::vector<Edge>{{2, 3}}));
  EXPECT_EQ(delta.down, (std::vector<Edge>{{0, 1}}));
  EXPECT_EQ(delta.event_count(), 2u);
  EXPECT_EQ(tracker.total_events(), 2u);
}

TEST(LinkTracker, NoChangeMeansNoEvents) {
  const Graph g(3, std::vector<Edge>{{0, 1}});
  LinkTracker tracker(g, 0.0);
  const auto delta = tracker.update(g, 1.0);
  EXPECT_EQ(delta.event_count(), 0u);
}

TEST(LinkTracker, RatePerNodePerSecond) {
  const Graph g1(10, std::vector<Edge>{});
  const Graph g2(10, std::vector<Edge>{{0, 1}, {2, 3}});
  LinkTracker tracker(g1, 0.0);
  tracker.update(g2, 2.0);  // 2 events over 10 nodes in 2 s
  EXPECT_DOUBLE_EQ(tracker.events_per_node_per_second(), 0.1);
}

TEST(LinkTracker, AccumulatesAcrossUpdates) {
  const Graph g1(4, std::vector<Edge>{});
  const Graph g2(4, std::vector<Edge>{{0, 1}});
  const Graph g3(4, std::vector<Edge>{{2, 3}});
  LinkTracker tracker(g1, 0.0);
  tracker.update(g2, 1.0);
  tracker.update(g3, 2.0);  // one down, one up
  EXPECT_EQ(tracker.total_events(), 3u);
  EXPECT_DOUBLE_EQ(tracker.elapsed(), 2.0);
}

TEST(LinkTracker, F0IsSpeedProportional) {
  // Paper eq. (4): link event frequency scales as mu / R_TX; doubling node
  // speed should roughly double f0 under random waypoint.
  const geom::DiskRegion disk = geom::DiskRegion::with_density(200, 1.0);
  const double radius = 2.0;

  auto measure_f0 = [&](double mu) {
    mobility::RandomWaypoint model(disk, 200,
                                   mobility::RandomWaypoint::Params::fixed_speed(mu), 99);
    UnitDiskBuilder builder(radius);
    LinkTracker tracker(builder.build(model.positions()), 0.0);
    for (Time t = 1.0; t <= 60.0; t += 1.0) {
      model.advance_to(t);
      tracker.update(builder.build(model.positions()), t);
    }
    return tracker.events_per_node_per_second();
  };

  const double f_slow = measure_f0(0.5);
  const double f_fast = measure_f0(1.0);
  EXPECT_GT(f_fast, f_slow * 1.5);
  EXPECT_LT(f_fast, f_slow * 2.6);
}

TEST(LinkTrackerDeath, NodeCountMismatch) {
  const Graph g1(4, std::vector<Edge>{});
  const Graph g2(5, std::vector<Edge>{});
  LinkTracker tracker(g1, 0.0);
  EXPECT_DEATH(tracker.update(g2, 1.0), "node count");
}

TEST(LinkTrackerDeath, TimeMustBeMonotone) {
  const Graph g(4, std::vector<Edge>{});
  LinkTracker tracker(g, 5.0);
  EXPECT_DEATH(tracker.update(g, 4.0), "monotone");
}

TEST(ShardedEdgeDiff, MatchesSetDifferenceOnRandomLists) {
  // a \ b must be byte-identical to std::set_difference for every list
  // shape: empty, shorter than the shard count, and much longer. Sorted
  // unique inputs are the contract (canonical edge lists).
  common::ThreadPool pool(3);
  sim::ShardExecutor exec(pool, sim::kDefaultShardCount);
  ShardedEdgeDiff diff;
  common::Xoshiro256 rng(29);

  for (const Size len_a : {Size{0}, Size{1}, Size{7}, Size{500}, Size{4000}}) {
    for (const Size len_b : {Size{0}, Size{5}, Size{900}}) {
      auto make = [&](Size len) {
        std::vector<Edge> edges;
        edges.reserve(len);
        for (Size i = 0; i < len; ++i) {
          const auto u = static_cast<NodeId>(common::uniform_index(rng, 64));
          const auto v = static_cast<NodeId>(common::uniform_index(rng, 64));
          if (u != v) edges.emplace_back(std::min(u, v), std::max(u, v));
        }
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
        return edges;
      };
      const auto a = make(len_a);
      const auto b = make(len_b);
      std::vector<Edge> want;
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(want));
      std::vector<Edge> got;
      diff.run(a, b, exec, got);
      EXPECT_EQ(want, got) << "len_a=" << len_a << " len_b=" << len_b;
    }
  }
}

TEST(LinkTracker, ParallelDeltaMatchesSequential) {
  // Same snapshots through a sequential and an executor-attached tracker:
  // deltas and running counters must agree exactly.
  common::ThreadPool pool(2);
  sim::ShardExecutor exec(pool, sim::kDefaultShardCount);

  const auto region = geom::DiskRegion::with_density(120, 1.0);
  mobility::RandomWaypoint walk(region, 120,
                                mobility::RandomWaypoint::Params{0.5, 1.5, 0.0},
                                555);
  UnitDiskBuilder disk(1.5);

  const auto& g0 = disk.update(walk.positions());
  LinkTracker sequential(g0, 0.0);
  LinkTracker parallel(g0, 0.0);
  parallel.set_parallel(&exec);

  LinkDelta ds, dp;
  for (int step = 1; step <= 12; ++step) {
    walk.advance_to(static_cast<Time>(step));
    const auto& g = disk.update(walk.positions());
    sequential.update_into(g, static_cast<Time>(step), ds);
    parallel.update_into(g, static_cast<Time>(step), dp);
    ASSERT_EQ(ds.up, dp.up) << "step " << step;
    ASSERT_EQ(ds.down, dp.down) << "step " << step;
  }
  EXPECT_EQ(sequential.total_events(), parallel.total_events());
}

}  // namespace
}  // namespace manet::net
