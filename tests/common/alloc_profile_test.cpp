#include "common/alloc_profile.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ap = manet::common::alloc_profile;

TEST(AllocProfile, DeltaSubtractsFieldwise) {
  const ap::Totals earlier{10, 4, 100};
  const ap::Totals later{15, 9, 260};
  const auto d = ap::delta(later, earlier);
  EXPECT_EQ(d.allocations, 5u);
  EXPECT_EQ(d.frees, 5u);
  EXPECT_EQ(d.bytes, 160u);
}

/// In a default build nothing is interposed: totals stay zero. In a
/// MANET_PROFILE_ALLOC build every new/delete pair must move the counters.
TEST(AllocProfile, CountersMatchBuildMode) {
  const auto before = ap::totals();
  {
    auto p = std::make_unique<std::uint64_t[]>(64);
    p[0] = 1;
  }
  const auto after = ap::totals();
  if (ap::enabled()) {
    EXPECT_GE(after.allocations, before.allocations + 1);
    EXPECT_GE(after.frees, before.frees + 1);
    EXPECT_GE(after.bytes, before.bytes + 64 * sizeof(std::uint64_t));
  } else {
    EXPECT_EQ(after.allocations, 0u);
    EXPECT_EQ(after.frees, 0u);
    EXPECT_EQ(after.bytes, 0u);
  }
}
