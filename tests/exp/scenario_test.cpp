#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/radio.hpp"

namespace manet::exp {
namespace {

TEST(ScenarioConfig, RadiusPoliciesResolve) {
  ScenarioConfig cfg;
  cfg.n = 500;
  cfg.density = 1.0;
  cfg.radius_policy = RadiusPolicy::kConnectivity;
  EXPECT_NEAR(cfg.tx_radius(),
              net::connectivity_radius(500, 1.0, cfg.connectivity_margin), 1e-12);
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  EXPECT_NEAR(cfg.tx_radius(), net::radius_for_mean_degree(12.0, 1.0), 1e-12);
}

TEST(ScenarioConfig, DescribeMentionsKeyParameters) {
  ScenarioConfig cfg;
  cfg.n = 123;
  const auto text = cfg.describe();
  EXPECT_NE(text.find("n=123"), std::string::npos);
  EXPECT_NE(text.find("seed="), std::string::npos);
}

TEST(Scenario, MaterializeCreatesRequestedMobility) {
  ScenarioConfig cfg;
  cfg.n = 50;
  for (const auto kind : {MobilityKind::kRandomWaypoint, MobilityKind::kRandomDirection,
                          MobilityKind::kGaussMarkov, MobilityKind::kStatic}) {
    cfg.mobility = kind;
    const auto scenario = Scenario::materialize(cfg);
    EXPECT_EQ(scenario.mobility->node_count(), 50u);
    EXPECT_NE(scenario.mobility->name(), nullptr);
  }
}

TEST(Scenario, PositionsInsideRegion) {
  ScenarioConfig cfg;
  cfg.n = 200;
  const auto scenario = Scenario::materialize(cfg);
  for (const auto& p : scenario.mobility->positions()) {
    EXPECT_TRUE(scenario.region->contains(p));
  }
}

TEST(Scenario, ShuffledIdsAreAPermutation) {
  ScenarioConfig cfg;
  cfg.n = 100;
  cfg.shuffle_ids = true;
  const auto scenario = Scenario::materialize(cfg);
  auto ids = scenario.ids;
  std::sort(ids.begin(), ids.end());
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(ids[v], v);
  // With shuffling on, identity order is (overwhelmingly) broken.
  EXPECT_NE(scenario.ids, ids);
}

TEST(Scenario, UnshuffledIdsAreIdentity) {
  ScenarioConfig cfg;
  cfg.n = 20;
  cfg.shuffle_ids = false;
  const auto scenario = Scenario::materialize(cfg);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(scenario.ids[v], v);
}

TEST(Scenario, SameSeedSameWorld) {
  ScenarioConfig cfg;
  cfg.n = 80;
  cfg.seed = 42;
  const auto a = Scenario::materialize(cfg);
  const auto b = Scenario::materialize(cfg);
  EXPECT_EQ(a.mobility->positions(), b.mobility->positions());
  EXPECT_EQ(a.ids, b.ids);
}

TEST(Scenario, DifferentSeedDifferentWorld) {
  ScenarioConfig cfg;
  cfg.n = 80;
  cfg.seed = 1;
  const auto a = Scenario::materialize(cfg);
  cfg.seed = 2;
  const auto b = Scenario::materialize(cfg);
  EXPECT_NE(a.mobility->positions(), b.mobility->positions());
}

}  // namespace
}  // namespace manet::exp
