#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/types.hpp"

using namespace manet;
using common::ArenaScratch;

TEST(ArenaScratch, SpansAreZeroInitializedAndDisjoint) {
  ArenaScratch arena(128);
  auto a = arena.alloc_span<std::uint32_t>(10);
  auto b = arena.alloc_span<std::uint32_t>(10);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 10u);
  for (const auto v : a) EXPECT_EQ(v, 0u);
  for (Size i = 0; i < a.size(); ++i) a[i] = 7;
  for (const auto v : b) EXPECT_EQ(v, 0u) << "spans overlap";
}

TEST(ArenaScratch, FillConstructor) {
  ArenaScratch arena;
  auto s = arena.alloc_span<double>(5, 1.5);
  for (const auto v : s) EXPECT_EQ(v, 1.5);
}

TEST(ArenaScratch, GrowsAcrossBlocksAndOversizedRequests) {
  ArenaScratch arena(64);  // force multi-block growth quickly
  auto small = arena.alloc_span<std::uint8_t>(50);
  auto big = arena.alloc_span<std::uint64_t>(1000);  // larger than any block so far
  ASSERT_EQ(big.size(), 1000u);
  small[0] = 1;
  big[999] = 2;
  EXPECT_GE(arena.capacity(), 50u + 8000u);
}

TEST(ArenaScratch, RewindReusesMemoryWithoutGrowth) {
  ArenaScratch arena(256);
  arena.alloc_span<std::uint64_t>(100);
  arena.alloc_span<std::uint64_t>(100);
  const Size cap = arena.capacity();

  // Steady state: the same per-tick pattern must never grow the arena again.
  for (int tick = 0; tick < 100; ++tick) {
    arena.rewind();
    auto a = arena.alloc_span<std::uint64_t>(100);
    auto b = arena.alloc_span<std::uint64_t>(100);
    a[0] = static_cast<std::uint64_t>(tick);
    b[99] = static_cast<std::uint64_t>(tick);
  }
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ArenaScratch, RespectsAlignment) {
  ArenaScratch arena(64);
  arena.alloc_span<std::uint8_t>(3);  // misalign the bump offset
  auto d = arena.alloc_span<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  void* p = arena.allocate(16, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(ArenaScratch, ZeroCountIsEmpty) {
  ArenaScratch arena;
  EXPECT_TRUE(arena.alloc_span<int>(0).empty());
}
