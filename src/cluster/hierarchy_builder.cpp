#include "cluster/hierarchy_builder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace manet::cluster {

HierarchyBuilder::HierarchyBuilder(Options options)
    : algorithm_(std::make_shared<Alca>()), options_(options) {}

HierarchyBuilder::HierarchyBuilder(std::shared_ptr<const ElectionAlgorithm> algorithm,
                                   Options options)
    : algorithm_(std::move(algorithm)), options_(options) {
  MANET_CHECK(algorithm_ != nullptr);
}

namespace {

/// Whether level \p k of \p prev consumed exactly the inputs (topology, ids)
/// now present in \p cur — the precondition for reusing its election.
bool level_inputs_match(const LevelView& cur, const Hierarchy* prev, Level k) {
  if (prev == nullptr || k >= prev->level_count()) return false;
  const LevelView& old = prev->level(k);
  if (old.ids != cur.ids) return false;
  const auto a = old.topo.edges();
  const auto b = cur.topo.edges();
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Hierarchy HierarchyBuilder::build(const graph::Graph& g, std::span<const NodeId> ids,
                                  std::span<const geom::Vec2> positions,
                                  const Hierarchy* reuse) const {
  const Size n = g.vertex_count();
  MANET_CHECK(n > 0);
  if (options_.geometric_links) {
    MANET_CHECK_MSG(positions.size() == n,
                    "geometric level-k links need level-0 node positions");
  }
  if (reuse != nullptr && reuse->level(0).vertex_count() != n) reuse = nullptr;

  Hierarchy h;

  // Level 0: the physical topology.
  LevelView base;
  base.topo = g;
  if (ids.empty()) {
    base.ids.resize(n);
    for (NodeId v = 0; v < n; ++v) base.ids[v] = v;
  } else {
    MANET_CHECK_MSG(ids.size() == n, "id assignment size mismatch");
    base.ids.assign(ids.begin(), ids.end());
    auto sorted = base.ids;
    std::sort(sorted.begin(), sorted.end());
    MANET_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                    "node ids must be unique");
  }
  base.node0.resize(n);
  for (NodeId v = 0; v < n; ++v) base.node0[v] = v;
  h.levels_.push_back(std::move(base));
  h.children_.emplace_back();   // children_[0] unused
  h.members0_.emplace_back();   // singleton sets

  auto& level0_members = h.members0_.back();
  level0_members.resize(n);
  for (NodeId v = 0; v < n; ++v) level0_members[v] = {v};

  h.ancestor_.emplace_back(n);
  for (NodeId v = 0; v < n; ++v) h.ancestor_[0][v] = v;

  // True while every election so far was reused — then the parent chain, and
  // with it the member/ancestor rollups, are provably identical to reuse's.
  bool prefix_reused = reuse != nullptr;

  // Recursive promotion.
  for (Level k = 0; k < options_.max_levels; ++k) {
    LevelView& cur = h.levels_[k];
    if (cur.vertex_count() <= 1) break;

    const bool inputs_match = level_inputs_match(cur, reuse, k);
    if (!inputs_match) prefix_reused = false;
    if (inputs_match && k + 1 >= reuse->level_count()) {
      // The prior build terminated here on identical inputs (the no-
      // aggregation case, recorded as a cleared election). Same decision.
      cur.election = ElectionResult{};
      break;
    }
    if (inputs_match) {
      cur.election = reuse->level(k).election;
    } else {
      cur.election = algorithm_->elect(cur.topo, cur.ids);
    }
    const auto& heads = cur.election.clusterheads;
    const Size n_next = heads.size();
    if (n_next == cur.vertex_count()) {
      // No aggregation (every vertex self-heads; edgeless or fully stalled
      // level). Clear the election and stop.
      cur.election = ElectionResult{};
      break;
    }

    if (inputs_match) {
      cur.parent = reuse->level(k).parent;
    } else {
      // Dense reindex: level-k head vertex -> level-(k+1) vertex.
      std::vector<NodeId> promote(cur.vertex_count(), kInvalidNode);
      for (Size i = 0; i < n_next; ++i) promote[heads[i]] = static_cast<NodeId>(i);

      cur.parent.resize(cur.vertex_count());
      for (NodeId u = 0; u < cur.vertex_count(); ++u) {
        cur.parent[u] = promote[cur.election.head_of[u]];
        MANET_CHECK(cur.parent[u] != kInvalidNode);
      }
    }

    LevelView next;
    next.ids.resize(n_next);
    next.node0.resize(n_next);
    for (Size i = 0; i < n_next; ++i) {
      next.ids[i] = cur.ids[heads[i]];
      next.node0[i] = cur.node0[heads[i]];
    }

    // Level-(k+1) links.
    if (options_.geometric_links) {
      // Geometric hysteresis (paper eq. (7)): heads within
      // beta * R_TX * sqrt(mean aggregation) of one another are neighbors.
      // Positions drift every tick, so this is recomputed even when the
      // election was reused.
      std::vector<graph::Edge> next_edges;
      const double mean_ck = static_cast<double>(n) / static_cast<double>(n_next);
      const double range = options_.beta * options_.tx_radius * std::sqrt(mean_ck);
      const double range2 = range * range;
      for (NodeId a = 0; a < n_next; ++a) {
        const geom::Vec2 pa = positions[next.node0[a]];
        for (NodeId b = a + 1; b < n_next; ++b) {
          if (geom::distance2(pa, positions[next.node0[b]]) <= range2) {
            next_edges.emplace_back(a, b);
          }
        }
      }
      next.topo = graph::Graph(n_next, next_edges);
    } else if (inputs_match && k + 1 < reuse->level_count()) {
      // Graph contraction depends only on (cur.topo, cur.parent) — both
      // matched, so the contracted topology is the cached one.
      next.topo = reuse->level(k + 1).topo;
    } else {
      // Graph contraction: clusters adjacent in the level-k topology.
      std::vector<graph::Edge> next_edges;
      for (const auto& [a, b] : cur.topo.edges()) {
        NodeId pa = cur.parent[a];
        NodeId pb = cur.parent[b];
        if (pa == pb) continue;
        if (pa > pb) std::swap(pa, pb);
        next_edges.emplace_back(pa, pb);
      }
      std::sort(next_edges.begin(), next_edges.end());
      next_edges.erase(std::unique(next_edges.begin(), next_edges.end()), next_edges.end());
      next.topo = graph::Graph(n_next, next_edges);
    }

    if (prefix_reused && k + 1 < reuse->level_count()) {
      // Every parent chain below is unchanged: the rollups are the cached
      // ones (a straight copy skips the per-cluster merges and sorts).
      h.children_.push_back(reuse->children_[k + 1]);
      h.members0_.push_back(reuse->members0_[k + 1]);
      h.ancestor_.push_back(reuse->ancestor_[k + 1]);
    } else {
      // Children and level-0 member rollup.
      std::vector<std::vector<NodeId>> children(n_next);
      for (NodeId u = 0; u < cur.vertex_count(); ++u) children[cur.parent[u]].push_back(u);

      std::vector<std::vector<NodeId>> members(n_next);
      for (Size c = 0; c < n_next; ++c) {
        for (const NodeId child : children[c]) {
          const auto& sub = h.members0_[k][child];
          members[c].insert(members[c].end(), sub.begin(), sub.end());
        }
        std::sort(members[c].begin(), members[c].end());
      }

      // Ancestor table for level k+1.
      std::vector<NodeId> anc(n);
      for (NodeId v = 0; v < n; ++v) anc[v] = cur.parent[h.ancestor_[k][v]];

      h.children_.push_back(std::move(children));
      h.members0_.push_back(std::move(members));
      h.ancestor_.push_back(std::move(anc));
    }

    h.levels_.push_back(std::move(next));
  }

  // Terminal level has no election/parent data.
  LevelView& top = h.levels_.back();
  top.parent.assign(top.vertex_count(), kInvalidNode);
  return h;
}

}  // namespace manet::cluster
