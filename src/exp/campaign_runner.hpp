#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/artifacts.hpp"
#include "exp/campaign.hpp"

/// \file campaign_runner.hpp
/// Checkpointable campaign orchestration: the resumable, shardable driver
/// behind `manet_sim campaign` (user guide: docs/CAMPAIGNS.md).
///
/// A campaign decomposes into addressable **work units** — one per
/// (sweep point, replication block) — executed via the same deterministic
/// seed derivation as run_replications. Each completed unit writes a durable
/// JSON checkpoint (schema `manet-campaign-unit/1`, atomic temp-file +
/// rename) holding the *raw* per-replication metric vectors; the merge step
/// replays them into AggregatedMetrics in global replication-index order, so
/// the merged Campaign is bit-identical to the single-process
/// sweep_node_count path regardless of thread count, interruption point,
/// shard split or resume order (enforced by
/// tests/integration/campaign_resume_test.cpp).
///
/// On-disk layout of a campaign directory:
///   <dir>/campaign.json          manifest: schema manet-campaign/1
///                                (fingerprint + embedded spec + unit ledger)
///   <dir>/units/<unit-id>.json   one checkpoint per completed work unit
///   <dir>/CAMPAIGN_<name>.json   merged artifact (manet-bench-artifact/1),
///                                written by the merge step

namespace manet::exp {

/// Campaign specification: scenario x sweep x replications, decomposed into
/// work units of at most `block` replications (schema `manet-campaign-spec/1`
/// as a standalone file; embedded verbatim in the campaign manifest).
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> args;  ///< manet_sim scenario/measurement flags
  std::vector<Size> sweep;        ///< node counts, one sweep point each
  Size replications = 1;          ///< per sweep point
  Size block = 8;                 ///< replications per work unit (last may be short)

  ScenarioConfig scenario;  ///< parsed from args (n overridden per point)
  RunOptions options;       ///< parsed from args

  Size blocks_per_point() const;
  Size unit_count() const;

  /// Stable 64-bit content hash (hex) over everything that determines the
  /// results: name, args, resolved scenario, sweep, replications, block.
  /// Checkpoints carry it so a resume can never mix two campaigns.
  std::string fingerprint() const;

  /// Serialize as a manet-campaign-spec/1 document (args verbatim, so a
  /// round-trip through campaign.json re-parses to an identical spec).
  void write_json(analysis::JsonWriter& w) const;

  /// Parse and validate a spec document; re-parses `args` through parse_cli
  /// (unknown flags fail exactly as they do on the command line). Campaign-
  /// level flags (--sweep, --reps, --csv, --json, --metrics-json, --trace)
  /// are rejected inside args: they have spec-field equivalents or apply to
  /// single runs only.
  static bool from_json(const analysis::JsonValue& v, CampaignSpec& out,
                        std::string& error);

  /// Read + parse a spec file from disk.
  static bool load(const std::string& path, CampaignSpec& out, std::string& error);
};

/// One addressable work unit: `scenario x n x replication-block`.
struct WorkUnit {
  Size index = 0;      ///< position in the unit ledger (plan order)
  Size point = 0;      ///< index into CampaignSpec::sweep
  Size n = 0;          ///< node count of the sweep point
  Size block = 0;      ///< block index within the point
  Size rep_begin = 0;  ///< global replication range [rep_begin, rep_end)
  Size rep_end = 0;

  /// Stable checkpoint basename, e.g. "u0007-n512-b02".
  std::string id() const;
};

/// A completed unit: raw per-replication metric vectors, in index order.
struct UnitRecord {
  WorkUnit unit;
  std::vector<RunMetrics> replications;
  double wall_seconds = 0.0;
};

/// Execute one unit in-process (the primitive CampaignRunner::run loops
/// over): replications [rep_begin, rep_end) of the spec scenario at unit.n.
UnitRecord run_unit(const CampaignSpec& spec, const WorkUnit& unit,
                    common::ThreadPool* pool = nullptr);

/// Checkpoint path for a unit: <dir>/units/<unit.id()>.json.
std::string unit_checkpoint_path(const std::string& dir, const WorkUnit& unit);

/// Write a unit checkpoint atomically (temp file + rename), so a crash can
/// never leave a torn record that a later resume would trust.
bool write_unit_checkpoint(const std::string& dir, const CampaignSpec& spec,
                           const UnitRecord& record, std::string& error);

/// Strict read-back: schema, campaign fingerprint, unit coordinates and
/// replication count are all validated against \p spec.
bool read_unit_checkpoint(const std::string& path, const CampaignSpec& spec,
                          UnitRecord& out, std::string& error);

/// Write / read <dir>/campaign.json (schema manet-campaign/1: fingerprint,
/// git SHA, embedded spec, unit ledger). Reading re-derives the spec from
/// the embedded document, so `--resume <dir>` works without the spec file.
bool write_campaign_manifest(const std::string& dir, const CampaignSpec& spec,
                             std::string& error);
bool read_campaign_manifest(const std::string& dir, CampaignSpec& out,
                            std::string& error);

/// Write the merged campaign as a BENCH_*-style artifact (schema
/// manet-bench-artifact/1): manifest + one series per metric name + unit
/// bookkeeping scalars.
bool write_campaign_artifact(const std::string& path, const CampaignSpec& spec,
                             const Campaign& campaign, double wall_seconds,
                             Size thread_count, std::string& error);

class CampaignRunner {
 public:
  /// Binds a spec to a campaign directory. The directory is only created /
  /// written by run(); plan(), completed_units() and merge() never write.
  CampaignRunner(CampaignSpec spec, std::string dir);

  const CampaignSpec& spec() const { return spec_; }
  const std::string& dir() const { return dir_; }

  /// The unit ledger: every work unit of the campaign, in execution order
  /// (sweep points outer, replication blocks inner — i.e. global
  /// replication-index order within each point).
  const std::vector<WorkUnit>& plan() const { return ledger_; }

  /// Per-ledger-entry completion flags from a checkpoint scan of dir().
  /// Invalid or foreign checkpoint files count as incomplete (a warning is
  /// logged); missing directories mean nothing is complete.
  std::vector<bool> completed_units() const;

  struct RunConfig {
    Size shard_index = 0;  ///< this process owns units with index % shard_count
    Size shard_count = 1;  ///<   == shard_index (the --shard i/k split)
    bool resume = false;   ///< skip checkpointed units instead of failing
    Size max_units = 0;    ///< stop after executing N units (0 = no limit)
    common::ThreadPool* pool = nullptr;  ///< fans replications within a unit
    /// Called after each owned unit is checkpointed (or skipped) with the
    /// number of owned units done so far and the owned total.
    std::function<void(const WorkUnit&, Size done, Size total)> progress;
  };

  struct RunReport {
    Size executed = 0;  ///< units run and checkpointed by this invocation
    Size skipped = 0;   ///< owned units already checkpointed (resume)
    Size total = 0;     ///< units owned by this shard
    bool ok = false;
    std::string error;  ///< set when !ok
  };

  /// Execute this shard's not-yet-checkpointed units in ledger order:
  /// creates dir(), writes campaign.json (validating the fingerprint when
  /// one already exists), then one checkpoint per unit. Without
  /// `config.resume`, pre-existing checkpoints for owned units are an error.
  RunReport run(const RunConfig& config);
  RunReport run() { return run(RunConfig{}); }

  struct MergeResult {
    Campaign campaign;          ///< valid only when ok
    Size units = 0;             ///< checkpoints merged
    std::vector<Size> missing;  ///< ledger indices without a checkpoint (gaps)
    std::vector<std::string> stray;  ///< unit files matching no ledger entry
    bool ok = false;
    std::string error;
  };

  /// Validate coverage (no gaps, no strays/duplicates, fingerprints match)
  /// and merge every checkpoint in ledger order. The result is bit-identical
  /// to sweep_node_count over the same spec.
  MergeResult merge() const;

 private:
  CampaignSpec spec_;
  std::string dir_;
  std::vector<WorkUnit> ledger_;
};

}  // namespace manet::exp
