#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace manet::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level), static_cast<int>(message.size()),
               message.data());
}

void log_debug(std::string_view message) { log(LogLevel::Debug, message); }
void log_info(std::string_view message) { log(LogLevel::Info, message); }
void log_warn(std::string_view message) { log(LogLevel::Warn, message); }
void log_error(std::string_view message) { log(LogLevel::Error, message); }

}  // namespace manet::common
