#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

/// \file graph.hpp
/// Immutable undirected graph in CSR (compressed sparse row) layout.
///
/// Used for the level-0 unit-disk graph G = (V, E) and, after relabeling
/// clusterheads to dense indices, for every level-k cluster topology
/// G_k = (V_k, E_k) of the hierarchy (paper Section 1.1). Immutability is
/// deliberate: topologies are snapshots produced by the samplers, and the
/// cluster differ compares whole snapshots rather than mutating in place.

namespace manet::graph {

/// Undirected edge as an ordered pair (u < v).
using Edge = std::pair<NodeId, NodeId>;

class Graph {
 public:
  /// Empty graph with \p n isolated vertices.
  explicit Graph(Size n = 0);

  /// Build from an edge list. Duplicate and self edges are rejected by
  /// MANET_CHECK (callers produce canonical u < v lists).
  Graph(Size n, std::span<const Edge> edges);

  /// Rebuild in place from an edge list, with the same validation as the
  /// constructor. Internal buffers keep their capacity, so per-tick snapshot
  /// producers (the unit-disk builder, the fault-plane edge stripper) do not
  /// reallocate once warmed up.
  void assign(Size n, std::span<const Edge> edges);

  Size vertex_count() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  Size edge_count() const noexcept { return edges_.size(); }

  /// Neighbors of \p v in ascending id order.
  std::span<const NodeId> neighbors(NodeId v) const;

  Size degree(NodeId v) const;

  /// O(log degree) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// Canonical (u < v) edge list, lexicographically sorted.
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Mean vertex degree (2|E| / |V|); 0 for the empty graph.
  double average_degree() const noexcept;

 private:
  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // size 2|E|
  std::vector<Edge> edges_;             // canonical sorted edge list
};

/// Induced subgraph over the vertices with keep[v] == true, densely
/// relabeled. Used by the failure-injection experiments: killing a node set
/// is exactly taking the induced subgraph of the survivors.
struct Subgraph {
  Graph graph;                      ///< relabeled to [0, kept)
  std::vector<NodeId> to_original;  ///< new dense id -> original id
  std::vector<NodeId> to_new;       ///< original id -> new id (kInvalidNode if dropped)
};

Subgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep);

}  // namespace manet::graph
