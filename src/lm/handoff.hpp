#pragma once

#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "graph/bfs.hpp"
#include "lm/chlm.hpp"
#include "sim/trace.hpp"

/// \file handoff.hpp
/// The LM handoff engine — the measurement core of this reproduction.
///
/// Between consecutive hierarchy snapshots the CHLM server assignment table
/// is recomputed; every (owner, level) entry whose serving node changed is a
/// *handoff*: the old server transfers the entry to the new one, costing
/// hops(old, new) packet transmissions under strict hierarchical routing.
/// Each move is attributed:
///   phi_k   (paper Section 4)  — the owner's level-k cluster changed, i.e.
///           the owner migrated across a level-k boundary;
///   gamma_k (paper Section 5)  — the owner's level-k cluster is unchanged
///           but the assignment moved because the cluster's internal
///           composition changed (link change, election, rejection, ...).
/// Summing per-level rates reproduces the paper's phi = Theta(log^2 |V|) and
/// gamma = Theta(log^2 |V|) claims (experiments E8/E9).

namespace manet::lm {

/// How to price one entry transfer.
enum class HopMetric {
  kBfsExact,  ///< exact shortest-path hops on the level-0 graph (default)
  kUnit,      ///< 1 per moved entry (message count, not packet count)
};

struct HandoffConfig {
  ServerSelectConfig select;
  HopMetric metric = HopMetric::kBfsExact;
};

/// Accumulated overhead at one hierarchy level.
struct LevelOverhead {
  PacketCount phi_packets = 0;
  PacketCount gamma_packets = 0;
  Size phi_entries = 0;    ///< entry moves attributed to migration
  Size gamma_entries = 0;  ///< entry moves attributed to reorganization
};

class HandoffEngine {
 public:
  explicit HandoffEngine(HandoffConfig config = HandoffConfig{});

  /// Install the initial snapshot at time \p t. No cost is charged (initial
  /// registration is location *registration* overhead, covered by the
  /// companion papers [16][17], not handoff).
  void prime(const cluster::Hierarchy& h, Time t);

  struct TickResult {
    PacketCount phi_packets = 0;
    PacketCount gamma_packets = 0;
    Size entries_moved = 0;
  };

  /// Advance to snapshot \p h (level-0 graph \p g0 prices the transfers) at
  /// time \p t; returns this tick's cost and accumulates totals.
  TickResult update(const cluster::Hierarchy& h, const graph::Graph& g0, Time t);

  // --- Accumulated results ---
  Size node_count() const { return node_count_; }
  Time elapsed() const { return last_time_ - start_time_; }

  /// Per-level ledger; index by level k (entries 0 and 1 stay zero).
  const std::vector<LevelOverhead>& per_level() const { return levels_; }

  PacketCount total_phi() const;
  PacketCount total_gamma() const;

  /// Packet transmissions per node per second — the paper's overhead unit.
  double phi_rate() const;
  double gamma_rate() const;
  double phi_rate_at(Level k) const;
  double gamma_rate_at(Level k) const;

  /// Level-k cluster membership changes observed (f_k numerator, E5):
  /// migration_rate(k) = changes / (node_count * elapsed).
  Size migration_count(Level k) const;
  double migration_rate(Level k) const;

  /// Entry moves whose endpoints were disconnected at transfer time (the
  /// transfer is counted as an entry move with zero packets; should be 0 in
  /// connected scenarios).
  Size unreachable_transfers() const { return unreachable_; }

  /// Registrations/retirements caused by the hierarchy gaining/losing
  /// levels (priced like gamma transfers owner<->server).
  Size level_churn_entries() const { return level_churn_; }

  /// The maintained distributed database (kept consistent with the current
  /// assignment table; integration tests verify this invariant).
  const LmDatabase& database() const { return db_; }

  // --- Observability hooks (both optional; nullptr = off, zero cost) ---

  /// Publish live counters/gauges into \p registry (see docs/ARCHITECTURE.md
  /// "Observability" for the lm.* instrument names). phi_k / gamma_k / f_k
  /// become queryable *during* the run, not just via OverheadReport.
  void set_metrics(common::MetricsRegistry* registry);

  /// Emit one typed TraceEvent per entry transfer / level-churn move.
  void set_trace(sim::TraceSink* trace) noexcept { trace_ = trace; }

 private:
  /// Capture assignment + ancestor tables for a snapshot.
  struct Snapshot {
    std::vector<std::vector<NodeId>> servers;  ///< [owner][k-2], k in [2, top]
    std::vector<std::vector<NodeId>> anc_ids;  ///< [owner][k-1], k in [1, top]
    Level top = 0;
  };
  Snapshot capture(const cluster::Hierarchy& h) const;

  LevelOverhead& ledger(Level k);
  PacketCount price(const graph::Graph& g0, NodeId from, NodeId to);

  HandoffConfig config_;
  Size node_count_ = 0;
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  bool primed_ = false;

  Snapshot prev_;
  std::vector<LevelOverhead> levels_;
  std::vector<Size> migrations_;  ///< per level k
  Size unreachable_ = 0;
  Size level_churn_ = 0;
  LmDatabase db_;
  std::uint64_t version_counter_ = 0;

  /// Per-tick BFS distance cache, keyed by source.
  std::unordered_map<NodeId, std::vector<std::uint32_t>> dist_cache_;

  // Observability (resolved once in set_metrics; hot path is pointer adds).
  common::MetricsRegistry* metrics_ = nullptr;
  sim::TraceSink* trace_ = nullptr;
  common::Counter* phi_packets_c_ = nullptr;
  common::Counter* gamma_packets_c_ = nullptr;
  common::Counter* phi_entries_c_ = nullptr;
  common::Counter* gamma_entries_c_ = nullptr;
  common::Counter* level_churn_c_ = nullptr;
  common::Counter* unreachable_c_ = nullptr;
  common::RateMeter* entry_moves_rate_ = nullptr;
  common::Histogram* transfer_hops_h_ = nullptr;
  std::vector<common::Counter*> phi_level_c_;    ///< lm.phi_packets.k
  std::vector<common::Counter*> gamma_level_c_;  ///< lm.gamma_packets.k
  std::vector<common::Counter*> migration_level_c_;  ///< lm.migrations.k

  common::Counter* level_counter(std::vector<common::Counter*>& cache, const char* base,
                                 Level k);
  void publish_rates();
};

}  // namespace manet::lm
