#pragma once

#include <string_view>

/// \file log.hpp
/// Minimal leveled logging to stderr. Experiment binaries run quietly by
/// default (level Warn); examples raise the level to Info for narration.

namespace manet::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits "[LEVEL] message\n" to stderr if \p level passes the threshold.
void log(LogLevel level, std::string_view message);

void log_debug(std::string_view message);
void log_info(std::string_view message);
void log_warn(std::string_view message);
void log_error(std::string_view message);

}  // namespace manet::common
