/// ShardExecutor::slice and resolve_shard_count: the decomposition that the
/// bit-identity contract of the sharded tick rests on. slice() must tile
/// [0, n) exactly — concatenating the per-shard slices in shard index order
/// reproduces the canonical sequential order — for EVERY (n, shard_count)
/// pair, including the degenerate ones (empty index space, fewer items than
/// shards, a single shard, and counts that do not divide n).

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hpp"
#include "sim/shard.hpp"

using namespace manet;
using sim::ShardExecutor;

namespace {

/// Concatenate slices in shard order and check the result is [0, n) exactly:
/// contiguous, non-overlapping, nothing dropped.
void expect_exact_tiling(Size n, Size shard_count) {
  std::vector<Size> walked;
  Size prev_end = 0;
  for (Size shard = 0; shard < shard_count; ++shard) {
    const auto [begin, end] = ShardExecutor::slice(n, shard, shard_count);
    EXPECT_LE(begin, end) << "inverted slice at shard " << shard;
    EXPECT_EQ(begin, prev_end)
        << "gap or overlap between shard " << shard - 1 << " and " << shard
        << " (n=" << n << ", shards=" << shard_count << ")";
    for (Size i = begin; i < end; ++i) walked.push_back(i);
    prev_end = end;
  }
  EXPECT_EQ(prev_end, n) << "slices do not cover [0, n)";
  ASSERT_EQ(walked.size(), n);
  for (Size i = 0; i < n; ++i) EXPECT_EQ(walked[i], i);
}

TEST(ShardSlice, EmptyIndexSpaceYieldsAllEmptySlices) {
  for (Size shard = 0; shard < 8; ++shard) {
    const auto [begin, end] = ShardExecutor::slice(0, shard, 8);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 0u);
  }
  expect_exact_tiling(0, 8);
}

TEST(ShardSlice, FewerItemsThanShardsPutsOneItemInEachLeadingShard) {
  // 3 items over 8 shards: shards 0..2 take one item each, 3..7 are empty.
  for (Size shard = 0; shard < 8; ++shard) {
    const auto [begin, end] = ShardExecutor::slice(3, shard, 8);
    if (shard < 3) {
      EXPECT_EQ(begin, shard);
      EXPECT_EQ(end, shard + 1);
    } else {
      EXPECT_EQ(begin, end) << "trailing shard " << shard << " not empty";
    }
  }
  expect_exact_tiling(3, 8);
}

TEST(ShardSlice, SingleShardOwnsEverything) {
  const auto [begin, end] = ShardExecutor::slice(97, 0, 1);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 97u);
  expect_exact_tiling(97, 1);
}

TEST(ShardSlice, RemainderSpreadsOverLeadingShards) {
  // 10 items over 4 shards: 3,3,2,2 — the first n % shards shards take the
  // extra element, never a trailing one.
  const Size sizes_expected[] = {3, 3, 2, 2};
  for (Size shard = 0; shard < 4; ++shard) {
    const auto [begin, end] = ShardExecutor::slice(10, shard, 4);
    EXPECT_EQ(end - begin, sizes_expected[shard]) << "shard " << shard;
  }
  expect_exact_tiling(10, 4);
}

TEST(ShardSlice, ConcatenatedSlicesReproduceCanonicalOrderEverywhere) {
  // The identity contract, swept over awkward (n, shard_count) pairs:
  // non-power-of-two item counts, shard counts above and below n.
  const Size ns[] = {0, 1, 2, 3, 7, 16, 17, 63, 64, 65, 1000};
  const Size shard_counts[] = {1, 2, 3, 4, 5, 7, 8, 16, 64};
  for (const Size n : ns) {
    for (const Size shards : shard_counts) expect_exact_tiling(n, shards);
  }
}

TEST(ResolveShardCount, ExplicitRequestRoundsUpToPowerOfTwo) {
  EXPECT_EQ(sim::resolve_shard_count(1, 8), 1u);
  EXPECT_EQ(sim::resolve_shard_count(2, 8), 2u);
  EXPECT_EQ(sim::resolve_shard_count(3, 8), 4u);
  EXPECT_EQ(sim::resolve_shard_count(5, 8), 8u);
  EXPECT_EQ(sim::resolve_shard_count(16, 8), 16u);
  EXPECT_EQ(sim::resolve_shard_count(17, 8), 32u);
  EXPECT_EQ(sim::resolve_shard_count(1000, 8), 1024u);
}

TEST(ResolveShardCount, ClampsToMaxShardCount) {
  EXPECT_EQ(sim::resolve_shard_count(4096, 8), sim::kMaxShardCount);
  EXPECT_EQ(sim::resolve_shard_count(sim::kMaxShardCount + 1, 1),
            sim::kMaxShardCount);
}

TEST(ResolveShardCount, AutoOversubscribesWorkersWithDefaultFloor) {
  // 0 = auto: max(kDefaultShardCount, 4 * workers), then power-of-two
  // rounding (a no-op here since both operands already are).
  EXPECT_EQ(sim::resolve_shard_count(0, 1), sim::kDefaultShardCount);
  EXPECT_EQ(sim::resolve_shard_count(0, 2), sim::kDefaultShardCount);
  EXPECT_EQ(sim::resolve_shard_count(0, 4), sim::kDefaultShardCount);
  EXPECT_EQ(sim::resolve_shard_count(0, 8), 32u);
  EXPECT_EQ(sim::resolve_shard_count(0, 16), 64u);
}

TEST(ShardExecutor, RuntimeShardCountDrivesForEachShard) {
  common::ThreadPool pool(2);
  sim::ShardExecutor exec(pool, 8);
  EXPECT_EQ(exec.shard_count(), 8u);
  // Every shard index fires exactly once; per-shard buffers indexed by shard
  // are disjoint, so no synchronization is needed.
  std::vector<int> fired(exec.shard_count(), 0);
  exec.for_each_shard([&](Size shard) { fired[shard] += 1; });
  for (Size shard = 0; shard < exec.shard_count(); ++shard) {
    EXPECT_EQ(fired[shard], 1) << "shard " << shard;
  }
}

}  // namespace
