#include "mobility/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"

namespace manet::mobility {

Trace Trace::record(MobilityModel& model, Time duration, Time interval) {
  MANET_CHECK(duration >= 0.0);
  MANET_CHECK(interval > 0.0);
  Trace trace;
  const Time start = model.now();
  for (Time t = start; t <= start + duration + 1e-12; t += interval) {
    model.advance_to(t);
    trace.append(TraceFrame{t, model.positions()});
  }
  return trace;
}

void Trace::append(TraceFrame frame) {
  if (!frames_.empty()) {
    MANET_CHECK_MSG(frame.positions.size() == frames_.front().positions.size(),
                    "inconsistent node count across trace frames");
    MANET_CHECK_MSG(frame.time >= frames_.back().time, "trace frames must be time-ordered");
  }
  frames_.push_back(std::move(frame));
}

void Trace::save(std::ostream& os) const {
  os << "# manet-trace v1\n";
  os << "# frames " << frames_.size() << " nodes " << node_count() << "\n";
  os.precision(12);
  for (const auto& frame : frames_) {
    os << frame.time;
    for (const auto& p : frame.positions) os << ' ' << p.x << ' ' << p.y;
    os << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  Trace trace;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    TraceFrame frame;
    ss >> frame.time;
    double x, y;
    while (ss >> x >> y) frame.positions.push_back({x, y});
    MANET_CHECK_MSG(!frame.positions.empty(), "trace frame with no positions");
    trace.append(std::move(frame));
  }
  return trace;
}

double Trace::mean_step_displacement() const {
  if (frames_.size() < 2 || node_count() == 0) return 0.0;
  double sum = 0.0;
  Size count = 0;
  for (Size f = 1; f < frames_.size(); ++f) {
    for (Size v = 0; v < node_count(); ++v) {
      sum += geom::distance(frames_[f].positions[v], frames_[f - 1].positions[v]);
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

TraceReplay::TraceReplay(Trace trace) : trace_(std::move(trace)) {
  MANET_CHECK_MSG(trace_.frame_count() > 0, "cannot replay an empty trace");
  positions_ = trace_.frames().front().positions;
  now_ = trace_.frames().front().time;
}

void TraceReplay::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  const auto& frames = trace_.frames();
  // Locate the frame interval containing t (linear scan from the front is
  // fine: replays advance monotonically and frames are few).
  Size hi = 0;
  while (hi < frames.size() && frames[hi].time < t) ++hi;
  if (hi == 0) {
    positions_ = frames.front().positions;
  } else if (hi == frames.size()) {
    positions_ = frames.back().positions;  // clamp beyond the last frame
  } else {
    const auto& a = frames[hi - 1];
    const auto& b = frames[hi];
    const double span = b.time - a.time;
    const double frac = span > 0.0 ? (t - a.time) / span : 1.0;
    positions_.resize(a.positions.size());
    for (Size v = 0; v < positions_.size(); ++v) {
      positions_[v] = a.positions[v] + (b.positions[v] - a.positions[v]) * frac;
    }
  }
  now_ = t;
}

}  // namespace manet::mobility
