#include "cluster/state_chain.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace manet::cluster {

double StateOccupancy::fraction(Size s) const {
  if (total_node_time <= 0.0 || s >= time_in_state.size()) return 0.0;
  return time_in_state[s] / total_node_time;
}

StateChainTracker::StateChainTracker(Size max_state) : max_state_(max_state) {
  MANET_CHECK(max_state >= 2);
}

void StateChainTracker::observe(const Hierarchy& h, double dt) {
  MANET_CHECK(dt > 0.0);
  // Levels 0 .. top-1 ran elections (the top level has none).
  const Size elected_levels = h.level_count() > 0 ? h.level_count() - 1 : 0;
  if (occupancy_.size() < elected_levels) {
    occupancy_.resize(elected_levels);
    for (auto& occ : occupancy_) {
      if (occ.time_in_state.empty()) occ.time_in_state.assign(max_state_ + 1, 0.0);
    }
  }
  for (Level k = 0; k < elected_levels; ++k) {
    const auto& votes = h.level(k).election.votes;
    auto& occ = occupancy_[k];
    for (const auto v : votes) {
      const Size s = std::min<Size>(v, max_state_);
      occ.time_in_state[s] += dt;
      occ.total_node_time += dt;
    }
  }
}

const StateOccupancy& StateChainTracker::occupancy(Level k) const {
  MANET_CHECK(k < occupancy_.size());
  return occupancy_[k];
}

std::vector<double> StateChainTracker::p_profile() const {
  std::vector<double> p;
  p.reserve(occupancy_.size());
  for (const auto& occ : occupancy_) p.push_back(occ.p_state1());
  return p;
}

void StateChainTracker::publish(common::MetricsRegistry& registry) const {
  registry.gauge("alca.levels_observed").set(static_cast<double>(occupancy_.size()));
  // Index matches the p_state1.k RunMetrics keys (p_profile() order).
  char name[48];
  for (Level k = 0; k < occupancy_.size(); ++k) {
    std::snprintf(name, sizeof(name), "alca.p_state1.%u", k);
    registry.gauge(name).set(occupancy_[k].p_state1());
  }
}

RecursionProfile recursion_profile(std::span<const double> p_desc) {
  RecursionProfile out;
  const Size m = p_desc.size();  // m = k - 1 chain links
  if (m == 0) return out;
  out.q.resize(m);
  // Eq. (15a): q_j = (1 - p_{k-j-1}) * prod_{i=1..j} p_{k-i} for j < k-1,
  // and q_{k-1} = prod_{i=1..k-1} p_{k-i}. p_desc[i-1] = p_{k-i}.
  double prod = 1.0;
  for (Size j = 1; j <= m; ++j) {
    prod *= p_desc[j - 1];
    if (j < m) {
      out.q[j - 1] = (1.0 - p_desc[j]) * prod;  // p_{k-j-1} == p_desc[j]
    } else {
      out.q[j - 1] = prod;
    }
  }
  for (const double qj : out.q) out.Q += qj;
  if (out.Q > 0.0) out.q1_over_Q = out.q[0] / out.Q;
  const double p_max = *std::max_element(p_desc.begin(), p_desc.end());
  const double denom = p_max * p_max + out.q[0];
  out.lower_bound = denom > 0.0 ? out.q[0] / denom : 0.0;
  return out;
}

}  // namespace manet::cluster
