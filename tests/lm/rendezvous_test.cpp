#include "lm/rendezvous.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace manet::lm {
namespace {

TEST(Rendezvous, Deterministic) {
  const std::vector<NodeId> candidates{3, 7, 11, 19};
  EXPECT_EQ(rendezvous_pick(1, 42, candidates), rendezvous_pick(1, 42, candidates));
}

TEST(Rendezvous, WinnerIsIndependentOfCandidateOrder) {
  std::vector<NodeId> a{3, 7, 11, 19, 23};
  std::vector<NodeId> b{23, 11, 3, 19, 7};
  for (NodeId owner = 0; owner < 50; ++owner) {
    EXPECT_EQ(rendezvous_pick(5, owner, a), rendezvous_pick(5, owner, b));
  }
}

TEST(Rendezvous, MinimalDisruptionOnCandidateRemoval) {
  // The HRW property: removing a non-winning candidate never changes the
  // winner.
  const std::vector<NodeId> full{1, 2, 3, 4, 5, 6, 7, 8};
  for (NodeId owner = 0; owner < 200; ++owner) {
    const NodeId winner = rendezvous_pick(9, owner, full);
    for (const NodeId removed : full) {
      if (removed == winner) continue;
      std::vector<NodeId> reduced;
      for (const NodeId c : full) {
        if (c != removed) reduced.push_back(c);
      }
      EXPECT_EQ(rendezvous_pick(9, owner, reduced), winner);
    }
  }
}

TEST(Rendezvous, LoadIsRoughlyUniform) {
  const std::vector<NodeId> candidates{10, 20, 30, 40, 50};
  std::vector<int> counts(5, 0);
  const int owners = 50000;
  for (NodeId owner = 0; owner < owners; ++owner) {
    const NodeId winner = rendezvous_pick(13, owner, candidates);
    const auto idx = static_cast<Size>(
        std::find(candidates.begin(), candidates.end(), winner) - candidates.begin());
    ++counts[idx];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / owners, 0.2, 0.02);
  }
}

TEST(Rendezvous, SaltChangesAssignment) {
  const std::vector<NodeId> candidates{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  int moved = 0;
  for (NodeId owner = 0; owner < 500; ++owner) {
    if (rendezvous_pick(1, owner, candidates) != rendezvous_pick(2, owner, candidates)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 300);  // ~9/10 expected to move under a re-key
}

TEST(Rendezvous, SingleCandidateAlwaysWins) {
  const std::vector<NodeId> one{77};
  for (NodeId owner = 0; owner < 10; ++owner) {
    EXPECT_EQ(rendezvous_pick(3, owner, one), 77u);
  }
}

TEST(Rendezvous, PickIndexCoversRange) {
  std::vector<int> counts(4, 0);
  for (NodeId owner = 0; owner < 4000; ++owner) {
    ++counts[rendezvous_pick_index(21, owner, 4)];
  }
  for (const int c : counts) EXPECT_GT(c, 700);
}

TEST(Rendezvous, ScoreIsOwnerSensitive) {
  EXPECT_NE(rendezvous_score(1, 10, 5), rendezvous_score(1, 11, 5));
}

// --- Batched kernels: bit-identity against the scalar paths --------------

TEST(RendezvousBatch, MatchesScalarOnRandomizedSets) {
  common::Xoshiro256 rng(0xB47C4);
  RendezvousScratch scratch;
  std::vector<NodeId> candidates, owners, out;
  for (int trial = 0; trial < 64; ++trial) {
    const Size m = 1 + common::uniform_index(rng, 48);
    candidates.clear();
    for (Size j = 0; j < m; ++j) {
      candidates.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
    }
    owners.clear();
    for (Size i = 0; i < 128; ++i) {
      owners.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
    }
    const std::uint64_t salt = rng();
    out.assign(owners.size(), kInvalidNode);
    rendezvous_pick_batch(salt, owners, candidates, out, scratch);
    for (Size i = 0; i < owners.size(); ++i) {
      ASSERT_EQ(out[i], rendezvous_pick(salt, owners[i], candidates))
          << "trial " << trial << " owner index " << i;
    }
  }
}

TEST(RendezvousBatch, WeightedMatchesScalarOnRandomizedSets) {
  common::Xoshiro256 rng(0xB47C5);
  RendezvousScratch scratch;
  std::vector<NodeId> candidates, owners, out;
  std::vector<double> weights;
  for (int trial = 0; trial < 64; ++trial) {
    const Size m = 1 + common::uniform_index(rng, 48);
    candidates.clear();
    weights.clear();
    for (Size j = 0; j < m; ++j) {
      candidates.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
      // Weights in [0.5, 4): the server_select range (level-0 member counts
      // normalized) plus fractional values to exercise the double math.
      weights.push_back(0.5 + 3.5 * static_cast<double>(rng() >> 11) /
                                  9007199254740992.0);
    }
    owners.clear();
    for (Size i = 0; i < 128; ++i) {
      owners.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
    }
    const std::uint64_t salt = rng();
    out.assign(owners.size(), kInvalidNode);
    rendezvous_pick_weighted_batch(salt, owners, candidates, weights, out, scratch);
    for (Size i = 0; i < owners.size(); ++i) {
      ASSERT_EQ(out[i], rendezvous_pick_weighted(salt, owners[i], candidates, weights))
          << "trial " << trial << " owner index " << i;
    }
  }
}

TEST(RendezvousBatch, ScratchReusesAcrossDifferingCandidateCounts) {
  RendezvousScratch scratch;
  const std::vector<NodeId> owners{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<NodeId> out(owners.size());
  for (const Size m : {Size{17}, Size{3}, Size{64}, Size{1}}) {
    std::vector<NodeId> candidates;
    for (Size j = 0; j < m; ++j) candidates.push_back(static_cast<NodeId>(100 + j * 7));
    rendezvous_pick_batch(42, owners, candidates, out, scratch);
    for (Size i = 0; i < owners.size(); ++i) {
      EXPECT_EQ(out[i], rendezvous_pick(42, owners[i], candidates));
    }
  }
}

TEST(RendezvousWeighted, ScalarPickHonorsWeights) {
  // weight w_c wins with probability w_c / sum(w): candidate 2 carries 3/4
  // of the total weight here.
  const std::vector<NodeId> candidates{1, 2};
  const std::vector<double> weights{1.0, 3.0};
  int heavy = 0;
  const int owners = 20000;
  for (NodeId owner = 0; owner < owners; ++owner) {
    if (rendezvous_pick_weighted(99, owner, candidates, weights) == 2) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / owners, 0.75, 0.02);
}

TEST(RendezvousWeighted, EqualWeightsMatchScoreOrdering) {
  // With all weights equal the weighted argmax must agree with the raw
  // rendezvous winner: x -> w / -ln(u(x)) is strictly increasing in the raw
  // score, so the two argmaxes coincide.
  const std::vector<NodeId> candidates{5, 9, 14, 77, 120};
  const std::vector<double> weights(candidates.size(), 1.0);
  for (NodeId owner = 0; owner < 300; ++owner) {
    EXPECT_EQ(rendezvous_pick_weighted(7, owner, candidates, weights),
              rendezvous_pick(7, owner, candidates));
  }
}

}  // namespace
}  // namespace manet::lm
