#include "graph/graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::graph {

Graph::Graph(Size n) : offsets_(n + 1, 0) {}

Graph::Graph(Size n, std::span<const Edge> edges) { assign(n, edges); }

void Graph::assign(Size n, std::span<const Edge> edges) {
  edges_.assign(edges.begin(), edges.end());
  std::sort(edges_.begin(), edges_.end());
  for (const auto& [u, v] : edges_) {
    MANET_CHECK_MSG(u < v, "edges must be canonical (u < v), no self loops");
    MANET_CHECK_MSG(v < n, "edge endpoint out of range");
  }
  MANET_CHECK_MSG(std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
                  "duplicate edge in edge list");

  // Two-pass CSR build: count degrees, prefix-sum, scatter.
  offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (Size i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  // Neighbor lists come out sorted because the edge list is sorted by (u, v)
  // for the u side; the v side needs an explicit sort.
  for (Size vtx = 0; vtx < n; ++vtx) {
    std::sort(adjacency_.begin() + offsets_[vtx], adjacency_.begin() + offsets_[vtx + 1]);
  }
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  MANET_CHECK(v < vertex_count());
  return {adjacency_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

Size Graph::degree(NodeId v) const { return neighbors(v).size(); }

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::average_degree() const noexcept {
  const Size n = vertex_count();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / static_cast<double>(n);
}

Subgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep) {
  MANET_CHECK(keep.size() == g.vertex_count());
  Subgraph out;
  out.to_new.assign(g.vertex_count(), kInvalidNode);
  for (NodeId v = 0; v < g.vertex_count(); ++v) {
    if (keep[v]) {
      out.to_new[v] = static_cast<NodeId>(out.to_original.size());
      out.to_original.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (const auto& [u, v] : g.edges()) {
    if (keep[u] && keep[v]) edges.emplace_back(out.to_new[u], out.to_new[v]);
  }
  out.graph = Graph(out.to_original.size(), edges);
  return out;
}

}  // namespace manet::graph
