/// E4-E6: link and membership dynamics under random waypoint (paper eqs.
/// (4), (8)-(9), (14)):
///   f0       — level-0 link events per node per second, flat in |V|;
///   f_k      — level-k membership change rate, decaying like 1/h_k;
///   g'_k     — level-k link events per level-k link per second, O(1/h_k).

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E4-E6  bench_link_dynamics — mobility-driven event frequencies",
      "f0 = Theta(1) [eq. 4]; f_k = Theta(1/h_k) [eq. 9]; g'_k = O(1/h_k) [eq. 14]");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_states = false;
  opts.measure_hops = true;
  opts.hop_sample_pairs = 64;

  exp::Campaign campaign;
  bench::Artifact artifact("link_dynamics", cfg, bench::standard_replications());

  analysis::TextTable f0_table({"|V|", "f0 (events/node/s)", "f0 ci95"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    const auto s = point.metrics.summary("f0");
    f0_table.add_row({std::to_string(n), bench::fixed(s.mean), bench::fixed(s.ci95, 2)});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", f0_table.to_string("E4: f0 vs |V| (paper: flat)").c_str());
  bench::print_model_selection("f0", campaign, "f0");
  artifact.add_campaign(campaign, "f0");

  for (const auto& point : campaign.points) {
    std::printf("\n|V| = %zu\n", point.n);
    analysis::TextTable table({"level", "f_k", "f_k*h_k", "g'_k", "g'_k*h_k", "h_k"});
    for (Level k = 1; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "f_k.%u", k);
      if (!point.metrics.has(key)) break;
      artifact.add_point(key, static_cast<double>(point.n), point.metrics, key);
      const double fk = point.metrics.mean(key);
      std::snprintf(key, sizeof(key), "gprime_k.%u", k);
      const double gk = point.metrics.has(key) ? point.metrics.mean(key) : 0.0;
      std::snprintf(key, sizeof(key), "h_k.%u", k);
      const double hk = point.metrics.has(key) ? point.metrics.mean(key) : 0.0;
      table.add_row({std::to_string(k), bench::fixed(fk), bench::fixed(fk * hk, 3),
                     bench::fixed(gk), bench::fixed(gk * hk, 3), bench::fixed(hk, 3)});
    }
    std::printf("%s",
                table.to_string("E5/E6: per-level event frequencies").c_str());
  }

  std::printf(
      "\nreading: the paper's cancellations require f_k*h_k and g'_k*h_k to\n"
      "be roughly level-invariant (each equals Theta(f0) resp. Theta(1)).\n");
  artifact.write();
  return 0;
}
