#include "lm/chlm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct Fixture {
  std::vector<geom::Vec2> pts;
  graph::Graph g{0};
  cluster::Hierarchy h;
};

Fixture make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  Fixture f;
  f.pts.resize(n);
  for (auto& p : f.pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  f.g = builder.build(f.pts);
  f.h = cluster::HierarchyBuilder().build(f.g);
  return f;
}

TEST(Chlm, RebuildPopulatesAllServedLevels) {
  const auto f = make(300, 1);
  ChlmService service;
  service.rebuild(f.h);
  ASSERT_GE(service.top_level(), 2u);
  const Size expected = f.g.vertex_count() * service.served_levels();
  EXPECT_EQ(service.database().total_entries(), expected);
}

TEST(Chlm, ServerOfMatchesDatabaseContents) {
  const auto f = make(250, 2);
  ChlmService service;
  service.rebuild(f.h, 7.0);
  for (NodeId owner = 0; owner < f.g.vertex_count(); owner += 5) {
    for (Level k = kFirstServedLevel; k <= service.top_level(); ++k) {
      const NodeId server = service.server_of(owner, k);
      ASSERT_NE(server, kInvalidNode);
      const auto* rec = service.database().find(server, owner, k);
      ASSERT_NE(rec, nullptr);
      EXPECT_DOUBLE_EQ(rec->updated, 7.0);
    }
  }
}

TEST(Chlm, OutOfRangeLevelsReturnInvalid) {
  const auto f = make(200, 3);
  ChlmService service;
  service.rebuild(f.h);
  EXPECT_EQ(service.server_of(0, 0), kInvalidNode);
  EXPECT_EQ(service.server_of(0, 1), kInvalidNode);
  EXPECT_EQ(service.server_of(0, service.top_level() + 1), kInvalidNode);
}

TEST(Chlm, EntriesPerNodeIsLogarithmic) {
  // Paper Section 3.2: each node serves Theta(log|V|) peers on average.
  const auto small = make(200, 4);
  ChlmService s1;
  s1.rebuild(small.h);
  const double e_small = static_cast<double>(s1.database().total_entries()) / 200.0;

  const auto large = make(1600, 5);
  ChlmService s2;
  s2.rebuild(large.h);
  const double e_large = static_cast<double>(s2.database().total_entries()) / 1600.0;

  EXPECT_GT(e_large, e_small);          // grows with n ...
  EXPECT_LT(e_large, e_small * 3.0);    // ... but far slower than 8x
  EXPECT_LT(e_large, 15.0);             // absolute sanity: ~L-1 entries
}

TEST(Chlm, QueryCostZeroForSelf) {
  const auto f = make(150, 6);
  ChlmService service;
  service.rebuild(f.h);
  EXPECT_EQ(service.query_cost(f.h, f.g, 3, 3), 0u);
}

TEST(Chlm, QueryCostBoundedByNetworkScale) {
  const auto f = make(300, 7);
  ChlmService service;
  service.rebuild(f.h);
  graph::BfsScratch bfs;
  common::Xoshiro256 rng(8);
  double total_query = 0.0, total_direct = 0.0;
  int samples = 0;
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(common::uniform_index(rng, 300));
    const auto v = static_cast<NodeId>(common::uniform_index(rng, 300));
    if (u == v) continue;
    const auto cost = service.query_cost(f.h, f.g, u, v);
    bfs.run(f.g, u);
    const auto direct = bfs.hops_to(v);
    ASSERT_NE(direct, graph::kUnreachable);
    total_query += static_cast<double>(cost);
    total_direct += direct;
    EXPECT_GE(cost + 2, static_cast<PacketCount>(0));
    ++samples;
  }
  ASSERT_GT(samples, 30);
  // The paper argues query cost is the same order as the direct hop count;
  // allow a generous constant factor.
  EXPECT_LT(total_query, 6.0 * total_direct + 10.0 * samples);
}

TEST(Chlm, RebuildIsIdempotent) {
  const auto f = make(200, 9);
  ChlmService a, b;
  a.rebuild(f.h);
  b.rebuild(f.h);
  for (NodeId owner = 0; owner < 200; owner += 7) {
    for (Level k = kFirstServedLevel; k <= a.top_level(); ++k) {
      EXPECT_EQ(a.server_of(owner, k), b.server_of(owner, k));
    }
  }
}

TEST(Chlm, ServedLevelsZeroForFlatHierarchy) {
  // A 2-node network aggregates in one level: no level-2 servers exist.
  const graph::Graph g(2, std::vector<graph::Edge>{{0, 1}});
  const auto h = cluster::HierarchyBuilder().build(g);
  ChlmService service;
  service.rebuild(h);
  EXPECT_EQ(service.served_levels(), 0u);
  EXPECT_EQ(service.database().total_entries(), 0u);
}

}  // namespace
}  // namespace manet::lm
