#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// Fixed-width ASCII tables — the output format of every bench binary. Each
/// reproduced table from EXPERIMENTS.md is printed through this class so
/// rows stay machine-greppable (single header line, aligned columns).

namespace manet::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.5g.
  void add_row_values(const std::vector<double>& values);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a title line, aligned columns and a rule under the header.
  std::string to_string(const std::string& title = {}) const;

  /// Format helper used across benches.
  static std::string fmt(double value, int precision = 5);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manet::analysis
