#include "net/radio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace manet::net {
namespace {

TEST(Radio, ConnectivityRadiusGrowsWithLogN) {
  const double r100 = connectivity_radius(100, 1.0);
  const double r10000 = connectivity_radius(10000, 1.0);
  EXPECT_GT(r10000, r100);
  // Quadrupling log n doubles the radius: r(n^2)/r(n) -> sqrt(2) as margin
  // becomes negligible.
  EXPECT_NEAR(r10000 / r100, std::sqrt((std::log(10000.0) + 1) / (std::log(100.0) + 1)),
              1e-9);
}

TEST(Radio, ConnectivityRadiusScalesWithDensity) {
  // Double density => radius shrinks by sqrt(2).
  EXPECT_NEAR(connectivity_radius(500, 1.0) / connectivity_radius(500, 2.0), std::sqrt(2.0),
              1e-9);
}

TEST(Radio, MeanDegreeRadiusFormula) {
  // Expected neighbors in a disk of radius R at density rho: rho*pi*R^2 - 1.
  const double rho = 1.7;
  const double d = 9.0;
  const double r = radius_for_mean_degree(d, rho);
  EXPECT_NEAR(rho * std::numbers::pi * r * r - 1.0, d, 1e-9);
}

TEST(Radio, MarginIncreasesRadius) {
  EXPECT_GT(connectivity_radius(256, 1.0, 4.0), connectivity_radius(256, 1.0, 1.0));
}

}  // namespace
}  // namespace manet::net
