#pragma once

#include <span>

/// \file regression.hpp
/// Ordinary least squares for the scaling fits: y = a + b x, the
/// through-origin variant y = b x, and log-log power-law exponent
/// estimation (used to classify measured growth orders).

namespace manet::analysis {

struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
  double rss = 0.0;        ///< residual sum of squares
};

/// Least-squares y = a + b x. Requires xs.size() == ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Least-squares through the origin: y = b x. R^2 is computed against the
/// mean-model baseline (can be negative when the origin constraint is bad).
LinearFit fit_proportional(std::span<const double> xs, std::span<const double> ys);

/// Power-law exponent: fits log y = a + e log x; returns e (slope) with the
/// log-space R^2. Requires strictly positive data.
LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

}  // namespace manet::analysis
