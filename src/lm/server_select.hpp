#pragma once

#include <cstdint>
#include <vector>

#include "cluster/hierarchy.hpp"

/// \file server_select.hpp
/// CHLM location-server selection (paper Section 3.2).
///
/// For owner v and hierarchy level k >= 2, the level-k LM server of v is one
/// level-0 node of v's level-k cluster, chosen by a deterministic function of
/// v's id and the cluster — so any node can recompute it with no
/// coordination. Level 1 needs no server (complete topology is known within
/// a level-1 cluster).
///
/// The paper states the requirements (unambiguous selection, equitable load)
/// and explicitly leaves the function open. Three strategies are provided:
/// the default applies the successor-ID rule over the cluster's flat member
/// set — stable under clusterhead renames and perfectly load-balanced (it is
/// a cyclic permutation within each cluster) — while the two hash-chain
/// descent variants reproduce the paper's worked example (node 63: a hash
/// picks level-1 cluster 59 inside 63's level-2 cluster, then node 33 inside
/// cluster 59) and exist as ablations: keying on mutable head ids makes them
/// cascade on renames (see DESIGN.md §6.4 and EXPERIMENTS.md E13).

namespace manet::lm {

/// Server-selection strategy. The paper prescribes the *goals* (unambiguous
/// selection, equitable load) but explicitly leaves the function open; the
/// strategies below trade load equity against assignment stability, and the
/// clustering-ablation bench measures the difference.
enum class SelectStrategy {
  /// Successor-ID rule over the *flat level-0 member set* of the owner's
  /// level-k cluster (consistent hashing). Stable: head renames move
  /// nothing; membership churn moves only the affected id arcs — the
  /// locality the paper's handoff accounting assumes (each reorganization
  /// event moves only the implicated cluster's Theta(log n) entries).
  /// Default.
  kFlatSuccessor,
  /// Hash-chain descent through the cluster tree (the paper's worked
  /// example), with subtree-size-weighted rendezvous at each step. Load is
  /// near-uniform, but selections key on mutable clusterhead ids, so head
  /// renames cascade reassignments through every higher level — measurably
  /// super-polylog handoff (see EXPERIMENTS.md).
  kWeightedDescent,
  /// Descent with unweighted rendezvous (uniform over child clusters);
  /// both unstable under renames and load-skewed toward small clusters.
  kUnweightedDescent,
};

const char* to_string(SelectStrategy strategy);

struct ServerSelectConfig {
  SelectStrategy strategy = SelectStrategy::kFlatSuccessor;

  /// Base salt; vary to re-key the whole server mapping (epoch changes).
  std::uint64_t salt = 0x53554345435F4C4DULL;  // "SUCEC_LM"

  /// When true, the descent at each step excludes the child the owner itself
  /// belongs to, provided another child exists. This reproduces GLS's
  /// "server sits in a *sibling* region" flavor and spreads v's servers
  /// across the cluster; when false the hash ranges over all children.
  bool exclude_own_branch = false;

};

/// Level-k LM server (a dense level-0 vertex) for \p owner, selected inside
/// the owner's own level-k cluster. Requires 2 <= k <= h.top_level().
/// Deterministic given (hierarchy, config).
NodeId select_server(const cluster::Hierarchy& h, NodeId owner, Level k,
                     const ServerSelectConfig& config = {});

/// Same descent, but rooted at an explicit level-k cluster \p cluster
/// (dense index at level k) instead of the owner's own. This is what a
/// *requester* computes during a query: "where would the target's level-k
/// server be if the target lived in my level-k cluster?" — the probe chain
/// of GLS-style lookup.
NodeId select_server_in(const cluster::Hierarchy& h, NodeId cluster, Level k, NodeId owner,
                        const ServerSelectConfig& config = {});

/// First level that carries an explicit LM server (levels below it rely on
/// intra-cluster topology knowledge, per the paper).
inline constexpr Level kFirstServedLevel = 2;

/// Bulk assignment: servers for every (owner, level in [2, top]) at once.
/// Result[owner][k - 2] equals select_server(h, owner, k, config) exactly,
/// but the flat-successor strategy is computed per cluster with one sort —
/// O(n log n) per level instead of O(n * cluster size) — which is the hot
/// path of every handoff tick.
std::vector<std::vector<NodeId>> select_all_servers(const cluster::Hierarchy& h,
                                                    const ServerSelectConfig& config = {});

/// Flat bulk assignment for per-tick callers: fills \p out with
/// out[owner * width + (k - kFirstServedLevel)], width = number of served
/// levels (top - 1 when top >= 2, else 0), and returns width. Reuses \p out's
/// capacity, so a caller that keeps its buffer across ticks allocates nothing
/// at steady state. Values match select_all_servers exactly.
Size select_all_servers_into(const cluster::Hierarchy& h, const ServerSelectConfig& config,
                             std::vector<NodeId>& out);

}  // namespace manet::lm
