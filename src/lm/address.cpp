#include "lm/address.hpp"

#include "common/check.hpp"

namespace manet::lm {

HierAddress make_address(const cluster::Hierarchy& h, NodeId v) {
  return HierAddress{h.address(v)};
}

std::string to_string(const HierAddress& addr) {
  std::string out;
  for (Size i = 0; i < addr.chain.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(addr.chain[i]);
  }
  return out;
}

Level lowest_common_level(const cluster::Hierarchy& h, NodeId u, NodeId v) {
  // Walk down from the top; the first level where the ancestors differ means
  // the previous level held the smallest shared cluster.
  for (Level k = h.top_level();; --k) {
    if (h.ancestor(u, k) != h.ancestor(v, k)) return k + 1;
    if (k == 0) return 0;  // u == v
  }
}

Size hierarchical_map_size(const cluster::Hierarchy& h, NodeId v) {
  // The node stores, for each level k = 1..top, the membership of its level-k
  // cluster (its level-(k-1) siblings).
  Size total = 0;
  for (Level k = 1; k <= h.top_level(); ++k) {
    total += h.children(k, h.ancestor(v, k)).size();
  }
  return total;
}

}  // namespace manet::lm
