#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/diff.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "cluster/maxmin.hpp"
#include "common/rng.hpp"
#include "graph/components.hpp"
#include "lm/server_select.hpp"

/// Randomized structural fuzzing: many small random graphs (Erdos-Renyi and
/// unit-disk-free, i.e. no geometric structure at all) pushed through the
/// clustering, LM and diff machinery, asserting the invariants that every
/// downstream measurement silently relies on. Seeds are the parameter so a
/// failure names its reproducer.

namespace manet {
namespace {

graph::Graph random_graph(Size n, double edge_prob, common::Xoshiro256& rng) {
  std::vector<graph::Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (common::uniform01(rng) < edge_prob) edges.push_back({u, v});
    }
  }
  return graph::Graph(n, edges);
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, HierarchyInvariantsOnArbitraryGraphs) {
  common::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    const Size n = 2 + common::uniform_index(rng, 120);
    const double p = common::uniform(rng, 0.01, 0.5);
    const auto g = random_graph(n, p, rng);

    // Random unique ids.
    std::vector<NodeId> ids(n);
    for (NodeId v = 0; v < n; ++v) ids[v] = v;
    common::shuffle(rng, ids.data(), ids.size());

    const auto h = cluster::HierarchyBuilder().build(g, ids);

    // Partition + ancestor consistency at every level.
    for (Level k = 0; k <= h.top_level(); ++k) {
      Size total = 0;
      for (NodeId c = 0; c < h.cluster_count(k); ++c) {
        const auto& members = h.members0(k, c);
        total += members.size();
        for (const NodeId v : members) {
          ASSERT_EQ(h.ancestor(v, k), c) << "seed " << GetParam() << " trial " << trial;
        }
      }
      ASSERT_EQ(total, n);
    }

    // Level-1 heads dominate their members (ALCA 1-hop property) when the
    // member is not the head itself.
    if (h.top_level() >= 1) {
      for (NodeId v = 0; v < n; ++v) {
        const auto& view = h.level(1);
        const NodeId c = h.ancestor(v, 1);
        const NodeId head0 = view.node0[c];
        ASSERT_TRUE(head0 == v || g.has_edge(v, head0))
            << "member beyond 1 hop of its level-1 head";
      }
    }

    // Server selection stays inside the owner's cluster for every strategy.
    for (const auto strategy :
         {lm::SelectStrategy::kFlatSuccessor, lm::SelectStrategy::kWeightedDescent}) {
      lm::ServerSelectConfig cfg;
      cfg.strategy = strategy;
      for (Level k = lm::kFirstServedLevel; k <= h.top_level(); ++k) {
        for (NodeId v = 0; v < n; v += 3) {
          const NodeId server = lm::select_server(h, v, k, cfg);
          ASSERT_EQ(h.ancestor(server, k), h.ancestor(v, k));
        }
      }
    }
  }
}

TEST_P(FuzzSeed, DiffIsConsistentUnderRandomPerturbation) {
  common::Xoshiro256 rng(GetParam() ^ 0xD1FF);
  for (int trial = 0; trial < 8; ++trial) {
    const Size n = 10 + common::uniform_index(rng, 80);
    auto g1 = random_graph(n, 0.15, rng);
    auto g2 = random_graph(n, 0.15, rng);  // independent → heavy delta
    const auto h1 = cluster::HierarchyBuilder().build(g1);
    const auto h2 = cluster::HierarchyBuilder().build(g2);
    const auto delta = cluster::diff_hierarchies(h1, h2);

    // Gained/lost head sets are disjoint per level.
    for (Level k = 1; k < delta.heads_gained.size(); ++k) {
      std::vector<NodeId> overlap;
      std::set_intersection(delta.heads_gained[k].begin(), delta.heads_gained[k].end(),
                            delta.heads_lost[k].begin(), delta.heads_lost[k].end(),
                            std::back_inserter(overlap));
      ASSERT_TRUE(overlap.empty());
    }
    // Every migration references real heads of the respective snapshots.
    for (const auto& m : delta.migrations) {
      ASSERT_NE(m.from_head, m.to_head);
      ASSERT_LT(m.node, n);
    }
    // Event counts match the event list (already covered for unit-disk
    // graphs; re-assert on arbitrary topologies).
    Size listed = 0;
    for (const auto& counts : delta.event_counts) {
      for (const Size c : counts) listed += c;
    }
    ASSERT_EQ(listed, delta.events.size());
  }
}

TEST_P(FuzzSeed, MaxMinPartitionsArbitraryGraphs) {
  common::Xoshiro256 rng(GetParam() ^ 0x33AA);
  for (int trial = 0; trial < 8; ++trial) {
    const Size n = 2 + common::uniform_index(rng, 100);
    const auto g = random_graph(n, common::uniform(rng, 0.02, 0.4), rng);
    std::vector<NodeId> ids(n);
    for (NodeId v = 0; v < n; ++v) ids[v] = v;
    const auto result = cluster::MaxMinDCluster(2).elect(g, ids);
    ASSERT_FALSE(result.clusterheads.empty());
    for (NodeId v = 0; v < n; ++v) {
      const NodeId head = result.head_of[v];
      ASSERT_LT(head, n);
      ASSERT_EQ(result.head_of[head], head);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Values(11, 23, 37, 59, 71));

}  // namespace
}  // namespace manet
