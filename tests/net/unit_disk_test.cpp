#include "net/unit_disk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "geom/region.hpp"
#include "graph/components.hpp"
#include "sim/shard.hpp"

namespace manet::net {
namespace {

TEST(UnitDisk, PairsWithinRadiusAreLinked) {
  const std::vector<geom::Vec2> pts{{0, 0}, {0.9, 0}, {2.0, 0}};
  const auto g = build_unit_disk_graph(pts, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(UnitDisk, ExactBoundaryIsLinked) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1.0, 0}};
  const auto g = build_unit_disk_graph(pts, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(UnitDisk, MatchesBruteForceOnRandomDeployment) {
  common::Xoshiro256 rng(7);
  const geom::DiskRegion disk({0, 0}, 12.0);
  std::vector<geom::Vec2> pts(400);
  for (auto& p : pts) p = disk.sample(rng);
  const double radius = 1.4;
  const auto g = build_unit_disk_graph(pts, radius);
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v = u + 1; v < pts.size(); ++v) {
      EXPECT_EQ(g.has_edge(u, v), geom::distance2(pts[u], pts[v]) <= radius * radius)
          << u << "," << v;
    }
  }
}

TEST(UnitDisk, BuilderReusableAcrossSnapshots) {
  UnitDiskBuilder builder(1.0);
  const auto g1 = builder.build({{0, 0}, {0.5, 0}});
  EXPECT_EQ(g1.edge_count(), 1u);
  const auto g2 = builder.build({{0, 0}, {5.0, 0}});
  EXPECT_EQ(g2.edge_count(), 0u);
}

TEST(UnitDisk, AugmentationConnectsFragments) {
  // Three well-separated pairs: 3 components, the giant has 2 nodes.
  const std::vector<geom::Vec2> pts{{0, 0}, {0.5, 0}, {10, 0}, {10.5, 0}, {20, 0}};
  UnitDiskBuilder plain(1.0, /*ensure_connected=*/false);
  EXPECT_FALSE(graph::is_connected(plain.build(pts)));

  UnitDiskBuilder bridged(1.0, /*ensure_connected=*/true);
  const auto g = bridged.build(pts);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(bridged.last_augmented_edges(), 2u);  // two minor components
}

TEST(UnitDisk, AugmentationBridgesViaClosestPair) {
  // Component {3} is closest to node 2 of the giant {0,1,2}.
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {2, 0}, {4, 0}};
  UnitDiskBuilder bridged(1.0, true);
  const auto g = bridged.build(pts);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(UnitDisk, NoAugmentationWhenAlreadyConnected) {
  UnitDiskBuilder bridged(1.0, true);
  const auto g = bridged.build({{0, 0}, {0.5, 0}, {1.0, 0}});
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(bridged.last_augmented_edges(), 0u);
}

TEST(UnitDiskIncremental, UpdateMatchesBuildUnderRandomMotion) {
  // The incremental maintenance contract: at every tick, update() must yield
  // the exact edge set a full build() over the same positions produces —
  // including augmentation bridges — and the reported ups/downs must be the
  // exact raw-edge delta. Motion mixes small jiggles (point-update path),
  // frozen subsets (empty-delta path) and bulk moves (full-rescan fallback).
  common::Xoshiro256 rng(41);
  const geom::DiskRegion region({0, 0}, 8.0);
  const double radius = 1.3;
  std::vector<geom::Vec2> pts(160);
  for (auto& p : pts) p = region.sample(rng);

  for (const bool bridged : {false, true}) {
    UnitDiskBuilder reference(radius, bridged);
    UnitDiskBuilder incremental(radius, bridged);
    std::vector<graph::Edge> prev_raw;
    for (int step = 0; step < 40; ++step) {
      if (step > 0) {
        const double frac = step % 7 == 0 ? 0.6 : (step % 3 == 0 ? 0.0 : 0.15);
        for (auto& p : pts) {
          if (common::uniform01(rng) >= frac) continue;
          p.x += common::uniform(rng, -0.4, 0.4);
          p.y += common::uniform(rng, -0.4, 0.4);
        }
      }
      const auto expected = reference.build(pts);
      const auto& got = incremental.update(pts);
      ASSERT_EQ(expected.edge_count(), got.edge_count()) << "step " << step;
      ASSERT_TRUE(std::equal(expected.edges().begin(), expected.edges().end(),
                             got.edges().begin()))
          << "bridged=" << bridged << " step " << step;
      EXPECT_EQ(reference.last_augmented_edges(), incremental.last_augmented_edges());

      // Replay the reported delta over the previous raw edge set.
      if (step > 0) {
        std::vector<graph::Edge> replayed = prev_raw;
        for (const auto& e : incremental.links_down()) {
          const auto it = std::find(replayed.begin(), replayed.end(), e);
          ASSERT_TRUE(it != replayed.end()) << "down edge never existed";
          replayed.erase(it);
        }
        for (const auto& e : incremental.links_up()) {
          ASSERT_TRUE(std::find(replayed.begin(), replayed.end(), e) == replayed.end())
              << "up edge already present";
          replayed.push_back(e);
        }
        std::sort(replayed.begin(), replayed.end());
        UnitDiskBuilder raw_ref(radius, /*ensure_connected=*/false);
        const auto raw_now = raw_ref.build(pts);
        ASSERT_EQ(replayed.size(), raw_now.edges().size()) << "step " << step;
        EXPECT_TRUE(std::equal(replayed.begin(), replayed.end(), raw_now.edges().begin()));
        prev_raw = replayed;
      } else {
        UnitDiskBuilder raw_ref(radius, /*ensure_connected=*/false);
        const auto raw_now = raw_ref.build(pts);
        prev_raw.assign(raw_now.edges().begin(), raw_now.edges().end());
      }
    }
  }
}

TEST(UnitDiskIncremental, UnmovedTickReportsNoChange) {
  common::Xoshiro256 rng(5);
  const geom::DiskRegion region({0, 0}, 5.0);
  std::vector<geom::Vec2> pts(60);
  for (auto& p : pts) p = region.sample(rng);

  UnitDiskBuilder builder(1.2);
  (void)builder.update(pts);
  EXPECT_TRUE(builder.changed());  // the seeding update counts as new topology

  const auto& g = builder.update(pts);
  EXPECT_FALSE(builder.changed());
  EXPECT_EQ(builder.last_moved_nodes(), 0u);
  EXPECT_TRUE(builder.links_up().empty());
  EXPECT_TRUE(builder.links_down().empty());
  EXPECT_EQ(g.edge_count(), builder.graph().edge_count());
}

TEST(UnitDiskIncremental, BuildInvalidatesIncrementalState) {
  UnitDiskBuilder builder(1.0);
  (void)builder.update({{0, 0}, {0.5, 0}});
  (void)builder.build({{0, 0}, {5.0, 0}});  // stateless detour
  const auto& g = builder.update({{0, 0}, {0.5, 0}});
  EXPECT_TRUE(builder.changed());  // re-seeded, treated as new
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(UnitDiskIncremental, BridgeMotionAloneReportsChange) {
  // Two 2-node components; the raw edge set never changes, but swapping the
  // positions inside the far component flips which node is the closest-pair
  // bridge endpoint. The augmented graph changed, and changed() must say so
  // even with an empty raw delta.
  std::vector<geom::Vec2> pts{{0, 0}, {0.5, 0}, {10.0, 0}, {10.5, 0}};
  UnitDiskBuilder builder(1.0, /*ensure_connected=*/true);
  const auto& g1 = builder.update(pts);
  EXPECT_TRUE(g1.has_edge(1, 2));
  EXPECT_EQ(builder.last_augmented_edges(), 1u);

  pts[2] = {10.5, 0};
  pts[3] = {10.0, 0};
  const auto& g2 = builder.update(pts);
  EXPECT_TRUE(builder.changed());
  EXPECT_TRUE(builder.links_up().empty());
  EXPECT_TRUE(builder.links_down().empty());
  EXPECT_TRUE(g2.has_edge(1, 3));
  EXPECT_FALSE(g2.has_edge(1, 2));
  EXPECT_EQ(builder.last_augmented_edges(), 1u);
}

TEST(UnitDiskIncremental, LargeDriftTriggersExactFallback) {
  // Move well over a quarter of the nodes far enough to rewire everything:
  // the internal full-rescan fallback must still report the exact delta.
  common::Xoshiro256 rng(9);
  const geom::DiskRegion region({0, 0}, 6.0);
  std::vector<geom::Vec2> pts(80);
  for (auto& p : pts) p = region.sample(rng);

  UnitDiskBuilder builder(1.4);
  const auto& g1 = builder.update(pts);
  std::vector<graph::Edge> before(g1.edges().begin(), g1.edges().end());

  for (auto& p : pts) p = region.sample(rng);  // every node teleports
  const auto& g2 = builder.update(pts);
  EXPECT_EQ(builder.last_moved_nodes(), pts.size());

  std::vector<graph::Edge> after(g2.edges().begin(), g2.edges().end());
  std::vector<graph::Edge> ups, downs;
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(ups));
  std::set_difference(before.begin(), before.end(), after.begin(), after.end(),
                      std::back_inserter(downs));
  EXPECT_EQ(builder.links_up(), ups);
  EXPECT_EQ(builder.links_down(), downs);
}

TEST(UnitDisk, ConnectivityRadiusYieldsConnectedDeployments) {
  // Statistical check of the Gupta-Kumar rule: the connection probability
  // must increase toward 1 as the margin grows. Finite-n (300) disks fall
  // short of the asymptotic e^{-e^{-c}}, so the absolute thresholds are
  // deliberately forgiving while the monotonicity check is strict.
  common::Xoshiro256 rng(11);
  const int trials = 20;
  const Size n = 300;
  const double density = 1.0;
  const auto disk = geom::DiskRegion::with_density(n, density);

  auto connected_count = [&](double margin) {
    int connected = 0;
    const double radius = connectivity_radius(n, density, margin);
    for (int t = 0; t < trials; ++t) {
      std::vector<geom::Vec2> pts(n);
      for (auto& p : pts) p = disk.sample(rng);
      if (graph::is_connected(build_unit_disk_graph(pts, radius))) ++connected;
    }
    return connected;
  };

  const int at_low = connected_count(1.0);
  const int at_high = connected_count(6.0);
  EXPECT_GE(at_high, 17);
  EXPECT_GE(at_high, at_low);
}

/// Move exactly \p k of the \p n nodes by a tiny jiggle and report whether
/// the update took the full-rescan fallback. The builder is freshly seeded
/// each call so the move count is the only variable.
bool rescanned_after_moving(Size n, Size k) {
  common::Xoshiro256 rng(17);
  const geom::DiskRegion region({0, 0}, 4.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = region.sample(rng);
  UnitDiskBuilder builder(1.2);
  (void)builder.update(pts);
  EXPECT_TRUE(builder.last_full_rescan()) << "seeding update is a full rescan";
  for (Size i = 0; i < k; ++i) pts[i].x += 0.01;
  (void)builder.update(pts);
  EXPECT_EQ(builder.last_moved_nodes(), k);
  return builder.last_full_rescan();
}

TEST(UnitDiskIncremental, RescanThresholdBoundaryIsExact) {
  // The fallback condition is "strictly more than a quarter moved", tested
  // as 4 * moved > n with no integer-division truncation. Exactly n/4 moved
  // must stay on the point-update path; one more must rescan.
  EXPECT_FALSE(rescanned_after_moving(8, 2));   // 4*2 = 8, not > 8
  EXPECT_TRUE(rescanned_after_moving(8, 3));    // 12 > 8
  EXPECT_FALSE(rescanned_after_moving(100, 25));
  EXPECT_TRUE(rescanned_after_moving(100, 26));
}

TEST(UnitDiskIncremental, RescanThresholdSmallOddCounts) {
  // Small odd n is where a floor(n/4) comparison would misclassify: for
  // n in 5..7, floor(n/4) = 1, and moving exactly 1 node must point-update
  // while moving 2 (> n/4 exactly, not > floor) must rescan.
  for (const Size n : {Size{5}, Size{6}, Size{7}}) {
    EXPECT_FALSE(rescanned_after_moving(n, 1)) << "n=" << n;
    EXPECT_TRUE(rescanned_after_moving(n, 2)) << "n=" << n;
  }
}

TEST(UnitDiskIncremental, ParallelUpdateMatchesSequential) {
  // The sharded update paths (full-reset pair enumeration, phase-2 moved
  // recomputation, sharded edge diffs) must yield byte-identical graphs and
  // deltas to the sequential builder under every motion regime: jiggles
  // (point-update path), frozen ticks (empty delta) and bulk drift (the
  // full-rescan fallback).
  common::ThreadPool pool(4);
  sim::ShardExecutor exec(pool, sim::kDefaultShardCount);

  common::Xoshiro256 rng(73);
  const geom::DiskRegion region({0, 0}, 7.0);
  const double radius = 1.3;
  std::vector<geom::Vec2> pts(150);
  for (auto& p : pts) p = region.sample(rng);

  UnitDiskBuilder sequential(radius);
  UnitDiskBuilder parallel(radius);
  parallel.set_parallel(&exec);

  for (int step = 0; step < 30; ++step) {
    if (step > 0) {
      const double frac = step % 7 == 0 ? 0.7 : (step % 3 == 0 ? 0.0 : 0.1);
      for (auto& p : pts) {
        if (common::uniform01(rng) >= frac) continue;
        p.x += common::uniform(rng, -0.5, 0.5);
        p.y += common::uniform(rng, -0.5, 0.5);
      }
    }
    const auto& want = sequential.update(pts);
    const auto& got = parallel.update(pts);
    ASSERT_EQ(sequential.last_full_rescan(), parallel.last_full_rescan())
        << "step " << step;
    ASSERT_TRUE(std::equal(want.edges().begin(), want.edges().end(),
                           got.edges().begin(), got.edges().end()))
        << "edge set diverged at step " << step;
    ASSERT_EQ(sequential.links_up(), parallel.links_up()) << "step " << step;
    ASSERT_EQ(sequential.links_down(), parallel.links_down()) << "step " << step;
  }
}

}  // namespace
}  // namespace manet::net
