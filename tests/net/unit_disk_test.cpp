#include "net/unit_disk.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/components.hpp"

namespace manet::net {
namespace {

TEST(UnitDisk, PairsWithinRadiusAreLinked) {
  const std::vector<geom::Vec2> pts{{0, 0}, {0.9, 0}, {2.0, 0}};
  const auto g = build_unit_disk_graph(pts, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(UnitDisk, ExactBoundaryIsLinked) {
  const std::vector<geom::Vec2> pts{{0, 0}, {1.0, 0}};
  const auto g = build_unit_disk_graph(pts, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(UnitDisk, MatchesBruteForceOnRandomDeployment) {
  common::Xoshiro256 rng(7);
  const geom::DiskRegion disk({0, 0}, 12.0);
  std::vector<geom::Vec2> pts(400);
  for (auto& p : pts) p = disk.sample(rng);
  const double radius = 1.4;
  const auto g = build_unit_disk_graph(pts, radius);
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v = u + 1; v < pts.size(); ++v) {
      EXPECT_EQ(g.has_edge(u, v), geom::distance2(pts[u], pts[v]) <= radius * radius)
          << u << "," << v;
    }
  }
}

TEST(UnitDisk, BuilderReusableAcrossSnapshots) {
  UnitDiskBuilder builder(1.0);
  const auto g1 = builder.build({{0, 0}, {0.5, 0}});
  EXPECT_EQ(g1.edge_count(), 1u);
  const auto g2 = builder.build({{0, 0}, {5.0, 0}});
  EXPECT_EQ(g2.edge_count(), 0u);
}

TEST(UnitDisk, AugmentationConnectsFragments) {
  // Three well-separated pairs: 3 components, the giant has 2 nodes.
  const std::vector<geom::Vec2> pts{{0, 0}, {0.5, 0}, {10, 0}, {10.5, 0}, {20, 0}};
  UnitDiskBuilder plain(1.0, /*ensure_connected=*/false);
  EXPECT_FALSE(graph::is_connected(plain.build(pts)));

  UnitDiskBuilder bridged(1.0, /*ensure_connected=*/true);
  const auto g = bridged.build(pts);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(bridged.last_augmented_edges(), 2u);  // two minor components
}

TEST(UnitDisk, AugmentationBridgesViaClosestPair) {
  // Component {3} is closest to node 2 of the giant {0,1,2}.
  const std::vector<geom::Vec2> pts{{0, 0}, {1, 0}, {2, 0}, {4, 0}};
  UnitDiskBuilder bridged(1.0, true);
  const auto g = bridged.build(pts);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(UnitDisk, NoAugmentationWhenAlreadyConnected) {
  UnitDiskBuilder bridged(1.0, true);
  const auto g = bridged.build({{0, 0}, {0.5, 0}, {1.0, 0}});
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(bridged.last_augmented_edges(), 0u);
}

TEST(UnitDisk, ConnectivityRadiusYieldsConnectedDeployments) {
  // Statistical check of the Gupta-Kumar rule: the connection probability
  // must increase toward 1 as the margin grows. Finite-n (300) disks fall
  // short of the asymptotic e^{-e^{-c}}, so the absolute thresholds are
  // deliberately forgiving while the monotonicity check is strict.
  common::Xoshiro256 rng(11);
  const int trials = 20;
  const Size n = 300;
  const double density = 1.0;
  const auto disk = geom::DiskRegion::with_density(n, density);

  auto connected_count = [&](double margin) {
    int connected = 0;
    const double radius = connectivity_radius(n, density, margin);
    for (int t = 0; t < trials; ++t) {
      std::vector<geom::Vec2> pts(n);
      for (auto& p : pts) p = disk.sample(rng);
      if (graph::is_connected(build_unit_disk_graph(pts, radius))) ++connected;
    }
    return connected;
  };

  const int at_low = connected_count(1.0);
  const int at_high = connected_count(6.0);
  EXPECT_GE(at_high, 17);
  EXPECT_GE(at_high, at_low);
}

}  // namespace
}  // namespace manet::net
