#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace manet::analysis {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  return count_ >= 2 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double Accumulator::ci95_halfwidth() const noexcept { return 1.96 * stderr_mean(); }

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return Summary{acc.count(), acc.mean(), acc.stddev(), acc.ci95_halfwidth(), acc.min(),
                 acc.max()};
}

double quantile(std::span<const double> xs, double q) {
  MANET_CHECK(!xs.empty());
  MANET_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace manet::analysis
