#include "analysis/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace manet::analysis {

BootstrapSelection bootstrap_model_selection(std::span<const double> ns,
                                             std::span<const double> means,
                                             std::span<const double> stderrs,
                                             Size resamples, std::uint64_t seed) {
  MANET_CHECK(ns.size() == means.size() && means.size() == stderrs.size());
  MANET_CHECK_MSG(ns.size() >= 3, "bootstrap selection needs >= 3 scale points");
  MANET_CHECK(resamples >= 1);

  BootstrapSelection out;
  out.resamples = resamples;
  common::Xoshiro256 rng(seed);
  std::vector<double> ys(means.size());

  std::array<Size, kGrowthLawCount> wins{};
  Size polylog_wins = 0;
  for (Size r = 0; r < resamples; ++r) {
    for (Size i = 0; i < means.size(); ++i) {
      // Draws can dip negative for noisy near-zero points; clamp to a tiny
      // positive value so the log-log diagnostic inside select_model stays
      // defined.
      ys[i] = std::max(1e-9, means[i] + stderrs[i] * common::normal(rng));
    }
    const auto sel = select_model(ns, ys);
    ++wins[static_cast<std::size_t>(sel.best())];

    int rank_poly = -1, rank_sqrt = -1, rank_linear = -1;
    for (int i = 0; i < static_cast<int>(sel.ranked.size()); ++i) {
      const auto law = sel.ranked[static_cast<std::size_t>(i)].law;
      if (law == GrowthLaw::kLogSquared || law == GrowthLaw::kLog) {
        if (rank_poly < 0) rank_poly = i;  // best polylog law
      } else if (law == GrowthLaw::kSqrt) {
        rank_sqrt = i;
      } else if (law == GrowthLaw::kLinear) {
        rank_linear = i;
      }
    }
    if (rank_poly >= 0 && rank_poly < rank_sqrt && rank_poly < rank_linear) ++polylog_wins;
  }

  for (std::size_t law = 0; law < kGrowthLawCount; ++law) {
    out.win_fraction[law] =
        static_cast<double>(wins[law]) / static_cast<double>(resamples);
  }
  out.polylog_beats_roots =
      static_cast<double>(polylog_wins) / static_cast<double>(resamples);
  const auto best = std::max_element(wins.begin(), wins.end());
  out.modal_winner = static_cast<GrowthLaw>(best - wins.begin());
  out.modal_fraction = static_cast<double>(*best) / static_cast<double>(resamples);
  return out;
}

}  // namespace manet::analysis
