#pragma once

#include <string>
#include <vector>

#include "cluster/hierarchy.hpp"

/// \file address.hpp
/// Hierarchical addresses (paper Section 2.1): packet forwarding in a strict
/// hierarchical network is driven solely by the destination's hierarchical
/// address — the chain of clusterhead ids from the top-level cluster down to
/// the node. Every node keeps an O(log|V|) hierarchical map of the clusters
/// it belongs to; two addresses agree on a prefix exactly as deep as the
/// lowest cluster the two nodes share.

namespace manet::lm {

struct HierAddress {
  /// Head ids from the top level down to the node itself
  /// (e.g. {100, 85, 68, 63} for node 63 in the paper's Fig. 1).
  std::vector<NodeId> chain;

  bool operator==(const HierAddress&) const = default;
};

/// Address of \p v under hierarchy \p h.
HierAddress make_address(const cluster::Hierarchy& h, NodeId v);

/// Dotted rendering, top-down: "100.85.68.63".
std::string to_string(const HierAddress& addr);

/// Lowest level (paper indexing) at which the two nodes share a cluster:
/// L+1-length chains agreeing on the first (top) j entries share the cluster
/// at level (top - j + 1). Returns the level k of the smallest shared
/// cluster, or the top level + 1 sentinel when even the top differs
/// (possible only across disconnected deployments).
Level lowest_common_level(const cluster::Hierarchy& h, NodeId u, NodeId v);

/// Size of the hierarchical map a node must store: one entry per sibling
/// cluster at every level of its chain (paper: O(log|V|)). Used by E7 to
/// verify the storage claim.
Size hierarchical_map_size(const cluster::Hierarchy& h, NodeId v);

}  // namespace manet::lm
