#include "mobility/gauss_markov.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace manet::mobility {

GaussMarkov::GaussMarkov(const geom::Region& region, Size n, Params params, std::uint64_t seed)
    : region_(region), params_(params), rng_(seed) {
  MANET_CHECK(params_.mean_speed > 0.0);
  MANET_CHECK(params_.alpha >= 0.0 && params_.alpha < 1.0);
  MANET_CHECK(params_.step > 0.0);
  positions_.resize(n);
  states_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    positions_[v] = region_.sample(rng_);
    states_[v].speed = params_.mean_speed;
    states_[v].heading = common::uniform(rng_, 0.0, 2.0 * std::numbers::pi);
  }
  next_update_ = params_.step;
}

void GaussMarkov::update_step(Time dt) {
  const double a = params_.alpha;
  const double noise_scale = std::sqrt(1.0 - a * a);
  for (NodeId v = 0; v < positions_.size(); ++v) {
    State& st = states_[v];
    // Integrate the previous velocity over dt, then refresh the AR(1) state.
    geom::Vec2 next =
        positions_[v] +
        geom::Vec2{std::cos(st.heading), std::sin(st.heading)} * (st.speed * dt);
    if (!region_.contains(next)) {
      next = region_.clamp(next);
      // Reflect: turn around when the boundary is reached.
      st.heading += std::numbers::pi;
    }
    positions_[v] = next;
    st.speed = a * st.speed + (1.0 - a) * params_.mean_speed +
               noise_scale * params_.speed_sigma * common::normal(rng_);
    st.speed = std::max(0.05 * params_.mean_speed, st.speed);
    st.heading = a * st.heading + (1.0 - a) * st.heading +  // mean heading = current
                 noise_scale * 0.35 * common::normal(rng_);
  }
}

void GaussMarkov::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  while (next_update_ <= t) {
    // dt can be < step if a prior advance_to ended mid-interval.
    update_step(next_update_ - now_);
    now_ = next_update_;
    next_update_ += params_.step;
  }
  // Partial step up to t (positions integrate forward; AR state unchanged).
  const Time dt = t - now_;
  if (dt > 0.0) {
    for (NodeId v = 0; v < positions_.size(); ++v) {
      const State& st = states_[v];
      geom::Vec2 next =
          positions_[v] +
          geom::Vec2{std::cos(st.heading), std::sin(st.heading)} * (st.speed * dt);
      positions_[v] = region_.contains(next) ? next : region_.clamp(next);
    }
    now_ = t;
  }
}

}  // namespace manet::mobility
