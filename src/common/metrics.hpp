#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

/// \file metrics.hpp
/// The observability substrate: a registry of named metric instruments that
/// subsystems write into while a simulation runs, so overhead quantities
/// (phi_k, gamma_k, f_k, link events, ...) are queryable *live* instead of
/// only from post-hoc reports.
///
/// Four instrument kinds:
///   Counter    monotone event/packet totals (phi packets, entry moves);
///   Gauge      last-written values (current rates, occupancy levels);
///   RateMeter  time-windowed event rates (events/s over a trailing window);
///   Histogram  fixed-bucket latency/size distributions (transfer hop counts).
///
/// Determinism contract (matching montecarlo.hpp): a registry is single-
/// threaded by design. Parallel work uses ShardedMetrics — one registry
/// *shard per task index*, written without locks because indices partition
/// the work, then merged in shard-index order. Merging is a fold of exact
/// integer adds and index-ordered gauge overwrites, so the merged aggregate
/// is bit-identical regardless of thread count or completion order.

namespace manet::common {

/// Monotone event counter. add() is a single integer add — cheap enough for
/// per-transfer accounting inside the handoff hot path.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value. merge() keeps the higher shard index's write (the
/// merge caller folds shards in index order), so the result is deterministic.
class Gauge {
 public:
  void set(double value) noexcept {
    value_ = value;
    written_ = true;
  }
  double value() const noexcept { return value_; }
  bool written() const noexcept { return written_; }
  void merge(const Gauge& other) noexcept {
    if (other.written_) {
      value_ = other.value_;
      written_ = true;
    }
  }

 private:
  double value_ = 0.0;
  bool written_ = false;
};

/// Event rate over a trailing time window, bucketed so old events age out
/// without storing timestamps per event. mark(t) must be called with
/// monotonically non-decreasing times (the simulation clock).
class RateMeter {
 public:
  /// \p window trailing seconds; \p buckets time resolution of the window.
  explicit RateMeter(Time window = 10.0, Size buckets = 10);

  void mark(Time now, std::uint64_t events = 1);

  /// Events per second over min(window, elapsed-since-first-mark) at \p now.
  double rate(Time now) const;

  std::uint64_t total() const noexcept { return total_; }

  /// Shard merge: totals add; the windowed state adopts whichever shard has
  /// marked later (ties keep the later-merged shard — index order).
  void merge(const RateMeter& other);

 private:
  void advance_to(Time now);

  Time window_;
  Time bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::int64_t head_index_ = 0;  ///< absolute bucket index of counts_ head
  Time first_mark_ = 0.0;
  Time last_mark_ = 0.0;
  bool any_ = false;
  std::uint64_t total_ = 0;
};

/// Fixed-boundary histogram: observe(x) increments the bucket of the first
/// boundary >= x (last bucket is the +inf overflow). Bucket layout is fixed
/// at construction so shard merges are exact integer adds.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double x);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double max_seen() const noexcept { return max_; }

  /// bucket_count(i) pairs with upper_bound(i); the final bucket's bound is
  /// +infinity.
  Size bucket_total() const noexcept { return buckets_.size(); }
  double upper_bound(Size i) const { return bounds_[i]; }
  std::uint64_t bucket_count(Size i) const { return buckets_[i]; }

  /// Quantile estimate by linear interpolation within the owning bucket.
  double quantile(double q) const;

  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;  ///< ascending; last is +inf
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Name -> instrument registry. Lookup returns a stable reference (std::map
/// nodes never move), so producers resolve a name once and keep the pointer
/// for the hot path. Iteration order is lexicographic — serialization and
/// merging are deterministic by construction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  RateMeter& rate_meter(const std::string& name, Time window = 10.0, Size buckets = 10);
  Histogram& histogram(const std::string& name, std::span<const double> upper_bounds);

  /// Read-only lookups; nullptr when the name was never registered (or is a
  /// different instrument kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const RateMeter* find_rate_meter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Fold \p other into this registry (see the determinism contract above).
  /// Instruments present only in \p other are created; kind mismatches on
  /// the same name are a programming error and abort.
  void merge(const MetricsRegistry& other);

  Size instrument_count() const;

  /// Deterministic (sorted-name) snapshot for serialization / tables.
  struct Entry {
    enum class Kind { kCounter, kGauge, kRateMeter, kHistogram };
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const RateMeter* rate_meter = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> entries() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, RateMeter> rate_meters_;
  std::map<std::string, Histogram> histograms_;
};

/// Per-task-index registry shards for ThreadPool::parallel_for work: task i
/// writes shard(i) exclusively (no locks), and merged() folds shards in
/// index order, so the aggregate is bit-identical at any thread count.
class ShardedMetrics {
 public:
  explicit ShardedMetrics(Size shard_count);

  Size shard_count() const noexcept { return shards_.size(); }
  MetricsRegistry& shard(Size index);

  /// Fold shards 0..n-1, in that order, into a fresh registry.
  MetricsRegistry merged() const;

 private:
  std::vector<MetricsRegistry> shards_;
};

}  // namespace manet::common
