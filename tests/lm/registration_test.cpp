#include "lm/registration.hpp"

#include <gtest/gtest.h>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct World {
  geom::DiskRegion disk{geom::Vec2{0, 0}, 1.0};
  std::vector<geom::Vec2> pts;
  net::UnitDiskBuilder builder{2.2, true};
  cluster::HierarchyBuilder hb;
  graph::Graph g{0};
  cluster::Hierarchy h;

  explicit World(Size n, std::uint64_t seed)
      : disk(geom::DiskRegion::with_density(n, 1.0)) {
    common::Xoshiro256 rng(seed);
    pts.resize(n);
    for (auto& p : pts) p = disk.sample(rng);
    refresh();
  }

  void refresh() {
    g = builder.build(pts);
    h = hb.build(g);
  }
};

RegistrationConfig config(double threshold = 0.5) {
  RegistrationConfig cfg;
  cfg.threshold = threshold;
  cfg.tx_radius = 2.2;
  return cfg;
}

TEST(Registration, NoMotionNoUpdates) {
  World w(250, 1);
  RegistrationTracker tracker(config());
  tracker.prime(w.h, w.pts, 0.0);
  const auto tick = tracker.update(w.h, w.g, w.pts, 1.0);
  EXPECT_EQ(tick.updates, 0u);
  EXPECT_EQ(tick.packets, 0u);
  EXPECT_DOUBLE_EQ(tracker.rate(), 0.0);
}

TEST(Registration, SmallMotionBelowThresholdIsFree) {
  World w(250, 2);
  RegistrationTracker tracker(config(2.0));  // huge threshold
  tracker.prime(w.h, w.pts, 0.0);
  for (auto& p : w.pts) p = w.disk.clamp(p + geom::Vec2{0.1, 0.1});
  w.refresh();
  const auto tick = tracker.update(w.h, w.g, w.pts, 1.0);
  EXPECT_EQ(tick.updates, 0u);
}

TEST(Registration, LargeMotionTriggersUpdatesAtEveryLevel) {
  World w(300, 3);
  RegistrationTracker tracker(config(0.2));
  tracker.prime(w.h, w.pts, 0.0);
  // Push everyone far: every level's threshold is crossed.
  for (auto& p : w.pts) p = w.disk.clamp(p + geom::Vec2{15.0, -9.0});
  w.refresh();
  const auto tick = tracker.update(w.h, w.g, w.pts, 1.0);
  EXPECT_GT(tick.updates, 0u);
  EXPECT_GT(tick.packets, 0u);
  EXPECT_GT(tracker.rate(), 0.0);
  // Level-2 updates are the cheapest+most frequent; deeper levels rarer but
  // present after a global shove.
  EXPECT_GT(tracker.rate_at(2), 0.0);
}

TEST(Registration, PerLevelRatesDecayWithLevel) {
  World w(500, 4);
  RegistrationTracker tracker(config(0.5));
  tracker.prime(w.h, w.pts, 0.0);
  common::Xoshiro256 rng(5);
  for (int step = 1; step <= 30; ++step) {
    for (auto& p : w.pts) {
      p = w.disk.clamp(p + geom::Vec2{common::uniform(rng, -1, 1),
                                      common::uniform(rng, -1, 1)});
    }
    w.refresh();
    tracker.update(w.h, w.g, w.pts, static_cast<Time>(step));
  }
  // Update *frequency* falls with level (distance thresholds grow as
  // sqrt(c_k)); packet rates stay comparable because path length grows to
  // match — the same cancellation as the handoff analysis. Verify the
  // level-2 packet rate at least matches deeper levels within a factor.
  const double r2 = tracker.rate_at(2);
  ASSERT_GT(r2, 0.0);
  for (Level k = 3; k < tracker.levels_tracked(); ++k) {
    EXPECT_LT(tracker.rate_at(k), 3.0 * r2) << "level " << k;
  }
}

TEST(Registration, ThresholdControlsUpdateVolume) {
  World tight_world(300, 6);
  World loose_world(300, 6);
  RegistrationTracker tight(config(0.25));
  RegistrationTracker loose(config(1.0));
  tight.prime(tight_world.h, tight_world.pts, 0.0);
  loose.prime(loose_world.h, loose_world.pts, 0.0);
  common::Xoshiro256 rng(7);
  for (int step = 1; step <= 20; ++step) {
    for (Size v = 0; v < tight_world.pts.size(); ++v) {
      const geom::Vec2 d{common::uniform(rng, -1, 1), common::uniform(rng, -1, 1)};
      tight_world.pts[v] = tight_world.disk.clamp(tight_world.pts[v] + d);
      loose_world.pts[v] = tight_world.pts[v];
    }
    tight_world.refresh();
    loose_world.g = tight_world.g;
    loose_world.h = tight_world.h;
    tight.update(tight_world.h, tight_world.g, tight_world.pts, static_cast<Time>(step));
    loose.update(loose_world.h, loose_world.g, loose_world.pts, static_cast<Time>(step));
  }
  EXPECT_GT(tight.total_updates(), loose.total_updates());
}

TEST(RegistrationDeath, UpdateBeforePrime) {
  World w(100, 8);
  RegistrationTracker tracker(config());
  EXPECT_DEATH(tracker.update(w.h, w.g, w.pts, 1.0), "prime");
}

}  // namespace
}  // namespace manet::lm
