#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "geom/region.hpp"

namespace manet::geom {
namespace {

using PairSet = std::set<std::pair<NodeId, NodeId>>;

PairSet brute_force_pairs(const std::vector<Vec2>& pts, double radius) {
  PairSet out;
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v = u + 1; v < pts.size(); ++v) {
      if (distance2(pts[u], pts[v]) <= radius * radius) out.insert({u, v});
    }
  }
  return out;
}

PairSet grid_pairs(const std::vector<Vec2>& pts, double radius) {
  SpatialGrid grid(radius);
  grid.rebuild(pts);
  PairSet out;
  grid.for_each_pair_within(radius, [&](NodeId u, NodeId v) {
    EXPECT_LT(u, v);
    const auto [it, inserted] = out.insert({u, v});
    (void)it;
    EXPECT_TRUE(inserted) << "pair emitted twice: " << u << "," << v;
  });
  return out;
}

TEST(SpatialGrid, MatchesBruteForceOnRandomPoints) {
  common::Xoshiro256 rng(17);
  const DiskRegion disk({0, 0}, 10.0);
  std::vector<Vec2> pts(300);
  for (auto& p : pts) p = disk.sample(rng);
  EXPECT_EQ(grid_pairs(pts, 1.3), brute_force_pairs(pts, 1.3));
}

TEST(SpatialGrid, MatchesBruteForceAcrossNegativeCoordinates) {
  common::Xoshiro256 rng(19);
  std::vector<Vec2> pts(200);
  for (auto& p : pts) p = {common::uniform(rng, -8, 8), common::uniform(rng, -8, 8)};
  EXPECT_EQ(grid_pairs(pts, 2.0), brute_force_pairs(pts, 2.0));
}

TEST(SpatialGrid, EmptyAndSingleton) {
  SpatialGrid grid(1.0);
  grid.rebuild({});
  int count = 0;
  grid.for_each_pair_within(1.0, [&](NodeId, NodeId) { ++count; });
  EXPECT_EQ(count, 0);

  grid.rebuild({{0.5, 0.5}});
  grid.for_each_pair_within(1.0, [&](NodeId, NodeId) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(SpatialGrid, BoundaryDistanceIsInclusive) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  const auto pairs = grid_pairs(pts, 1.0);
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(SpatialGrid, NeighborsWithinFindsAllAndExcludesSelf) {
  common::Xoshiro256 rng(23);
  const DiskRegion disk({0, 0}, 5.0);
  std::vector<Vec2> pts(150);
  for (auto& p : pts) p = disk.sample(rng);
  SpatialGrid grid(1.0);
  grid.rebuild(pts);

  for (NodeId v = 0; v < pts.size(); ++v) {
    std::vector<NodeId> found;
    grid.neighbors_within(pts[v], 1.0, v, found);
    std::sort(found.begin(), found.end());
    std::vector<NodeId> expected;
    for (NodeId u = 0; u < pts.size(); ++u) {
      if (u != v && distance2(pts[u], pts[v]) <= 1.0) expected.push_back(u);
    }
    EXPECT_EQ(found, expected) << "node " << v;
  }
}

TEST(SpatialGrid, RebuildReplacesIndex) {
  SpatialGrid grid(1.0);
  grid.rebuild({{0, 0}, {0.5, 0}});
  grid.rebuild({{0, 0}, {5.0, 5.0}});
  int count = 0;
  grid.for_each_pair_within(1.0, [&](NodeId, NodeId) { ++count; });
  EXPECT_EQ(count, 0);  // old close pair must be gone
}

/// Property sweep over radii: grid always equals brute force.
class GridRadius : public ::testing::TestWithParam<double> {};

TEST_P(GridRadius, EquivalentToBruteForce) {
  const double radius = GetParam();
  common::Xoshiro256 rng(29);
  const DiskRegion disk({0, 0}, 6.0);
  std::vector<Vec2> pts(250);
  for (auto& p : pts) p = disk.sample(rng);
  SpatialGrid grid(radius);
  grid.rebuild(pts);
  PairSet from_grid;
  grid.for_each_pair_within(radius, [&](NodeId u, NodeId v) { from_grid.insert({u, v}); });
  EXPECT_EQ(from_grid, brute_force_pairs(pts, radius));
}

INSTANTIATE_TEST_SUITE_P(Radii, GridRadius, ::testing::Values(0.25, 0.7, 1.0, 2.5, 6.0));

}  // namespace
}  // namespace manet::geom
