#include "routing/table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"
#include "lm/address.hpp"

namespace manet::routing {

RoutingTables::RoutingTables(const graph::Graph& g, const cluster::Hierarchy& h)
    : g_(&g), h_(&h) {
  const Size n = g.vertex_count();
  MANET_CHECK(h.level(0).vertex_count() == n);
  tables_.resize(n);

  // For every cluster c at every level L-1 .. 0: BFS toward c's members
  // *restricted to the parent cluster's induced subgraph*, so that forwarded
  // packets stay inside the cluster whose address prefix they have already
  // matched — this is what keeps strict hierarchical routing loop-free (a
  // path that left the parent would raise the longest-matched prefix again
  // and could oscillate). Members cut off inside the induced subgraph fall
  // back to the global shortest-path field. Per-cluster fields are
  // discarded immediately, so peak memory stays O(n).
  std::vector<std::uint32_t> membership(n, 0xFFFFFFFFu);  // node -> parent cluster id
  for (Level parent_level = 1; parent_level <= h.top_level(); ++parent_level) {
    const Level child_level = parent_level - 1;
    for (NodeId parent = 0; parent < h.cluster_count(parent_level); ++parent) {
      const auto& children = h.children(parent_level, parent);
      if (children.size() < 2) continue;  // no siblings, no entries
      const auto& parent_members = h.members0(parent_level, parent);
      for (const NodeId v : parent_members) membership[v] = parent;

      for (const NodeId child : children) {
        const auto& targets = h.members0(child_level, child);

        // Multi-source BFS over the induced subgraph of parent_members.
        std::vector<std::uint32_t> dist(n, graph::kUnreachable);
        std::vector<NodeId> queue;
        for (const NodeId s : targets) {
          dist[s] = 0;
          queue.push_back(s);
        }
        for (Size head = 0; head < queue.size(); ++head) {
          const NodeId u = queue[head];
          for (const NodeId w : g.neighbors(u)) {
            if (membership[w] != parent || dist[w] != graph::kUnreachable) continue;
            dist[w] = dist[u] + 1;
            queue.push_back(w);
          }
        }

        // Fallback field for members the induced subgraph cannot reach
        // (cluster membership is not always level-0 contiguous).
        std::vector<std::uint32_t> global_dist;
        for (const NodeId v : parent_members) {
          if (dist[v] != graph::kUnreachable) continue;
          if (global_dist.empty()) global_dist = graph::bfs_hops_multi(g, targets);
          break;
        }

        for (const NodeId v : parent_members) {
          const bool in_cluster_path = dist[v] != graph::kUnreachable;
          const auto& field = in_cluster_path ? dist : global_dist;
          if (field.empty()) continue;
          const std::uint32_t dv = field[v];
          if (dv == 0) continue;  // v inside the target cluster
          if (dv == graph::kUnreachable) continue;  // fully disconnected snapshot
          // Next hop: the smallest-id neighbor strictly closer to the
          // target (deterministic tie-break).
          NodeId hop = kInvalidNode;
          for (const NodeId w : g.neighbors(v)) {
            if (field[w] == dv - 1 && (hop == kInvalidNode || w < hop)) hop = w;
          }
          MANET_CHECK(hop != kInvalidNode);
          tables_[v].push_back(RouteEntry{child_level, child, hop, dv});
        }
      }
      for (const NodeId v : parent_members) membership[v] = 0xFFFFFFFFu;
    }
  }
}

const std::vector<RouteEntry>& RoutingTables::entries(NodeId v) const {
  MANET_CHECK(v < tables_.size());
  return tables_[v];
}

double RoutingTables::mean_table_size() const {
  if (tables_.empty()) return 0.0;
  Size total = 0;
  for (const auto& t : tables_) total += t.size();
  return static_cast<double>(total) / static_cast<double>(tables_.size());
}

const RouteEntry* RoutingTables::find_entry(NodeId u, Level level, NodeId cluster) const {
  for (const auto& entry : tables_[u]) {
    if (entry.level == level && entry.target == cluster) return &entry;
  }
  return nullptr;
}

NodeId RoutingTables::next_hop(NodeId u, NodeId dest) const {
  MANET_CHECK(u < tables_.size() && dest < tables_.size());
  if (u == dest) return u;
  // Lowest level where u and dest share a cluster; the packet heads for the
  // destination's cluster one level below the shared one.
  const Level shared = lm::lowest_common_level(*h_, u, dest);
  MANET_CHECK(shared >= 1);
  const NodeId target = h_->ancestor(dest, shared - 1);
  const RouteEntry* entry = find_entry(u, shared - 1, target);
  return entry != nullptr ? entry->next_hop : kInvalidNode;
}

RoutingTables::RouteResult RoutingTables::route(NodeId u, NodeId dest) const {
  RouteResult result;
  result.path.push_back(u);
  const Size guard = 4 * tables_.size() + 8;
  std::vector<bool> visited(tables_.size(), false);
  visited[u] = true;

  NodeId cur = u;
  bool recovery = false;
  std::vector<std::uint32_t> recovery_field;
  while (cur != dest && result.path.size() < guard) {
    NodeId hop = kInvalidNode;
    if (!recovery) {
      hop = next_hop(cur, dest);
      // A revisit means a fallback entry oscillated; switch to recovery.
      if (hop == kInvalidNode || visited[hop]) {
        recovery = true;
        result.recovered = true;
        recovery_field = graph::bfs_hops(*g_, dest);
      }
    }
    if (recovery) {
      const std::uint32_t dc = recovery_field[cur];
      if (dc == graph::kUnreachable || dc == 0) break;
      for (const NodeId w : g_->neighbors(cur)) {
        if (recovery_field[w] == dc - 1 && (hop == kInvalidNode || w < hop)) hop = w;
      }
    }
    if (hop == kInvalidNode || hop == cur) break;
    result.path.push_back(hop);
    visited[hop] = true;
    cur = hop;
  }
  result.delivered = cur == dest;
  return result;
}

StretchStats measure_stretch(const RoutingTables& tables, const graph::Graph& g, Size pairs,
                             std::uint64_t seed) {
  StretchStats stats;
  common::Xoshiro256 rng(seed);
  graph::BfsScratch bfs;
  const Size n = g.vertex_count();
  if (n < 2) return stats;

  double stretch_sum = 0.0;
  double hier_sum = 0.0;
  double short_sum = 0.0;
  while (stats.sampled_pairs + stats.failures < pairs) {
    const auto u = static_cast<NodeId>(common::uniform_index(rng, n));
    const auto v = static_cast<NodeId>(common::uniform_index(rng, n));
    if (u == v) continue;
    bfs.run(g, u);
    const auto shortest = bfs.hops_to(v);
    if (shortest == graph::kUnreachable) continue;

    const auto routed = tables.route(u, v);
    if (!routed.delivered) {
      ++stats.failures;
      continue;
    }
    if (routed.recovered) ++stats.recoveries;
    const double hier = static_cast<double>(routed.path.size() - 1);
    const double stretch = hier / static_cast<double>(shortest);
    stretch_sum += stretch;
    hier_sum += hier;
    short_sum += shortest;
    stats.max_stretch = std::max(stats.max_stretch, stretch);
    ++stats.sampled_pairs;
  }
  if (stats.sampled_pairs > 0) {
    const auto m = static_cast<double>(stats.sampled_pairs);
    stats.mean_stretch = stretch_sum / m;
    stats.mean_hier_hops = hier_sum / m;
    stats.mean_shortest_hops = short_sum / m;
  }
  return stats;
}

}  // namespace manet::routing
