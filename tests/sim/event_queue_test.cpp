#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace manet::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.pop();
  EXPECT_EQ(q.pending_count(), 0u);
}

/// Cancel-heavy workload: pop order must survive the in-place tombstone
/// compaction that triggers once cancelled entries exceed half the heap.
TEST(EventQueue, MassCancellationCompactsAndPreservesOrder) {
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<Time>(i), [&fired, i] { fired.push_back(i); }));
  }
  // Cancel everything but multiples of 10, scattered so compaction fires
  // mid-way rather than at the end.
  for (int i = 0; i < 1000; ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(q.cancel(ids[static_cast<Size>(i)]));
    }
  }
  EXPECT_EQ(q.pending_count(), 100u);
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[static_cast<Size>(i)], i * 10);
}

TEST(EventQueue, SlotsAreRecycledAcrossScheduleCancelChurn) {
  EventQueue q;
  // Steady-state churn at a bounded live size: schedule/cancel/fire cycles
  // must keep working while the slab recycles its slots.
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    const EventId keep = q.schedule(1.0, [&] { ++fired; });
    const EventId drop = q.schedule(2.0, [] {});
    EXPECT_TRUE(q.cancel(drop));
    EXPECT_EQ(q.pending_count(), 1u);
    auto ev = q.pop();
    EXPECT_EQ(ev.id, keep);
    ev.fn();
  }
  EXPECT_EQ(fired, 200);
  EXPECT_TRUE(q.empty());
}

/// Closures larger than the inline buffer still schedule and fire correctly
/// (heap fallback), and move-only captures are supported.
TEST(EventQueue, OversizedAndMoveOnlyClosures) {
  EventQueue q;
  std::array<double, 32> big{};  // 256 bytes, far past the inline buffer
  big[31] = 7.0;
  double seen = 0.0;
  q.schedule(1.0, [big, &seen] { seen = big[31]; });

  auto owned = std::make_unique<int>(42);
  int got = 0;
  q.schedule(2.0, [owned = std::move(owned), &got] { got = *owned; });

  while (!q.empty()) q.pop().fn();
  EXPECT_DOUBLE_EQ(seen, 7.0);
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace manet::sim
