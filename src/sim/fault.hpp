#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

/// \file fault.hpp
/// Deterministic fault injection for simulation runs.
///
/// The paper prices every handoff at exactly hops(old, new) packet
/// transmissions and sets node birth/death aside ("extremely rare ... its
/// effect is not evaluated"). This module supplies the machinery to stress
/// that idealization: a seeded, replayable *plan* of faults — per-packet
/// control-plane loss (Bernoulli and Gilbert-Elliott bursty), node
/// crash/rejoin intervals, and a movable regional-outage disk — all derived
/// from the scenario seed, so identical (seed, config) pairs give identical
/// faulted runs at any thread count.
///
/// Layering: this file knows nothing about graphs or the LM plane. The
/// lossy channel lives in net/ (net::LossyChannel), the ARQ layer in lm/
/// (lm::ReliableTransfer); exp::run_simulation composes them. With
/// FaultConfig::enabled() == false nothing below is ever constructed and the
/// simulation path is bit-identical to the fault-free build.

namespace manet::sim {

/// Complete fault model for one run. All processes default to off;
/// enabled() gates every fault-path branch in the stack.
struct FaultConfig {
  // --- Control-plane loss ---
  /// Per-hop Bernoulli loss probability applied to every control packet
  /// (handoff transfers, registrations, repairs). A transfer over h hops
  /// therefore delivers with probability (1 - loss)^h.
  double loss = 0.0;
  /// Gilbert-Elliott bursty loss: per-hop loss probability while the channel
  /// chain is in the bad state (0 = bursty model off).
  double burst_loss = 0.0;
  /// Per-packet probability of the chain entering the bad state.
  double burst_on = 0.01;
  /// Mean bad-state sojourn in packets (P(bad->good) = 1 / burst_len).
  double burst_len = 8.0;

  // --- Node churn ---
  /// Per-node crash hazard rate (crashes per node per second of run time).
  double crash_rate = 0.0;
  /// Mean downtime before a crashed node rejoins (exponential), seconds.
  Time mean_downtime = 10.0;

  // --- Regional outage ---
  /// Radius of the outage disk in meters (0 = off). Nodes inside the disk
  /// while the outage is active behave exactly like crashed nodes.
  double outage_radius = 0.0;
  Time outage_start = 0.0;
  Time outage_duration = 0.0;
  double outage_x = 0.0;   ///< disk center at outage_start
  double outage_y = 0.0;
  double outage_vx = 0.0;  ///< center drift velocity, m/s
  double outage_vy = 0.0;

  // --- ARQ / repair policy (only consulted when a fault process is on) ---
  Size retry_budget = 4;      ///< retransmissions after the first attempt
  Time arq_timeout = 0.05;    ///< first retransmission timeout, seconds
  double arq_backoff = 2.0;   ///< timeout multiplier per retry (>= 1)
  Time audit_period = 5.0;    ///< server-audit / repair interval, seconds
  Size probe_pairs = 256;     ///< owners sampled per query-consistency probe

  /// Attach the fault machinery even when every fault process is off. Used
  /// by the zero-cost tests: a forced-on run with loss = 0 and no churn must
  /// reproduce the fault-free metrics bit-identically.
  bool force = false;

  bool lossy() const { return loss > 0.0 || burst_loss > 0.0; }
  bool churn() const { return crash_rate > 0.0; }
  bool outage() const { return outage_radius > 0.0 && outage_duration > 0.0; }
  bool enabled() const { return force || lossy() || churn() || outage(); }

  /// One-line manifest form, "off" when disabled (RunManifest records it so
  /// resilience artifacts are reproducible from the manifest alone).
  std::string describe() const;
};

/// Precomputed, replayable fault schedule: per-node down intervals drawn
/// once from a derived seed. Building the plan consumes no scenario RNG
/// state besides the seed passed in, and the same (config, n, window, seed)
/// always yields the same plan.
struct FaultPlan {
  struct Interval {
    Time down = 0.0;  ///< crash instant
    Time up = 0.0;    ///< rejoin instant (> down)
  };

  /// downtime[v] holds v's crash intervals sorted by start time.
  std::vector<std::vector<Interval>> downtime;

  static FaultPlan build(const FaultConfig& config, Size n, Time start, Time end,
                         std::uint64_t seed);
};

/// Run-time fault oracle: answers "is node v down at time t" (crash plan
/// plus regional outage) from the precomputed plan. Stateless queries —
/// safe to consult in any order.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, Size n, Time start, Time end,
                std::uint64_t seed);

  const FaultConfig& config() const { return config_; }
  const FaultPlan& plan() const { return plan_; }

  /// True when v's crash plan has it down at \p t (regional outage is
  /// evaluated separately because it needs the node's position).
  bool crashed(NodeId v, Time t) const;

  /// True when the outage disk is active at \p t and covers (x, y).
  bool in_outage(double x, double y, Time t) const;

  /// Total crash intervals scheduled within the run window.
  Size scheduled_crashes() const;

 private:
  FaultConfig config_;
  FaultPlan plan_;
};

}  // namespace manet::sim
