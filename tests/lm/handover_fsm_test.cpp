#include "lm/handover_fsm.hpp"

#include <gtest/gtest.h>

#include <vector>

// HandoverManager unit tests: every FSM edge is reachable deterministically
// by pinning signal_loss to 0 (attempts always deliver) or 1 (attempts always
// vanish) and flipping per-node down flags between ticks.

namespace manet {
namespace {

lm::HandoverFsmConfig config(double signal_loss) {
  lm::HandoverFsmConfig cfg;
  cfg.timeout = 0.2;
  cfg.max_retries = 2;
  cfg.backoff = 2.0;
  cfg.signal_loss = signal_loss;
  cfg.holdoff = 1.0;
  return cfg;
}

TEST(HandoverFsm, FaultFreeMoveCompletesWithinItsSpawnTick) {
  lm::HandoverManager manager(config(0.0), 42);
  manager.on_entry_move(/*owner=*/5, /*k=*/2, /*from=*/1, /*to=*/3, /*t=*/10.0,
                        /*migrated=*/true, /*hops=*/2);
  EXPECT_TRUE(manager.has_flight(5, 2));
  manager.tick(10.0);
  EXPECT_FALSE(manager.has_flight(5, 2));
  EXPECT_EQ(manager.in_flight(), 0u);
  const auto& s = manager.stats();
  EXPECT_EQ(s.started, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.rollbacks, 0u);
  EXPECT_DOUBLE_EQ(s.mean_completion_time(), 0.0);
  // Allocate + detect each cost one hops-priced attempt.
  EXPECT_EQ(s.signal_packets, 4u);
}

TEST(HandoverFsm, TimeoutsBackOffThenRetryExhaustionRollsBack) {
  lm::HandoverManager manager(config(1.0), 42);
  manager.on_entry_move(7, 3, 1, 3, 0.0, false, 1);

  manager.tick(0.0);  // attempt 1 sent, deadline 0.2
  EXPECT_EQ(manager.state_of(7, 3), lm::HandoverState::kAllocate);
  EXPECT_EQ(manager.stats().timeouts, 0u);

  manager.tick(0.1);  // still outstanding
  EXPECT_EQ(manager.stats().timeouts, 0u);

  manager.tick(0.25);  // timeout 1 -> retry (attempt 2), deadline 0.25 + 0.4
  EXPECT_EQ(manager.stats().timeouts, 1u);
  EXPECT_EQ(manager.stats().retries, 1u);

  manager.tick(0.70);  // timeout 2 -> retry (attempt 3), deadline 0.70 + 0.8
  EXPECT_EQ(manager.stats().timeouts, 2u);
  EXPECT_EQ(manager.stats().retries, 2u);

  manager.tick(1.60);  // timeout 3: retries exhausted -> rollback
  EXPECT_EQ(manager.stats().timeouts, 3u);
  EXPECT_EQ(manager.stats().retries, 2u);
  EXPECT_EQ(manager.stats().rollbacks, 1u);
  EXPECT_EQ(manager.stats().rollback_failures, 0u);
  ASSERT_TRUE(manager.has_flight(7, 3));
  EXPECT_EQ(manager.state_of(7, 3), lm::HandoverState::kRolledBack);

  const auto view = manager.view(7, 3);
  EXPECT_TRUE(view.in_flight);
  EXPECT_TRUE(view.rolled_back);
  EXPECT_EQ(view.server, 1u);  // sessions pinned to the old server
}

TEST(HandoverFsm, TargetServerCrashRollsBackThenRecoversAfterHoldoff) {
  lm::HandoverManager manager(config(0.0), 42);
  std::vector<std::uint8_t> down(8, 0);
  manager.set_down(&down);

  down[3] = 1;  // target dark before the first attempt
  manager.on_entry_move(2, 2, 1, 3, 0.0, true, 1);
  manager.tick(0.0);
  EXPECT_EQ(manager.stats().rollbacks, 1u);
  EXPECT_EQ(manager.stats().target_crashes, 1u);
  ASSERT_TRUE(manager.has_flight(2, 2));
  EXPECT_EQ(manager.state_of(2, 2), lm::HandoverState::kRolledBack);

  manager.tick(0.5);  // holdoff not yet expired
  EXPECT_EQ(manager.state_of(2, 2), lm::HandoverState::kRolledBack);

  down[3] = 0;         // target rejoins
  manager.tick(1.25);  // holdoff expired -> re-attempt -> completes
  EXPECT_FALSE(manager.has_flight(2, 2));
  EXPECT_EQ(manager.stats().completed, 1u);
  EXPECT_NEAR(manager.stats().completion_time_sum, 1.25, 1e-12);
}

TEST(HandoverFsm, RollbackWithOldServerDownFailsOutright) {
  lm::HandoverManager manager(config(0.0), 42);
  std::vector<std::uint8_t> down(8, 0);
  manager.set_down(&down);

  down[1] = 1;  // old server dark
  down[3] = 1;  // new server dark too
  manager.on_entry_move(4, 2, 1, 3, 0.0, false, 1);
  manager.tick(0.0);
  EXPECT_FALSE(manager.has_flight(4, 2));
  EXPECT_EQ(manager.stats().rollbacks, 1u);
  EXPECT_EQ(manager.stats().target_crashes, 1u);
  EXPECT_EQ(manager.stats().rollback_failures, 1u);
}

TEST(HandoverFsm, StaleEntryAbortsTheFlightTowardTheOldServer) {
  lm::HandoverManager manager(config(1.0), 42);
  manager.on_entry_move(9, 2, 1, 3, 0.0, false, 1);
  manager.tick(0.0);
  ASSERT_TRUE(manager.has_flight(9, 2));

  manager.on_entry_stale(9, 2, kInvalidNode, 0.1);
  EXPECT_EQ(manager.stats().rollbacks, 1u);
  ASSERT_TRUE(manager.has_flight(9, 2));
  EXPECT_EQ(manager.state_of(9, 2), lm::HandoverState::kRolledBack);
}

TEST(HandoverFsm, RepairedAndRetiredEntriesClearTheirFlights) {
  lm::HandoverManager manager(config(1.0), 42);
  manager.on_entry_move(1, 2, 4, 5, 0.0, false, 1);
  manager.on_entry_move(2, 3, 4, 5, 0.0, false, 1);
  manager.tick(0.0);
  EXPECT_EQ(manager.in_flight(), 2u);

  manager.on_entry_repaired(1, 2, 6, 0.5);
  EXPECT_FALSE(manager.has_flight(1, 2));
  EXPECT_EQ(manager.stats().repaired, 1u);

  manager.on_entry_retired(2, 3, 0.5);
  EXPECT_FALSE(manager.has_flight(2, 3));
  EXPECT_EQ(manager.stats().retired, 1u);
  EXPECT_EQ(manager.in_flight(), 0u);
}

TEST(HandoverFsm, NewerMoveOfTheSameEntrySupersedes) {
  lm::HandoverManager manager(config(1.0), 42);
  manager.on_entry_move(6, 2, 1, 3, 0.0, false, 1);
  manager.tick(0.0);
  manager.on_entry_move(6, 2, 3, 5, 1.0, false, 1);
  EXPECT_EQ(manager.stats().started, 2u);
  EXPECT_EQ(manager.stats().superseded, 1u);
  EXPECT_EQ(manager.in_flight(), 1u);
  const auto view = manager.view(6, 2);
  EXPECT_EQ(view.server, 3u);  // the newer move's old server
}

TEST(HandoverFsm, SameSeedSameScheduleIsBitIdentical) {
  lm::HandoverManager a(config(0.5), 99);
  lm::HandoverManager b(config(0.5), 99);
  for (NodeId owner = 0; owner < 16; ++owner) {
    a.on_entry_move(owner, 2, owner, owner + 1, 0.0, false, 2);
    b.on_entry_move(owner, 2, owner, owner + 1, 0.0, false, 2);
  }
  for (int i = 0; i <= 50; ++i) {
    const Time t = 0.1 * i;
    a.tick(t);
    b.tick(t);
  }
  EXPECT_EQ(a.stats().completed, b.stats().completed);
  EXPECT_EQ(a.stats().timeouts, b.stats().timeouts);
  EXPECT_EQ(a.stats().retries, b.stats().retries);
  EXPECT_EQ(a.stats().rollbacks, b.stats().rollbacks);
  EXPECT_EQ(a.stats().signal_packets, b.stats().signal_packets);
  EXPECT_EQ(a.in_flight(), b.in_flight());
}

TEST(HandoverFsm, StateNamesCoverTheEnum) {
  for (std::size_t i = 0; i < lm::kHandoverStateCount; ++i) {
    EXPECT_STRNE(lm::to_string(static_cast<lm::HandoverState>(i)), "unknown");
  }
}

}  // namespace
}  // namespace manet
