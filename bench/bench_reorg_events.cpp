/// E10: the cluster reorganization event taxonomy (paper Section 5.2, events
/// (i)-(vii)). Reports classified event rates per type per level; the
/// paper's Section 5.3 requires every family's frequency to be Theta(1/h_k)
/// per level-k cluster link, i.e. strictly decaying across levels.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E10  bench_reorg_events — reorganization event spectrum",
      "events (i)-(vii) all occur with frequency Theta(1/h_k) per cluster link [Sec. 5.3]");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = true;
  opts.track_states = false;
  opts.measure_hops = false;

  static const char* kKeys[] = {"ev.i", "ev.ii", "ev.iii", "ev.iv", "ev.v", "ev.vi", "ev.vii"};
  static const char* kNames[] = {"(i) link up",        "(ii) link down",
                                 "(iii) elect/migr",   "(iv) reject/migr",
                                 "(v) elect/recurse",  "(vi) reject/recurse",
                                 "(vii) nbr promoted"};

  for (const Size n : {Size{512}, Size{2048}}) {
    cfg.n = n;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    std::printf("\n|V| = %zu   (rates: events per node per second)\n", n);
    analysis::TextTable table({"event", "k=1", "k=2", "k=3", "k=4", "k=5"});
    for (int e = 0; e < 7; ++e) {
      std::vector<std::string> row{kNames[e]};
      for (Level k = 1; k <= 5; ++k) {
        char key[32];
        std::snprintf(key, sizeof(key), "%s.%u", kKeys[e], k);
        row.push_back(agg.has(key) ? bench::fixed(agg.mean(key)) : "-");
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.to_string("event taxonomy").c_str());

    // Steady-state symmetry: elections ~ rejections (paper Section 5.3.2).
    double elect = 0.0, reject = 0.0;
    for (Level k = 1; k <= 8; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "ev.iii.%u", k);
      if (agg.has(key)) elect += agg.mean(key);
      std::snprintf(key, sizeof(key), "ev.v.%u", k);
      if (agg.has(key)) elect += agg.mean(key);
      std::snprintf(key, sizeof(key), "ev.iv.%u", k);
      if (agg.has(key)) reject += agg.mean(key);
      std::snprintf(key, sizeof(key), "ev.vi.%u", k);
      if (agg.has(key)) reject += agg.mean(key);
    }
    std::printf("election rate %.5f vs rejection rate %.5f (paper: equal in steady state)\n",
                elect, reject);
  }

  std::printf(
      "\nreading: every row decays left to right; recursive events (v)/(vi)\n"
      "are a minority of elections, consistent with the paper's claim that\n"
      "the domino effect only contributes a scaling constant (eq. 23).\n");
  return 0;
}
