#include "cluster/stability.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

/// Path 0-1-2 with controllable ids: heads depend on the id order.
Hierarchy path_hierarchy(const std::vector<NodeId>& ids) {
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  return HierarchyBuilder().build(g, ids);
}

TEST(HeadLifetime, StableHierarchyHasOnlyOngoingTenures) {
  const auto h = path_hierarchy({5, 1, 9});  // heads: 5 and 9 at level 1
  HeadLifetimeTracker tracker;
  tracker.observe(h, 0.0);
  tracker.observe(h, 10.0);
  const auto stats = tracker.stats(1);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.ongoing, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_ongoing_age, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_lifetime, 0.0);
}

TEST(HeadLifetime, HeadReplacementCompletesTenure) {
  HeadLifetimeTracker tracker;
  tracker.observe(path_hierarchy({5, 1, 9}), 0.0);   // level-1 heads {5, 9}
  tracker.observe(path_hierarchy({5, 1, 9}), 4.0);
  // Swap ids so vertex 0's id becomes dominated: ids {1, 5, 9} => vertex 1
  // heads {0,1} (id 5), vertex 2 self-heads (id 9). Head id 1?? — heads are
  // {5, 9} again by id value; craft a real change instead: {9, 1, 5} makes
  // vertex 0 (id 9) the sole dominator of vertex 1; vertex 2 (id 5) self-heads.
  tracker.observe(path_hierarchy({9, 1, 5}), 4.0);
  // Old head ids {5, 9} vs new {9, 5} — same id set, so no completion yet.
  EXPECT_EQ(tracker.stats(1).completed, 0u);

  // Now collapse to a single head: star ids where middle dominates.
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const auto h = HierarchyBuilder().build(g, std::vector<NodeId>{1, 9, 5});
  tracker.observe(h, 6.0);  // heads now {9}: ids 5 lived 0..6
  const auto stats = tracker.stats(1);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_lifetime, 6.0);
  EXPECT_EQ(stats.ongoing, 1u);  // head id 9 still alive
}

TEST(HeadLifetime, RebornHeadStartsFreshTenure) {
  HeadLifetimeTracker tracker;
  const auto two_heads = path_hierarchy({5, 1, 9});
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const auto one_head = HierarchyBuilder().build(g, std::vector<NodeId>{1, 9, 5});
  tracker.observe(two_heads, 0.0);
  tracker.observe(one_head, 3.0);   // head 5 dies (lifetime 3)
  tracker.observe(two_heads, 5.0);  // head 5 reborn
  tracker.observe(one_head, 6.0);   // head 5 dies again (lifetime 1)
  const auto stats = tracker.stats(1);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_lifetime, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_lifetime, 3.0);
}

TEST(HeadLifetime, VanishingLevelCompletesEverything) {
  // Two-node graph has a level-1; single node has none.
  const Graph pair(2, std::vector<Edge>{{0, 1}});
  const auto with_level = HierarchyBuilder().build(pair);
  const Graph solo(1);
  const auto without_level = HierarchyBuilder().build(solo);

  HeadLifetimeTracker tracker;
  tracker.observe(with_level, 0.0);
  // Note: different node populations are fine for the tracker (it only sees
  // head ids per level).
  tracker.observe(without_level, 7.0);
  const auto stats = tracker.stats(1);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_lifetime, 7.0);
  EXPECT_EQ(stats.ongoing, 0u);
}

TEST(HeadLifetime, TenureGrowsWithLevelOnMobileRun) {
  // The paper's Section 5.3 temporal claim: higher-level heads live longer
  // (T ~ h_k). Simulate a random-walking deployment and compare level-1 vs
  // level-2 mean completed tenure.
  const Size n = 300;
  common::Xoshiro256 rng(5);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  HierarchyOptions opts;
  opts.geometric_links = true;
  opts.tx_radius = 2.2;
  HierarchyBuilder hb(opts);

  HeadLifetimeTracker tracker;
  tracker.observe(hb.build(builder.build(pts), {}, pts), 0.0);
  for (int t = 1; t <= 80; ++t) {
    for (auto& p : pts) {
      p = disk.clamp(p + geom::Vec2{common::uniform(rng, -1, 1),
                                    common::uniform(rng, -1, 1)});
    }
    tracker.observe(hb.build(builder.build(pts), {}, pts), static_cast<Time>(t));
  }
  const auto l1 = tracker.stats(1);
  const auto l2 = tracker.stats(2);
  ASSERT_GT(l1.completed, 10u);
  ASSERT_GT(l2.completed, 3u);
  EXPECT_GT(l2.mean_lifetime, l1.mean_lifetime * 0.8);
}

TEST(HeadLifetime, StatsForUnseenLevelAreEmpty) {
  HeadLifetimeTracker tracker;
  const auto stats = tracker.stats(3);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.ongoing, 0u);
}

}  // namespace
}  // namespace manet::cluster
