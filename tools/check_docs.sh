#!/bin/sh
# Documentation lint, run as a ctest (see tools/CMakeLists.txt).
#
# Checks that the prose cannot silently drift from the code:
#   1. every src/<subsystem>/ directory is mentioned in docs/ARCHITECTURE.md;
#   2. every `bench_*` binary named in EXPERIMENTS.md exists in
#      bench/CMakeLists.txt (and therefore gets built);
#   3. every bench source file has a matching bench/CMakeLists.txt entry.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
status=0

fail() {
    echo "check_docs: $1" >&2
    status=1
}

arch="$root/docs/ARCHITECTURE.md"
experiments="$root/EXPERIMENTS.md"
bench_cmake="$root/bench/CMakeLists.txt"

for f in "$arch" "$experiments" "$bench_cmake"; do
    [ -f "$f" ] || { echo "check_docs: missing $f" >&2; exit 1; }
done

# 1. Every src/ subsystem appears in ARCHITECTURE.md.
for dir in "$root"/src/*/; do
    name=$(basename "$dir")
    grep -q "$name" "$arch" ||
        fail "src/$name is never mentioned in docs/ARCHITECTURE.md"
done

# 2. Every bench binary named in EXPERIMENTS.md is registered in
#    bench/CMakeLists.txt.
for bench in $(grep -o 'bench_[a-z_0-9]*' "$experiments" | sort -u); do
    [ "$bench" = "bench_util" ] && continue  # shared header, not a binary
    grep -q "$bench" "$bench_cmake" ||
        fail "EXPERIMENTS.md names $bench but bench/CMakeLists.txt does not build it"
done

# 3. Every bench source has a CMake registration (catches forgotten adds).
for src in "$root"/bench/bench_*.cpp; do
    name=$(basename "$src" .cpp)
    grep -q "$name" "$bench_cmake" ||
        fail "bench/$name.cpp exists but bench/CMakeLists.txt does not build it"
done

# 4. The fault-injection chapter exists and names the three fault-plane
#    classes plus the sanitizer switch (keeps the chapter from rotting if
#    the classes are renamed).
grep -q '^## Fault injection & resilience' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Fault injection & resilience' chapter"
for sym in FaultConfig LossyChannel ReliableTransfer MANET_SANITIZE; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md fault chapter no longer mentions $sym"
done

# 5. The incremental tick pipeline is documented: the architecture chapter
#    exists and names the load-bearing pieces, and the bench + regression
#    gate are described in EXPERIMENTS.md.
grep -q '^## Incremental tick pipeline' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Incremental tick pipeline' chapter"
for sym in incremental_tick UnitDiskBuilder::update bit-identical tick_pipeline_test; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md tick-pipeline chapter no longer mentions $sym"
done
grep -q 'bench_tick_pipeline' "$experiments" ||
    fail "EXPERIMENTS.md lost its bench_tick_pipeline section"
grep -q 'check_bench.py' "$experiments" ||
    fail "EXPERIMENTS.md must describe the check_bench.py regression gate"
[ -f "$root/tools/baselines/BENCH_tick_pipeline.json" ] ||
    fail "tools/baselines/BENCH_tick_pipeline.json baseline is missing"

# 6. The dynamic resilience experiment is documented.
grep -q 'E21-dynamic' "$experiments" ||
    fail "EXPERIMENTS.md lost its E21-dynamic section"
grep -q 'manet-resilience/1' "$experiments" ||
    fail "EXPERIMENTS.md E21-dynamic must name the manet-resilience/1 schema"

# 7. The campaign guide matches the code: every --flag docs/CAMPAIGNS.md
#    names must be parsed in src/exp/cli.cpp, and every checkpoint schema
#    field / schema ID it documents must appear in src/exp/campaign_runner.cpp
#    (so renaming a flag or a JSON field without updating the guide fails CI).
campaigns="$root/docs/CAMPAIGNS.md"
cli_src="$root/src/exp/cli.cpp"
runner_src="$root/src/exp/campaign_runner.cpp"
if [ ! -f "$campaigns" ]; then
    fail "docs/CAMPAIGNS.md is missing"
else
    for flag in $(grep -o -- '--[a-z][a-z-]*' "$campaigns" | sort -u); do
        grep -q -- "$flag" "$cli_src" ||
            fail "docs/CAMPAIGNS.md names $flag but src/exp/cli.cpp does not know it"
    done
    for field in campaign fingerprint unit point block rep_begin rep_end \
                 wall_seconds replications; do
        grep -q "\`$field\`" "$campaigns" ||
            fail "docs/CAMPAIGNS.md checkpoint schema reference lost the $field field"
        grep -q "\"$field\"" "$runner_src" ||
            fail "docs/CAMPAIGNS.md documents checkpoint field '$field' but \
src/exp/campaign_runner.cpp never writes it"
    done
    for schema in manet-campaign-spec/1 manet-campaign/1 manet-campaign-unit/1 \
                  manet-bench-artifact/1; do
        grep -q "$schema" "$campaigns" ||
            fail "docs/CAMPAIGNS.md no longer names the $schema schema"
        grep -q "$schema" "$runner_src" ||
            fail "docs/CAMPAIGNS.md names schema $schema but \
src/exp/campaign_runner.cpp does not use it"
    done
    grep -q 'bench_campaign' "$experiments" ||
        fail "EXPERIMENTS.md lost its bench_campaign section"
    [ -f "$root/tools/baselines/BENCH_campaign.json" ] ||
        fail "tools/baselines/BENCH_campaign.json baseline is missing"
fi

# 8. The memory layer is documented and its gate cannot silently rot: the
#    architecture chapter exists and names the load-bearing pieces, the
#    MANET_PROFILE_ALLOC switch it documents is a real CMake option, and the
#    bench_memory acceptance gate (E27) keeps its baseline + scalars.
grep -q '^## Memory layer' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Memory layer' chapter"
for sym in FlatMap ArenaScratch EventClosure MANET_PROFILE_ALLOC \
           max_allocs_per_tick; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md memory chapter no longer mentions $sym"
done
grep -q 'MANET_PROFILE_ALLOC' "$root/CMakeLists.txt" ||
    fail "docs reference MANET_PROFILE_ALLOC but CMakeLists.txt does not define it"
grep -q 'bench_memory' "$experiments" ||
    fail "EXPERIMENTS.md lost its bench_memory (E27) section"
grep -q 'MANET_PROFILE_ALLOC' "$experiments" ||
    fail "EXPERIMENTS.md E27 must describe the MANET_PROFILE_ALLOC alloc gate"
[ -f "$root/tools/baselines/BENCH_memory.json" ] ||
    fail "tools/baselines/BENCH_memory.json baseline is missing"
for scalar in min_speedup max_allocs_per_tick; do
    grep -q "\"$scalar\"" "$root/tools/baselines/BENCH_memory.json" ||
        fail "BENCH_memory.json baseline lost its $scalar acceptance scalar"
done

# 8b. The session/handover-FSM plane is documented and its gate cannot
#     silently rot: the architecture chapter exists and names the
#     load-bearing pieces, EXPERIMENTS.md keeps E29 and the report schema,
#     and the bench_sessions baseline keeps its acceptance-cap scalars.
grep -q '^## Session-riding handover FSM' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Session-riding handover FSM' chapter"
for sym in HandoverManager HandoverObserver kRolledBack rollback_failures \
           LocatorView; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md handover chapter no longer mentions $sym"
done
grep -q 'bench_sessions' "$experiments" ||
    fail "EXPERIMENTS.md lost its bench_sessions (E29) section"
grep -q 'manet-sessions/1' "$experiments" ||
    fail "EXPERIMENTS.md E29 must name the manet-sessions/1 schema"
[ -f "$root/tools/baselines/BENCH_sessions.json" ] ||
    fail "tools/baselines/BENCH_sessions.json baseline is missing"
for scalar in max_session_interruption_p99 max_misroute_rate; do
    grep -q "\"$scalar\"" "$root/tools/baselines/BENCH_sessions.json" ||
        fail "BENCH_sessions.json baseline lost its $scalar acceptance scalar"
done

# 8c. The sharded parallel tick is documented and its gates cannot silently
#     rot: the architecture chapter exists and names the load-bearing
#     pieces, EXPERIMENTS.md keeps E30, and the bench_capacity baseline
#     keeps its acceptance scalar.
grep -q '^## Sharded parallel tick' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Sharded parallel tick' chapter"
for sym in ShardExecutor kDefaultShardCount ShardedEdgeDiff \
           sharded_tick_test min_capacity_n; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md sharded-tick chapter no longer mentions $sym"
done
grep -q 'E30' "$experiments" ||
    fail "EXPERIMENTS.md lost its E30 (sharded-tick capacity) section"
grep -q 'identity_violations' "$experiments" ||
    fail "EXPERIMENTS.md E30 must describe the identity_violations gate"
[ -f "$root/tools/baselines/BENCH_capacity.json" ] ||
    fail "tools/baselines/BENCH_capacity.json baseline is missing"
grep -q '"min_capacity_n"' "$root/tools/baselines/BENCH_capacity.json" ||
    fail "BENCH_capacity.json baseline lost its min_capacity_n acceptance scalar"

# 8d. The query-serving plane is documented and its gates cannot silently
#     rot: the user guide exists and documents every QueryEngine public
#     method, the batch rendezvous kernels and the CLI flag (and each of
#     those must still exist in the code), the architecture chapter exists
#     and names the load-bearing pieces, EXPERIMENTS.md keeps E31 + the
#     artifact schema, and the bench_query baseline keeps its gate scalars.
qe_doc="$root/docs/QUERY_ENGINE.md"
qe_hpp="$root/src/lm/query_engine.hpp"
if [ ! -f "$qe_doc" ]; then
    fail "docs/QUERY_ENGINE.md is missing"
else
    # code -> docs: every QueryEngine public method must be documented.
    for method in publish lookup lookup_batch epoch; do
        grep -q "$method" "$qe_doc" ||
            fail "docs/QUERY_ENGINE.md no longer documents QueryEngine::$method"
        grep -q "$method" "$qe_hpp" ||
            fail "docs/QUERY_ENGINE.md documents QueryEngine::$method but \
src/lm/query_engine.hpp does not declare it"
    done
    for sym in rendezvous_pick_batch rendezvous_pick_weighted_batch \
               RendezvousScratch QueryResult kInvalidNode; do
        grep -q "$sym" "$qe_doc" ||
            fail "docs/QUERY_ENGINE.md no longer mentions $sym"
    done
    grep -q -- '--query-load' "$qe_doc" ||
        fail "docs/QUERY_ENGINE.md lost its --query-load section"
    grep -q -- '"--query-load"' "$cli_src" ||
        fail "docs/QUERY_ENGINE.md documents --query-load but \
src/exp/cli.cpp does not parse it"
    grep -q 'manet-bench-artifact/1' "$qe_doc" ||
        fail "docs/QUERY_ENGINE.md no longer names the artifact schema"
fi
grep -q '^## Query engine' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Query engine' chapter"
for sym in QueryEngine rendezvous_pick_batch query_engine_test seq_cst \
           query_load; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md query-engine chapter no longer mentions $sym"
done
grep -q 'E31' "$experiments" ||
    fail "EXPERIMENTS.md lost its E31 (query serving) section"
grep -q 'BENCH_query_cost' "$experiments" ||
    fail "EXPERIMENTS.md must name the split E12b artifact BENCH_query_cost.json"
[ -f "$root/tools/baselines/BENCH_query.json" ] ||
    fail "tools/baselines/BENCH_query.json baseline is missing"
for scalar in min_lookups_per_sec max_lookup_p99_us; do
    grep -q "\"$scalar\"" "$root/tools/baselines/BENCH_query.json" ||
        fail "BENCH_query.json baseline lost its $scalar gate scalar"
done

# 8e. The runtime shard topology + SoA node state (PR 10) are documented
#     and their gates cannot silently rot: the architecture chapter names
#     the load-bearing pieces (and they still exist in the code), CLI.md
#     documents --shards, and the bench_capacity baseline keeps the
#     parallel-speedup gate scalars.
for sym in resolve_shard_count NodeStateSoA min_parallel_speedup speedup_max \
           '--shards'; do
    grep -q -- "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md sharded-tick chapter no longer mentions $sym"
done
grep -q 'resolve_shard_count' "$root/src/sim/shard.hpp" ||
    fail "docs name sim::resolve_shard_count but src/sim/shard.hpp lost it"
grep -q 'class NodeStateSoA' "$root/src/sim/node_state.hpp" ||
    fail "docs name sim::NodeStateSoA but src/sim/node_state.hpp lost it"
grep -q -- '"--shards"' "$cli_src" ||
    fail "docs document --shards but src/exp/cli.cpp does not parse it"
for scalar in min_parallel_speedup speedup_max; do
    grep -q "\"$scalar\"" "$root/tools/baselines/BENCH_capacity.json" ||
        fail "BENCH_capacity.json baseline lost its $scalar gate scalar"
done
grep -q 'min_parallel_speedup' "$experiments" ||
    fail "EXPERIMENTS.md E30 must describe the min_parallel_speedup gate"

# 9. No dangling intra-doc links in docs/*.md: every relative link target
#    must exist on disk and every #fragment must match a heading slug
#    (GitHub-style: lowercase, punctuation stripped, spaces to dashes).
slugify() {
    tr '[:upper:]' '[:lower:]' | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}
for doc in "$root"/docs/*.md; do
    for link in $(grep -o '](\([^)]*\))' "$doc" | sed -e 's/^](//' -e 's/)$//'); do
        case $link in
            http://*|https://*|mailto:*) continue ;;
        esac
        file=${link%%#*}
        frag=
        case $link in
            *#*) frag=${link#*#} ;;
        esac
        target=$doc
        if [ -n "$file" ]; then
            target="$root/docs/$file"
            if [ ! -f "$target" ]; then
                fail "$(basename "$doc") links to missing file $file"
                continue
            fi
        fi
        if [ -n "$frag" ]; then
            sed -n 's/^#\{1,\} *//p' "$target" | slugify | grep -qx "$frag" ||
                fail "$(basename "$doc") links to missing anchor \
#$frag in $(basename "$target")"
        fi
    done
done

# 10. The CLI + RunOptions reference (docs/CLI.md) is complete in both
#     directions: every --flag parse_cli understands is documented, every
#     --flag the doc names still parses, every RunOptions field has a doc
#     row, and every documented field still exists in the struct.
cli_doc="$root/docs/CLI.md"
sim_hpp="$root/src/exp/simulation.hpp"
if [ ! -f "$cli_doc" ]; then
    fail "docs/CLI.md is missing"
else
    # code -> docs: flags are string literals in src/exp/cli.cpp.
    for flag in $(grep -o -- '"--[a-z][a-z-]*"' "$cli_src" | tr -d '"' | sort -u); do
        grep -q -- "\`$flag[\` ]" "$cli_doc" ||
            fail "src/exp/cli.cpp parses $flag but docs/CLI.md does not document it"
    done
    # docs -> code: every flag the reference names must still be parsed.
    for flag in $(grep -o -- '`--[a-z][a-z-]*' "$cli_doc" | tr -d '\`' | sort -u); do
        grep -q -- "\"$flag\"" "$cli_src" ||
            fail "docs/CLI.md documents $flag but src/exp/cli.cpp does not parse it"
    done
    # code -> docs: every RunOptions field gets a `field` row.
    for field in $(sed -n '/^struct RunOptions {/,/^};/p' "$sim_hpp" |
                   sed -n 's/^ *[A-Za-z_].*[ *]\([a-z_][a-z_0-9]*\) =.*/\1/p'); do
        grep -q "\`$field\`" "$cli_doc" ||
            fail "RunOptions::$field is not documented in docs/CLI.md"
    done
    # docs -> code: every field row in the RunOptions table is a real field.
    for field in $(sed -n '/^## `exp::RunOptions` fields/,$p' "$cli_doc" |
                   sed -n 's/^| `\([a-z_][a-z_0-9]*\)`.*/\1/p'); do
        sed -n '/^struct RunOptions {/,/^};/p' "$sim_hpp" | grep -q "[ *]$field =" ||
            fail "docs/CLI.md documents RunOptions field '$field' but \
src/exp/simulation.hpp does not declare it"
    done
fi

[ "$status" -eq 0 ] && echo "check_docs: OK"
exit "$status"
