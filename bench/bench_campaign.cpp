/// E26: campaign orchestrator overhead — checkpointed units vs raw replications.
///
/// The campaign path (exp/campaign_runner.hpp) decomposes a sweep into work
/// units, writes a JSON checkpoint per unit and replays the checkpoints into
/// an index-ordered merge. That durability must be close to free: this bench
/// times the full plan -> run -> merge pipeline against a raw
/// run_replications call over the same scenario at n in {128, 256} and
/// reports the wall-clock overhead fraction, which the check_bench.py gate
/// holds under max_orchestrator_overhead_frac (2%). Every merged aggregate is
/// also compared metric-for-metric against the raw path — the orchestrator is
/// bit-identical by contract, and the bench exits non-zero on any divergence.

#include <filesystem>

#include "bench_util.hpp"
#include "exp/campaign_runner.hpp"

using namespace manet;

namespace {

namespace fs = std::filesystem;

struct TimedAggregate {
  exp::AggregatedMetrics agg;
  double wall_seconds = 0.0;  // best of `timing_reps` runs (min wall time)
};

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
  return wall.count();
}

/// One timed raw pass: a plain run_replications call.
double time_raw(const exp::ScenarioConfig& cfg, const exp::RunOptions& opts,
                Size replications, exp::AggregatedMetrics* agg_out) {
  const auto start = std::chrono::steady_clock::now();
  auto agg = exp::run_replications(cfg, replications, opts);
  const double wall = seconds_since(start);
  if (agg_out != nullptr) *agg_out = std::move(agg);
  return wall;
}

struct CampaignPass {
  double wall_seconds = 0.0;  ///< full plan -> run -> merge wall time
  double sim_seconds = 0.0;   ///< sum of per-unit simulation time (from the
                              ///< wall_seconds each checkpoint records)
  /// Orchestration cost of THIS pass: everything the campaign path does on
  /// top of the simulations (fingerprint, manifest + checkpoint writes, the
  /// read-back + index-ordered merge). Both terms come from the same pass,
  /// so clock drift between passes cancels — unlike a raw-vs-campaign
  /// wall-clock difference, which on a shared machine swings by more than
  /// the quantity being measured.
  double overhead_frac() const { return (wall_seconds - sim_seconds) / sim_seconds; }
};

/// One timed campaign pass: plan -> run (manifest + unit checkpoints) ->
/// coverage-validated merge, against a fresh directory.
CampaignPass time_campaign(const exp::CampaignSpec& spec, const std::string& dir,
                           exp::AggregatedMetrics* agg_out) {
  fs::remove_all(dir);  // a fresh campaign, not a resume
  const auto start = std::chrono::steady_clock::now();
  exp::CampaignRunner runner(spec, dir);
  const auto report = runner.run();
  auto merged = runner.merge();
  CampaignPass pass;
  pass.wall_seconds = seconds_since(start);
  if (!report.ok || !merged.ok) {
    std::fprintf(stderr, "bench_campaign: %s\n",
                 (!report.ok ? report.error : merged.error).c_str());
    std::exit(1);
  }
  for (const auto& unit : runner.plan()) {
    exp::UnitRecord record;
    std::string error;
    if (!exp::read_unit_checkpoint(exp::unit_checkpoint_path(dir, unit), spec, record,
                                   error)) {
      std::fprintf(stderr, "bench_campaign: %s\n", error.c_str());
      std::exit(1);
    }
    pass.sim_seconds += record.wall_seconds;
  }
  if (agg_out != nullptr) *agg_out = std::move(merged.campaign.points.front().metrics);
  return pass;
}

/// Exact comparison of two aggregates; prints every divergence.
Size count_divergences(const exp::AggregatedMetrics& raw,
                       const exp::AggregatedMetrics& merged) {
  Size bad = 0;
  const auto raw_names = raw.names();
  if (raw_names != merged.names() ||
      raw.replication_count() != merged.replication_count()) {
    std::printf("  IDENTITY VIOLATION: aggregate shapes differ (%zu vs %zu metrics)\n",
                raw_names.size(), merged.names().size());
    return bad + 1;
  }
  for (const auto& name : raw_names) {
    const auto a = raw.summary(name);
    const auto b = merged.summary(name);
    if (a.count != b.count || a.mean != b.mean || a.stddev != b.stddev ||
        a.min != b.min || a.max != b.max) {
      std::printf("  IDENTITY VIOLATION at %s: raw mean=%.17g merged mean=%.17g\n",
                  name.c_str(), a.mean, b.mean);
      ++bad;
    }
  }
  return bad;
}

}  // namespace

int main() {
  bench::print_header(
      "E26  bench_campaign — checkpointed campaign orchestration overhead",
      "plan -> run -> merge is bit-identical to run_replications and costs "
      "< 2% wall-clock over it");

  auto base = bench::paper_scenario();
  base.warmup = 5.0;
  base.duration = 20.0;

  exp::RunOptions opts;
  opts.measure_hops = false;  // per-tick cost only, as in bench_tick_pipeline
  opts.track_states = false;

  // n large enough that a unit runs for hundreds of ms: the orchestrator's
  // cost is fixed per unit (checkpoint write + read-back), so tiny runs
  // would report an overhead fraction no real campaign ever sees.
  const std::vector<Size> nodes{256, 512};
  const Size replications = 4;
  const Size timing_reps = 3;
  bench::Artifact artifact("campaign", base, replications);

  const std::string dir =
      (fs::temp_directory_path() / "manet_bench_campaign").string();

  Size violations = 0;
  double max_overhead = 0.0;
  analysis::TextTable table({"|V|", "raw (ticks/s)", "campaign (ticks/s)", "overhead"});
  for (const Size n : nodes) {
    auto cfg = base;
    cfg.n = n;

    exp::CampaignSpec spec;
    spec.name = "bench";
    spec.scenario = cfg;
    spec.options = opts;
    spec.sweep = {n};
    spec.replications = replications;
    spec.block = 2;  // 2 units per point: checkpoint + merge paths both exercised

    TimedAggregate raw, campaign;
    raw.wall_seconds = std::numeric_limits<double>::infinity();
    campaign.wall_seconds = std::numeric_limits<double>::infinity();
    double overhead = std::numeric_limits<double>::infinity();
    for (Size r = 0; r < timing_reps; ++r) {
      raw.wall_seconds = std::min(
          raw.wall_seconds, time_raw(cfg, opts, replications, r == 0 ? &raw.agg : nullptr));
      const auto pass = time_campaign(spec, dir, r == 0 ? &campaign.agg : nullptr);
      campaign.wall_seconds = std::min(campaign.wall_seconds, pass.wall_seconds);
      overhead = std::min(overhead, pass.overhead_frac());
    }
    fs::remove_all(dir);
    violations += count_divergences(raw.agg, campaign.agg);

    const auto ticks = raw.agg.summary("ticks");
    const double total_ticks = ticks.mean * static_cast<double>(ticks.count);
    const double raw_tps = total_ticks / raw.wall_seconds;
    const double campaign_tps = total_ticks / campaign.wall_seconds;
    max_overhead = std::max(max_overhead, overhead);

    char overhead_cell[32];
    std::snprintf(overhead_cell, sizeof(overhead_cell), "%+.2f%%", overhead * 100.0);
    table.add_row({std::to_string(n), bench::fixed(raw_tps, 5),
                   bench::fixed(campaign_tps, 5), overhead_cell});

    const auto point = [n](double v, Size count) {
      return exp::SeriesPoint{static_cast<double>(n), v, 0.0, count};
    };
    artifact.add_point("ticks_per_sec_raw", point(raw_tps, timing_reps));
    artifact.add_point("ticks_per_sec_campaign", point(campaign_tps, timing_reps));
  }
  std::printf("%s", table.to_string("orchestrator overhead (best of 3 passes)").c_str());

  artifact.set_scalar("orchestrator_overhead_frac", max_overhead);
  artifact.set_scalar("max_orchestrator_overhead_frac", 0.02);
  artifact.set_scalar("identity_violations", static_cast<double>(violations));
  std::printf(
      "\nreading: overhead is measured within one campaign pass — full wall\n"
      "time minus the simulation seconds the unit checkpoints record — so it\n"
      "isolates the orchestration cost (manifest + checkpoint writes, the\n"
      "read-back + index-ordered merge) from machine noise. the ticks/s\n"
      "columns are the cross-path comparison on this machine.\n"
      "worst overhead: %+.2f%% (gate: +2%%). identity violations: %zu (must be 0).\n",
      max_overhead * 100.0, violations);
  artifact.write();
  return violations == 0 ? 0 : 1;
}
