#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manet::viz {
namespace {

TEST(Svg, EmptyDocumentIsWellFormed) {
  SvgCanvas canvas({0, 0}, {10, 10}, 100.0);
  std::ostringstream os;
  canvas.write(os);
  const auto doc = os.str();
  EXPECT_NE(doc.find("<?xml"), std::string::npos);
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_EQ(canvas.shape_count(), 0u);
}

TEST(Svg, ShapesAppearInDocument) {
  SvgCanvas canvas({0, 0}, {10, 10}, 100.0);
  Style s;
  s.fill = "#ff0000";
  canvas.circle({5, 5}, 1.0, s);
  canvas.line({0, 0}, {10, 10}, s);
  canvas.text({1, 1}, "hello");
  EXPECT_EQ(canvas.shape_count(), 3u);
  std::ostringstream os;
  canvas.write(os);
  const auto doc = os.str();
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find(">hello</text>"), std::string::npos);
  EXPECT_NE(doc.find("#ff0000"), std::string::npos);
}

TEST(Svg, WorldToViewportMapping) {
  // World [0,10]^2 onto 100 px: center (5,5) -> (50, 50) with y flipped.
  SvgCanvas canvas({0, 0}, {10, 10}, 100.0);
  canvas.circle({5, 5}, 2.0, Style{});
  std::ostringstream os;
  canvas.write(os);
  const auto doc = os.str();
  EXPECT_NE(doc.find("cx=\"50.00\" cy=\"50.00\" r=\"20.00\""), std::string::npos);
}

TEST(Svg, YAxisIsFlipped) {
  SvgCanvas canvas({0, 0}, {10, 10}, 100.0);
  canvas.circle({0, 10}, 1.0, Style{});  // top-left in world
  std::ostringstream os;
  canvas.write(os);
  // Should land at pixel y = 0 (SVG top).
  EXPECT_NE(os.str().find("cx=\"0.00\" cy=\"0.00\""), std::string::npos);
}

TEST(Svg, PaletteCyclesStably) {
  EXPECT_EQ(SvgCanvas::palette(0), SvgCanvas::palette(10));
  EXPECT_NE(SvgCanvas::palette(0), SvgCanvas::palette(1));
  EXPECT_FALSE(SvgCanvas::palette(7).empty());
}

TEST(SvgDeath, DegenerateWorldRejected) {
  EXPECT_DEATH(SvgCanvas({0, 0}, {0, 10}, 100.0), "");
}

}  // namespace
}  // namespace manet::viz
