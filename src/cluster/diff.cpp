#include "cluster/diff.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/flat_map.hpp"

namespace manet::cluster {

const char* to_string(ReorgEventType type) {
  switch (type) {
    case ReorgEventType::kLinkUp: return "i:link_up";
    case ReorgEventType::kLinkDown: return "ii:link_down";
    case ReorgEventType::kElectByMigration: return "iii:elect_migration";
    case ReorgEventType::kRejectByMigration: return "iv:reject_migration";
    case ReorgEventType::kElectRecursive: return "v:elect_recursive";
    case ReorgEventType::kRejectRecursive: return "vi:reject_recursive";
    case ReorgEventType::kNeighborPromoted: return "vii:neighbor_promoted";
  }
  return "?";
}

Size HierarchyDelta::count(ReorgEventType type, Level level) const {
  const auto& per_level = event_counts[static_cast<std::size_t>(type)];
  return level < per_level.size() ? per_level[level] : 0;
}

namespace {

using IdPair = std::pair<NodeId, NodeId>;

/// Sorted original ids of V_k; empty when the hierarchy lacks level k.
/// Arena-backed: the span lives until the caller's next rewind().
std::span<NodeId> sorted_head_ids(const Hierarchy& h, Level k, common::ArenaScratch& arena) {
  if (k >= h.level_count()) return {};
  const auto& ids = h.level(k).ids;
  auto out = arena.alloc_span<NodeId>(ids.size());
  std::copy(ids.begin(), ids.end(), out.begin());
  std::sort(out.begin(), out.end());
  return out;
}

/// Canonical sorted id-pair list of E_k; empty when level k is absent.
std::span<IdPair> sorted_link_ids(const Hierarchy& h, Level k, common::ArenaScratch& arena) {
  if (k >= h.level_count()) return {};
  const auto& view = h.level(k);
  auto out = arena.alloc_span<IdPair>(view.topo.edge_count());
  Size i = 0;
  for (const auto& [a, b] : view.topo.edges()) {
    NodeId ia = view.ids[a];
    NodeId ib = view.ids[b];
    if (ia > ib) std::swap(ia, ib);
    out[i++] = IdPair{ia, ib};
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool contains_sorted(std::span<const NodeId> sorted, NodeId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

/// Ids of the level-(k-1) vertices affiliated with head id \p head in \p h
/// (excluding the head itself). Empty if level k-1 or the head is absent.
/// Counted first so the arena span is exact-sized.
std::span<const NodeId> voter_ids(const Hierarchy& h, Level k, NodeId head,
                                  common::ArenaScratch& arena) {
  MANET_CHECK(k >= 1);
  if (k - 1 >= h.level_count()) return {};
  const auto& view = h.level(k - 1);
  // Locate the head's dense vertex at level k-1.
  NodeId head_dense = kInvalidNode;
  for (NodeId u = 0; u < view.vertex_count(); ++u) {
    if (view.ids[u] == head) {
      head_dense = u;
      break;
    }
  }
  if (head_dense == kInvalidNode || view.election.head_of.empty()) return {};
  Size count = 0;
  for (NodeId u = 0; u < view.vertex_count(); ++u) {
    if (u != head_dense && view.election.head_of[u] == head_dense) ++count;
  }
  auto out = arena.alloc_span<NodeId>(count);
  Size i = 0;
  for (NodeId u = 0; u < view.vertex_count(); ++u) {
    if (u != head_dense && view.election.head_of[u] == head_dense) out[i++] = view.ids[u];
  }
  return out;
}

void record(HierarchyDelta& delta, ReorgEventType type, Level level, NodeId a, NodeId b) {
  delta.events.push_back(ReorgEvent{type, level, a, b});
  auto& per_level = delta.event_counts[static_cast<std::size_t>(type)];
  if (per_level.size() <= level) per_level.resize(level + 1, 0);
  ++per_level[level];
}

}  // namespace

namespace {

/// Clear-and-resize for the per-level vector-of-vectors members: keeps the
/// outer vector and every surviving inner buffer's capacity.
template <typename Inner>
void reset_levels(std::vector<Inner>& levels, Size size) {
  for (auto& inner : levels) inner.clear();
  levels.resize(size);
}

}  // namespace

HierarchyDelta diff_hierarchies(const Hierarchy& before, const Hierarchy& after) {
  HierarchyDelta delta;
  diff_hierarchies(before, after, delta);
  return delta;
}

void diff_hierarchies(const Hierarchy& before, const Hierarchy& after, HierarchyDelta& delta) {
  MANET_CHECK_MSG(before.level(0).vertex_count() == after.level(0).vertex_count(),
                  "hierarchy diff requires identical node populations");
  // Per-thread scratch: campaign workers diff disjoint runs, and the scratch
  // contents never outlive the call, so thread_local reuse is safe and keeps
  // the per-tick diff allocation-free once the arena has sized itself.
  thread_local common::ArenaScratch arena;
  thread_local common::FlatMap<NodeId, NodeId> dense;  // id -> dense, event (vii)
  arena.rewind();
  delta.migrations.clear();
  delta.events.clear();
  for (auto& per_level : delta.event_counts) per_level.clear();

  const Level top_before = before.top_level();
  const Level top_after = after.top_level();
  const Level top_common = std::min(top_before, top_after);
  const Level top_any = std::max(top_before, top_after);

  // --- Per-node cluster membership migrations (phi triggers) ---
  const Size n = after.level(0).vertex_count();
  for (Level k = 1; k <= top_common; ++k) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId from = before.ancestor_id(v, k);
      const NodeId to = after.ancestor_id(v, k);
      if (from != to) delta.migrations.push_back(Migration{v, k, from, to});
    }
  }

  // --- Head and link set changes per level ---
  reset_levels(delta.heads_gained, top_any + 2);
  reset_levels(delta.heads_lost, top_any + 2);
  reset_levels(delta.links_up, top_any + 1);
  reset_levels(delta.links_down, top_any + 1);

  auto heads_before = arena.alloc_span<std::span<NodeId>>(top_any + 2);
  auto heads_after = arena.alloc_span<std::span<NodeId>>(top_any + 2);
  for (Level k = 0; k <= top_any + 1; ++k) {
    heads_before[k] = sorted_head_ids(before, k, arena);
    heads_after[k] = sorted_head_ids(after, k, arena);
  }

  for (Level k = 1; k <= top_any + 1; ++k) {
    std::set_difference(heads_after[k].begin(), heads_after[k].end(), heads_before[k].begin(),
                        heads_before[k].end(), std::back_inserter(delta.heads_gained[k]));
    std::set_difference(heads_before[k].begin(), heads_before[k].end(), heads_after[k].begin(),
                        heads_after[k].end(), std::back_inserter(delta.heads_lost[k]));
  }

  for (Level k = 1; k <= top_any; ++k) {
    const auto before_links = sorted_link_ids(before, k, arena);
    const auto after_links = sorted_link_ids(after, k, arena);
    std::set_difference(after_links.begin(), after_links.end(), before_links.begin(),
                        before_links.end(), std::back_inserter(delta.links_up[k]));
    std::set_difference(before_links.begin(), before_links.end(), after_links.begin(),
                        after_links.end(), std::back_inserter(delta.links_down[k]));
  }

  // --- Events (i)/(ii): level-k cluster link changes touching V_{k+1} ---
  // A level-k link change forces handoff only when an endpoint is a
  // level-(k+1) node, because then level-(k+1) cluster membership shifts
  // (paper Section 5.2 i/ii). Membership is judged in the snapshot where the
  // link exists.
  for (Level k = 1; k <= top_any; ++k) {
    for (const auto& [x, y] : delta.links_up[k]) {
      if (k + 1 < delta.heads_gained.size() &&
          (contains_sorted(heads_after[k + 1], x) || contains_sorted(heads_after[k + 1], y))) {
        record(delta, ReorgEventType::kLinkUp, k, x, y);
      }
    }
    for (const auto& [x, y] : delta.links_down[k]) {
      if (k + 1 < delta.heads_gained.size() &&
          (contains_sorted(heads_before[k + 1], x) || contains_sorted(heads_before[k + 1], y))) {
        record(delta, ReorgEventType::kLinkDown, k, x, y);
      }
    }
  }

  // --- Events (iii)-(vi): clusterhead election / rejection ---
  // Election of h into V_k is "recursive" (v) when some voter that now
  // affiliates with h was itself just promoted into V_{k-1}; otherwise the
  // voter set changed through migration (iii). Rejection mirrors this with
  // the before-snapshot voters (iv)/(vi).
  for (Level k = 1; k <= top_any + 1; ++k) {
    for (const NodeId h : delta.heads_gained[k]) {
      const auto voters = voter_ids(after, k, h, arena);
      bool recursive = false;
      NodeId witness = kInvalidNode;
      for (const NodeId u : voters) {
        if (k >= 2 && !contains_sorted(heads_before[k - 1], u)) {
          recursive = true;
          witness = u;
          break;
        }
      }
      if (!recursive && !voters.empty()) witness = voters.front();
      record(delta,
             recursive ? ReorgEventType::kElectRecursive : ReorgEventType::kElectByMigration,
             k, h, witness);
    }
    for (const NodeId h : delta.heads_lost[k]) {
      const auto voters = voter_ids(before, k, h, arena);
      bool recursive = false;
      NodeId witness = kInvalidNode;
      for (const NodeId u : voters) {
        if (k >= 2 && !contains_sorted(heads_after[k - 1], u)) {
          recursive = true;
          witness = u;
          break;
        }
      }
      if (!recursive && !voters.empty()) witness = voters.front();
      record(delta,
             recursive ? ReorgEventType::kRejectRecursive : ReorgEventType::kRejectByMigration,
             k, h, witness);
    }
  }

  // --- Event (vii): a level-k neighbor promoted to level-(k+1) head ---
  // Counted once per (affected level-k neighbor, new head) pair, per the
  // paper's note that (vii) applies to each u_k in N_k(v).
  for (Level k = 1; k <= top_any; ++k) {
    if (k + 1 >= delta.heads_gained.size()) break;
    if (k >= after.level_count()) break;
    const auto& view = after.level(k);
    // id -> dense map for this level (cleared per level, capacity retained).
    dense.clear();
    dense.reserve(view.vertex_count());
    for (NodeId u = 0; u < view.vertex_count(); ++u) dense.insert_or_assign(view.ids[u], u);
    for (const NodeId h : delta.heads_gained[k + 1]) {
      const NodeId* found = dense.find(h);
      if (found == nullptr) continue;
      for (const NodeId u : view.topo.neighbors(*found)) {
        record(delta, ReorgEventType::kNeighborPromoted, k, view.ids[u], h);
      }
    }
  }
}

}  // namespace manet::cluster
