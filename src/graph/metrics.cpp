#include "graph/metrics.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace manet::graph {

namespace {

/// Accumulate one BFS distance field into the running statistics.
void accumulate(const Graph& g, NodeId source, std::span<const std::uint32_t> dist,
                double& hop_sum, double& hop_max, Size& pairs, Size& unreachable) {
  for (NodeId v = 0; v < g.vertex_count(); ++v) {
    if (v == source) continue;
    if (dist[v] == kUnreachable) {
      ++unreachable;
    } else {
      hop_sum += dist[v];
      hop_max = std::max(hop_max, static_cast<double>(dist[v]));
      ++pairs;
    }
  }
}

}  // namespace

HopStats sample_hop_stats(const Graph& g, Size n_sources, common::Xoshiro256& rng) {
  HopStats out;
  const Size n = g.vertex_count();
  if (n < 2) return out;
  if (n_sources >= n) return exact_hop_stats(g);

  double hop_sum = 0.0, hop_max = 0.0;
  BfsScratch scratch;
  for (Size s = 0; s < n_sources; ++s) {
    const auto source = static_cast<NodeId>(common::uniform_index(rng, n));
    const auto dist = scratch.run(g, source);
    accumulate(g, source, dist, hop_sum, hop_max, out.sampled_pairs, out.unreachable);
  }
  if (out.sampled_pairs > 0) out.mean = hop_sum / static_cast<double>(out.sampled_pairs);
  out.max = hop_max;
  return out;
}

HopStats exact_hop_stats(const Graph& g) {
  HopStats out;
  const Size n = g.vertex_count();
  if (n < 2) return out;
  double hop_sum = 0.0, hop_max = 0.0;
  BfsScratch scratch;
  for (NodeId source = 0; source < n; ++source) {
    const auto dist = scratch.run(g, source);
    accumulate(g, source, dist, hop_sum, hop_max, out.sampled_pairs, out.unreachable);
  }
  if (out.sampled_pairs > 0) out.mean = hop_sum / static_cast<double>(out.sampled_pairs);
  out.max = hop_max;
  return out;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats out;
  const Size n = g.vertex_count();
  if (n == 0) return out;
  double sum = 0.0, sum2 = 0.0;
  double lo = static_cast<double>(g.degree(0));
  double hi = lo;
  for (NodeId v = 0; v < n; ++v) {
    const auto d = static_cast<double>(g.degree(v));
    sum += d;
    sum2 += d * d;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  const double dn = static_cast<double>(n);
  out.mean = sum / dn;
  out.min = lo;
  out.max = hi;
  out.variance = std::max(0.0, sum2 / dn - out.mean * out.mean);
  return out;
}

}  // namespace manet::graph
