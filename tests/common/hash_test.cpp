#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace manet::common {
namespace {

TEST(Mix64, IsDeterministic) { EXPECT_EQ(mix64(12345), mix64(12345)); }

TEST(Mix64, IsBijectiveOnSample) {
  // A bijective mixer cannot collide; verify on a dense sample.
  std::vector<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 20000; ++x) outs.push_back(mix64(x));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (std::uint64_t x = 1; x <= 64; ++x) {
    total_flips += __builtin_popcountll(mix64(x) ^ mix64(x ^ 1));
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, DistinctPairsRarelyCollide) {
  std::vector<std::uint64_t> outs;
  for (std::uint64_t a = 0; a < 100; ++a) {
    for (std::uint64_t b = 0; b < 100; ++b) outs.push_back(hash_combine(a, b));
  }
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of the empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
}

TEST(Fnv1a, DifferentStringsDiffer) {
  EXPECT_NE(fnv1a("alpha"), fnv1a("beta"));
  // Embedded NUL must matter (string_view length, not strlen).
  EXPECT_NE(fnv1a(std::string_view("a", 1)), fnv1a(std::string_view("a\0", 2)));
}

}  // namespace
}  // namespace manet::common
