#pragma once

#include "cluster/election.hpp"

/// \file maxmin.hpp
/// Max-min d-cluster formation (Amis, Prakash, Vuong & Huynh, Infocom 2000 —
/// the paper's ref [8]). Provided as the ablation baseline for E13: the same
/// hierarchy/LM machinery runs over a different clusterhead election rule.
///
/// The algorithm runs 2d information-exchange rounds:
///   floodmax (d rounds): each node propagates the largest id heard so far;
///   floodmin (d rounds): each node then propagates the smallest of the
///                        floodmax winners.
/// Election rules per node v (in order):
///   1. If v's own id appears among its floodmin round results, v is a head.
///   2. Else, if some id appears in both v's floodmax and floodmin round
///      results ("node pairs"), v elects the minimum such id.
///   3. Else v elects the maximum id seen in floodmax.
/// With d = 1 this degenerates to a 1-hop ID-based clustering akin to the
/// ALCA (paper Section 2.2 notes the equivalence).

namespace manet::cluster {

class MaxMinDCluster final : public ElectionAlgorithm {
 public:
  explicit MaxMinDCluster(Level d = 2);

  ElectionResult elect(const graph::Graph& g, std::span<const NodeId> ids) const override;
  const char* name() const override { return "maxmin_d"; }

  Level d() const { return d_; }

 private:
  Level d_;
};

}  // namespace manet::cluster
