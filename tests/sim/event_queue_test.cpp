#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.pop();
  EXPECT_EQ(q.pending_count(), 0u);
}

}  // namespace
}  // namespace manet::sim
