#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::graph {
namespace {

Graph path_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph(n, edges);
}

Graph cycle_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  edges.push_back({0, n - 1});
  return Graph(n, edges);
}

TEST(Bfs, PathDistancesAreLinear) {
  const auto g = path_graph(6);
  const auto dist = bfs_hops(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, CycleDistancesWrapAround) {
  const auto g = cycle_graph(8);
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 3u);
  EXPECT_EQ(dist[7], 1u);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g(4, std::vector<Edge>{{0, 1}});
  const auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, SourceIsZero) {
  const auto g = path_graph(3);
  EXPECT_EQ(bfs_hops(g, 1)[1], 0u);
}

TEST(BfsMulti, NearestSourceWins) {
  const auto g = path_graph(10);
  const std::vector<NodeId> sources{0, 9};
  const auto dist = bfs_hops_multi(g, sources);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[9], 0u);
  EXPECT_EQ(dist[4], 4u);
  EXPECT_EQ(dist[5], 4u);
}

TEST(BfsMulti, EmptySourcesAllUnreachable) {
  const auto g = path_graph(3);
  const auto dist = bfs_hops_multi(g, {});
  for (const auto d : dist) EXPECT_EQ(d, kUnreachable);
}

TEST(BfsMulti, DuplicateSourcesHandled) {
  const auto g = path_graph(4);
  const std::vector<NodeId> sources{2, 2, 2};
  const auto dist = bfs_hops_multi(g, sources);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[0], 2u);
}

TEST(BfsScratch, ReusableAcrossRuns) {
  const auto g = path_graph(5);
  BfsScratch scratch;
  const auto d0 = scratch.run(g, 0);
  EXPECT_EQ(d0[4], 4u);
  const auto d4 = scratch.run(g, 4);
  EXPECT_EQ(d4[0], 4u);
  EXPECT_EQ(scratch.hops_to(0), 4u);
}

TEST(BfsScratch, WorksAcrossDifferentGraphSizes) {
  BfsScratch scratch;
  scratch.run(path_graph(10), 0);
  const auto d = scratch.run(path_graph(3), 0);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d[2], 2u);
}

TEST(BfsPair, PathCycleAndSelf) {
  BfsPairScratch pair;
  const auto p = path_graph(6);
  EXPECT_EQ(pair.hops(p, 0, 0), 0u);
  EXPECT_EQ(pair.hops(p, 0, 5), 5u);
  EXPECT_EQ(pair.hops(p, 5, 0), 5u);
  EXPECT_EQ(pair.hops(p, 2, 3), 1u);

  const auto c = cycle_graph(8);
  EXPECT_EQ(pair.hops(c, 0, 4), 4u);
  EXPECT_EQ(pair.hops(c, 0, 5), 3u);
}

TEST(BfsPair, DisconnectedIsUnreachableBothDirections) {
  const Graph g(5, std::vector<Edge>{{0, 1}, {2, 3}});
  BfsPairScratch pair;
  EXPECT_EQ(pair.hops(g, 0, 3), kUnreachable);
  EXPECT_EQ(pair.hops(g, 3, 0), kUnreachable);
  EXPECT_EQ(pair.hops(g, 4, 0), kUnreachable);
  EXPECT_EQ(pair.hops(g, 0, 1), 1u);  // scratch still healthy afterwards
}

/// Exhaustive differential check against the single-source BFS on random
/// sparse graphs (some disconnected): the pair query must agree on every
/// (u, v), in both query orders, across reuses of one scratch.
TEST(BfsPair, MatchesFullBfsOnRandomGraphs) {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next_rand = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  BfsPairScratch pair;
  for (int trial = 0; trial < 12; ++trial) {
    const NodeId n = 20 + static_cast<NodeId>(next_rand() % 40);
    const Size target_edges = static_cast<Size>(n) * static_cast<Size>(1 + trial % 3);
    std::vector<Edge> edges;
    for (Size i = 0; i < target_edges; ++i) {
      const auto a = static_cast<NodeId>(next_rand() % n);
      const auto b = static_cast<NodeId>(next_rand() % n);
      if (a != b) edges.push_back({std::min(a, b), std::max(a, b)});
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    const Graph g(n, edges);
    for (NodeId u = 0; u < n; u += 3) {
      const auto dist = bfs_hops(g, u);
      for (NodeId v = 0; v < n; ++v) {
        ASSERT_EQ(pair.hops(g, u, v), dist[v]) << "u=" << u << " v=" << v;
        ASSERT_EQ(pair.hops(g, v, u), dist[v]) << "u=" << u << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace manet::graph
