#include "exp/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::exp {
namespace {

CliParseResult parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"manet_sim"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsParseCleanly) {
  const auto result = parse({});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.scenario.n, 256u);
  EXPECT_EQ(result.options.replications, 1u);
  EXPECT_TRUE(result.options.sweep.empty());
}

TEST(Cli, ScenarioNumbers) {
  const auto result = parse({"--n", "512", "--mu", "2.5", "--density", "0.5", "--seed",
                             "99", "--tick", "0.5", "--warmup", "5", "--duration", "30"});
  ASSERT_TRUE(result.ok) << result.error;
  const auto& s = result.options.scenario;
  EXPECT_EQ(s.n, 512u);
  EXPECT_DOUBLE_EQ(s.mu, 2.5);
  EXPECT_DOUBLE_EQ(s.density, 0.5);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_DOUBLE_EQ(s.tick, 0.5);
  EXPECT_DOUBLE_EQ(s.warmup, 5.0);
  EXPECT_DOUBLE_EQ(s.duration, 30.0);
}

TEST(Cli, EnumFlags) {
  const auto result = parse({"--mobility", "gm", "--radius", "degree", "--algo", "maxmin2",
                             "--strategy", "weighted", "--links", "contraction"});
  ASSERT_TRUE(result.ok) << result.error;
  const auto& s = result.options.scenario;
  EXPECT_EQ(s.mobility, MobilityKind::kGaussMarkov);
  EXPECT_EQ(s.radius_policy, RadiusPolicy::kMeanDegree);
  EXPECT_EQ(s.cluster_algo, ClusterAlgo::kMaxMin2);
  EXPECT_EQ(s.handoff.select.strategy, lm::SelectStrategy::kWeightedDescent);
  EXPECT_FALSE(s.geometric_links);
}

TEST(Cli, MeasurementToggles) {
  const auto result =
      parse({"--gls", "--registration", "--routing", "--no-events", "--no-states"});
  ASSERT_TRUE(result.ok) << result.error;
  const auto& run = result.options.run;
  EXPECT_TRUE(run.run_gls);
  EXPECT_TRUE(run.track_registration);
  EXPECT_TRUE(run.measure_routing);
  EXPECT_FALSE(run.track_events);
  EXPECT_FALSE(run.track_states);
  EXPECT_TRUE(run.measure_hops);  // untouched
}

TEST(Cli, SweepList) {
  const auto result = parse({"--sweep", "128,256,512", "--reps", "4", "--csv", "out.csv"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.sweep, (std::vector<Size>{128, 256, 512}));
  EXPECT_EQ(result.options.replications, 4u);
  EXPECT_EQ(result.options.csv_path, "out.csv");
}

TEST(Cli, JsonPathAndRpgm) {
  const auto result = parse({"--json", "m.json", "--mobility", "rpgm"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.json_path, "m.json");
  EXPECT_EQ(result.options.scenario.mobility, MobilityKind::kGroup);
  EXPECT_FALSE(parse({"--json"}).ok);
}

TEST(Cli, HelpShortCircuits) {
  const auto result = parse({"--help"});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.options.show_help);
  EXPECT_FALSE(cli_usage("manet_sim").empty());
}

TEST(Cli, UnknownFlagFails) {
  const auto result = parse({"--bogus"});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  EXPECT_FALSE(parse({"--n"}).ok);
  EXPECT_FALSE(parse({"--mobility"}).ok);
  EXPECT_FALSE(parse({"--sweep"}).ok);
}

TEST(Cli, MalformedNumbersFail) {
  EXPECT_FALSE(parse({"--n", "abc"}).ok);
  EXPECT_FALSE(parse({"--mu", "fast"}).ok);
  EXPECT_FALSE(parse({"--sweep", "128,abc"}).ok);
}

TEST(Cli, InvalidEnumValuesFail) {
  EXPECT_FALSE(parse({"--mobility", "teleport"}).ok);
  EXPECT_FALSE(parse({"--radius", "infinite"}).ok);
  EXPECT_FALSE(parse({"--algo", "kmeans"}).ok);
  EXPECT_FALSE(parse({"--strategy", "random"}).ok);
}

TEST(Cli, SemanticValidation) {
  EXPECT_FALSE(parse({"--n", "1"}).ok);
  EXPECT_FALSE(parse({"--reps", "0"}).ok);
  EXPECT_FALSE(parse({"--tick", "0"}).ok);
  EXPECT_FALSE(parse({"--tick", "-0.5"}).ok);
  EXPECT_FALSE(parse({"--warmup", "-1"}).ok);
  EXPECT_FALSE(parse({"--duration", "-2"}).ok);
  EXPECT_FALSE(parse({"--density", "0"}).ok);
}

TEST(Cli, InlineEqualsValuesParse) {
  const auto result = parse({"--n=512", "--mu=2.5", "--session-pps=8", "--threads=4"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.scenario.n, 512u);
  EXPECT_DOUBLE_EQ(result.options.scenario.mu, 2.5);
  EXPECT_DOUBLE_EQ(result.options.scenario.session.packets_per_sec, 8.0);
  EXPECT_EQ(result.options.run.threads, 4u);
}

TEST(Cli, MalformedInlineValuesFailWithFlagName) {
  // The one-line diagnostic must name the offending flag, not crash or
  // silently swallow the junk value.
  const auto bad = parse({"--session-pps=abc"});
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("--session-pps"), std::string::npos) << bad.error;
  EXPECT_FALSE(parse({"--n=12abc"}).ok);
  EXPECT_FALSE(parse({"--n="}).ok);
  EXPECT_FALSE(parse({"--mu=1.2.3"}).ok);
}

TEST(Cli, NegativeAndNonFiniteNumbersFail) {
  // strtoull would silently wrap "-3" to a huge unsigned; the parser must
  // reject the sign outright. Same for non-finite doubles.
  EXPECT_FALSE(parse({"--n", "-3"}).ok);
  EXPECT_FALSE(parse({"--reps", "-1"}).ok);
  EXPECT_FALSE(parse({"--threads", "-2"}).ok);
  EXPECT_FALSE(parse({"--handover-timeout", "-0.2"}).ok);
  EXPECT_FALSE(parse({"--arq-timeout", "-1"}).ok);
  EXPECT_FALSE(parse({"--session-pps", "-4"}).ok);
  EXPECT_FALSE(parse({"--mu", "nan"}).ok);
  EXPECT_FALSE(parse({"--mu", "inf"}).ok);
  EXPECT_FALSE(parse({"--loss", "nan"}).ok);
}

TEST(Cli, BooleanFlagsRejectInlineValues) {
  const auto result = parse({"--trace=1"});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("--trace"), std::string::npos) << result.error;
  EXPECT_FALSE(parse({"--sessions=true"}).ok);
  EXPECT_FALSE(parse({"--gls=on"}).ok);
}

TEST(Cli, ThreadsFlagParses) {
  EXPECT_EQ(parse({}).options.run.threads, 1u);  // default: sequential
  const auto hw = parse({"--threads", "0"});     // 0 = hardware concurrency
  ASSERT_TRUE(hw.ok) << hw.error;
  EXPECT_EQ(hw.options.run.threads, 0u);
  const auto eight = parse({"--threads", "8"});
  ASSERT_TRUE(eight.ok) << eight.error;
  EXPECT_EQ(eight.options.run.threads, 8u);
  EXPECT_FALSE(parse({"--threads", "abc"}).ok);
  EXPECT_FALSE(parse({"--threads"}).ok);
}

TEST(Cli, ShardsFlagParses) {
  EXPECT_EQ(parse({}).options.run.shards, 0u);  // default: auto topology
  const auto result = parse({"--shards", "64"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.run.shards, 64u);
  const auto inline_form = parse({"--shards=4", "--threads=2"});
  ASSERT_TRUE(inline_form.ok) << inline_form.error;
  EXPECT_EQ(inline_form.options.run.shards, 4u);
  EXPECT_EQ(inline_form.options.run.threads, 2u);
  EXPECT_FALSE(parse({"--shards", "abc"}).ok);
  EXPECT_FALSE(parse({"--shards", "-1"}).ok);
  EXPECT_FALSE(parse({"--shards"}).ok);
}

TEST(Cli, QueryLoadFlagParses) {
  EXPECT_EQ(parse({}).options.run.query_load, 0u);  // default: query plane off
  const auto result = parse({"--query-load", "5000"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.run.query_load, 5000u);
  const auto inline_eq = parse({"--query-load=250"});
  ASSERT_TRUE(inline_eq.ok) << inline_eq.error;
  EXPECT_EQ(inline_eq.options.run.query_load, 250u);
  EXPECT_FALSE(parse({"--query-load", "abc"}).ok);
  EXPECT_FALSE(parse({"--query-load", "-5"}).ok);
  EXPECT_FALSE(parse({"--query-load"}).ok);
}

CampaignCliParseResult parse_campaign(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"campaign"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_campaign_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CampaignCli, ExecuteModeParses) {
  const auto result = parse_campaign(
      {"--spec", "spec.json", "--out", "runs/c1", "--threads", "4", "--max-units", "3"});
  ASSERT_TRUE(result.ok) << result.error;
  const auto& o = result.options;
  EXPECT_EQ(o.spec_path, "spec.json");
  EXPECT_EQ(o.dir, "runs/c1");
  EXPECT_FALSE(o.resume);
  EXPECT_FALSE(o.plan);
  EXPECT_FALSE(o.merge);
  EXPECT_EQ(o.threads, 4u);
  EXPECT_EQ(o.max_units, 3u);
  EXPECT_EQ(o.shard_count, 1u);
}

TEST(CampaignCli, ShardSyntax) {
  const auto result = parse_campaign({"--spec", "s.json", "--out", "d", "--shard", "2/4"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.options.shard_index, 2u);
  EXPECT_EQ(result.options.shard_count, 4u);
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--shard", "4/4"}).ok);
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--shard", "0"}).ok);
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--shard", "a/b"}).ok);
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--shard", "0/0"}).ok);
}

TEST(CampaignCli, ResumeAndMergeModes) {
  auto result = parse_campaign({"--resume", "runs/c1"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.options.resume);
  EXPECT_EQ(result.options.dir, "runs/c1");

  result = parse_campaign({"--resume", "runs/c1", "--merge"});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.options.merge);

  // Plan needs a spec or a dir, not necessarily both.
  EXPECT_TRUE(parse_campaign({"--spec", "s.json", "--plan"}).ok);
  EXPECT_TRUE(parse_campaign({"--resume", "runs/c1", "--plan"}).ok);
}

TEST(CampaignCli, ModeConflictsFail) {
  // --out and --resume are mutually exclusive ways to name the directory.
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--resume", "d"}).ok);
  // --plan and --merge are exclusive modes.
  EXPECT_FALSE(parse_campaign({"--spec", "s.json", "--out", "d", "--plan", "--merge"}).ok);
  // --merge is single-process: sharding it makes no sense.
  EXPECT_FALSE(
      parse_campaign({"--spec", "s.json", "--out", "d", "--merge", "--shard", "0/2"}).ok);
  // Execute mode needs a directory.
  EXPECT_FALSE(parse_campaign({"--spec", "s.json"}).ok);
  // Something must identify the campaign.
  EXPECT_FALSE(parse_campaign({"--plan"}).ok);
  EXPECT_FALSE(parse_campaign({}).ok);
}

TEST(CampaignCli, HelpAndUnknownFlags) {
  const auto help = parse_campaign({"--help"});
  EXPECT_TRUE(help.ok);
  EXPECT_TRUE(help.options.show_help);
  EXPECT_FALSE(campaign_cli_usage("manet_sim").empty());
  const auto bad = parse_campaign({"--bogus"});
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("bogus"), std::string::npos);
}

}  // namespace
}  // namespace manet::exp
