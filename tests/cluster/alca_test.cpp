#include "cluster/alca.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

std::vector<NodeId> identity_ids(Size n) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  return ids;
}

TEST(Alca, SingleVertexHeadsItself) {
  const Graph g(1);
  const auto ids = identity_ids(1);
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{0}));
  EXPECT_EQ(result.head_of[0], 0u);
  EXPECT_EQ(result.votes[0], 0u);
}

TEST(Alca, EdgeElectsLargerEndpoint) {
  const Graph g(2, std::vector<Edge>{{0, 1}});
  const auto ids = identity_ids(2);
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{1}));
  EXPECT_EQ(result.head_of[0], 1u);
  EXPECT_EQ(result.head_of[1], 1u);
  EXPECT_EQ(result.votes[1], 1u);  // node 0 elected it
}

TEST(Alca, StarElectsCenterWhenCenterIsMax) {
  // Star with center 4 (max id): everyone elects 4.
  const Graph g(5, std::vector<Edge>{{0, 4}, {1, 4}, {2, 4}, {3, 4}});
  const auto ids = identity_ids(5);
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{4}));
  EXPECT_EQ(result.votes[4], 4u);
}

TEST(Alca, LeafWithMaxIdBecomesHeadOfItsNeighborOnly) {
  // Path 0-1-2 with ids {5, 1, 9} (vertex 2 has the max id 9, vertex 0 has 5).
  // Vertex 1 elects vertex 2 (id 9 in its neighborhood); vertex 0's closed
  // neighborhood is {0:5, 1:1} so 0 elects itself.
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const std::vector<NodeId> ids{5, 1, 9};
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(result.head_of[0], 0u);
  EXPECT_EQ(result.head_of[1], 2u);
  EXPECT_EQ(result.head_of[2], 2u);
}

TEST(Alca, PaperFigure1NonMaxHeadCase) {
  // The paper's node-68 case: a node elected by a neighbor even though it is
  // not the largest in its own neighborhood. Layout:
  //   63 - 68 - 75   (75 > 68, but 63's closed neighborhood max is 68)
  // 68 must be a clusterhead (elected by 63) while also adjacent to the
  // larger 75; 68 leads its own cluster containing 63.
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const std::vector<NodeId> ids{63, 68, 75};
  const auto result = alca_elect(g, ids);
  // Vertex 1 (id 68): elected by vertex 0 => head. Vertex 2 (id 75): elects
  // itself (max in own neighborhood) => head.
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(result.head_of[0], 1u);  // 63 joins cluster 68
  EXPECT_EQ(result.head_of[1], 1u);  // 68 leads its own cluster
  EXPECT_EQ(result.head_of[2], 2u);
  EXPECT_EQ(result.votes[1], 1u);  // exactly one elector: the critical state
}

TEST(Alca, HeadsFormDominatingSet) {
  // Every vertex must be a head or adjacent to its head.
  const Graph g(7, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {0, 6}});
  const std::vector<NodeId> ids{3, 9, 1, 7, 2, 8, 5};
  const auto result = alca_elect(g, ids);
  for (NodeId v = 0; v < 7; ++v) {
    const NodeId h = result.head_of[v];
    EXPECT_TRUE(h == v || g.has_edge(v, h)) << "vertex " << v;
    EXPECT_EQ(result.head_of[h], h) << "head must lead its own cluster";
  }
}

TEST(Alca, VotesCountNeighborsAffiliatedAfterRemap) {
  // Triangle with ids {1, 2, 3}: all elect vertex 2 (id 3).
  const Graph g(3, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  const auto ids = identity_ids(3);
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{2}));
  EXPECT_EQ(result.votes[2], 2u);
  EXPECT_EQ(result.votes[0], 0u);
  EXPECT_EQ(result.votes[1], 0u);
}

TEST(Alca, DisconnectedComponentsElectIndependently) {
  const Graph g(4, std::vector<Edge>{{0, 1}, {2, 3}});
  const auto ids = identity_ids(4);
  const auto result = alca_elect(g, ids);
  EXPECT_EQ(result.clusterheads, (std::vector<NodeId>{1, 3}));
}

TEST(Alca, IdPermutationChangesOutcome) {
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const auto a = alca_elect(g, std::vector<NodeId>{0, 1, 2});
  const auto b = alca_elect(g, std::vector<NodeId>{2, 1, 0});
  EXPECT_NE(a.clusterheads, b.clusterheads);
}

TEST(Alca, InterfaceObjectMatchesFreeFunction) {
  const Graph g(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto ids = identity_ids(4);
  const Alca algorithm;
  const auto a = algorithm.elect(g, ids);
  const auto b = alca_elect(g, ids);
  EXPECT_EQ(a.head_of, b.head_of);
  EXPECT_EQ(a.clusterheads, b.clusterheads);
  EXPECT_STREQ(algorithm.name(), "alca");
}

}  // namespace
}  // namespace manet::cluster
