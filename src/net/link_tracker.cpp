#include "net/link_tracker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::net {

std::vector<graph::Edge> edge_difference(std::span<const graph::Edge> a,
                                         std::span<const graph::Edge> b) {
  std::vector<graph::Edge> out;
  edge_difference_into(a, b, out);
  return out;
}

void edge_difference_into(std::span<const graph::Edge> a, std::span<const graph::Edge> b,
                          std::vector<graph::Edge>& out) {
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
}

void ShardedEdgeDiff::run(std::span<const graph::Edge> a, std::span<const graph::Edge> b,
                          sim::ShardExecutor& executor, std::vector<graph::Edge>& out) {
  const Size shards = executor.shard_count();
  if (shard_out_.size() < shards) shard_out_.resize(shards);
  executor.for_each_shard([&](Size s) {
    const auto [begin, end] = sim::ShardExecutor::slice(a.size(), s, shards);
    auto& mine = shard_out_[s];
    mine.clear();
    if (begin == end) return;
    // Only right-hand entries inside the slice's value range can cancel a
    // slice element; both lists are sorted, so the range is two searches.
    const auto b_lo = std::lower_bound(b.begin(), b.end(), a[begin]);
    const auto b_hi = std::upper_bound(b_lo, b.end(), a[end - 1]);
    std::set_difference(a.begin() + static_cast<std::ptrdiff_t>(begin),
                        a.begin() + static_cast<std::ptrdiff_t>(end), b_lo, b_hi,
                        std::back_inserter(mine));
  });
  for (Size s = 0; s < shards; ++s) {
    out.insert(out.end(), shard_out_[s].begin(), shard_out_[s].end());
  }
}

LinkTracker::LinkTracker(const graph::Graph& initial, Time t0)
    : prev_edges_(initial.edges().begin(), initial.edges().end()),
      node_count_(initial.vertex_count()),
      start_time_(t0),
      last_time_(t0) {}

LinkDelta LinkTracker::update(const graph::Graph& current, Time t) {
  LinkDelta delta;
  update_into(current, t, delta);
  return delta;
}

void LinkTracker::update_into(const graph::Graph& current, Time t, LinkDelta& delta) {
  MANET_CHECK_MSG(t >= last_time_, "link tracker time must be monotone");
  MANET_CHECK_MSG(current.vertex_count() == node_count_,
                  "node count changed between snapshots");
  delta.up.clear();
  delta.down.clear();
  if (par_ != nullptr) {
    diff_.run(current.edges(), prev_edges_, *par_, delta.up);
    diff_.run(prev_edges_, current.edges(), *par_, delta.down);
  } else {
    edge_difference_into(current.edges(), prev_edges_, delta.up);
    edge_difference_into(prev_edges_, current.edges(), delta.down);
  }
  total_events_ += delta.event_count();
  prev_edges_.assign(current.edges().begin(), current.edges().end());
  last_time_ = t;
  if (metrics_ != nullptr) {
    up_c_->add(delta.up.size());
    down_c_->add(delta.down.size());
    metrics_->gauge("net.f0").set(events_per_node_per_second());
  }
}

void LinkTracker::advance_unchanged(Time t) {
  MANET_CHECK_MSG(t >= last_time_, "link tracker time must be monotone");
  last_time_ = t;
  if (metrics_ != nullptr) {
    // update() with an identical edge set adds 0 to both counters; only the
    // window-dependent f0 gauge needs refreshing.
    metrics_->gauge("net.f0").set(events_per_node_per_second());
  }
}

void LinkTracker::set_metrics(common::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    up_c_ = down_c_ = nullptr;
    return;
  }
  up_c_ = &registry->counter("net.link_up");
  down_c_ = &registry->counter("net.link_down");
}

double LinkTracker::events_per_node_per_second() const {
  const Time window = elapsed();
  if (window <= 0.0 || node_count_ == 0) return 0.0;
  return static_cast<double>(total_events_) /
         (static_cast<double>(node_count_) * window);
}

}  // namespace manet::net
