#include "sim/trace.hpp"

#include "common/check.hpp"

namespace manet::sim {

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kMigration: return "migration";
    case TraceEventType::kHandoffPhi: return "handoff_phi";
    case TraceEventType::kHandoffGamma: return "handoff_gamma";
    case TraceEventType::kLevelChurn: return "level_churn";
    case TraceEventType::kRegistration: return "registration";
    case TraceEventType::kLookup: return "lookup";
    case TraceEventType::kReorgLinkUp: return "reorg_link_up";
    case TraceEventType::kReorgLinkDown: return "reorg_link_down";
    case TraceEventType::kReorgElectMigration: return "reorg_elect_migration";
    case TraceEventType::kReorgRejectMigration: return "reorg_reject_migration";
    case TraceEventType::kReorgElectRecursive: return "reorg_elect_recursive";
    case TraceEventType::kReorgRejectRecursive: return "reorg_reject_recursive";
    case TraceEventType::kReorgNeighborPromoted: return "reorg_neighbor_promoted";
    case TraceEventType::kPacketDropped: return "packet_dropped";
    case TraceEventType::kRetransmit: return "retransmit";
    case TraceEventType::kNodeCrash: return "node_crash";
    case TraceEventType::kNodeRejoin: return "node_rejoin";
    case TraceEventType::kRepair: return "repair";
    case TraceEventType::kHandoverStart: return "handover_start";
    case TraceEventType::kHandoverComplete: return "handover_complete";
    case TraceEventType::kHandoverRetry: return "handover_retry";
    case TraceEventType::kHandoverRollback: return "handover_rollback";
    case TraceEventType::kHandoverFail: return "handover_fail";
  }
  return "unknown";
}

TraceSink::TraceSink() : TraceSink(Config{}) {}

TraceSink::TraceSink(Config config) : sample_every_(config.sample_every) {
  MANET_CHECK_MSG(config.capacity >= 1, "TraceSink capacity must be >= 1");
  if (sample_every_ == 0) sample_every_ = 1;
  ring_.resize(config.capacity);
}

void TraceSink::record(const TraceEvent& event) {
  ++seen_;
  if (sample_every_ > 1 && (seen_ - 1) % sample_every_ != 0) return;
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
  ++stored_;
  ++type_counts_[static_cast<Size>(event.type)];
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  const Size held = size();
  out.reserve(held);
  // Oldest stored event sits at next_ once the ring has wrapped, else at 0.
  const Size start = stored_ > ring_.size() ? next_ : 0;
  for (Size i = 0; i < held; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::clear() {
  next_ = 0;
  stored_ = 0;
  seen_ = 0;
  type_counts_.fill(0);
}

}  // namespace manet::sim
