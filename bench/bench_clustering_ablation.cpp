/// E13: design-choice ablations over the same scenario at |V| = 1024:
///   - clusterhead election: ALCA (paper) vs max-min d-cluster (ref [8]);
///   - level-k link model: geometric hysteresis (eq. 7) vs naive contraction;
///   - server selection: flat successor vs hash-chain descent.
/// Each row reports total handoff overhead and hierarchy shape so the cost
/// of departing from the paper's assumptions is visible.

#include "bench_util.hpp"
#include "lm/server_select.hpp"

using namespace manet;

namespace {

std::string run_row(exp::ScenarioConfig cfg, const char* label,
                    analysis::TextTable& table) {
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
  table.add_row({label, bench::cell(agg, "phi_rate"), bench::cell(agg, "gamma_rate"),
                 bench::cell(agg, "total_rate"), bench::cell(agg, "levels"),
                 bench::cell(agg, "load_gini")});
  return label;
}

}  // namespace

int main() {
  bench::print_header(
      "E13  bench_clustering_ablation — design-choice ablations (|V| = 1024)",
      "cost of departing from the paper's clustering / link / hashing assumptions");

  analysis::TextTable table({"variant", "phi", "gamma", "total", "levels", "load_gini"});

  auto base = bench::paper_scenario();
  base.n = 1024;

  run_row(base, "baseline: ALCA + geometric links + flat successor", table);

  {
    auto cfg = base;
    cfg.cluster_algo = exp::ClusterAlgo::kMaxMin1;
    run_row(cfg, "election: max-min d=1", table);
  }
  {
    auto cfg = base;
    cfg.cluster_algo = exp::ClusterAlgo::kMaxMin2;
    run_row(cfg, "election: max-min d=2", table);
  }
  {
    auto cfg = base;
    cfg.geometric_links = false;
    run_row(cfg, "links: naive contraction (no hysteresis)", table);
  }
  {
    auto cfg = base;
    cfg.link_beta = 1.5;
    run_row(cfg, "links: geometric, beta = 1.5", table);
  }
  {
    auto cfg = base;
    cfg.handoff.select.strategy = lm::SelectStrategy::kWeightedDescent;
    run_row(cfg, "hashing: weighted hash-chain descent", table);
  }
  {
    auto cfg = base;
    cfg.handoff.select.strategy = lm::SelectStrategy::kUnweightedDescent;
    run_row(cfg, "hashing: unweighted hash-chain descent", table);
  }
  {
    auto cfg = base;
    cfg.radius_policy = exp::RadiusPolicy::kConnectivity;
    run_row(cfg, "radius: Gupta-Kumar connectivity scaling", table);
  }
  {
    auto cfg = base;
    cfg.max_levels = 2;
    run_row(cfg, "depth: capped at 2 clustered levels", table);
  }
  {
    auto cfg = base;
    cfg.max_levels = 3;
    run_row(cfg, "depth: capped at 3 clustered levels", table);
  }

  std::printf("%s", table.to_string("ablation grid").c_str());
  std::printf(
      "\nreading: the max-min d=1 row matches the baseline EXACTLY — the two\n"
      "algorithms provably coincide at d = 1, which is the equivalence the\n"
      "paper states in Section 2.2 (\"the 1-hop clustering case is\n"
      "equivalent to an asynchronous version of the LCA\"). Naive contraction\n"
      "links and hash-chain descent both inflate gamma (flappy adjacency,\n"
      "rename cascades) — the geometric hysteresis of eq. (7) and a\n"
      "stability-preserving hash are load-bearing for the paper's polylog\n"
      "bound. See EXPERIMENTS.md for the discussion.\n");
  return 0;
}
