#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/thread_pool.hpp"
#include "exp/simulation.hpp"

/// \file montecarlo.hpp
/// Monte-Carlo replication driver. Replications are embarrassingly parallel:
/// replication r runs with seed derive_seed(base, r) and the results are
/// merged in index order, so the aggregate is bit-identical regardless of
/// thread count (the HPC-guide determinism requirement).

namespace manet::exp {

/// Per-metric aggregation across replications.
class AggregatedMetrics {
 public:
  void add(const RunMetrics& metrics);
  void merge(const AggregatedMetrics& other);

  bool has(const std::string& name) const;
  double mean(const std::string& name) const;  ///< NaN when absent
  analysis::Summary summary(const std::string& name) const;

  std::vector<std::string> names() const;
  Size replication_count() const { return replications_; }

 private:
  std::map<std::string, analysis::Accumulator> acc_;
  Size replications_ = 0;
};

/// Run \p replications of \p base (seeds derived per replication index).
/// When \p pool is non-null the replications fan out across it.
AggregatedMetrics run_replications(const ScenarioConfig& base, Size replications,
                                   const RunOptions& options = RunOptions{},
                                   common::ThreadPool* pool = nullptr);

}  // namespace manet::exp
