#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "exp/montecarlo.hpp"
#include "exp/simulation.hpp"

/// Bit-identity contract of the incremental tick pipeline: with
/// RunOptions::incremental_tick the unit-disk graph is maintained as a delta,
/// the hierarchy rebuild is change-gated and election-memoized — and every
/// produced metric (phi/gamma rates, the full (i)-(vii) event taxonomy,
/// per-level shapes, fault accounting) must equal the full-rebuild path's
/// exactly, value for value and in emission order.

namespace manet::exp {
namespace {

ScenarioConfig base_config(Size n, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.warmup = 5.0;
  cfg.duration = 15.0;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

void expect_bit_identical(const RunMetrics& full, const RunMetrics& inc) {
  ASSERT_EQ(full.values.size(), inc.values.size());
  for (Size i = 0; i < full.values.size(); ++i) {
    EXPECT_EQ(full.values[i].first, inc.values[i].first);
    EXPECT_EQ(full.values[i].second, inc.values[i].second) << full.values[i].first;
  }
}

void run_both_and_compare(const ScenarioConfig& cfg, RunOptions opts = RunOptions{}) {
  opts.incremental_tick = false;
  const auto full = run_simulation(cfg, opts);
  // Three-arm identity: the incremental pipeline must match whether changed
  // ticks rebuild hierarchies via localized repair (default) or via the full
  // HierarchyBuilder call (the localized_repair = false reference arm).
  opts.incremental_tick = true;
  opts.localized_repair = true;
  const auto inc = run_simulation(cfg, opts);
  expect_bit_identical(full, inc);
  opts.localized_repair = false;
  const auto inc_builder = run_simulation(cfg, opts);
  expect_bit_identical(full, inc_builder);
}

TEST(TickPipeline, IncrementalMatchesFullRandomWaypoint) {
  run_both_and_compare(base_config(180, 11));
}

TEST(TickPipeline, IncrementalMatchesFullWithTopologicalLinks) {
  // geometric_links off: level-k links come from contraction only, so the
  // change gate also fires on moved-but-topology-stable ticks.
  auto cfg = base_config(180, 12);
  cfg.geometric_links = false;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullStatic) {
  // Mostly-gated regime: no node ever moves, every measured tick skips the
  // hierarchy rebuild entirely.
  auto cfg = base_config(180, 13);
  cfg.mobility = MobilityKind::kStatic;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullGroupMobility) {
  auto cfg = base_config(160, 14);
  cfg.mobility = MobilityKind::kGroup;
  cfg.group_size = 20;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullFractionalTick) {
  // tick = 0.25 exercises the integer warmup stepping (cf. the FP drift fix)
  // together with the delta path.
  auto cfg = base_config(150, 15);
  cfg.tick = 0.25;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullUnderFaults) {
  // Fault plane on: crash/rejoin churn changes the down-mask, edges are
  // stripped, ARQ retransmissions draw from the channel RNG — all of it must
  // stay in lockstep between the two paths.
  auto cfg = base_config(150, 16);
  cfg.fault.loss = 0.08;
  cfg.fault.crash_rate = 0.005;
  cfg.fault.mean_downtime = 4.0;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullUnderHeavyFaultChurn) {
  // Stress the repair fallback machinery: a high crash rate flips the fault
  // down-mask nearly every tick (the level-0 delta is untrustworthy, so the
  // repairer must self-diff), and a regional outage adds mass down/up wave
  // transitions. Contraction links keep some ticks gated even here.
  auto cfg = base_config(140, 19);
  cfg.fault.loss = 0.05;
  cfg.fault.crash_rate = 0.03;
  cfg.fault.mean_downtime = 2.0;
  cfg.fault.outage_radius = 4.0;
  cfg.fault.outage_start = 3.0;
  cfg.fault.outage_duration = 5.0;
  run_both_and_compare(cfg);
}

TEST(TickPipeline, IncrementalMatchesFullWithAllTrackersOn) {
  auto cfg = base_config(160, 17);
  RunOptions opts;
  opts.run_gls = true;
  opts.track_registration = true;
  opts.measure_routing = true;
  run_both_and_compare(cfg, opts);
}

TEST(TickPipeline, ReplicationAggregateInvariantAcrossThreadCounts) {
  // The Monte-Carlo driver merges replications in index order, so the
  // aggregate is thread-count invariant; the incremental pipeline must
  // preserve that, and agree with the full-rebuild aggregate.
  const auto cfg = base_config(120, 18);
  const Size reps = 4;

  RunOptions full_opts;
  full_opts.incremental_tick = false;
  const auto reference = run_replications(cfg, reps, full_opts);

  RunOptions inc_opts;
  inc_opts.incremental_tick = true;
  for (const Size threads : {Size{1}, Size{2}, Size{8}}) {
    common::ThreadPool pool(threads);
    const auto agg = run_replications(cfg, reps, inc_opts, &pool);
    ASSERT_EQ(agg.replication_count(), reference.replication_count());
    for (const auto& name : reference.names()) {
      const auto a = reference.summary(name);
      const auto b = agg.summary(name);
      EXPECT_EQ(a.count, b.count) << name;
      EXPECT_EQ(a.mean, b.mean) << name << " @" << threads << " threads";
      EXPECT_EQ(a.ci95, b.ci95) << name << " @" << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace manet::exp
