#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace manet::common {
namespace {

TEST(Counter, AddsAndMerges) {
  Counter a, b;
  a.add();
  a.add(4);
  b.add(10);
  EXPECT_EQ(a.value(), 5u);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Gauge, MergeKeepsLaterWrittenShard) {
  Gauge a, b, untouched;
  a.set(1.0);
  b.set(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);  // later shard wins in fold order
  a.merge(untouched);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);  // unwritten shard leaves the value alone
  EXPECT_FALSE(untouched.written());
}

TEST(RateMeter, WindowedRateAgesOut) {
  RateMeter meter(10.0, 10);
  for (int t = 0; t < 10; ++t) meter.mark(static_cast<Time>(t), 5);
  // 50 events over a 10 s window.
  EXPECT_NEAR(meter.rate(9.0), 5.0, 1.0);
  EXPECT_EQ(meter.total(), 50u);
  // Far in the future every bucket has aged out of the window.
  EXPECT_DOUBLE_EQ(meter.rate(1000.0), 0.0);
  EXPECT_EQ(meter.total(), 50u);  // totals never age
}

TEST(RateMeter, MergeAddsTotals) {
  RateMeter a(10.0, 10), b(10.0, 10);
  a.mark(1.0, 3);
  b.mark(5.0, 7);
  a.merge(b);
  EXPECT_EQ(a.total(), 10u);
  EXPECT_GT(a.rate(5.0), 0.0);  // adopted the later shard's window
}

TEST(Histogram, BucketsAndQuantiles) {
  const std::array<double, 4> bounds{1.0, 2.0, 4.0, 8.0};
  Histogram h(bounds);
  for (const double x : {0.5, 1.5, 1.5, 3.0, 10.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.5);
  EXPECT_EQ(h.bucket_total(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 1.0);
  EXPECT_LE(median, 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(MetricsRegistry, LookupIsStableAndTyped) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  reg.gauge("a.gauge").set(3.0);
  c.add(7);
  EXPECT_EQ(&reg.counter("a.count"), &c);  // stable reference
  ASSERT_NE(reg.find_counter("a.count"), nullptr);
  EXPECT_EQ(reg.find_counter("a.count")->value(), 7u);
  EXPECT_EQ(reg.find_counter("a.gauge"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(MetricsRegistry, EntriesAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("zz");
  reg.gauge("aa");
  reg.rate_meter("mm");
  const auto entries = reg.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "aa");
  EXPECT_EQ(entries[1].name, "mm");
  EXPECT_EQ(entries[2].name, "zz");
}

/// The deterministic workload each parallel task writes into its shard.
void write_shard(MetricsRegistry& shard, std::size_t index) {
  shard.counter("events").add(index + 1);
  shard.counter("task." + std::to_string(index % 3)).add(2 * index + 1);
  shard.gauge("last_index").set(static_cast<double>(index));
  const std::array<double, 3> bounds{1.0, 4.0, 16.0};
  auto& h = shard.histogram("hops", bounds);
  for (std::size_t i = 0; i <= index; ++i) h.observe(static_cast<double>(i % 20));
  shard.rate_meter("moves", 10.0, 10).mark(static_cast<Time>(index % 7), index);
}

/// Byte-exact fingerprint of a registry's aggregate state.
std::string fingerprint(const MetricsRegistry& reg) {
  std::string out;
  const auto append_double = [&out](double v) {
    char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    out.append(bytes, sizeof(double));
  };
  for (const auto& e : reg.entries()) {
    out += e.name;
    switch (e.kind) {
      case MetricsRegistry::Entry::Kind::kCounter:
        out += std::to_string(e.counter->value());
        break;
      case MetricsRegistry::Entry::Kind::kGauge:
        append_double(e.gauge->value());
        break;
      case MetricsRegistry::Entry::Kind::kRateMeter:
        out += std::to_string(e.rate_meter->total());
        append_double(e.rate_meter->rate(100.0));
        break;
      case MetricsRegistry::Entry::Kind::kHistogram:
        out += std::to_string(e.histogram->count());
        append_double(e.histogram->sum());
        for (Size i = 0; i < e.histogram->bucket_total(); ++i) {
          out += std::to_string(e.histogram->bucket_count(i));
        }
        break;
    }
    out += '|';
  }
  return out;
}

TEST(ShardedMetrics, MergeIsBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kTasks = 24;
  std::vector<std::string> prints;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ShardedMetrics sharded(kTasks);
    ThreadPool pool(threads);
    pool.parallel_for(kTasks,
                      [&sharded](std::size_t i) { write_shard(sharded.shard(i), i); });
    prints.push_back(fingerprint(sharded.merged()));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

TEST(ShardedMetrics, MergedAggregatesMatchHandComputation) {
  constexpr std::size_t kTasks = 5;
  ShardedMetrics sharded(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) write_shard(sharded.shard(i), i);
  const auto merged = sharded.merged();
  // events = sum of (i+1) = 15.
  ASSERT_NE(merged.find_counter("events"), nullptr);
  EXPECT_EQ(merged.find_counter("events")->value(), 15u);
  // Gauge keeps the highest shard index's write.
  ASSERT_NE(merged.find_gauge("last_index"), nullptr);
  EXPECT_DOUBLE_EQ(merged.find_gauge("last_index")->value(), 4.0);
  // Histogram counts add: sum of (i+1) observations.
  ASSERT_NE(merged.find_histogram("hops"), nullptr);
  EXPECT_EQ(merged.find_histogram("hops")->count(), 15u);
}

TEST(MetricsRegistry, MergeCreatesMissingInstruments) {
  MetricsRegistry a, b;
  b.counter("only_in_b").add(3);
  a.merge(b);
  ASSERT_NE(a.find_counter("only_in_b"), nullptr);
  EXPECT_EQ(a.find_counter("only_in_b")->value(), 3u);
}

}  // namespace
}  // namespace manet::common
