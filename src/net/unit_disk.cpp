#include "net/unit_disk.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "graph/components.hpp"

namespace manet::net {

graph::Graph build_unit_disk_graph(const std::vector<geom::Vec2>& positions,
                                   double tx_radius) {
  UnitDiskBuilder builder(tx_radius);
  return builder.build(positions);
}

UnitDiskBuilder::UnitDiskBuilder(double tx_radius, bool ensure_connected, double slack_factor)
    : tx_radius_(tx_radius),
      ensure_connected_(ensure_connected),
      slack_(slack_factor * tx_radius),
      grid_(tx_radius * (1.0 + slack_factor)) {
  MANET_CHECK(tx_radius > 0.0);
  MANET_CHECK(slack_factor >= 0.0);
}

void UnitDiskBuilder::compute_bridges(const std::vector<geom::Vec2>& positions,
                                      const graph::Graph& raw,
                                      std::vector<graph::Edge>& bridges) const {
  // Bridge every minor component to the giant one via the closest node pair
  // (checked against every giant-component node; component populations are
  // tiny in practice, so the quadratic scan is cheap and exact).
  const auto labels = graph::component_labels(raw);
  const std::uint32_t n_comp = 1 + *std::max_element(labels.begin(), labels.end());
  auto comp_size = arena_.alloc_span<Size>(n_comp);
  for (const auto l : labels) ++comp_size[l];
  const std::uint32_t giant = static_cast<std::uint32_t>(
      std::max_element(comp_size.begin(), comp_size.end()) - comp_size.begin());

  auto giant_nodes = arena_.alloc_span<NodeId>(comp_size[giant]);
  Size gi = 0;
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] == giant) giant_nodes[gi++] = v;
  }
  for (std::uint32_t c = 0; c < n_comp; ++c) {
    if (c == giant) continue;
    double best_d2 = std::numeric_limits<double>::infinity();
    NodeId best_u = kInvalidNode, best_v = kInvalidNode;
    for (NodeId u = 0; u < labels.size(); ++u) {
      if (labels[u] != c) continue;
      for (const NodeId v : giant_nodes) {
        const double d2 = geom::distance2(positions[u], positions[v]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_u = u;
          best_v = v;
        }
      }
    }
    MANET_CHECK(best_u != kInvalidNode);
    bridges.emplace_back(std::min(best_u, best_v), std::max(best_u, best_v));
  }
}

graph::Graph UnitDiskBuilder::build(const std::vector<geom::Vec2>& positions) {
  inc_valid_ = false;  // stateless path; next update() re-seeds
  arena_.rewind();
  grid_.rebuild(positions);
  edge_buffer_.clear();
  grid_.for_each_pair_within(tx_radius_, [this](NodeId u, NodeId v) {
    edge_buffer_.emplace_back(u, v);
  });
  // for_each_pair_within emits canonical (u < v) pairs, each exactly once.
  graph::Graph g(positions.size(), edge_buffer_);
  last_augmented_ = 0;
  if (!ensure_connected_ || graph::is_connected(g) || positions.size() < 2) return g;

  bridge_scratch_.clear();
  compute_bridges(positions, g, bridge_scratch_);
  edge_buffer_.insert(edge_buffer_.end(), bridge_scratch_.begin(), bridge_scratch_.end());
  last_augmented_ = bridge_scratch_.size();
  return graph::Graph(positions.size(), edge_buffer_);
}

void UnitDiskBuilder::refresh_cells() {
  // Node -> occupied-bucket map over the anchored snapshot. Every write is
  // an independent pure function of (anchor_pos_, grid_), so the sharded
  // fill is trivially identical to the sequential one.
  const Size n = anchor_pos_.size();
  if (par_ != nullptr) {
    const Size shards = par_->shard_count();
    par_->for_each_shard([&](Size s) {
      const auto [begin, end] = sim::ShardExecutor::slice(n, s, shards);
      for (Size v = begin; v < end; ++v) {
        state_.set_cell(static_cast<NodeId>(v), grid_.bucket_index_of(anchor_pos_[v]));
      }
    });
  } else {
    for (NodeId v = 0; v < n; ++v) state_.set_cell(v, grid_.bucket_index_of(anchor_pos_[v]));
  }
}

void UnitDiskBuilder::full_reset(const std::vector<geom::Vec2>& positions) {
  const Size n = positions.size();
  state_.build_from(positions);
  anchor_pos_ = positions;
  grid_.rebuild(positions);
  refresh_cells();
  adj_.resize(n);
  for (auto& a : adj_) a.clear();
  if (par_ != nullptr) {
    // Sharded pair enumeration over contiguous occupied-cell ranges: each
    // pair is owned by exactly one cell (the forward-stencil owner, the
    // lexically lower cell key), hence by exactly one shard. The adjacency
    // fill below walks shard buffers in shard order and every list is
    // sorted afterwards, so the result cannot depend on the thread count.
    const Size shards = par_->shard_count();
    if (shard_pairs_.size() < shards) shard_pairs_.resize(shards);
    const Size cells = grid_.cell_count();
    par_->for_each_shard([&](Size s) {
      const auto [begin, end] = sim::ShardExecutor::slice(cells, s, shards);
      auto& mine = shard_pairs_[s];
      mine.clear();
      grid_.for_each_pair_within(tx_radius_, begin, end, [&mine](NodeId u, NodeId v) {
        mine.emplace_back(u, v);
      });
      par_->metrics(s).counter("par.udg_pairs").add(mine.size());
    });
    for (Size s = 0; s < shards; ++s) {
      for (const auto& [u, v] : shard_pairs_[s]) {
        adj_[u].push_back(v);
        adj_[v].push_back(u);
      }
    }
    par_->for_each_shard([&](Size s) {
      const auto [begin, end] = sim::ShardExecutor::slice(n, s, shards);
      for (Size v = begin; v < end; ++v) std::sort(adj_[v].begin(), adj_[v].end());
    });
  } else {
    grid_.for_each_pair_within(tx_radius_, [this](NodeId u, NodeId v) {
      adj_[u].push_back(v);
      adj_[v].push_back(u);
    });
    for (auto& a : adj_) std::sort(a.begin(), a.end());
  }
  stale_.assign(n, 0);
  stale_list_.clear();
  moved_now_.assign(n, 0);
  inc_valid_ = true;
  refresh_graphs(/*raw_dirty=*/true);
}

void UnitDiskBuilder::refresh_graphs(bool raw_dirty) {
  const Size n = state_.size();
  if (raw_dirty) {
    edge_buffer_.clear();
    if (par_ != nullptr) {
      // Sharded canonical-edge rebuild: contiguous node ranges, per-shard
      // buffers concatenated in shard order == the sequential u-major walk.
      // shard_pairs_ is free here (full_reset consumed it into adj_).
      const Size shards = par_->shard_count();
      if (shard_pairs_.size() < shards) shard_pairs_.resize(shards);
      par_->for_each_shard([&](Size s) {
        const auto [begin, end] = sim::ShardExecutor::slice(n, s, shards);
        auto& mine = shard_pairs_[s];
        mine.clear();
        for (Size u = begin; u < end; ++u) {
          for (const NodeId v : adj_[u]) {
            if (v > u) mine.emplace_back(static_cast<NodeId>(u), v);
          }
        }
      });
      for (Size s = 0; s < shards; ++s) {
        edge_buffer_.insert(edge_buffer_.end(), shard_pairs_[s].begin(),
                            shard_pairs_[s].end());
      }
    } else {
      for (NodeId u = 0; u < n; ++u) {
        for (const NodeId v : adj_[u]) {
          if (v > u) edge_buffer_.emplace_back(u, v);
        }
      }
    }
    raw_graph_.assign(n, edge_buffer_);
  }
  bool aug_dirty = false;
  if (ensure_connected_ && n >= 2) {
    // Bridges must be refreshed when the raw edge set changed, and also when
    // any node moved while bridges were active: the closest-pair rule reads
    // current positions, so the full-rebuild path would re-derive them.
    if (raw_dirty || augmented_) {
      std::swap(bridges_, bridge_scratch_);  // keep the old set for the diff
      bridges_.clear();
      if (!graph::is_connected(raw_graph_)) {
        state_.write_back(pos_scratch_);  // AoS bridge for the cold path
        compute_bridges(pos_scratch_, raw_graph_, bridges_);
      }
      aug_dirty = bridges_ != bridge_scratch_;
      augmented_ = !bridges_.empty();
      if (augmented_ && (raw_dirty || aug_dirty)) {
        combine_scratch_.assign(raw_graph_.edges().begin(), raw_graph_.edges().end());
        combine_scratch_.insert(combine_scratch_.end(), bridges_.begin(), bridges_.end());
        aug_graph_.assign(n, combine_scratch_);
      }
    }
  } else {
    augmented_ = false;
    bridges_.clear();
  }
  last_augmented_ = bridges_.size();
  changed_ = raw_dirty || aug_dirty;
}

const graph::Graph& UnitDiskBuilder::update(const std::vector<geom::Vec2>& positions) {
  const Size n = positions.size();
  arena_.rewind();
  if (!inc_valid_ || state_.size() != n) {
    full_reset(positions);
    last_moved_ = n;
    full_rescan_ = true;
    ups_.clear();
    downs_.clear();
    changed_ = true;  // (re)seed: callers must treat the topology as new
    return graph();
  }

  // Exact moved-node detection (any approximation here — a movement
  // threshold — could miss a pair crossing R_TX and break bit-identity),
  // fused with the position commit: the SoA advance() compares coordinate
  // pairs exactly like Vec2::operator!=, records the displacement and
  // commits the new x/y. Committing before the rescan decision is safe —
  // full_reset() rebuilds the whole state from \p positions anyway.
  moved_scratch_.clear();
  state_.advance(positions, moved_scratch_);
  last_moved_ = moved_scratch_.size();
  full_rescan_ = false;
  ups_.clear();
  downs_.clear();
  if (moved_scratch_.empty()) {
    // Nothing moved: the raw set and (position-dependent) bridges are
    // exactly what a full rebuild would produce. Zero work, zero allocation.
    changed_ = false;
    return graph();
  }

  if (4 * last_moved_ > n) {
    // Mostly-moving tick (the exact "> n/4" contract, written without the
    // integer division that would merely obscure it): a full rescan is
    // cheaper than point updates. Preserve the previous *raw* edge set to
    // emit an exact delta — the ups/downs contract covers radio links only,
    // never synthetic bridges.
    full_rescan_ = true;
    old_edges_scratch_.assign(raw_graph_.edges().begin(), raw_graph_.edges().end());
    full_reset(positions);
    const auto new_edges = raw_graph_.edges();
    if (par_ != nullptr) {
      diff_.run(new_edges, old_edges_scratch_, *par_, ups_);
      diff_.run(old_edges_scratch_, new_edges, *par_, downs_);
    } else {
      std::set_difference(new_edges.begin(), new_edges.end(), old_edges_scratch_.begin(),
                          old_edges_scratch_.end(), std::back_inserter(ups_));
      std::set_difference(old_edges_scratch_.begin(), old_edges_scratch_.end(),
                          new_edges.begin(), new_edges.end(), std::back_inserter(downs_));
    }
    // full_reset's refresh left the pre-reset bridge set in bridge_scratch_,
    // so a position-only bridge swap (same count, different endpoints) is
    // still visible here.
    const bool aug_changed = ensure_connected_ && n >= 2 && bridges_ != bridge_scratch_;
    changed_ = !ups_.empty() || !downs_.empty() || aug_changed;
    return graph();
  }

  // --- Point updates ---
  // Phase 1 (sequential; positions were already committed by advance()):
  // mark movers and refresh stale flags. Phase 2 reads that state without
  // writing it, so it shards over the moved list.
  const double slack2 = slack_ * slack_;
  for (const NodeId v : moved_scratch_) {
    moved_now_[v] = 1;
    if (stale_[v] == 0 && geom::distance2(state_.pos(v), anchor_pos_[v]) > slack2) {
      stale_[v] = 1;
      stale_list_.push_back(v);
    }
  }

  if (par_ != nullptr) {
    // Phase 2 (sharded): contiguous slices of the moved list, per-shard
    // scratch and delta buffers; concatenating the buffers in shard index
    // order reproduces the sequential emission order exactly.
    const Size shards = par_->shard_count();
    if (shard_ups_.size() < shards) {
      shard_ups_.resize(shards);
      shard_downs_.resize(shards);
      shard_nbr_.resize(shards);
      shard_fresh_.resize(shards);
    }
    par_->for_each_shard([&](Size s) {
      const auto [begin, end] = sim::ShardExecutor::slice(moved_scratch_.size(), s, shards);
      auto& ups = shard_ups_[s];
      auto& downs = shard_downs_[s];
      ups.clear();
      downs.clear();
      for (Size idx = begin; idx < end; ++idx) {
        recompute_moved(moved_scratch_[idx], shard_nbr_[s], shard_fresh_[s], ups, downs);
      }
      par_->metrics(s).counter("par.moved_nodes").add(end - begin);
    });
    for (Size s = 0; s < shards; ++s) {
      ups_.insert(ups_.end(), shard_ups_[s].begin(), shard_ups_[s].end());
      downs_.insert(downs_.end(), shard_downs_[s].begin(), shard_downs_[s].end());
    }
  } else {
    for (const NodeId u : moved_scratch_) {
      recompute_moved(u, nbr_scratch_, new_nbrs_, ups_, downs_);
    }
  }
  for (const NodeId v : moved_scratch_) moved_now_[v] = 0;

  // Apply the delta to both endpoints' adjacency lists (sorted insert/erase).
  for (const auto& [a, b] : ups_) {
    auto& na = adj_[a];
    na.insert(std::lower_bound(na.begin(), na.end(), b), b);
    auto& nb = adj_[b];
    nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  }
  for (const auto& [a, b] : downs_) {
    auto& na = adj_[a];
    na.erase(std::lower_bound(na.begin(), na.end(), b));
    auto& nb = adj_[b];
    nb.erase(std::lower_bound(nb.begin(), nb.end(), a));
  }

  refresh_graphs(/*raw_dirty=*/!ups_.empty() || !downs_.empty());

  // Re-anchor the grid once enough nodes drifted beyond the slack; point
  // queries degrade (the stale list is scanned per moved node) before
  // correctness ever would.
  if (stale_list_.size() > std::max<Size>(16, n / 8)) {
    // The committed SoA state equals \p positions bit-for-bit here (every
    // mover was just committed from it), so re-anchor straight off the
    // caller's AoS vector — no write-back copy needed.
    grid_.rebuild(positions);
    anchor_pos_ = positions;
    refresh_cells();
    std::fill(stale_.begin(), stale_.end(), 0);
    stale_list_.clear();
  }
  return graph();
}

void UnitDiskBuilder::recompute_moved(NodeId u, std::vector<NodeId>& nbr,
                                      std::vector<NodeId>& fresh,
                                      std::vector<graph::Edge>& ups,
                                      std::vector<graph::Edge>& downs) const {
  // New exact neighborhood of u: grid candidates are keyed by anchored
  // positions, so widen the query by the slack (a non-stale candidate sits
  // within slack of its anchor) and re-check true distances; stale nodes
  // are not reliably anchored and are scanned directly. Reads only
  // phase-1-committed state (state_, stale_, adj_, moved_now_, grid_),
  // so concurrent calls on distinct u with private buffers are safe.
  //
  // Distance checks run over the SoA x/y arrays: dx*dx + dy*dy is the same
  // expression tree as geom::distance2 (bit-identical), but the operands
  // are contiguous doubles, which is what lets the compiler vectorize the
  // candidate re-check.
  const double r2 = tx_radius_ * tx_radius_;
  const double query_r = tx_radius_ + slack_;
  const double* xs = state_.x();
  const double* ys = state_.y();
  const double ux = xs[u];
  const double uy = ys[u];
  fresh.clear();
  nbr.clear();
  grid_.neighbors_within({ux, uy}, query_r, u, nbr);
  for (const NodeId v : nbr) {
    const double dx = ux - xs[v];
    const double dy = uy - ys[v];
    if (stale_[v] == 0 && dx * dx + dy * dy <= r2) {
      fresh.push_back(v);
    }
  }
  for (const NodeId v : stale_list_) {
    const double dx = ux - xs[v];
    const double dy = uy - ys[v];
    if (v != u && dx * dx + dy * dy <= r2) {
      fresh.push_back(v);
    }
  }
  std::sort(fresh.begin(), fresh.end());

  // Diff against the maintained adjacency. A pair with both endpoints
  // moved is recomputed twice with identical results; emit it once
  // (from the smaller endpoint).
  const auto& old_nbrs = adj_[u];
  auto record = [&](NodeId v, std::vector<graph::Edge>& out) {
    if (moved_now_[v] == 0 || u < v) {
      out.emplace_back(std::min(u, v), std::max(u, v));
    }
  };
  std::size_t i = 0, j = 0;
  while (i < old_nbrs.size() || j < fresh.size()) {
    if (j == fresh.size() || (i < old_nbrs.size() && old_nbrs[i] < fresh[j])) {
      record(old_nbrs[i++], downs);
    } else if (i == old_nbrs.size() || fresh[j] < old_nbrs[i]) {
      record(fresh[j++], ups);
    } else {
      ++i;
      ++j;
    }
  }
}

}  // namespace manet::net
