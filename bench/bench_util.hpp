#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/model_fit.hpp"
#include "analysis/table.hpp"
#include "exp/campaign.hpp"

/// \file bench_util.hpp
/// Shared scaffolding for the experiment binaries in bench/. Every binary
/// regenerates one row-set of EXPERIMENTS.md: it prints fixed-width tables
/// via analysis::TextTable plus, where the claim is a growth order, the
/// scaling-model ranking. Scales are sized so that the whole bench suite
/// completes in minutes on one core while still spanning a 16x node range.

namespace manet::bench {

/// Node counts for scaling sweeps (16x range, log-spaced).
inline std::vector<Size> standard_nodes() { return {128, 256, 512, 1024, 2048}; }

/// Reduced sweep for the more expensive experiments.
inline std::vector<Size> small_nodes() { return {128, 256, 512, 1024}; }

/// The paper's scenario defaults (Section 1.2): random waypoint, constant
/// density, fixed R_TX (the paper drops the connectivity log-factor, so the
/// fixed-degree radius policy is the faithful default — see DESIGN.md).
inline exp::ScenarioConfig paper_scenario() {
  exp::ScenarioConfig cfg;
  cfg.density = 1.0;
  cfg.mu = 1.0;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  cfg.warmup = 15.0;
  cfg.duration = 45.0;
  cfg.seed = 20020415;  // IPPS 2002
  return cfg;
}

inline Size standard_replications() { return 3; }

/// Print a mean +- ci cell.
inline std::string cell(const exp::AggregatedMetrics& metrics, const std::string& name) {
  const auto s = metrics.summary(name);
  if (s.count == 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g +-%.2g", s.mean, s.ci95);
  return buf;
}

inline std::string fixed(double v, int precision = 4) {
  return analysis::TextTable::fmt(v, precision);
}

/// Print the growth-law ranking for one (n, y) series.
inline void print_model_selection(const std::string& label, const exp::Campaign& campaign,
                                  const std::string& metric) {
  std::vector<double> ns, ys;
  campaign.series(metric, ns, ys);
  if (ns.size() < 3) {
    std::printf("[%s] not enough points for a model fit\n", label.c_str());
    return;
  }
  const auto sel = analysis::select_model(ns, ys);
  std::printf("-- model ranking for %s (best first) --\n%s", label.c_str(),
              sel.to_text().c_str());
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace manet::bench
