#include <gtest/gtest.h>

#include <cmath>

#include "analysis/model_fit.hpp"
#include "exp/campaign.hpp"

/// Scaling properties over node count — the reproduction's headline checks,
/// run at reduced scale so they stay test-suite friendly (the full-scale
/// versions live in bench/). Parameterized over n so ctest reports each
/// scale point separately.

namespace manet::exp {
namespace {

ScenarioConfig scaling_config() {
  ScenarioConfig cfg;
  cfg.warmup = 8.0;
  cfg.duration = 20.0;
  cfg.seed = 2024;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

RunOptions light_options() {
  RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  return opts;
}

/// One shared campaign across all property checks (expensive to produce).
const Campaign& shared_campaign() {
  static const Campaign campaign = [] {
    const std::vector<Size> ns{96, 192, 384, 768};
    return sweep_node_count(scaling_config(), ns, 2, light_options());
  }();
  return campaign;
}

TEST(ScalingProperty, LevelsGrowLogarithmically) {
  std::vector<double> ns, levels;
  shared_campaign().series("levels", ns, levels);
  ASSERT_EQ(ns.size(), 4u);
  // Levels increase, but by far less than proportionally.
  EXPECT_GT(levels.back(), levels.front());
  EXPECT_LT(levels.back(), levels.front() + 3.0);
}

TEST(ScalingProperty, F0StaysFlat) {
  std::vector<double> ns, f0;
  shared_campaign().series("f0", ns, f0);
  ASSERT_EQ(f0.size(), 4u);
  EXPECT_LT(f0.back() / f0.front(), 1.6);
  EXPECT_GT(f0.back() / f0.front(), 0.6);
}

TEST(ScalingProperty, TotalOverheadGrowsSubLinearly) {
  std::vector<double> ns, total;
  shared_campaign().series("total_rate", ns, total);
  ASSERT_EQ(total.size(), 4u);
  const auto power = analysis::fit_power_law(ns, total);
  // Polylogarithmic target; anything approaching linear growth (exponent 1)
  // is a regression. Finite-size effects keep the small-n exponent well
  // above the asymptotic 2/ln n, hence the generous ceiling.
  EXPECT_LT(power.slope, 0.85);
  EXPECT_GT(power.slope, 0.0);
}

TEST(ScalingProperty, LogSquaredModelOutranksLinear) {
  std::vector<double> ns, total;
  shared_campaign().series("total_rate", ns, total);
  const auto sel = analysis::select_model(ns, total);
  int rank_log2 = -1, rank_linear = -1;
  for (int i = 0; i < static_cast<int>(sel.ranked.size()); ++i) {
    const auto law = sel.ranked[static_cast<std::size_t>(i)].law;
    if (law == analysis::GrowthLaw::kLogSquared) rank_log2 = i;
    if (law == analysis::GrowthLaw::kLinear) rank_linear = i;
  }
  EXPECT_LT(rank_log2, rank_linear);
}

TEST(ScalingProperty, EntriesPerNodeGrowsSlowly) {
  std::vector<double> ns, entries;
  shared_campaign().series("entries_per_node", ns, entries);
  ASSERT_EQ(entries.size(), 4u);
  // 8x nodes, roughly +log growth in entries (bounded by +3 levels).
  EXPECT_LE(entries.back(), entries.front() + 3.0);
}

TEST(ScalingProperty, PhiAndGammaBothPresentAtAllScales) {
  for (const auto& point : shared_campaign().points) {
    EXPECT_GT(point.metrics.mean("phi_rate"), 0.0) << "n=" << point.n;
    EXPECT_GT(point.metrics.mean("gamma_rate"), 0.0) << "n=" << point.n;
  }
}

}  // namespace
}  // namespace manet::exp
