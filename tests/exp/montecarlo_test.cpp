#include "exp/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exp/campaign.hpp"

namespace manet::exp {
namespace {

ScenarioConfig quick_config(Size n = 100) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.warmup = 4.0;
  cfg.duration = 8.0;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

RunOptions light_options() {
  RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  return opts;
}

TEST(AggregatedMetrics, AddAndSummarize) {
  AggregatedMetrics agg;
  RunMetrics a, b;
  a.set("x", 1.0);
  b.set("x", 3.0);
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.replication_count(), 2u);
  EXPECT_DOUBLE_EQ(agg.mean("x"), 2.0);
  const auto s = agg.summary("x");
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(AggregatedMetrics, MissingMetricIsNan) {
  AggregatedMetrics agg;
  EXPECT_FALSE(agg.has("nope"));
  EXPECT_TRUE(std::isnan(agg.mean("nope")));
  EXPECT_EQ(agg.summary("nope").count, 0u);
}

TEST(AggregatedMetrics, MergeCombines) {
  AggregatedMetrics a, b;
  RunMetrics m1, m2;
  m1.set("x", 2.0);
  m2.set("x", 4.0);
  a.add(m1);
  b.add(m2);
  a.merge(b);
  EXPECT_EQ(a.replication_count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean("x"), 3.0);
}

TEST(RunReplications, SerialAndPooledAgree) {
  const auto cfg = quick_config();
  const auto serial = run_replications(cfg, 3, light_options(), nullptr);
  common::ThreadPool pool(3);
  const auto pooled = run_replications(cfg, 3, light_options(), &pool);
  EXPECT_EQ(serial.replication_count(), pooled.replication_count());
  for (const auto& name : serial.names()) {
    EXPECT_DOUBLE_EQ(serial.mean(name), pooled.mean(name)) << name;
  }
}

TEST(RunReplications, DistinctSeedsPerReplication) {
  const auto cfg = quick_config();
  const auto agg = run_replications(cfg, 3, light_options());
  // Three independent replications almost surely differ => nonzero spread.
  EXPECT_GT(agg.summary("phi_rate").stddev, 0.0);
}

TEST(SweepNodeCount, ProducesOrderedSeries) {
  const std::vector<Size> ns{80, 160};
  const auto campaign = sweep_node_count(quick_config(), ns, 2, light_options());
  ASSERT_EQ(campaign.points.size(), 2u);
  EXPECT_EQ(campaign.points[0].n, 80u);
  EXPECT_EQ(campaign.points[1].n, 160u);

  std::vector<double> xs, ys;
  campaign.series("total_rate", xs, ys);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_DOUBLE_EQ(xs[0], 80.0);
  EXPECT_GT(ys[1], 0.0);
}

TEST(SweepNodeCount, SeriesWithErrorMatchesSummaries) {
  const std::vector<Size> ns{80, 160};
  const auto campaign = sweep_node_count(quick_config(), ns, 3, light_options());
  std::vector<double> xs, ys, es;
  campaign.series_with_error("total_rate", xs, ys, es);
  ASSERT_EQ(xs.size(), 2u);
  ASSERT_EQ(es.size(), 2u);
  for (Size i = 0; i < 2; ++i) {
    const auto s = campaign.points[i].metrics.summary("total_rate");
    EXPECT_DOUBLE_EQ(ys[i], s.mean);
    EXPECT_NEAR(es[i], s.ci95 / 1.96, 1e-12);
    EXPECT_GT(es[i], 0.0);  // three replications differ
  }
}

TEST(SweepNodeCount, SeriesSkipsMissingMetrics) {
  const std::vector<Size> ns{80};
  const auto campaign = sweep_node_count(quick_config(), ns, 1, light_options());
  std::vector<double> xs, ys;
  campaign.series("does_not_exist", xs, ys);
  EXPECT_TRUE(xs.empty());
}

}  // namespace
}  // namespace manet::exp
