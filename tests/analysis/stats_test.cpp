#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manet::analysis {
namespace {

TEST(Accumulator, EmptyDefaults) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeEqualsSequentialAdd) {
  Accumulator a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.37) * 10.0;
    combined.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(3.0);
  a.add(7.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Accumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summarize, MatchesAccumulator) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

}  // namespace
}  // namespace manet::analysis
