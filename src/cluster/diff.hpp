#pragma once

#include <array>
#include <vector>

#include "cluster/hierarchy.hpp"

/// \file diff.hpp
/// Snapshot differencing: given the clustered hierarchy before and after a
/// topology change, emit (a) per-node cluster membership migrations — the
/// triggers of migration handoff phi (paper Section 4) — and (b) typed
/// cluster reorganization events (i)-(vii) (paper Section 5.2) — the triggers
/// of reorganization handoff gamma.
///
/// All identities are *original node ids*, which are stable across
/// snapshots; dense per-snapshot vertex indices never leave this module.

namespace manet::cluster {

/// The paper's Section 5.2 event taxonomy.
enum class ReorgEventType : std::uint8_t {
  kLinkUp = 0,            ///< (i)  new level-k link touching a level-(k+1) node
  kLinkDown,              ///< (ii) lost level-k link touching a level-(k+1) node
  kElectByMigration,      ///< (iii) head elected because an existing voter migrated
  kRejectByMigration,     ///< (iv)  head rejected because its voter(s) migrated away
  kElectRecursive,        ///< (v)   head elected by a voter that was itself just elected
  kRejectRecursive,       ///< (vi)  head rejected because its voter was itself rejected
  kNeighborPromoted,      ///< (vii) a level-k neighbor became a level-(k+1) head
};

inline constexpr std::size_t kReorgEventTypeCount = 7;

const char* to_string(ReorgEventType type);

struct ReorgEvent {
  ReorgEventType type;
  Level level;   ///< the level-k of the paper's event definition
  NodeId a;      ///< primary id (head elected/rejected, or link endpoint)
  NodeId b;      ///< secondary id (other endpoint / promoted neighbor); kInvalidNode if n/a
};

/// One level-0 node changing its level-k cluster.
struct Migration {
  NodeId node;       ///< level-0 node id
  Level level;       ///< k >= 1
  NodeId from_head;  ///< previous level-k clusterhead id
  NodeId to_head;    ///< new level-k clusterhead id
};

struct HierarchyDelta {
  std::vector<Migration> migrations;
  std::vector<ReorgEvent> events;

  /// heads_gained[k] / heads_lost[k]: ids entering/leaving V_k, k >= 1.
  std::vector<std::vector<NodeId>> heads_gained;
  std::vector<std::vector<NodeId>> heads_lost;

  /// links_up[k] / links_down[k]: level-k topology link changes as canonical
  /// id pairs, k >= 1 (level-0 link changes are tracked by net::LinkTracker).
  std::vector<std::vector<std::pair<NodeId, NodeId>>> links_up;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> links_down;

  /// Event count by [type][level] (level capped at the table width).
  std::array<std::vector<Size>, kReorgEventTypeCount> event_counts;

  Size total_events() const { return events.size(); }
  Size count(ReorgEventType type, Level level) const;
};

/// Compute the delta between consecutive hierarchy snapshots over the same
/// node population. Levels present in only one snapshot are treated as empty
/// in the other.
HierarchyDelta diff_hierarchies(const Hierarchy& before, const Hierarchy& after);

/// Same, writing into \p delta (cleared first, capacity retained). The tick
/// loop calls this once per changed tick; reusing the delta's buffers keeps
/// the steady-state path free of per-tick allocation growth.
void diff_hierarchies(const Hierarchy& before, const Hierarchy& after, HierarchyDelta& delta);

}  // namespace manet::cluster
