#pragma once

#include <vector>

#include "cluster/hierarchy.hpp"
#include "graph/graph.hpp"

/// \file table.hpp
/// Strict hierarchical routing (paper Section 2.1, after Steenstrup [14] and
/// Kleinrock & Kamoun [7]).
///
/// Each node keeps, for every level k of its ancestor chain, one routing
/// entry per *sibling* cluster of its level-(k-1) cluster inside its level-k
/// cluster: the next hop on a shortest level-0 path toward the nearest
/// member of that sibling. Forwarding a packet reads only the destination's
/// hierarchical address: at node u, find the lowest level j where u and the
/// destination share a cluster, look up u's entry for the destination's
/// level-(j-1) cluster, and hand the packet to that next hop. No packet is
/// forced through clusterheads, exactly as the paper stresses.
///
/// Table size is Theta(sum_k alpha_k) = Theta(log|V|) entries per node —
/// the Kleinrock-Kamoun saving over the flat Theta(|V|) table — at the cost
/// of bounded path stretch; both are measured by bench_routing (E16/E17).

namespace manet::routing {

/// One routing entry: toward cluster `target` (dense index at `level`),
/// leave via `next_hop` (level-0 dense vertex); `distance` is the hop count
/// to the nearest member of the target cluster.
struct RouteEntry {
  Level level = 0;          ///< cluster level of the target
  NodeId target = 0;        ///< dense cluster index at `level`
  NodeId next_hop = kInvalidNode;
  std::uint32_t distance = 0;
};

/// All routing state for the network under one hierarchy snapshot.
class RoutingTables {
 public:
  /// Build tables for every node. Cost: one multi-source BFS per cluster
  /// per level — O(L * |V| + sum_k |V_k| * |E|) worst case, fine at the
  /// scales this library targets.
  RoutingTables(const graph::Graph& g, const cluster::Hierarchy& h);

  /// Entries held by node \p v (its "hierarchical map" worth of routes).
  const std::vector<RouteEntry>& entries(NodeId v) const;

  /// Number of entries at node \p v; Theta(log n) is the claim under test.
  Size table_size(NodeId v) const { return entries(v).size(); }

  double mean_table_size() const;

  /// Next hop at node \p u for a packet addressed to \p dest. Returns u
  /// itself when u == dest. kInvalidNode signals a routing failure (cannot
  /// happen on a connected snapshot; surfaced for tests).
  NodeId next_hop(NodeId u, NodeId dest) const;

  struct RouteResult {
    std::vector<NodeId> path;  ///< nodes visited, inclusive of both ends
    bool delivered = false;
    bool recovered = false;  ///< loop detected; finished via recovery mode
  };

  /// Trace the full path u -> dest. Hierarchical forwarding is loop-free as
  /// long as every hop stays inside the longest-matched cluster; entries
  /// that had to fall back to global shortest-path fields (non-contiguous
  /// cluster memberships) can oscillate — on the first revisit the packet
  /// switches to recovery mode (pure shortest-path forwarding), like the
  /// route-repair fallback of SURAN/MMWN-class protocols.
  RouteResult route(NodeId u, NodeId dest) const;

  const cluster::Hierarchy& hierarchy() const { return *h_; }

 private:
  /// Locate the entry at node u targeting (level, cluster).
  const RouteEntry* find_entry(NodeId u, Level level, NodeId cluster) const;

  const graph::Graph* g_;
  const cluster::Hierarchy* h_;
  std::vector<std::vector<RouteEntry>> tables_;  ///< per node
};

/// Path-stretch statistics of hierarchical routing vs shortest paths.
struct StretchStats {
  double mean_stretch = 0.0;  ///< mean over sampled pairs of hier/shortest
  double max_stretch = 0.0;
  double mean_hier_hops = 0.0;
  double mean_shortest_hops = 0.0;
  Size sampled_pairs = 0;
  Size recoveries = 0;  ///< pairs that needed the recovery fallback
  Size failures = 0;    ///< pairs undeliverable even with recovery
};

/// Sample \p pairs random (src, dst) pairs and compare path lengths.
StretchStats measure_stretch(const RoutingTables& tables, const graph::Graph& g, Size pairs,
                             std::uint64_t seed);

}  // namespace manet::routing
