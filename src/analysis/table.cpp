#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace manet::analysis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MANET_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MANET_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(fmt(v));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string TextTable::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace manet::analysis
