#include "analysis/model_fit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace manet::analysis {

const char* to_string(GrowthLaw law) {
  switch (law) {
    case GrowthLaw::kConstant: return "1";
    case GrowthLaw::kLog: return "log(n)";
    case GrowthLaw::kLogSquared: return "log^2(n)";
    case GrowthLaw::kSqrt: return "sqrt(n)";
    case GrowthLaw::kLinear: return "n";
  }
  return "?";
}

double growth_value(GrowthLaw law, double n) {
  MANET_CHECK(n > 0.0);
  switch (law) {
    case GrowthLaw::kConstant: return 1.0;
    case GrowthLaw::kLog: return std::log(n);
    case GrowthLaw::kLogSquared: {
      const double l = std::log(n);
      return l * l;
    }
    case GrowthLaw::kSqrt: return std::sqrt(n);
    case GrowthLaw::kLinear: return n;
  }
  return 0.0;
}

ModelSelection select_model(std::span<const double> ns, std::span<const double> ys) {
  MANET_CHECK(ns.size() == ys.size());
  MANET_CHECK_MSG(ns.size() >= 3, "model selection needs >= 3 scale points");

  ModelSelection sel;
  const auto m = static_cast<double>(ns.size());
  for (std::size_t i = 0; i < kGrowthLawCount; ++i) {
    const auto law = static_cast<GrowthLaw>(i);
    std::vector<double> fx(ns.size());
    for (std::size_t j = 0; j < ns.size(); ++j) fx[j] = growth_value(law, ns[j]);
    ModelFit mf;
    mf.law = law;
    mf.fit = fit_linear(fx, ys);  // kConstant degenerates to the mean model
    // Gaussian AIC with k = 2 parameters (3 counting sigma; constant across
    // candidates, so only relative values matter).
    const double rss = std::max(mf.fit.rss, 1e-300);
    mf.aic = m * std::log(rss / m) + 2.0 * 2.0;
    sel.ranked.push_back(mf);
  }
  std::sort(sel.ranked.begin(), sel.ranked.end(),
            [](const ModelFit& a, const ModelFit& b) { return a.fit.rss < b.fit.rss; });
  sel.power_law = fit_power_law(ns, ys);
  return sel;
}

std::string ModelSelection::to_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %12s %12s %12s %12s\n", "model", "slope",
                "intercept", "R^2", "AIC");
  out += line;
  for (const auto& mf : ranked) {
    std::snprintf(line, sizeof(line), "%-10s %12.5g %12.5g %12.4f %12.2f\n",
                  analysis::to_string(mf.law), mf.fit.slope, mf.fit.intercept, mf.fit.r2,
                  mf.aic);
    out += line;
  }
  std::snprintf(line, sizeof(line), "log-log exponent: %.3f (R^2 %.3f)\n", power_law.slope,
                power_law.r2);
  out += line;
  return out;
}

}  // namespace manet::analysis
