#include "analysis/csv.hpp"

#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace manet::analysis {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), arity_(columns.size()) {
  MANET_CHECK(arity_ > 0);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) os_ << ',';
    os_ << escape(columns[c]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  MANET_CHECK_MSG(cells.size() == arity_, "CSV row arity mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) os_ << ',';
    os_ << escape(cells[c]);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::write_row_values(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    cells.emplace_back(buf);
  }
  write_row(cells);
}

}  // namespace manet::analysis
