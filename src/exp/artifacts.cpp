#include "exp/artifacts.hpp"

#include <cmath>
#include <limits>
#include <thread>

#ifndef MANET_GIT_SHA
#define MANET_GIT_SHA "unknown"
#endif

namespace manet::exp {

std::string build_git_sha() { return MANET_GIT_SHA; }

RunManifest RunManifest::capture(std::string name, const ScenarioConfig& config,
                                 Size replications, Size thread_count) {
  RunManifest m;
  m.name = std::move(name);
  m.git_sha = build_git_sha();
  m.seed = config.seed;
  m.n = config.n;
  m.replications = replications;
  m.thread_count = thread_count;
  m.hardware_concurrency = static_cast<Size>(std::thread::hardware_concurrency());
  m.scenario = config.describe();
  m.fault = config.fault.describe();
  return m;
}

void RunManifest::write_json(analysis::JsonWriter& w) const {
  w.begin_object();
  w.field("name", name);
  w.field("git_sha", git_sha);
  w.field("seed", static_cast<std::uint64_t>(seed));
  w.field("n", static_cast<std::uint64_t>(n));
  w.field("replications", static_cast<std::uint64_t>(replications));
  w.field("thread_count", static_cast<std::uint64_t>(thread_count));
  w.field("hardware_concurrency", static_cast<std::uint64_t>(hardware_concurrency));
  w.field("wall_seconds", wall_seconds);
  w.field("scenario", scenario);
  w.field("fault", fault);
  w.end_object();
}

bool RunManifest::from_json(const analysis::JsonValue& v, RunManifest& out) {
  if (!v.is_object()) return false;
  const auto* name = v.find("name");
  const auto* sha = v.find("git_sha");
  const auto* scenario = v.find("scenario");
  const auto* seed = v.find("seed");
  if (name == nullptr || !name->is_string() || sha == nullptr || !sha->is_string() ||
      scenario == nullptr || !scenario->is_string() || seed == nullptr ||
      !seed->is_number()) {
    return false;
  }
  out.name = name->string;
  out.git_sha = sha->string;
  out.scenario = scenario->string;
  out.seed = static_cast<std::uint64_t>(seed->number);
  out.n = static_cast<Size>(v.number_or("n", 0.0));
  out.replications = static_cast<Size>(v.number_or("replications", 0.0));
  out.thread_count = static_cast<Size>(v.number_or("thread_count", 1.0));
  // Manifests written before the field existed read back as 0 ("unknown").
  out.hardware_concurrency = static_cast<Size>(v.number_or("hardware_concurrency", 0.0));
  out.wall_seconds = v.number_or("wall_seconds", 0.0);
  // Pre-fault manifests lack the field; treat them as fault-free runs.
  out.fault = v.string_or("fault", "off");
  return true;
}

void write_overhead_json(analysis::JsonWriter& w, const lm::OverheadReport& report) {
  w.begin_object();
  w.field("schema", "manet-overhead/1");
  w.field("node_count", static_cast<std::uint64_t>(report.node_count));
  w.field("window", report.window);
  w.field("phi_rate", report.phi_rate);
  w.field("gamma_rate", report.gamma_rate);
  w.field("total_rate", report.total_rate());
  w.field("phi_entries", static_cast<std::uint64_t>(report.phi_entries));
  w.field("gamma_entries", static_cast<std::uint64_t>(report.gamma_entries));
  w.field("unreachable_transfers",
          static_cast<std::uint64_t>(report.unreachable_transfers));
  const auto levels = [&w](const char* key, const std::vector<double>& xs) {
    w.key(key).begin_array();
    for (const double x : xs) w.value(x);
    w.end_array();
  };
  levels("phi_per_level", report.phi_per_level);
  levels("gamma_per_level", report.gamma_per_level);
  levels("migration_per_level", report.migration_per_level);
  w.end_object();
}

bool overhead_from_json(const analysis::JsonValue& v, lm::OverheadReport& out) {
  if (!v.is_object()) return false;
  if (v.string_or("schema", "") != "manet-overhead/1") return false;
  const auto* phi = v.find("phi_rate");
  const auto* gamma = v.find("gamma_rate");
  if (phi == nullptr || !phi->is_number() || gamma == nullptr || !gamma->is_number()) {
    return false;
  }
  out.node_count = static_cast<Size>(v.number_or("node_count", 0.0));
  out.window = v.number_or("window", 0.0);
  out.phi_rate = phi->number;
  out.gamma_rate = gamma->number;
  out.phi_entries = static_cast<Size>(v.number_or("phi_entries", 0.0));
  out.gamma_entries = static_cast<Size>(v.number_or("gamma_entries", 0.0));
  out.unreachable_transfers =
      static_cast<Size>(v.number_or("unreachable_transfers", 0.0));
  const auto levels = [&v](const char* key, std::vector<double>& xs) {
    xs.clear();
    const auto* arr = v.find(key);
    if (arr == nullptr || !arr->is_array()) return false;
    xs.reserve(arr->items.size());
    for (const auto& item : arr->items) {
      if (!item.is_number()) return false;
      xs.push_back(item.number);
    }
    return true;
  };
  return levels("phi_per_level", out.phi_per_level) &&
         levels("gamma_per_level", out.gamma_per_level) &&
         levels("migration_per_level", out.migration_per_level);
}

void write_registry_json(analysis::JsonWriter& w, const common::MetricsRegistry& registry,
                         Time now) {
  using Entry = common::MetricsRegistry::Entry;
  w.begin_object();
  w.field("schema", "manet-metrics/1");
  w.key("counters").begin_object();
  for (const auto& e : registry.entries()) {
    if (e.kind == Entry::Kind::kCounter) w.field(e.name, e.counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& e : registry.entries()) {
    if (e.kind == Entry::Kind::kGauge) w.field(e.name, e.gauge->value());
  }
  w.end_object();
  w.key("rates").begin_object();
  for (const auto& e : registry.entries()) {
    if (e.kind != Entry::Kind::kRateMeter) continue;
    w.key(e.name).begin_object();
    w.field("total", e.rate_meter->total());
    w.field("rate", e.rate_meter->rate(now));
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& e : registry.entries()) {
    if (e.kind != Entry::Kind::kHistogram) continue;
    const auto& h = *e.histogram;
    w.key(e.name).begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("mean", h.mean());
    w.field("p50", h.quantile(0.5));
    w.field("p99", h.quantile(0.99));
    w.key("buckets").begin_array();
    for (Size i = 0; i < h.bucket_total(); ++i) {
      w.begin_object();
      w.field("le", h.upper_bound(i));
      w.field("count", h.bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_trace_json(analysis::JsonWriter& w, const sim::TraceSink& sink) {
  w.begin_object();
  w.field("schema", "manet-trace/1");
  w.field("seen", static_cast<std::uint64_t>(sink.seen()));
  w.field("stored", static_cast<std::uint64_t>(sink.size()));
  w.field("dropped", static_cast<std::uint64_t>(sink.dropped()));
  w.key("type_counts").begin_object();
  for (Size type = 0; type < sim::kTraceEventTypeCount; ++type) {
    if (sink.type_counts()[type] == 0) continue;
    w.field(sim::to_string(static_cast<sim::TraceEventType>(type)),
            static_cast<std::uint64_t>(sink.type_counts()[type]));
  }
  w.end_object();
  w.key("events").begin_array();
  for (const auto& ev : sink.snapshot()) {
    w.begin_object();
    w.field("t", ev.t);
    w.field("type", sim::to_string(ev.type));
    w.field("k", static_cast<std::uint64_t>(ev.level));
    if (ev.a != kInvalidNode) w.field("a", static_cast<std::uint64_t>(ev.a));
    if (ev.b != kInvalidNode) w.field("b", static_cast<std::uint64_t>(ev.b));
    if (ev.value != 0.0) w.field("cost", ev.value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_resilience_json(analysis::JsonWriter& w, const ResilienceReport& report) {
  w.begin_object();
  w.field("schema", "manet-resilience/1");
  w.field("loss", report.loss);
  w.field("crash_rate", report.crash_rate);
  w.field("phi_retx_rate", report.phi_retx_rate);
  w.field("gamma_retx_rate", report.gamma_retx_rate);
  w.field("failed_transfers", report.failed_transfers);
  w.field("stale_entries", report.stale_entries);
  w.field("repairs", report.repairs);
  w.field("mean_time_to_repair", report.mean_time_to_repair);
  w.field("query_success_rate", report.query_success_rate);
  w.field("query_success_mean", report.query_success_mean);
  w.field("crashes", report.crashes);
  w.field("rejoins", report.rejoins);
  w.end_object();
}

bool resilience_from_json(const analysis::JsonValue& v, ResilienceReport& out) {
  if (!v.is_object()) return false;
  if (v.string_or("schema", "") != "manet-resilience/1") return false;
  const auto* loss = v.find("loss");
  const auto* query = v.find("query_success_rate");
  if (loss == nullptr || !loss->is_number() || query == nullptr || !query->is_number()) {
    return false;
  }
  out.loss = loss->number;
  out.crash_rate = v.number_or("crash_rate", 0.0);
  out.phi_retx_rate = v.number_or("phi_retx_rate", 0.0);
  out.gamma_retx_rate = v.number_or("gamma_retx_rate", 0.0);
  out.failed_transfers = v.number_or("failed_transfers", 0.0);
  out.stale_entries = v.number_or("stale_entries", 0.0);
  out.repairs = v.number_or("repairs", 0.0);
  out.mean_time_to_repair = v.number_or("mean_time_to_repair", 0.0);
  out.query_success_rate = query->number;
  out.query_success_mean = v.number_or("query_success_mean", 0.0);
  out.crashes = v.number_or("crashes", 0.0);
  out.rejoins = v.number_or("rejoins", 0.0);
  return true;
}

void write_sessions_json(analysis::JsonWriter& w, const SessionReport& report) {
  w.begin_object();
  w.field("schema", "manet-sessions/1");
  w.field("mu", report.mu);
  w.field("loss", report.loss);
  w.field("crash_rate", report.crash_rate);
  w.field("packets_offered", report.packets_offered);
  w.field("delivered", report.delivered);
  w.field("misrouted", report.misrouted);
  w.field("lost", report.lost);
  w.field("misroute_rate", report.misroute_rate);
  w.field("loss_rate", report.loss_rate);
  w.field("interruptions", report.interruptions);
  w.field("interruption_time", report.interruption_time);
  w.field("interruption_p99", report.interruption_p99);
  w.field("handover_started", report.handover_started);
  w.field("handover_completed", report.handover_completed);
  w.field("handover_retries", report.handover_retries);
  w.field("handover_rollbacks", report.handover_rollbacks);
  w.field("handover_rollback_failures", report.handover_rollback_failures);
  w.field("handover_mean_completion", report.handover_mean_completion);
  w.end_object();
}

bool sessions_from_json(const analysis::JsonValue& v, SessionReport& out) {
  if (!v.is_object()) return false;
  if (v.string_or("schema", "") != "manet-sessions/1") return false;
  const auto* offered = v.find("packets_offered");
  const auto* p99 = v.find("interruption_p99");
  // interruption_p99 is NaN when the run closed no interruption windows
  // (traffic::SessionWorkload::interruption_quantile); the writer renders
  // non-finite doubles as null, so null here round-trips back to NaN.
  const bool p99_ok =
      p99 != nullptr && (p99->is_number() || p99->kind == analysis::JsonValue::Kind::kNull);
  if (offered == nullptr || !offered->is_number() || !p99_ok) {
    return false;
  }
  out.mu = v.number_or("mu", 0.0);
  out.loss = v.number_or("loss", 0.0);
  out.crash_rate = v.number_or("crash_rate", 0.0);
  out.packets_offered = offered->number;
  out.delivered = v.number_or("delivered", 0.0);
  out.misrouted = v.number_or("misrouted", 0.0);
  out.lost = v.number_or("lost", 0.0);
  out.misroute_rate = v.number_or("misroute_rate", 0.0);
  out.loss_rate = v.number_or("loss_rate", 0.0);
  out.interruptions = v.number_or("interruptions", 0.0);
  out.interruption_time = v.number_or("interruption_time", 0.0);
  out.interruption_p99 =
      p99->is_number() ? p99->number : std::numeric_limits<double>::quiet_NaN();
  out.handover_started = v.number_or("handover_started", 0.0);
  out.handover_completed = v.number_or("handover_completed", 0.0);
  out.handover_retries = v.number_or("handover_retries", 0.0);
  out.handover_rollbacks = v.number_or("handover_rollbacks", 0.0);
  out.handover_rollback_failures = v.number_or("handover_rollback_failures", 0.0);
  out.handover_mean_completion = v.number_or("handover_mean_completion", 0.0);
  return true;
}

void write_run_metrics_json(analysis::JsonWriter& w, const RunMetrics& metrics) {
  w.begin_object();
  for (const auto& [name, value] : metrics.values) w.field(name, value);
  w.end_object();
}

bool run_metrics_from_json(const analysis::JsonValue& v, RunMetrics& out) {
  if (!v.is_object()) return false;
  out = RunMetrics{};
  for (const auto& [name, value] : v.members) {
    if (value.is_number()) {
      out.set(name, value.number);
    } else if (value.kind == analysis::JsonValue::Kind::kNull) {
      out.set(name, std::numeric_limits<double>::quiet_NaN());  // NaN wrote as null
    } else {
      return false;
    }
  }
  return true;
}

void write_series_point_json(analysis::JsonWriter& w, const SeriesPoint& point) {
  w.begin_object();
  w.field("n", point.n);
  w.field("mean", point.mean);
  w.field("ci95", point.ci95);
  w.field("count", static_cast<std::uint64_t>(point.count));
  w.end_object();
}

}  // namespace manet::exp
