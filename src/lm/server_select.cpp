#include "lm/server_select.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "lm/rendezvous.hpp"

namespace manet::lm {

const char* to_string(SelectStrategy strategy) {
  switch (strategy) {
    case SelectStrategy::kFlatSuccessor: return "flat_successor";
    case SelectStrategy::kWeightedDescent: return "weighted_descent";
    case SelectStrategy::kUnweightedDescent: return "unweighted_descent";
  }
  return "?";
}

namespace {

/// Salt for one descent step, independent per (base, target level, depth).
std::uint64_t step_salt(std::uint64_t base, Level k, Level depth) {
  return common::hash_combine(base, (static_cast<std::uint64_t>(k) << 32) | depth);
}

/// Successor-ID rule over the level-k cluster's flat member set: the member
/// whose id minimizes (id_z - id_owner - 1) mod 2^32 — the least id above
/// the owner's, cyclically (the paper's eq. (5) applied to members, where it
/// IS equitable because ids are uniform). The owner scores 2^32 - 1 and is
/// chosen only when alone in the cluster. The salt deliberately does not
/// enter: stability under cluster relabeling is the point.
NodeId flat_successor(const cluster::Hierarchy& h, NodeId cluster, Level k, NodeId owner) {
  const auto& members = h.members0(k, cluster);
  MANET_CHECK(!members.empty());
  const NodeId owner_id = h.level(0).ids[owner];
  const auto& ids0 = h.level(0).ids;
  NodeId best = kInvalidNode;
  std::uint32_t best_score = 0xFFFFFFFFu;
  for (const NodeId z : members) {
    if (ids0[z] == owner_id) continue;
    const std::uint32_t score = ids0[z] - owner_id - 1;  // mod 2^32 wraparound
    if (best == kInvalidNode || score < best_score) {
      best = z;
      best_score = score;
    }
  }
  return best == kInvalidNode ? owner : best;  // singleton cluster: self-serve
}

/// Hash-chain descent from a level-k cluster down to a level-0 node.
NodeId descend(const cluster::Hierarchy& h, NodeId cluster, Level k, NodeId owner,
               const ServerSelectConfig& config) {
  const NodeId owner_id = h.level(0).ids[owner];
  const bool weighted = config.strategy == SelectStrategy::kWeightedDescent;
  for (Level lvl = k; lvl >= 1; --lvl) {
    const auto& kids = h.children(lvl, cluster);  // dense at lvl-1
    MANET_CHECK(!kids.empty());

    // Optionally skip the child hosting the owner itself (GLS sibling-region
    // flavor) when an alternative exists and the owner is inside `cluster`.
    NodeId own_branch = kInvalidNode;
    if (config.exclude_own_branch && kids.size() > 1 && h.ancestor(owner, lvl) == cluster) {
      own_branch = h.ancestor(owner, lvl - 1);
    }

    const std::uint64_t salt = step_salt(config.salt, k, lvl);
    const auto& child_ids = h.level(lvl - 1).ids;
    NodeId best = kInvalidNode;
    double best_score = 0.0;
    for (const NodeId child : kids) {
      if (child == own_branch) continue;
      double weight = 1.0;
      if (weighted && lvl >= 2) {
        weight = static_cast<double>(h.members0(lvl - 1, child).size());
      }
      // Weighting children by their level-0 member counts makes the
      // descended-to node uniform over members (weighted HRW; see
      // rendezvous_weighted_score).
      const double score = rendezvous_weighted_score(salt, owner_id, child_ids[child], weight);
      if (best == kInvalidNode || score > best_score ||
          (score == best_score && child_ids[child] < child_ids[best])) {
        best = child;
        best_score = score;
      }
    }
    MANET_CHECK(best != kInvalidNode);
    cluster = best;
  }
  return cluster;  // dense level-0 vertex index
}

}  // namespace

NodeId select_server(const cluster::Hierarchy& h, NodeId owner, Level k,
                     const ServerSelectConfig& config) {
  MANET_CHECK_MSG(k >= kFirstServedLevel, "levels below 2 carry no explicit LM server");
  MANET_CHECK_MSG(k <= h.top_level(), "level beyond hierarchy top");
  return select_server_in(h, h.ancestor(owner, k), k, owner, config);
}

NodeId select_server_in(const cluster::Hierarchy& h, NodeId cluster, Level k, NodeId owner,
                        const ServerSelectConfig& config) {
  MANET_CHECK_MSG(k >= 1, "descent requires a clustered level");
  MANET_CHECK_MSG(k <= h.top_level(), "level beyond hierarchy top");
  MANET_CHECK(cluster < h.level(k).vertex_count());
  if (config.strategy == SelectStrategy::kFlatSuccessor) {
    return flat_successor(h, cluster, k, owner);
  }
  return descend(h, cluster, k, owner, config);
}

std::vector<std::vector<NodeId>> select_all_servers(const cluster::Hierarchy& h,
                                                    const ServerSelectConfig& config) {
  std::vector<NodeId> flat;
  const Size width = select_all_servers_into(h, config, flat);
  const Size n = h.level(0).vertex_count();
  std::vector<std::vector<NodeId>> servers(n, std::vector<NodeId>(width, kInvalidNode));
  for (NodeId owner = 0; owner < n; ++owner) {
    for (Size i = 0; i < width; ++i) servers[owner][i] = flat[owner * width + i];
  }
  return servers;
}

Size select_all_servers_into(const cluster::Hierarchy& h, const ServerSelectConfig& config,
                             std::vector<NodeId>& out) {
  const Size n = h.level(0).vertex_count();
  const Level top = h.top_level();
  const Size width = top >= kFirstServedLevel ? top - kFirstServedLevel + 1 : 0;
  out.assign(n * width, kInvalidNode);
  if (width == 0) return width;

  if (config.strategy != SelectStrategy::kFlatSuccessor) {
    for (NodeId owner = 0; owner < n; ++owner) {
      for (Level k = kFirstServedLevel; k <= top; ++k) {
        out[owner * width + (k - kFirstServedLevel)] = select_server(h, owner, k, config);
      }
    }
    return width;
  }

  // Flat successor fast path: per cluster, sort members by original id once;
  // owner i's server is the next member in cyclic id order. Matches
  // flat_successor() exactly: the cyclic successor excluding the owner, or
  // the owner itself for singleton clusters.
  const auto& ids0 = h.level(0).ids;
  std::vector<std::pair<NodeId, NodeId>> by_id;  // (original id, dense vertex)
  for (Level k = kFirstServedLevel; k <= top; ++k) {
    const Size slot = k - kFirstServedLevel;
    for (NodeId c = 0; c < h.cluster_count(k); ++c) {
      const auto& members = h.members0(k, c);
      if (members.size() == 1) {
        out[members[0] * width + slot] = members[0];  // self-serve
        continue;
      }
      by_id.clear();
      by_id.reserve(members.size());
      for (const NodeId v : members) by_id.emplace_back(ids0[v], v);
      std::sort(by_id.begin(), by_id.end());
      for (Size i = 0; i < by_id.size(); ++i) {
        const Size next = (i + 1) % by_id.size();
        out[by_id[i].second * width + slot] = by_id[next].second;
      }
    }
  }
  return width;
}

}  // namespace manet::lm
