#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

using namespace manet;
using common::FlatMap;
using common::FlatSet;

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<NodeId, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7u), nullptr);

  map[7u] = 42;
  map[9u] = 43;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7u), nullptr);
  EXPECT_EQ(*map.find(7u), 42);
  EXPECT_TRUE(map.contains(9u));
  EXPECT_FALSE(map.contains(8u));

  map[7u] = 50;  // overwrite, not a second entry
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.find(7u), 50);

  EXPECT_TRUE(map.erase(7u));
  EXPECT_FALSE(map.erase(7u));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(7u), nullptr);
  EXPECT_EQ(*map.find(9u), 43);
}

TEST(FlatMap, InsertOrAssignReportsNovelty) {
  FlatMap<std::uint64_t, double> map;
  EXPECT_TRUE(map.insert_or_assign(1u, 0.5));
  EXPECT_FALSE(map.insert_or_assign(1u, 0.75));
  EXPECT_EQ(*map.find(1u), 0.75);
}

TEST(FlatMap, IterationIsInsertionOrdered) {
  FlatMap<NodeId, int> map;
  const std::vector<NodeId> keys{500, 3, 77, 12, 4096, 1};
  for (Size i = 0; i < keys.size(); ++i) map[keys[i]] = static_cast<int>(i);

  std::vector<NodeId> seen;
  for (const auto& e : map) seen.push_back(e.key);
  EXPECT_EQ(seen, keys);
}

TEST(FlatMap, IterationOrderSurvivesEraseAndCompaction) {
  FlatMap<NodeId, int> map;
  for (NodeId k = 0; k < 100; ++k) map[k] = static_cast<int>(k);
  // Erase enough to trigger compaction (dead > live + 16).
  for (NodeId k = 0; k < 100; k += 2) EXPECT_TRUE(map.erase(k));

  std::vector<NodeId> seen;
  for (const auto& e : map) seen.push_back(e.key);
  ASSERT_EQ(seen.size(), 50u);
  for (Size i = 0; i + 1 < seen.size(); ++i) {
    EXPECT_LT(seen[i], seen[i + 1]) << "relative insertion order broken at " << i;
  }
  for (const NodeId k : seen) EXPECT_EQ(k % 2, 1u);
}

/// Two maps fed the same operation sequence must iterate identically — this
/// is the determinism contract the kernel migration leans on (drain order
/// can never depend on addresses, hash seeding or load-factor history).
TEST(FlatMap, DrainOrderIsReproducible) {
  const auto run = [](std::uint64_t seed) {
    FlatMap<std::uint64_t, std::uint64_t> map;
    common::Xoshiro256 rng(seed);
    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t key = rng() % 512;
      if (rng() % 3 == 0) {
        map.erase(key);
      } else {
        map[key] = key * 2;
      }
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> drained;
    for (const auto& e : map) drained.emplace_back(e.key, e.value);
    return drained;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and it actually depends on the ops
}

TEST(FlatMap, SortedKeysDrain) {
  FlatMap<NodeId, int> map;
  for (const NodeId k : {9u, 1u, 5u, 3u}) map[k] = 0;
  map.erase(5u);
  std::vector<NodeId> keys;
  map.sorted_keys(keys);
  EXPECT_EQ(keys, (std::vector<NodeId>{1u, 3u, 9u}));
}

TEST(FlatMap, ClearKeepsWorking) {
  FlatMap<NodeId, int> map;
  for (NodeId k = 0; k < 64; ++k) map[k] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(3u));
  map[3u] = 7;
  EXPECT_EQ(*map.find(3u), 7);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, ReserveAvoidsRehashButStaysCorrect) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  map.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = k;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), k);
  }
}

/// Randomized differential test against std::unordered_map as the oracle,
/// with adversarial key ranges (dense small ints, packed (owner<<16)|level
/// keys, and full-width randoms) to stress probe runs and backward-shift
/// deletion.
TEST(FlatMap, FuzzAgainstUnorderedMap) {
  common::Xoshiro256 rng(0xF1A7);
  for (const std::uint64_t key_mask :
       {std::uint64_t{0x3F}, std::uint64_t{0xFFFF0003}, ~std::uint64_t{0}}) {
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    for (int op = 0; op < 50000; ++op) {
      const std::uint64_t key = rng() & key_mask;
      switch (rng() % 4) {
        case 0:
        case 1: {  // insert/overwrite
          const std::uint64_t value = rng();
          map[key] = value;
          oracle[key] = value;
          break;
        }
        case 2: {  // erase
          EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
          break;
        }
        default: {  // lookup
          const auto it = oracle.find(key);
          const auto* found = map.find(key);
          if (it == oracle.end()) {
            EXPECT_EQ(found, nullptr);
          } else {
            ASSERT_NE(found, nullptr);
            EXPECT_EQ(*found, it->second);
          }
          break;
        }
      }
      EXPECT_EQ(map.size(), oracle.size());
    }
    // Full-content sweep at the end.
    Size seen = 0;
    for (const auto& e : map) {
      const auto it = oracle.find(e.key);
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(e.value, it->second);
      ++seen;
    }
    EXPECT_EQ(seen, oracle.size());
  }
}

TEST(FlatSet, BasicAndIterationOrder) {
  FlatSet<NodeId> set;
  EXPECT_TRUE(set.insert(5u));
  EXPECT_TRUE(set.insert(2u));
  EXPECT_FALSE(set.insert(5u));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(2u));
  EXPECT_FALSE(set.contains(3u));

  std::vector<NodeId> seen;
  for (const NodeId k : set) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<NodeId>{5u, 2u}));

  EXPECT_TRUE(set.erase(5u));
  EXPECT_FALSE(set.erase(5u));
  EXPECT_EQ(set.size(), 1u);

  std::vector<NodeId> keys;
  set.sorted_keys(keys);
  EXPECT_EQ(keys, (std::vector<NodeId>{2u}));
}
