#pragma once

#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "lm/database.hpp"

/// \file gls.hpp
/// Grid Location Service (Li et al., MobiCom 2000 — the paper's ref [5]),
/// the design CHLM is modelled on and the natural comparator (experiment
/// E12). GLS overlays a fixed square grid: level-1 squares of side l tile
/// the area; four level-k squares make a level-(k+1) square; the whole area
/// is the single level-(L+1) square (paper Fig. 2). A node recruits one
/// location server in each of the 3 sibling level-(k-1) squares of its own
/// level-(k-1) square, for k = 2..L+1, selected by the successor-ID rule of
/// the paper's eq. (5): the candidate z minimizing (z - v - 1) mod M, i.e.
/// the "least id greater than v" cyclically.

namespace manet::lm {

/// Fixed spatial grid hierarchy.
class GridHierarchy {
 public:
  /// \p levels = L: level-1 cells have side `side / 2^L`; level-(L+1) is the
  /// whole square.
  GridHierarchy(geom::Vec2 origin, double side, Level levels);

  /// Cover \p bounds with the smallest grid whose level-1 cell side is
  /// >= \p min_cell (mirrors GLS's "l-by-l smallest squares" sized to the
  /// radio range so a level-1 square is one-hop traversable).
  static GridHierarchy cover(geom::Vec2 origin, double side, double min_cell);

  Level levels() const { return levels_; }  ///< L
  Level top_level() const { return levels_ + 1; }

  double cell_side(Level k) const;  ///< side of a level-k square

  /// Integer cell coordinates of \p p at level k in [1, L+1].
  std::pair<std::int32_t, std::int32_t> cell(geom::Vec2 p, Level k) const;

  /// Packed key for a level-k cell.
  std::uint64_t cell_key(geom::Vec2 p, Level k) const;

  geom::Vec2 origin() const { return origin_; }
  double side() const { return side_; }

 private:
  geom::Vec2 origin_;
  double side_;
  Level levels_;
};

/// Number of sibling squares each level recruits a server in.
inline constexpr Size kGlsSiblings = 3;

class GlsService {
 public:
  explicit GlsService(GridHierarchy grid);

  /// Recompute all server assignments from node positions. \p ids supplies
  /// the node identifiers used by the successor rule (empty = identity).
  void rebuild(const std::vector<geom::Vec2>& positions, std::span<const NodeId> ids = {},
               Time now = 0.0);

  Size node_count() const { return assignments_.size(); }

  /// Server of \p owner at level k (in [2, L+1]) in sibling slot
  /// \p sibling (0..2); kInvalidNode when the sibling square holds no node.
  NodeId server_of(NodeId owner, Level k, Size sibling) const;

  /// Entries stored per node (load census, comparable to CHLM's).
  std::vector<Size> load_vector() const;

  const GridHierarchy& grid() const { return grid_; }

 private:
  friend class GlsHandoffTracker;

  /// Nodes of one grid cell, paired with their successor-rule ids.
  using Bucket = std::vector<std::pair<NodeId, NodeId>>;

  GridHierarchy grid_;
  /// assignments_[owner][(k-2)*3 + sibling].
  std::vector<std::vector<NodeId>> assignments_;
  /// Per-level cell buckets, reused across rebuild() calls (the slot tables
  /// keep their capacity; only the entries are dropped per tick).
  std::vector<common::FlatMap<std::uint64_t, Bucket>> buckets_;
};

/// Handoff/update accounting for GLS under mobility, with the same pricing
/// as the CHLM HandoffEngine so the two are directly comparable: every
/// (owner, level, sibling) assignment that changes between ticks moves one
/// entry at BFS-hop cost.
class GlsHandoffTracker {
 public:
  explicit GlsHandoffTracker(GridHierarchy grid);

  void prime(const std::vector<geom::Vec2>& positions, std::span<const NodeId> ids, Time t);

  struct TickResult {
    PacketCount handoff_packets = 0;  ///< server -> server transfers
    PacketCount update_packets = 0;   ///< owner -> server (server slot was empty)
    Size entries_moved = 0;
  };

  TickResult update(const std::vector<geom::Vec2>& positions, const graph::Graph& g0,
                    std::span<const NodeId> ids, Time t);

  Time elapsed() const { return last_time_ - start_time_; }
  Size node_count() const { return service_.node_count(); }

  PacketCount total_handoff() const { return total_handoff_; }
  PacketCount total_update() const { return total_update_; }

  /// Packet transmissions per node per second.
  double handoff_rate() const;
  double update_rate() const;
  double combined_rate() const;

 private:
  PacketCount price(const graph::Graph& g0, NodeId from, NodeId to);

  GlsService service_;
  std::vector<std::vector<NodeId>> prev_;
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  bool primed_ = false;
  PacketCount total_handoff_ = 0;
  PacketCount total_update_ = 0;
  Size unreachable_ = 0;
  graph::BfsPairScratch pair_bfs_;
};

}  // namespace manet::lm
