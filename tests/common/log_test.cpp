#include "common/log.hpp"

#include <gtest/gtest.h>

namespace manet::common {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("dropped");
  set_log_level(original);
}

TEST(Log, EmittingMessagesDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  log(LogLevel::Debug, "visible debug (expected in test stderr)");
  set_log_level(original);
}

}  // namespace
}  // namespace manet::common
