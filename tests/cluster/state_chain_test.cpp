#include "cluster/state_chain.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

TEST(StateOccupancy, FractionsOfEmptyOccupancyAreZero) {
  const StateOccupancy occ;
  EXPECT_DOUBLE_EQ(occ.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(occ.p_state1(), 0.0);
}

TEST(StateChainTracker, CountsKnownStates) {
  // Path 0-1-2 with ids {5,1,9}: heads are vertex 0 (self) and vertex 2
  // (elected by 1). Votes: v0: 0 electors, v2: 1 elector, v1: 0.
  const Graph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const std::vector<NodeId> ids{5, 1, 9};
  const auto h = HierarchyBuilder().build(g, ids);

  StateChainTracker tracker;
  tracker.observe(h, 2.0);
  ASSERT_GE(tracker.level_count(), 1u);
  const auto& occ = tracker.occupancy(0);
  // 3 vertices x 2 s = 6 node-seconds; states {0, 0, 1}.
  EXPECT_DOUBLE_EQ(occ.total_node_time, 6.0);
  EXPECT_DOUBLE_EQ(occ.fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(occ.p_state1(), 1.0 / 3.0);
}

TEST(StateChainTracker, AccumulatesAcrossObservations) {
  const Graph g(2, std::vector<Edge>{{0, 1}});
  const auto h = HierarchyBuilder().build(g);
  StateChainTracker tracker;
  tracker.observe(h, 1.0);
  tracker.observe(h, 3.0);
  EXPECT_DOUBLE_EQ(tracker.occupancy(0).total_node_time, 8.0);
}

TEST(StateChainTracker, StatesAboveCapAreLumped) {
  // Star with center 6 (max id) and 6 leaves: center state 6 > cap 4.
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 6; ++v) edges.push_back({v, 6});
  const Graph g(7, edges);
  const auto h = HierarchyBuilder().build(g);
  StateChainTracker tracker(4);
  tracker.observe(h, 1.0);
  EXPECT_DOUBLE_EQ(tracker.occupancy(0).fraction(4), 1.0 / 7.0);  // lumped top state
}

TEST(StateChainTracker, PProfileOnRandomDeployment) {
  common::Xoshiro256 rng(3);
  const auto disk = geom::DiskRegion::with_density(300, 1.0);
  std::vector<geom::Vec2> pts(300);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto h = HierarchyBuilder().build(builder.build(pts));
  StateChainTracker tracker;
  tracker.observe(h, 1.0);
  const auto p = tracker.p_profile();
  ASSERT_GE(p.size(), 2u);
  for (const double pj : p) {
    EXPECT_GE(pj, 0.0);
    EXPECT_LE(pj, 1.0);
  }
}

TEST(RecursionProfile, SingleLinkChain) {
  // k = 2: only q_1 = p_{k-1}; Q = q_1; ratio 1.
  const std::vector<double> p{0.3};
  const auto profile = recursion_profile(p);
  ASSERT_EQ(profile.q.size(), 1u);
  EXPECT_DOUBLE_EQ(profile.q[0], 0.3);
  EXPECT_DOUBLE_EQ(profile.Q, 0.3);
  EXPECT_DOUBLE_EQ(profile.q1_over_Q, 1.0);
  // Lower bound (21b): q1 / (p^2 + q1) = 0.3 / 0.39.
  EXPECT_NEAR(profile.lower_bound, 0.3 / 0.39, 1e-12);
}

TEST(RecursionProfile, MatchesEq15ByHand) {
  // k = 4, p_desc = {p_3, p_2, p_1} = {0.5, 0.4, 0.3}.
  // q_1 = (1 - p_2) * p_3            = 0.6 * 0.5        = 0.30
  // q_2 = (1 - p_1) * p_3 * p_2      = 0.7 * 0.5 * 0.4  = 0.14
  // q_3 = p_3 * p_2 * p_1            = 0.5*0.4*0.3      = 0.06
  const std::vector<double> p{0.5, 0.4, 0.3};
  const auto profile = recursion_profile(p);
  ASSERT_EQ(profile.q.size(), 3u);
  EXPECT_NEAR(profile.q[0], 0.30, 1e-12);
  EXPECT_NEAR(profile.q[1], 0.14, 1e-12);
  EXPECT_NEAR(profile.q[2], 0.06, 1e-12);
  EXPECT_NEAR(profile.Q, 0.50, 1e-12);
  EXPECT_NEAR(profile.q1_over_Q, 0.6, 1e-12);
  // p = max = 0.5; bound = 0.3 / (0.25 + 0.3).
  EXPECT_NEAR(profile.lower_bound, 0.3 / 0.55, 1e-12);
}

TEST(RecursionProfile, BoundIsIndeedALowerBound) {
  // Eq. (21): q1/Q >= q1/(p^2+q1) for any profile.
  const std::vector<std::vector<double>> cases{
      {0.2, 0.2, 0.2, 0.2}, {0.9, 0.1, 0.5}, {0.05, 0.9}, {0.5}};
  for (const auto& p : cases) {
    const auto profile = recursion_profile(p);
    EXPECT_GE(profile.q1_over_Q + 1e-12, profile.lower_bound);
  }
}

TEST(RecursionProfile, EmptyChain) {
  const auto profile = recursion_profile({});
  EXPECT_TRUE(profile.q.empty());
  EXPECT_DOUBLE_EQ(profile.Q, 0.0);
}

}  // namespace
}  // namespace manet::cluster
