#include "lm/rendezvous.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace manet::lm {

namespace {

constexpr std::uint64_t kPhi64 = 0x9E3779B97F4A7C15ULL;

/// Local always-inline copy of common::mix64 (Stafford variant 13). The
/// common/ definition is out-of-line, which defeats vectorization of the
/// batch kernels' elementwise loops; this copy must stay bit-identical to
/// common::mix64 (pinned by rendezvous_test's scalar-vs-batch sweeps).
inline std::uint64_t mix64_inline(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Map a raw 64-bit score to (0, 1): 53-bit mantissa, never exactly 0 or 1
/// thanks to the +1 / +2 shift. Shared by the scalar and batch weighted paths
/// so they are bit-identical by construction.
inline double uniform01(std::uint64_t raw) noexcept {
  return (static_cast<double>(raw >> 11) + 1.0) / (9007199254740992.0 + 2.0);
}

}  // namespace

std::uint64_t rendezvous_score(std::uint64_t salt, NodeId owner, NodeId candidate) noexcept {
  // Two-stage mix: fold the owner into the salt domain first so that owner
  // and candidate do not cancel under XOR symmetry.
  const std::uint64_t domain = common::hash_combine(salt, owner);
  return common::mix64(domain ^ (static_cast<std::uint64_t>(candidate) * kPhi64));
}

double rendezvous_weighted_score(std::uint64_t salt, NodeId owner, NodeId candidate,
                                 double weight) noexcept {
  return weight / -std::log(uniform01(rendezvous_score(salt, owner, candidate)));
}

NodeId rendezvous_pick(std::uint64_t salt, NodeId owner, std::span<const NodeId> candidates) {
  MANET_CHECK_MSG(!candidates.empty(), "rendezvous over empty candidate set");
  NodeId best = candidates[0];
  std::uint64_t best_score = rendezvous_score(salt, owner, best);
  for (Size i = 1; i < candidates.size(); ++i) {
    const std::uint64_t score = rendezvous_score(salt, owner, candidates[i]);
    if (score > best_score || (score == best_score && candidates[i] < best)) {
      best = candidates[i];
      best_score = score;
    }
  }
  return best;
}

Size rendezvous_pick_index(std::uint64_t salt, NodeId owner, Size n) {
  MANET_CHECK(n > 0);
  Size best = 0;
  std::uint64_t best_score = rendezvous_score(salt, owner, 0);
  for (Size i = 1; i < n; ++i) {
    const std::uint64_t score = rendezvous_score(salt, owner, static_cast<NodeId>(i));
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

NodeId rendezvous_pick_weighted(std::uint64_t salt, NodeId owner,
                                std::span<const NodeId> candidates,
                                std::span<const double> weights) {
  MANET_CHECK_MSG(!candidates.empty(), "rendezvous over empty candidate set");
  MANET_CHECK(candidates.size() == weights.size());
  NodeId best = candidates[0];
  double best_score = rendezvous_weighted_score(salt, owner, best, weights[0]);
  for (Size i = 1; i < candidates.size(); ++i) {
    const double score = rendezvous_weighted_score(salt, owner, candidates[i], weights[i]);
    if (score > best_score || (score == best_score && candidates[i] < best)) {
      best = candidates[i];
      best_score = score;
    }
  }
  return best;
}

void rendezvous_pick_batch(std::uint64_t salt, std::span<const NodeId> owners,
                           std::span<const NodeId> candidates, std::span<NodeId> out,
                           RendezvousScratch& scratch) {
  MANET_CHECK_MSG(!candidates.empty(), "rendezvous over empty candidate set");
  MANET_CHECK(out.size() == owners.size());
  const Size m = candidates.size();

  // Hoist the candidate-side multiply: it does not depend on the owner, so
  // one pass amortizes it over every owner in the batch.
  scratch.products.resize(m);
  scratch.scores.resize(m);
  std::uint64_t* const products = scratch.products.data();
  std::uint64_t* const scores = scratch.scores.data();
  for (Size j = 0; j < m; ++j) {
    products[j] = static_cast<std::uint64_t>(candidates[j]) * kPhi64;
  }

  for (Size i = 0; i < owners.size(); ++i) {
    const std::uint64_t domain = common::hash_combine(salt, owners[i]);
    // Straight-line elementwise map — no branches, no calls — so the
    // compiler can vectorize across candidates.
    for (Size j = 0; j < m; ++j) {
      scores[j] = mix64_inline(domain ^ products[j]);
    }
    // Argmax with the scalar path's tie-break (toward the smaller id).
    NodeId best = candidates[0];
    std::uint64_t best_score = scores[0];
    for (Size j = 1; j < m; ++j) {
      if (scores[j] > best_score || (scores[j] == best_score && candidates[j] < best)) {
        best = candidates[j];
        best_score = scores[j];
      }
    }
    out[i] = best;
  }
}

void rendezvous_pick_weighted_batch(std::uint64_t salt, std::span<const NodeId> owners,
                                    std::span<const NodeId> candidates,
                                    std::span<const double> weights, std::span<NodeId> out,
                                    RendezvousScratch& scratch) {
  MANET_CHECK_MSG(!candidates.empty(), "rendezvous over empty candidate set");
  MANET_CHECK(candidates.size() == weights.size());
  MANET_CHECK(out.size() == owners.size());
  const Size m = candidates.size();

  scratch.products.resize(m);
  scratch.scores.resize(m);
  std::uint64_t* const products = scratch.products.data();
  std::uint64_t* const raws = scratch.scores.data();
  for (Size j = 0; j < m; ++j) {
    products[j] = static_cast<std::uint64_t>(candidates[j]) * kPhi64;
  }

  for (Size i = 0; i < owners.size(); ++i) {
    const std::uint64_t domain = common::hash_combine(salt, owners[i]);
    for (Size j = 0; j < m; ++j) {
      raws[j] = mix64_inline(domain ^ products[j]);
    }
    NodeId best = candidates[0];
    double best_score = weights[0] / -std::log(uniform01(raws[0]));
    for (Size j = 1; j < m; ++j) {
      const double score = weights[j] / -std::log(uniform01(raws[j]));
      if (score > best_score || (score == best_score && candidates[j] < best)) {
        best = candidates[j];
        best_score = score;
      }
    }
    out[i] = best;
  }
}

}  // namespace manet::lm
