/// E7: the distributed LM database census (paper Section 3.2):
///   - each node stores Theta(log|V|) entries on average,
///   - server duty is equitably distributed (the paper's requirement on the
///     CHLM hashing function),
///   - the per-node hierarchical map is O(log|V|) (Section 2.1).
/// Also compares the three server-selection strategies' load profiles.

#include "bench_util.hpp"
#include "lm/server_select.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E7  bench_lm_database — LM storage and server-load equity",
      "entries/node = Theta(log|V|); equitable server load; map = O(log|V|)");

  auto cfg = bench::paper_scenario();
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.warmup = 0.0;
  cfg.duration = 2.0;

  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;

  exp::Campaign campaign;
  analysis::TextTable table({"|V|", "entries/node", "levels L", "load_max", "load_gini",
                             "map_size"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    table.add_row({std::to_string(n), bench::cell(point.metrics, "entries_per_node"),
                   bench::cell(point.metrics, "levels"),
                   bench::cell(point.metrics, "load_max"),
                   bench::cell(point.metrics, "load_gini"),
                   bench::cell(point.metrics, "map_size")});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", table.to_string("storage census vs |V| (flat successor rule)").c_str());
  bench::print_model_selection("entries_per_node", campaign, "entries_per_node");
  bench::print_model_selection("map_size", campaign, "map_size");

  // Strategy comparison at one scale.
  std::printf("\n");
  analysis::TextTable strat({"strategy", "entries/node", "load_max", "load_gini"});
  cfg.n = 1024;
  for (const auto strategy :
       {lm::SelectStrategy::kFlatSuccessor, lm::SelectStrategy::kWeightedDescent,
        lm::SelectStrategy::kUnweightedDescent}) {
    cfg.handoff.select.strategy = strategy;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    strat.add_row({lm::to_string(strategy), bench::cell(agg, "entries_per_node"),
                   bench::cell(agg, "load_max"), bench::cell(agg, "load_gini")});
  }
  std::printf("%s",
              strat.to_string("server-selection strategy load profiles, |V| = 1024").c_str());

  std::printf(
      "\nreading: entries/node must be fit best by log(n); gini well below\n"
      "the hot-spot regime; unweighted descent shows the inequity the paper\n"
      "warns about (higher max/gini).\n");
  return 0;
}
