#include "mobility/random_waypoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/region.hpp"

namespace manet::mobility {
namespace {

const geom::DiskRegion kDisk({0, 0}, 50.0);

TEST(RandomWaypoint, InitialPositionsInsideRegion) {
  RandomWaypoint model(kDisk, 100, RandomWaypoint::Params::fixed_speed(1.0), 1);
  for (const auto& p : model.positions()) EXPECT_TRUE(kDisk.contains(p));
}

TEST(RandomWaypoint, PositionsStayInsideOverTime) {
  RandomWaypoint model(kDisk, 50, RandomWaypoint::Params::fixed_speed(3.0), 2);
  for (Time t = 1.0; t <= 100.0; t += 1.0) {
    model.advance_to(t);
    for (const auto& p : model.positions()) EXPECT_TRUE(kDisk.contains(p));
  }
}

TEST(RandomWaypoint, SpeedBoundsDisplacement) {
  const double mu = 2.0;
  RandomWaypoint model(kDisk, 80, RandomWaypoint::Params::fixed_speed(mu), 3);
  auto prev = model.positions();
  const Time dt = 0.5;
  for (Time t = dt; t <= 20.0; t += dt) {
    model.advance_to(t);
    const auto& cur = model.positions();
    for (Size v = 0; v < cur.size(); ++v) {
      // Between waypoints a node covers at most mu*dt; direction changes at
      // waypoints only shorten net displacement.
      EXPECT_LE(geom::distance(prev[v], cur[v]), mu * dt + 1e-9);
    }
    prev = cur;
  }
}

TEST(RandomWaypoint, ZeroPauseKeepsNodesMoving) {
  RandomWaypoint model(kDisk, 40, RandomWaypoint::Params::fixed_speed(1.0), 4);
  const auto before = model.positions();
  model.advance_to(5.0);
  Size moved = 0;
  for (Size v = 0; v < before.size(); ++v) {
    if (geom::distance(before[v], model.positions()[v]) > 0.5) ++moved;
  }
  EXPECT_GE(moved, 35u);  // nearly all nodes displace ~5 m in 5 s
}

TEST(RandomWaypoint, PauseHoldsNodeAtWaypoint) {
  // A huge pause means a node that reaches its first waypoint stays put.
  RandomWaypoint::Params params;
  params.speed_min = params.speed_max = 100.0;  // reach waypoint fast
  params.pause = 1e6;
  RandomWaypoint model(kDisk, 10, params, 5);
  model.advance_to(10.0);  // every leg (<100 m) is done by then
  const auto frozen = model.positions();
  model.advance_to(50.0);
  for (Size v = 0; v < frozen.size(); ++v) {
    EXPECT_EQ(frozen[v], model.positions()[v]);
  }
}

TEST(RandomWaypoint, DeterministicUnderSeed) {
  RandomWaypoint a(kDisk, 30, RandomWaypoint::Params::fixed_speed(1.0), 77);
  RandomWaypoint b(kDisk, 30, RandomWaypoint::Params::fixed_speed(1.0), 77);
  a.advance_to(12.3);
  b.advance_to(12.3);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(RandomWaypoint, AdvanceIsConsistentAcrossStepSizes) {
  // Advancing in many small steps must land exactly where one big step does
  // (piecewise-linear motion has no integration error).
  RandomWaypoint a(kDisk, 20, RandomWaypoint::Params::fixed_speed(2.0), 9);
  RandomWaypoint b(kDisk, 20, RandomWaypoint::Params::fixed_speed(2.0), 9);
  for (Time t = 0.1; t <= 30.0 + 1e-9; t += 0.1) a.advance_to(t);
  b.advance_to(a.now());  // land b exactly on a's accumulated endpoint
  for (Size v = 0; v < 20; ++v) {
    EXPECT_NEAR(a.positions()[v].x, b.positions()[v].x, 1e-6);
    EXPECT_NEAR(a.positions()[v].y, b.positions()[v].y, 1e-6);
  }
}

TEST(RandomWaypoint, CurrentSpeedWithinConfiguredRange) {
  RandomWaypoint::Params params{1.0, 3.0, 0.0};
  RandomWaypoint model(kDisk, 50, params, 10);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_GE(model.current_speed(v), 1.0);
    EXPECT_LE(model.current_speed(v), 3.0);
  }
}

TEST(RandomWaypoint, WaypointsLieInRegion) {
  RandomWaypoint model(kDisk, 50, RandomWaypoint::Params::fixed_speed(1.0), 11);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_TRUE(kDisk.contains(model.current_waypoint(v)));
  }
}

TEST(RandomWaypointDeath, TimeMustBeMonotone) {
  RandomWaypoint model(kDisk, 5, RandomWaypoint::Params::fixed_speed(1.0), 12);
  model.advance_to(5.0);
  EXPECT_DEATH(model.advance_to(4.0), "monotone");
}

}  // namespace
}  // namespace manet::mobility
