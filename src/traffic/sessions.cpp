#include "traffic/sessions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace manet::traffic {

namespace {
/// Interruption-window buckets (seconds) and query-latency buckets (hops).
constexpr double kInterruptionBuckets[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
constexpr double kQueryHopBuckets[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}  // namespace

double SessionStats::rate(Size node_count) const {
  const double denom = static_cast<double>(node_count) * window;
  return denom > 0.0 ? static_cast<double>(data_transmissions) / denom : 0.0;
}

double SessionStats::mean_transmissions_per_session() const {
  const Size delivered = sessions - undeliverable;
  if (delivered == 0) return 0.0;
  return static_cast<double>(data_transmissions) / static_cast<double>(delivered);
}

double SessionStats::misroute_rate() const {
  if (packets_offered == 0) return 0.0;
  return static_cast<double>(packets_misrouted) / static_cast<double>(packets_offered);
}

double SessionStats::loss_rate() const {
  if (packets_offered == 0) return 0.0;
  return static_cast<double>(packets_lost) / static_cast<double>(packets_offered);
}

SessionWorkload::SessionWorkload(SessionConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  MANET_CHECK(config_.sessions_per_node_per_sec > 0.0);
  MANET_CHECK(config_.packets_per_session >= 1);
  MANET_CHECK(config_.mean_duration > 0.0);
  MANET_CHECK(config_.packets_per_sec > 0.0);
}

void SessionWorkload::set_metrics(common::MetricsRegistry* registry) {
  if (registry == nullptr) {
    offered_c_ = delivered_c_ = misrouted_c_ = lost_c_ = nullptr;
    interruption_h_ = query_hops_h_ = nullptr;
    return;
  }
  offered_c_ = &registry->counter("session.packets");
  delivered_c_ = &registry->counter("session.delivered");
  misrouted_c_ = &registry->counter("session.misrouted");
  lost_c_ = &registry->counter("session.lost");
  interruption_h_ = &registry->histogram("session.interruption_s", kInterruptionBuckets);
  query_hops_h_ = &registry->histogram("session.query_hops", kQueryHopBuckets);
}

void SessionWorkload::tick(const routing::RoutingTables& tables, Size node_count, Time dt) {
  MANET_CHECK(dt > 0.0);
  if (node_count < 2) {
    // Crash faults can leave fewer than 2 alive nodes; a tick with no
    // possible pairs is a skipped tick, not a fatal condition.
    ++stats_.skipped_ticks;
    return;
  }
  const double lambda =
      config_.sessions_per_node_per_sec * static_cast<double>(node_count) * dt;
  const std::uint64_t n_sessions = common::poisson(rng_, lambda);

  for (std::uint64_t s = 0; s < n_sessions; ++s) {
    const auto src = static_cast<NodeId>(common::uniform_index(rng_, node_count));
    auto dst = static_cast<NodeId>(common::uniform_index(rng_, node_count - 1));
    if (dst >= src) ++dst;  // uniform over peers != src
    ++stats_.sessions;
    const auto routed = tables.route(src, dst);
    if (!routed.delivered) {
      ++stats_.undeliverable;
      continue;
    }
    if (routed.recovered) ++stats_.recovered;
    stats_.data_transmissions +=
        static_cast<PacketCount>(config_.packets_per_session) *
        static_cast<PacketCount>(routed.path.size() - 1);
  }
  stats_.window += dt;
}

void SessionWorkload::close_window(Live& session, Time now) {
  if (!session.interrupted) return;
  const double length = now - session.interrupted_since;
  session.interrupted = false;
  ++stats_.interruptions;
  stats_.interruption_time += length;
  windows_.push_back(length);
  if (interruption_h_ != nullptr) interruption_h_->observe(length);
}

bool SessionWorkload::send_packet(Live& session, const TickContext& ctx) {
  ++stats_.packets_offered;
  if (offered_c_ != nullptr) offered_c_->add(1);
  if (is_down(ctx, session.src) || is_down(ctx, session.dst)) {
    ++stats_.packets_lost;
    if (lost_c_ != nullptr) lost_c_->add(1);
    return false;
  }
  LocateOutcome loc{LocateResult::kFresh, session.dst, kInvalidNode};
  if (ctx.locator != nullptr) loc = ctx.locator->locate(session.dst);
  if (loc.result == LocateResult::kMiss) {
    ++stats_.packets_lost;
    if (lost_c_ != nullptr) lost_c_->add(1);
    return false;
  }
  if (loc.result == LocateResult::kStaleHit && loc.holder != kInvalidNode &&
      loc.holder != session.dst) {
    // The packet chases the out-of-date locator to its holder first, then
    // on to the real destination — the user-visible cost of a stale entry.
    const auto chase = ctx.tables->route(session.src, loc.holder);
    const auto onward = ctx.tables->route(loc.holder, session.dst);
    ++stats_.packets_misrouted;
    if (misrouted_c_ != nullptr) misrouted_c_->add(1);
    if (!chase.delivered || !onward.delivered) {
      ++stats_.packets_lost;
      if (lost_c_ != nullptr) lost_c_->add(1);
      return false;
    }
    const auto chase_tx = static_cast<PacketCount>(chase.path.size() - 1);
    stats_.data_transmissions += chase_tx;
    stats_.data_transmissions += static_cast<PacketCount>(onward.path.size() - 1);
    stats_.misroute_extra += chase_tx;
    ++stats_.packets_delivered;
    if (delivered_c_ != nullptr) delivered_c_->add(1);
    return true;
  }
  const auto routed = ctx.tables->route(session.src, session.dst);
  if (!routed.delivered) {
    ++stats_.packets_lost;
    ++stats_.undeliverable;  // a genuine routing failure, as in legacy mode
    if (lost_c_ != nullptr) lost_c_->add(1);
    return false;
  }
  if (routed.recovered) ++stats_.recovered;
  stats_.data_transmissions += static_cast<PacketCount>(routed.path.size() - 1);
  ++stats_.packets_delivered;
  if (delivered_c_ != nullptr) delivered_c_->add(1);
  return true;
}

void SessionWorkload::tick_sessions(const TickContext& ctx) {
  MANET_CHECK(ctx.dt > 0.0);
  MANET_CHECK(ctx.tables != nullptr);
  if (ctx.node_count < 2) {
    ++stats_.skipped_ticks;
    return;
  }
  stats_.window += ctx.dt;

  // Expire finished sessions (stable order; a session interrupted at its
  // natural end closes its window there).
  const auto expired = std::stable_partition(
      live_.begin(), live_.end(),
      [&](const Live& s) { return s.ends_at > ctx.now; });
  for (auto it = expired; it != live_.end(); ++it) close_window(*it, ctx.now);
  live_.erase(expired, live_.end());

  // Poisson arrivals between uniform random pairs. RNG draws are consumed
  // regardless of endpoint liveness so the stream stays aligned; sessions
  // toward dark endpoints simply are not admitted (their packets would only
  // measure the crash plane, not the handover plane).
  const double lambda =
      config_.sessions_per_node_per_sec * static_cast<double>(ctx.node_count) * ctx.dt;
  const std::uint64_t arrivals = common::poisson(rng_, lambda);
  for (std::uint64_t s = 0; s < arrivals; ++s) {
    const auto src = static_cast<NodeId>(common::uniform_index(rng_, ctx.node_count));
    auto dst = static_cast<NodeId>(common::uniform_index(rng_, ctx.node_count - 1));
    if (dst >= src) ++dst;
    const double duration = common::exponential(rng_, 1.0 / config_.mean_duration);
    if (is_down(ctx, src) || is_down(ctx, dst)) continue;
    ++stats_.sessions;
    live_.push_back(Live{src, dst, ctx.now + duration, false, 0.0});
    // Query-latency sample at session setup: hops from the caller to the
    // answering LM server over the live tables.
    if (query_hops_h_ != nullptr && ctx.locator != nullptr) {
      const LocateOutcome loc = ctx.locator->locate(dst);
      if (loc.result != LocateResult::kMiss && loc.server != kInvalidNode) {
        const auto to_server = ctx.tables->route(src, loc.server);
        if (to_server.delivered) {
          query_hops_h_->observe(static_cast<double>(to_server.path.size() - 1));
        }
      }
    }
  }

  // Per-tick packets for every live session; one delivered packet closes an
  // open interruption window, a fully failed tick opens one.
  const auto packets_per_tick = static_cast<Size>(
      std::max<long>(1, std::lround(config_.packets_per_sec * ctx.dt)));
  for (auto& session : live_) {
    bool any_delivered = false;
    for (Size p = 0; p < packets_per_tick; ++p) {
      any_delivered = send_packet(session, ctx) || any_delivered;
    }
    if (any_delivered) {
      close_window(session, ctx.now);
    } else if (!session.interrupted) {
      session.interrupted = true;
      session.interrupted_since = ctx.now;
    }
  }
}

void SessionWorkload::finish(Time now) {
  for (auto& session : live_) close_window(session, now);
}

double SessionWorkload::interruption_quantile(double q) const {
  // No closed windows -> the quantile is undefined, not zero. NaN is the
  // repo-wide "metric absent" sentinel (RunMetrics::has() reads it as
  // absent, AggregatedMetrics skips it, JSON writers emit null); returning
  // 0.0 here would conflate "never interrupted" with "p99 of 0 seconds" in
  // every downstream aggregate.
  if (windows_.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted = windows_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto idx = static_cast<Size>(clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace manet::traffic
