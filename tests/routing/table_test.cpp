#include "routing/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "graph/bfs.hpp"
#include "net/unit_disk.hpp"

namespace manet::routing {
namespace {

struct World {
  std::vector<geom::Vec2> pts;
  graph::Graph g{0};
  cluster::Hierarchy h;
};

World make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  World w;
  w.pts.resize(n);
  for (auto& p : w.pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  w.g = builder.build(w.pts);
  w.h = cluster::HierarchyBuilder().build(w.g);
  return w;
}

TEST(RoutingTables, EveryPairIsDeliverable) {
  const auto w = make(250, 1);
  const RoutingTables tables(w.g, w.h);
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<NodeId>(common::uniform_index(rng, 250));
    const auto v = static_cast<NodeId>(common::uniform_index(rng, 250));
    const auto routed = tables.route(u, v);
    EXPECT_TRUE(routed.delivered) << u << " -> " << v;
    EXPECT_EQ(routed.path.front(), u);
    EXPECT_EQ(routed.path.back(), v);
  }
}

TEST(RoutingTables, PathsFollowGraphEdges) {
  const auto w = make(200, 3);
  const RoutingTables tables(w.g, w.h);
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<NodeId>(common::uniform_index(rng, 200));
    const auto v = static_cast<NodeId>(common::uniform_index(rng, 200));
    const auto routed = tables.route(u, v);
    for (Size hop = 1; hop < routed.path.size(); ++hop) {
      EXPECT_TRUE(w.g.has_edge(routed.path[hop - 1], routed.path[hop]))
          << "phantom edge in path " << u << " -> " << v;
    }
  }
}

TEST(RoutingTables, SelfRouteIsTrivial) {
  const auto w = make(120, 5);
  const RoutingTables tables(w.g, w.h);
  const auto routed = tables.route(7, 7);
  EXPECT_TRUE(routed.delivered);
  EXPECT_EQ(routed.path, (std::vector<NodeId>{7}));
  EXPECT_EQ(tables.next_hop(7, 7), 7u);
}

TEST(RoutingTables, NextHopIsNeighborOrSelf) {
  const auto w = make(200, 6);
  const RoutingTables tables(w.g, w.h);
  for (NodeId u = 0; u < 200; u += 7) {
    for (NodeId v = 0; v < 200; v += 11) {
      if (u == v) continue;
      const NodeId hop = tables.next_hop(u, v);
      if (hop != kInvalidNode) {
        EXPECT_TRUE(w.g.has_edge(u, hop)) << u << " -> " << v;
      }
    }
  }
}

TEST(RoutingTables, TableSizeIsFarBelowFlatRouting) {
  const auto w = make(600, 7);
  const RoutingTables tables(w.g, w.h);
  // Flat routing keeps n-1 entries; hierarchical must be much smaller.
  EXPECT_LT(tables.mean_table_size(), 120.0);
  EXPECT_GT(tables.mean_table_size(), 2.0);
}

TEST(RoutingTables, TableSizeGrowsSlowlyWithN) {
  const auto small = make(200, 8);
  const auto large = make(1600, 9);
  const double t_small = RoutingTables(small.g, small.h).mean_table_size();
  const double t_large = RoutingTables(large.g, large.h).mean_table_size();
  // 8x the nodes must cost far less than 8x the table (log-like growth).
  EXPECT_LT(t_large, 3.0 * t_small);
}

TEST(RoutingTables, EntriesPointToSiblingClusters) {
  const auto w = make(300, 10);
  const RoutingTables tables(w.g, w.h);
  for (NodeId v = 0; v < 300; v += 13) {
    for (const auto& entry : tables.entries(v)) {
      // The entry's target cluster must share v's cluster one level up...
      const Level parent_level = entry.level + 1;
      ASSERT_LE(parent_level, w.h.top_level());
      // ...and must not be v's own branch.
      EXPECT_NE(w.h.ancestor(v, entry.level), entry.target);
      EXPECT_NE(entry.next_hop, kInvalidNode);
      EXPECT_GT(entry.distance, 0u);
    }
  }
}

TEST(MeasureStretch, ReportsSaneNumbers) {
  const auto w = make(400, 11);
  const RoutingTables tables(w.g, w.h);
  const auto stats = measure_stretch(tables, w.g, 150, 12);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.sampled_pairs, 100u);
  EXPECT_GE(stats.mean_stretch, 1.0);
  EXPECT_LT(stats.mean_stretch, 2.5);
  EXPECT_GE(stats.max_stretch, stats.mean_stretch);
  EXPECT_GE(stats.mean_hier_hops, stats.mean_shortest_hops);
}

TEST(MeasureStretch, RecoveriesAreRare) {
  const auto w = make(400, 13);
  const RoutingTables tables(w.g, w.h);
  const auto stats = measure_stretch(tables, w.g, 200, 14);
  EXPECT_LT(stats.recoveries, stats.sampled_pairs / 4);
}

TEST(RoutingTables, TinyNetworks) {
  // 2 nodes: single level-1 cluster, direct intra-cluster route.
  const graph::Graph g(2, std::vector<graph::Edge>{{0, 1}});
  const auto h = cluster::HierarchyBuilder().build(g);
  const RoutingTables tables(g, h);
  const auto routed = tables.route(0, 1);
  EXPECT_TRUE(routed.delivered);
  EXPECT_EQ(routed.path.size(), 2u);
}

}  // namespace
}  // namespace manet::routing
