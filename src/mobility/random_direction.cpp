#include "mobility/random_direction.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace manet::mobility {

RandomDirection::RandomDirection(const geom::Region& region, Size n, Params params,
                                 std::uint64_t seed)
    : region_(region), params_(params), rng_(seed) {
  MANET_CHECK(params_.speed > 0.0);
  MANET_CHECK(params_.mean_epoch > 0.0);
  positions_.resize(n);
  states_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    positions_[v] = region_.sample(rng_);
    new_heading(v, 0.0);
  }
}

void RandomDirection::new_heading(NodeId v, Time at) {
  const double theta = common::uniform(rng_, 0.0, 2.0 * std::numbers::pi);
  states_[v].heading = {std::cos(theta), std::sin(theta)};
  states_[v].epoch_end = at + common::exponential(rng_, 1.0 / params_.mean_epoch);
}

void RandomDirection::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  for (NodeId v = 0; v < positions_.size(); ++v) {
    Time cur = now_;
    while (cur < t) {
      State& st = states_[v];
      const Time segment_end = std::min(t, st.epoch_end);
      geom::Vec2 next = positions_[v] + st.heading * (params_.speed * (segment_end - cur));
      if (!region_.contains(next)) {
        // Boundary hit: clamp to the region and bounce with a fresh heading.
        next = region_.clamp(next);
        positions_[v] = next;
        new_heading(v, segment_end);
        cur = segment_end;
        continue;
      }
      positions_[v] = next;
      cur = segment_end;
      if (segment_end == st.epoch_end) new_heading(v, segment_end);
    }
  }
  now_ = t;
}

}  // namespace manet::mobility
