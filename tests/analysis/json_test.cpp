#include "analysis/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace manet::analysis {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "run");
  w.field("count", std::uint64_t{3});
  w.key("xs").begin_array().value(1.5).value(2.5).end_array();
  w.key("inner").begin_object().field("flag", true).end_object();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            R"({"name":"run","count":3,"xs":[1.5,2.5],"inner":{"flag":true}})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, DoublesRoundTripThroughText) {
  const double x = 0.1 + 0.2;  // not exactly 0.3
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array().value(x).end_array();
  const auto parsed = parse_json(os.str());
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.value.items.size(), 1u);
  EXPECT_EQ(parsed.value.items[0].number, x);  // bit-exact via %.17g
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  const auto parsed = parse_json(
      R"({"s": "hi", "n": -2.5e3, "t": true, "f": false, "z": null,
          "a": [1, {"k": 2}]})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& v = parsed.value;
  EXPECT_EQ(v.string_or("s", ""), "hi");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), -2500.0);
  ASSERT_NE(v.find("t"), nullptr);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("z")->kind, JsonValue::Kind::kNull);
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 2u);
  EXPECT_DOUBLE_EQ(a->items[1].number_or("k", 0.0), 2.0);
}

TEST(JsonParser, DecodesEscapes) {
  const auto parsed = parse_json("[\"line\\nbreak\", \"A\\u00e9\"]");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.items[0].string, "line\nbreak");
  EXPECT_EQ(parsed.value.items[1].string, "A\xc3\xa9");  // é -> UTF-8 e-acute
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("{").ok);
  EXPECT_FALSE(parse_json("[1,]").ok);
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
  EXPECT_FALSE(parse_json("true garbage").ok);  // trailing garbage
  EXPECT_FALSE(parse_json("'single'").ok);
}

TEST(JsonParser, MemberOrderIsPreserved) {
  const auto parsed = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.value.members.size(), 3u);
  EXPECT_EQ(parsed.value.members[0].first, "z");
  EXPECT_EQ(parsed.value.members[1].first, "a");
  EXPECT_EQ(parsed.value.members[2].first, "m");
}

TEST(JsonWriterDeathTest, KeyOutsideObjectAborts) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  EXPECT_DEATH(w.key("nope"), "");
}

}  // namespace
}  // namespace manet::analysis
