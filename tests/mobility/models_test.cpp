#include <gtest/gtest.h>

#include "geom/region.hpp"
#include "mobility/field.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/random_direction.hpp"

namespace manet::mobility {
namespace {

const geom::DiskRegion kDisk({0, 0}, 30.0);

TEST(RandomDirection, StaysInsideRegion) {
  RandomDirection model(kDisk, 60, {2.0, 10.0}, 1);
  for (Time t = 0.5; t <= 60.0; t += 0.5) {
    model.advance_to(t);
    for (const auto& p : model.positions()) {
      EXPECT_TRUE(kDisk.contains(p)) << "t=" << t;
    }
  }
}

TEST(RandomDirection, NodesActuallyMove) {
  RandomDirection model(kDisk, 30, {1.0, 60.0}, 2);
  const auto before = model.positions();
  model.advance_to(10.0);
  Size moved = 0;
  for (Size v = 0; v < 30; ++v) {
    if (geom::distance(before[v], model.positions()[v]) > 1.0) ++moved;
  }
  EXPECT_GE(moved, 25u);
}

TEST(RandomDirection, SpeedBoundsDisplacement) {
  RandomDirection model(kDisk, 30, {2.0, 60.0}, 3);
  auto prev = model.positions();
  for (Time t = 1.0; t <= 20.0; t += 1.0) {
    model.advance_to(t);
    for (Size v = 0; v < 30; ++v) {
      EXPECT_LE(geom::distance(prev[v], model.positions()[v]), 2.0 + 1e-9);
    }
    prev = model.positions();
  }
}

TEST(RandomDirection, Deterministic) {
  RandomDirection a(kDisk, 20, {1.5, 30.0}, 42);
  RandomDirection b(kDisk, 20, {1.5, 30.0}, 42);
  a.advance_to(17.0);
  b.advance_to(17.0);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(GaussMarkov, StaysInsideRegion) {
  GaussMarkov model(kDisk, 60, {1.5, 0.5, 0.85, 1.0}, 4);
  for (Time t = 0.5; t <= 60.0; t += 0.5) {
    model.advance_to(t);
    for (const auto& p : model.positions()) EXPECT_TRUE(kDisk.contains(p));
  }
}

TEST(GaussMarkov, MeanDisplacementTracksMeanSpeed) {
  GaussMarkov model(kDisk, 200, {1.0, 0.2, 0.8, 1.0}, 5);
  const auto before = model.positions();
  model.advance_to(4.0);
  double total = 0.0;
  for (Size v = 0; v < 200; ++v) {
    total += geom::distance(before[v], model.positions()[v]);
  }
  const double mean = total / 200.0;
  // Over 4 s at ~1 m/s with smooth headings, mean displacement is a few
  // meters; the check brackets gross integration errors (e.g. double
  // counting partial steps would show up as > 4).
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 4.5);
}

TEST(GaussMarkov, Deterministic) {
  GaussMarkov a(kDisk, 20, {1.0, 0.3, 0.85, 1.0}, 6);
  GaussMarkov b(kDisk, 20, {1.0, 0.3, 0.85, 1.0}, 6);
  a.advance_to(9.7);
  b.advance_to(9.7);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(GaussMarkov, PartialThenFullStepDoesNotDoubleIntegrate) {
  // Huge region: the boundary clamp is path-dependent (clamping mid-step vs
  // at the endpoint projects differently), so keep nodes far from it and
  // compare pure integration.
  const geom::DiskRegion huge({0, 0}, 1e6);
  GaussMarkov a(huge, 20, {1.0, 0.3, 0.85, 1.0}, 7);
  GaussMarkov b(huge, 20, {1.0, 0.3, 0.85, 1.0}, 7);
  a.advance_to(0.5);
  a.advance_to(1.0);
  a.advance_to(2.0);
  b.advance_to(2.0);
  // The AR noise draws differ in count only if the partial step consumed
  // RNG, which it must not; positions must agree exactly.
  for (Size v = 0; v < 20; ++v) {
    EXPECT_NEAR(a.positions()[v].x, b.positions()[v].x, 1e-9);
    EXPECT_NEAR(a.positions()[v].y, b.positions()[v].y, 1e-9);
  }
}

TEST(StaticField, NeverMoves) {
  StaticField model(kDisk, 25, 8);
  const auto before = model.positions();
  model.advance_to(100.0);
  EXPECT_EQ(before, model.positions());
  EXPECT_DOUBLE_EQ(model.now(), 100.0);
}

TEST(StaticField, WrapsExternalPositions) {
  StaticField model(std::vector<geom::Vec2>{{1, 2}, {3, 4}});
  EXPECT_EQ(model.node_count(), 2u);
  EXPECT_EQ(model.positions()[1], (geom::Vec2{3, 4}));
  model.mutable_positions()[1] = {5, 6};
  EXPECT_EQ(model.positions()[1], (geom::Vec2{5, 6}));
}

TEST(ModelNames, AreDistinct) {
  StaticField s(kDisk, 2, 1);
  RandomDirection rd(kDisk, 2, {1.0, 10.0}, 1);
  GaussMarkov gm(kDisk, 2, {1.0, 0.1, 0.5, 1.0}, 1);
  EXPECT_STRNE(s.name(), rd.name());
  EXPECT_STRNE(rd.name(), gm.name());
}

}  // namespace
}  // namespace manet::mobility
