/// E12b (paper Section 6 remark): location-query overhead is of the same
/// order as the requester-target hop count and occurs once per session, so
/// it is absorbed by the session. Measures CHLM query cost against the
/// direct shortest-path hop count across |V|.

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "graph/bfs.hpp"
#include "lm/chlm.hpp"
#include "net/unit_disk.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E12b  bench_query — location query cost vs direct hop count",
      "query cost = O(hops(requester, target)) per session (paper Section 6)");

  analysis::TextTable table({"|V|", "mean query cost", "mean direct hops", "ratio",
                             "max ratio"});
  for (const Size n : bench::standard_nodes()) {
    auto cfg = bench::paper_scenario();
    cfg.n = n;
    cfg.mobility = exp::MobilityKind::kStatic;
    auto scenario = exp::Scenario::materialize(cfg);
    net::UnitDiskBuilder disk(cfg.tx_radius(), true);
    const auto g = disk.build(scenario.mobility->positions());
    const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

    lm::ChlmService service;
    service.rebuild(h);

    common::Xoshiro256 rng(common::derive_seed(cfg.seed, 0x51AA));
    graph::BfsScratch bfs;
    double query_sum = 0.0, direct_sum = 0.0, max_ratio = 0.0;
    Size samples = 0;
    while (samples < 200) {
      const auto u = static_cast<NodeId>(common::uniform_index(rng, n));
      const auto v = static_cast<NodeId>(common::uniform_index(rng, n));
      if (u == v) continue;
      const auto cost = service.query_cost(h, g, u, v);
      bfs.run(g, u);
      const auto direct = bfs.hops_to(v);
      if (direct == graph::kUnreachable || direct == 0) continue;
      query_sum += static_cast<double>(cost);
      direct_sum += direct;
      max_ratio = std::max(max_ratio, static_cast<double>(cost) / direct);
      ++samples;
    }
    table.add_row({std::to_string(n), bench::fixed(query_sum / 200.0),
                   bench::fixed(direct_sum / 200.0),
                   bench::fixed(query_sum / direct_sum, 3), bench::fixed(max_ratio, 3)});
  }
  std::printf("%s", table.to_string("query cost (packet transmissions per lookup)").c_str());
  std::printf(
      "\nreading: the mean ratio should stay a small constant across |V| —\n"
      "query cost rides the session's own path length, so it amortizes.\n");
  return 0;
}
