#include "analysis/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/check.hpp"
#include "common/types.hpp"

namespace manet::analysis {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonWriter ---

JsonWriter::JsonWriter(std::ostream& os, bool pretty) : os_(os), pretty_(pretty) {}

JsonWriter::~JsonWriter() {
  // Not CHECKed here (destructors during unwinding), but complete() lets
  // callers assert the document closed properly.
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (Size i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  MANET_CHECK_MSG(!top_level_done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    MANET_CHECK_MSG(key_pending_, "JsonWriter: value inside object requires key()");
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MANET_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "JsonWriter: key() outside object");
  MANET_CHECK_MSG(!key_pending_, "JsonWriter: key() twice without value");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << json_escape(name) << (pretty_ ? "\": " : "\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MANET_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "JsonWriter: end_object() without begin_object()");
  MANET_CHECK_MSG(!key_pending_, "JsonWriter: dangling key at end_object()");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MANET_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "JsonWriter: end_array() without begin_array()");
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
  }
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

bool JsonWriter::complete() const { return stack_.empty() && top_level_done_; }

// --- JsonValue / parser ---

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters at offset " + std::to_string(pos_);
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Artifacts are ASCII; store BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const Size start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string name;
      if (!parse_string(name)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(name), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  Size pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace manet::analysis
