#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file event_closure.hpp
/// Move-only type-erased callable for the discrete-event kernel, replacing
/// std::function<void()> in the event queue. The kernel's closures are small
/// (a couple of pointers and a token), so they live in a small inline buffer
/// and the queue's slot slab can recycle them without touching the heap:
/// schedule/fire/cancel at steady state performs zero allocations. Callables
/// larger than the buffer (the pre-scheduled measurement tick, built once at
/// setup) fall back to a single heap allocation.

namespace manet::sim {

class EventClosure {
 public:
  /// Inline capacity. Sized so every steady-state kernel closure (engine
  /// recurring ticks, ARQ timers) stays inline while one closure plus its
  /// vtable pointer still fits a cache line.
  static constexpr std::size_t kInlineBytes = 56;

  EventClosure() noexcept = default;
  EventClosure(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventClosure> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventClosure(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineVt<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapVt<Fn>::ops;
    }
  }

  EventClosure(EventClosure&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { reset(); }

  /// Invoke the stored callable. Undefined when empty (the queue rejects
  /// null callbacks at schedule time).
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const EventClosure& c, std::nullptr_t) noexcept {
    return c.ops_ == nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into \p dst from \p src, destroying \p src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineVt {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapVt {
    static Fn* held(void* p) noexcept { return *static_cast<Fn**>(p); }
    static void invoke(void* p) { (*held(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(held(src));
    }
    static void destroy(void* p) noexcept { delete held(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace manet::sim
