#pragma once

#include <memory>

#include "cluster/alca.hpp"
#include "cluster/hierarchy.hpp"
#include "geom/vec2.hpp"

/// \file hierarchy_builder.hpp
/// Recursive construction of the clustered hierarchy (paper Section 2.1):
/// run the election on level k, promote the clusterheads to level k+1,
/// connect two level-(k+1) vertices when their level-k clusters are adjacent,
/// and repeat until the topology stops aggregating (single vertex, or no
/// reduction — the latter happens only on degenerate/disconnected levels).

namespace manet::cluster {

/// Builder configuration.
struct HierarchyOptions {
  /// Hard cap on clustered levels above level 0 (safety bound; the natural
  /// termination is aggregation to a single vertex). 32 >> log2 of any n
  /// this library targets.
  Level max_levels = 32;

  /// Level-k (k >= 1) link model. When false, two clusterheads are linked
  /// iff their member clusters are adjacent in the level-(k-1) topology —
  /// the naive graph-contraction rule. That rule is hair-triggered under
  /// mobility (a single boundary link flips cluster adjacency), which
  /// violates the paper's cluster-dynamics model: Section 5.3.1 requires a
  /// level-k link to persist until the heads drift apart by Theta(h_k), and
  /// eq. (7) writes the threshold explicitly as Theta(R_TX * sqrt(c_k)).
  /// When true (and positions are supplied to build()), level-k links
  /// connect heads within beta * R_TX * sqrt(mean c_k) meters — the
  /// geometric hysteresis the analysis assumes.
  bool geometric_links = false;
  double beta = 1.0;       ///< link-range multiplier for geometric links
  double tx_radius = 1.0;  ///< R_TX used by the geometric threshold
};

class HierarchyBuilder {
 public:
  using Options = HierarchyOptions;

  /// Uses ALCA election (the paper's assumption) unless an alternative
  /// algorithm is supplied.
  explicit HierarchyBuilder(Options options = {});
  explicit HierarchyBuilder(std::shared_ptr<const ElectionAlgorithm> algorithm,
                            Options options = {});

  /// Build the full hierarchy over \p g. \p ids assigns the (unique) node
  /// identifiers that drive elections; pass an empty span to use the
  /// identity assignment id(v) = v. \p positions (level-0 node coordinates)
  /// are required when Options::geometric_links is set and ignored
  /// otherwise.
  ///
  /// \p reuse (optional): the hierarchy produced by the *previous* build
  /// over the same node population. Elections are pure functions of a
  /// level's (topology, ids), so whenever a level's inputs are unchanged
  /// from the prior snapshot the cached ElectionResult is copied instead of
  /// re-run, and — while the whole prefix of levels below is unchanged —
  /// the children/member/ancestor rollups are copied rather than resorted.
  /// The output is bit-identical to a from-scratch build; \p reuse only
  /// short-circuits work. This is the incremental tick pipeline's seeding
  /// path: a tick whose level-0 edge delta is empty but whose positions
  /// drifted re-runs, at most, the cheap upper-level elections whose
  /// geometric links actually flipped.
  Hierarchy build(const graph::Graph& g, std::span<const NodeId> ids = {},
                  std::span<const geom::Vec2> positions = {},
                  const Hierarchy* reuse = nullptr) const;

  const ElectionAlgorithm& algorithm() const { return *algorithm_; }

 private:
  std::shared_ptr<const ElectionAlgorithm> algorithm_;
  Options options_;
};

}  // namespace manet::cluster
