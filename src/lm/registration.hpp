#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "graph/bfs.hpp"
#include "lm/reliable.hpp"
#include "lm/server_select.hpp"

/// \file registration.hpp
/// Location *registration* overhead — the owner-driven updates that keep LM
/// servers fresh, as opposed to the server-to-server *handoff* this paper
/// analyzes. The paper's conclusions cite the companion work [17] for the
/// claim that registration costs only Theta(log|V|) packet transmissions per
/// node per second; this module reproduces that measurement (experiment E18)
/// with the GLS-style distance-threshold update rule:
///
///   a node refreshes its level-k server after moving
///   delta_k = threshold * R_TX * sqrt(mean c_k) meters since its last
///   level-k update (paper eq. (7) scale),
///
/// so far servers hear from it rarely and near servers often — exactly the
/// lazy-updating geometry GLS prescribes (paper Section 3.1, feature (c)).

namespace manet::lm {

struct RegistrationConfig {
  ServerSelectConfig select;
  double threshold = 0.5;  ///< update distance in units of R_TX * sqrt(c_k)
  double tx_radius = 1.0;  ///< R_TX for the distance scale
};

class RegistrationTracker {
 public:
  explicit RegistrationTracker(RegistrationConfig config);

  /// Install anchors at time \p t: every (node, level) records its current
  /// position; no cost charged.
  void prime(const cluster::Hierarchy& h, const std::vector<geom::Vec2>& positions, Time t);

  struct TickResult {
    PacketCount packets = 0;
    Size updates = 0;
  };

  /// Check every (node, level) against its distance threshold; charge
  /// hops(owner, current level-k server) per triggered update.
  TickResult update(const cluster::Hierarchy& h, const graph::Graph& g,
                    const std::vector<geom::Vec2>& positions, Time t);

  Time elapsed() const { return last_time_ - start_time_; }
  Size node_count() const { return anchors_.size(); }

  PacketCount total_packets() const { return total_packets_; }
  Size total_updates() const { return total_updates_; }

  /// Registration packet transmissions per node per second.
  double rate() const;
  double rate_at(Level k) const;
  Size levels_tracked() const { return per_level_packets_.size(); }

  // --- Resilience plane (see sim/fault.hpp) ---

  /// Attach (or detach with nullptr) the unreliable transfer path. With an
  /// ARQ attached, a triggered update that exhausts its retry budget leaves
  /// the anchor UN-refreshed, so the distance rule naturally retries on the
  /// next tick. Detached, behavior is bit-identical to the ideal build.
  void set_resilience(ReliableTransfer* arq, const std::vector<std::uint8_t>* down);

  /// Retransmitted registration packets (0 while no ARQ is attached).
  PacketCount total_retx() const { return reg_retx_; }
  Size failed_updates() const { return failed_updates_; }
  double retx_rate() const;

 private:
  PacketCount price(const graph::Graph& g, NodeId from, NodeId to);
  bool is_down(NodeId v) const {
    return down_ != nullptr && v < down_->size() && (*down_)[v] != 0;
  }

  RegistrationConfig config_;
  /// anchors_[node][k - kFirstServedLevel] = position at last level-k update.
  std::vector<std::vector<geom::Vec2>> anchors_;
  Level top_ = 0;
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  bool primed_ = false;
  PacketCount total_packets_ = 0;
  Size total_updates_ = 0;
  std::vector<PacketCount> per_level_packets_;
  graph::BfsPairScratch pair_bfs_;

  ReliableTransfer* arq_ = nullptr;
  const std::vector<std::uint8_t>* down_ = nullptr;
  PacketCount reg_retx_ = 0;
  Size failed_updates_ = 0;
};

}  // namespace manet::lm
