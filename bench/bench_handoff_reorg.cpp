/// E9: handoff overhead due to cluster reorganization (paper Section 5,
/// eqs. 10-11): gamma_k = O(log|V|) per level, gamma = Theta(log^2 |V|)
/// packet transmissions per node per second.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E9  bench_handoff_reorg — gamma (reorganization handoff)",
      "gamma_k = O(log|V|) per level [eq. 10b]; gamma = Theta(log^2 |V|) [eq. 11]");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;

  bench::Artifact artifact("handoff_reorg", cfg, bench::standard_replications());
  const auto campaign = exp::sweep_node_count(cfg, bench::standard_nodes(),
                                              bench::standard_replications(), opts);
  artifact.add_campaign(campaign, "gamma_rate");
  artifact.add_campaign(campaign, "total_rate");
  artifact.add_campaign(campaign, "levels");

  analysis::TextTable table({"|V|", "gamma", "gamma/log^2(n)", "phi+gamma", "levels"});
  for (const auto& point : campaign.points) {
    const double n = static_cast<double>(point.n);
    const double logn = std::log(n);
    const double gamma = point.metrics.mean("gamma_rate");
    table.add_row({std::to_string(point.n), bench::cell(point.metrics, "gamma_rate"),
                   bench::fixed(gamma / (logn * logn), 4),
                   bench::cell(point.metrics, "total_rate"),
                   bench::cell(point.metrics, "levels")});
  }
  std::printf("%s", table.to_string("gamma vs |V| (pkts/node/s)").c_str());

  for (const auto& point : campaign.points) {
    analysis::TextTable levels({"level", "gamma_k"});
    for (Level k = 1; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "gamma_k.%u", k);
      if (!point.metrics.has(key)) break;
      artifact.add_point(key, static_cast<double>(point.n), point.metrics, key);
      levels.add_row({std::to_string(k), bench::fixed(point.metrics.mean(key))});
    }
    char title[64];
    std::snprintf(title, sizeof(title), "per-level gamma_k at |V| = %zu", point.n);
    std::printf("%s", levels.to_string(title).c_str());
  }

  bench::print_model_selection("gamma", campaign, "gamma_rate");
  artifact.write();
  return 0;
}
