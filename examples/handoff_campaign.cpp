/// Full Monte-Carlo scaling campaign: sweeps node count, replicates each
/// point, writes a CSV of every metric mean, and prints the growth-model
/// ranking for the headline overhead — a configurable version of the E14
/// bench for your own studies.
///
/// Usage: ./build/examples/handoff_campaign [reps] [csv_path] [n1 n2 ...]
/// Default: 2 replications, campaign.csv, n in {128 256 512 1024}.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/csv.hpp"
#include "analysis/model_fit.hpp"
#include "common/thread_pool.hpp"
#include "exp/campaign.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size reps = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 2;
  const char* csv_path = argc > 2 ? argv[2] : "campaign.csv";
  std::vector<Size> nodes;
  for (int i = 3; i < argc; ++i) nodes.push_back(static_cast<Size>(std::atoi(argv[i])));
  if (nodes.empty()) nodes = {128, 256, 512, 1024};

  exp::ScenarioConfig cfg;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.warmup = 15.0;
  cfg.duration = 45.0;
  cfg.seed = 99;

  exp::RunOptions opts;
  opts.track_events = true;
  opts.track_states = true;
  opts.measure_hops = true;

  std::printf("campaign: %zu scales x %zu replications (threads: %u)\n", nodes.size(), reps,
              std::thread::hardware_concurrency());

  common::ThreadPool pool;
  const auto campaign = exp::sweep_node_count(cfg, nodes, reps, opts, &pool);

  // CSV: one row per (n, metric) with mean and 95% CI half-width.
  std::ofstream csv_file(csv_path);
  analysis::CsvWriter csv(csv_file, {"n", "metric", "mean", "ci95", "reps"});
  for (const auto& point : campaign.points) {
    for (const auto& name : point.metrics.names()) {
      const auto s = point.metrics.summary(name);
      csv.write_row({std::to_string(point.n), name, std::to_string(s.mean),
                     std::to_string(s.ci95), std::to_string(s.count)});
    }
  }
  std::printf("wrote %zu rows to %s\n\n", csv.rows_written(), csv_path);

  for (const char* metric : {"phi_rate", "gamma_rate", "total_rate"}) {
    std::vector<double> ns, ys;
    campaign.series(metric, ns, ys);
    std::printf("%-12s:", metric);
    for (Size i = 0; i < ns.size(); ++i) std::printf("  n=%g -> %.4f", ns[i], ys[i]);
    std::printf("\n");
    if (ns.size() >= 3) {
      const auto sel = analysis::select_model(ns, ys);
      std::printf("%s\n", sel.to_text().c_str());
    }
  }

  std::printf(
      "paper target: the log^2(n) model at or near the top of each ranking\n"
      "(Theta(log^2 n) packet transmissions per node per second).\n");
  return 0;
}
