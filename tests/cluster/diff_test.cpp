#include "cluster/diff.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

Hierarchy build(const Graph& g) { return HierarchyBuilder().build(g); }

TEST(Diff, IdenticalHierarchiesProduceEmptyDelta) {
  const Graph g(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto h = build(g);
  const auto delta = diff_hierarchies(h, h);
  EXPECT_TRUE(delta.migrations.empty());
  EXPECT_TRUE(delta.events.empty());
}

TEST(Diff, NodeMigrationBetweenClusters) {
  // Two 2-cliques {0,1,2} head 2 and {5,6,7} head 7 joined via a bridge;
  // move node 3 from cluster 2's side to cluster 7's side.
  //
  // before: 3 attached to 2 (elects 2... ids: 3 < 7 so closed nbhd of 3 is
  // {2,3}: max 3?? Use explicit ids to control elections.
  // Simpler: line 0-1, 2-3 with ids making heads 1 and 3; then move edge of
  // node 0 from 1 to 3.
  const Graph g_before(4, std::vector<Edge>{{0, 1}, {2, 3}, {1, 3}});
  const Graph g_after(4, std::vector<Edge>{{0, 3}, {2, 3}, {1, 3}});
  const std::vector<NodeId> ids{0, 5, 1, 9};
  const auto before = HierarchyBuilder().build(g_before, ids);
  const auto after = HierarchyBuilder().build(g_after, ids);

  const auto delta = diff_hierarchies(before, after);
  bool found = false;
  for (const auto& m : delta.migrations) {
    if (m.node == 0 && m.level == 1) {
      EXPECT_EQ(m.from_head, 5u);
      EXPECT_EQ(m.to_head, 9u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected node 0 to migrate from cluster 5 to cluster 9";
}

TEST(Diff, HeadElectionDetected) {
  // before: 0-1 (head id 5). after: add isolated-ish vertex pair 2-3 link
  // ... instead: grow a path so a second head appears.
  // before: triangle {0,1,2}, ids {1,2,9}: single head 9.
  // after: break 0-2 and 1-2, link 0-1 only => vertex 2 self-heads (new head
  // id 9 stays), vertex 1 (id 2) becomes head of {0,1}.
  const Graph g_before(3, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  const Graph g_after(3, std::vector<Edge>{{0, 1}});
  const std::vector<NodeId> ids{1, 2, 9};
  const auto before = HierarchyBuilder().build(g_before, ids);
  const auto after = HierarchyBuilder().build(g_after, ids);
  const auto delta = diff_hierarchies(before, after);

  ASSERT_GT(delta.heads_gained.size(), 1u);
  EXPECT_EQ(delta.heads_gained[1], (std::vector<NodeId>{2}));  // id 2 newly heads
  // An election event must be recorded at level 1.
  const Size elect_events = delta.count(ReorgEventType::kElectByMigration, 1) +
                            delta.count(ReorgEventType::kElectRecursive, 1);
  EXPECT_GE(elect_events, 1u);
}

TEST(Diff, HeadRejectionDetected) {
  // Reverse of the election test.
  const Graph g_before(3, std::vector<Edge>{{0, 1}});
  const Graph g_after(3, std::vector<Edge>{{0, 1}, {0, 2}, {1, 2}});
  const std::vector<NodeId> ids{1, 2, 9};
  const auto before = HierarchyBuilder().build(g_before, ids);
  const auto after = HierarchyBuilder().build(g_after, ids);
  const auto delta = diff_hierarchies(before, after);

  ASSERT_GT(delta.heads_lost.size(), 1u);
  EXPECT_EQ(delta.heads_lost[1], (std::vector<NodeId>{2}));
  const Size reject_events = delta.count(ReorgEventType::kRejectByMigration, 1) +
                             delta.count(ReorgEventType::kRejectRecursive, 1);
  EXPECT_GE(reject_events, 1u);
}

TEST(Diff, EventCountsMatchEventList) {
  common::Xoshiro256 rng(31);
  const auto disk = geom::DiskRegion::with_density(150, 1.0);
  std::vector<geom::Vec2> pts(150);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto h1 = build(builder.build(pts));
  // Perturb a handful of nodes.
  for (int i = 0; i < 10; ++i) {
    pts[static_cast<Size>(i) * 7] += {1.5, -0.8};
  }
  const auto h2 = build(builder.build(pts));
  const auto delta = diff_hierarchies(h1, h2);

  std::array<Size, kReorgEventTypeCount> tallied{};
  for (const auto& ev : delta.events) {
    ++tallied[static_cast<std::size_t>(ev.type)];
  }
  for (std::size_t type = 0; type < kReorgEventTypeCount; ++type) {
    Size from_counts = 0;
    for (const Size c : delta.event_counts[type]) from_counts += c;
    EXPECT_EQ(from_counts, tallied[type]) << "event type " << type;
  }
}

TEST(Diff, MigrationsAreSymmetricUnderSwap) {
  common::Xoshiro256 rng(37);
  const auto disk = geom::DiskRegion::with_density(120, 1.0);
  std::vector<geom::Vec2> pts(120);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto h1 = build(builder.build(pts));
  for (Size i = 0; i < pts.size(); i += 9) pts[i] += {1.0, 1.0};
  const auto h2 = build(builder.build(pts));

  const auto forward = diff_hierarchies(h1, h2);
  const auto backward = diff_hierarchies(h2, h1);
  EXPECT_EQ(forward.migrations.size(), backward.migrations.size());
  // Elections one way are rejections the other way.
  Size fwd_elect = 0, bwd_reject = 0;
  for (const auto& ev : forward.events) {
    if (ev.type == ReorgEventType::kElectByMigration ||
        ev.type == ReorgEventType::kElectRecursive) {
      ++fwd_elect;
    }
  }
  for (const auto& ev : backward.events) {
    if (ev.type == ReorgEventType::kRejectByMigration ||
        ev.type == ReorgEventType::kRejectRecursive) {
      ++bwd_reject;
    }
  }
  EXPECT_EQ(fwd_elect, bwd_reject);
}

TEST(Diff, NeighborPromotedScalesWithNeighborCount) {
  common::Xoshiro256 rng(41);
  const auto disk = geom::DiskRegion::with_density(200, 1.0);
  std::vector<geom::Vec2> pts(200);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto h1 = build(builder.build(pts));
  for (Size i = 0; i < pts.size(); i += 5) pts[i] += {2.0, 0.5};
  const auto h2 = build(builder.build(pts));
  const auto delta = diff_hierarchies(h1, h2);

  // Every (vii) event's promoted head must indeed be a gained head one level
  // up from the event's level.
  for (const auto& ev : delta.events) {
    if (ev.type != ReorgEventType::kNeighborPromoted) continue;
    const auto& gained = delta.heads_gained[ev.level + 1];
    EXPECT_TRUE(std::binary_search(gained.begin(), gained.end(), ev.b))
        << "promoted head " << ev.b << " not in gained set at level " << ev.level + 1;
  }
}

TEST(Diff, ToStringCoversAllEventTypes) {
  for (std::size_t t = 0; t < kReorgEventTypeCount; ++t) {
    EXPECT_STRNE(to_string(static_cast<ReorgEventType>(t)), "?");
  }
}

TEST(DiffDeath, RequiresSamePopulation) {
  const auto h1 = build(Graph(3, std::vector<Edge>{{0, 1}, {1, 2}}));
  const auto h2 = build(Graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_DEATH(diff_hierarchies(h1, h2), "population");
}

}  // namespace
}  // namespace manet::cluster
