#include "lm/overhead.hpp"

#include <gtest/gtest.h>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct World {
  geom::DiskRegion disk{geom::Vec2{0, 0}, 1.0};
  std::vector<geom::Vec2> pts;
  net::UnitDiskBuilder builder{2.2, true};
  cluster::HierarchyBuilder hb;
  graph::Graph g{0};
  cluster::Hierarchy h;

  explicit World(Size n, std::uint64_t seed)
      : disk(geom::DiskRegion::with_density(n, 1.0)) {
    common::Xoshiro256 rng(seed);
    pts.resize(n);
    for (auto& p : pts) p = disk.sample(rng);
    refresh();
  }

  void refresh() {
    g = builder.build(pts);
    h = hb.build(g);
  }
};

HandoffEngine run_engine(World& w, int steps, std::uint64_t seed) {
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  common::Xoshiro256 rng(seed);
  for (int step = 1; step <= steps; ++step) {
    for (auto& p : w.pts) {
      p = w.disk.clamp(p + geom::Vec2{common::uniform(rng, -1, 1),
                                      common::uniform(rng, -1, 1)});
    }
    w.refresh();
    engine.update(w.h, w.g, static_cast<Time>(step));
  }
  return engine;
}

TEST(OverheadReport, MatchesEngineAggregates) {
  World w(300, 1);
  const auto engine = run_engine(w, 8, 2);
  const auto report = OverheadReport::from(engine);

  EXPECT_EQ(report.node_count, 300u);
  EXPECT_DOUBLE_EQ(report.window, engine.elapsed());
  EXPECT_DOUBLE_EQ(report.phi_rate, engine.phi_rate());
  EXPECT_DOUBLE_EQ(report.gamma_rate, engine.gamma_rate());
  EXPECT_DOUBLE_EQ(report.total_rate(), engine.phi_rate() + engine.gamma_rate());

  double phi_sum = 0.0;
  for (const double r : report.phi_per_level) phi_sum += r;
  EXPECT_NEAR(phi_sum, report.phi_rate, 1e-9);
}

TEST(OverheadReport, EntryCountsMatchLedger) {
  World w(250, 3);
  const auto engine = run_engine(w, 6, 4);
  const auto report = OverheadReport::from(engine);
  Size phi_entries = 0, gamma_entries = 0;
  for (const auto& lvl : engine.per_level()) {
    phi_entries += lvl.phi_entries;
    gamma_entries += lvl.gamma_entries;
  }
  EXPECT_EQ(report.phi_entries, phi_entries);
  EXPECT_EQ(report.gamma_entries, gamma_entries);
}

TEST(OverheadReport, TextRenderingContainsKeyRows) {
  World w(250, 5);
  const auto engine = run_engine(w, 6, 6);
  const auto report = OverheadReport::from(engine);
  const auto text = report.to_text();
  EXPECT_NE(text.find("phi"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_NE(text.find("f_k"), std::string::npos);
  EXPECT_NE(text.find("n=250"), std::string::npos);
  // One row per level >= 1.
  Size newlines = 0;
  for (const char c : text) newlines += (c == '\n');
  EXPECT_GE(newlines, 3u);
}

TEST(OverheadReport, TextSkipsDeadRowsButKeepsMigrationOnlyLevels) {
  OverheadReport report;
  report.node_count = 10;
  report.window = 5.0;
  report.phi_per_level = {0.0, 0.0, 0.25, 0.0, 0.0};
  report.gamma_per_level = {0.0, 0.0, 0.1, 0.0, 0.0};
  report.migration_per_level = {0.0, 0.5, 0.3, 0.0, 0.0};
  const auto text = report.to_text();
  // k=1 kept (f_1 nonzero), k=2 kept, dead rows k=3..4 skipped.
  EXPECT_NE(text.find("\n1 "), std::string::npos);
  EXPECT_NE(text.find("\n2 "), std::string::npos);
  EXPECT_EQ(text.find("\n3 "), std::string::npos);
  EXPECT_EQ(text.find("\n4 "), std::string::npos);
  Size newlines = 0;
  for (const char c : text) newlines += (c == '\n');
  EXPECT_EQ(newlines, 4u);  // summary + header + rows 1, 2
}

TEST(OverheadReportDeathTest, TextChecksLowLevelsZeroByConstruction) {
  OverheadReport report;
  report.phi_per_level = {0.0, 1.0, 0.0};  // phi_1 != 0 violates the invariant
  report.gamma_per_level = {0.0, 0.0, 0.0};
  report.migration_per_level = {0.0, 0.0, 0.0};
  EXPECT_DEATH(report.to_text(), "zero at levels 0..1");
}

TEST(OverheadReport, FreshEngineIsAllZero) {
  World w(150, 7);
  HandoffEngine engine;
  engine.prime(w.h, 0.0);
  const auto report = OverheadReport::from(engine);
  EXPECT_DOUBLE_EQ(report.phi_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.gamma_rate, 0.0);
  EXPECT_EQ(report.phi_entries, 0u);
  EXPECT_DOUBLE_EQ(report.window, 0.0);
}

}  // namespace
}  // namespace manet::lm
