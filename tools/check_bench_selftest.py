#!/usr/bin/env python3
"""Exit-code contract test for check_bench.py.

Runs the gate as a subprocess against synthetic artifact/baseline pairs and
asserts the documented exit codes: 0 ok, 1 regression or malformed artifact,
2 baseline missing or malformed (the repo-problem code CI keys on), 77
artifact missing (ctest SKIP_RETURN_CODE). Registered as ctest
bench.check_bench_selftest.

Usage: check_bench_selftest.py /path/to/check_bench.py
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

SCHEMA = "manet-bench-artifact/1"


def doc(tps=100.0, n=1000, scalars=None):
    return {
        "schema": SCHEMA,
        "manifest": {"name": "selftest"},
        "series": {"ticks_per_sec_main": [
            {"n": n, "mean": tps, "ci95": 0.0, "count": 1}]},
        "scalars": scalars or {},
    }


def main():
    if len(sys.argv) != 2:
        print("usage: check_bench_selftest.py CHECK_BENCH", file=sys.stderr)
        return 2
    check_bench = sys.argv[1]
    failures = []

    def run(artifact, baseline, expect, label):
        result = subprocess.run(
            [sys.executable, check_bench, str(artifact), str(baseline)],
            capture_output=True, text=True)
        if result.returncode != expect:
            failures.append(
                f"{label}: expected exit {expect}, got {result.returncode}\n"
                f"  stdout: {result.stdout.strip()}\n"
                f"  stderr: {result.stderr.strip()}")
        else:
            print(f"ok: {label} -> exit {expect}")

    with tempfile.TemporaryDirectory() as raw:
        tmp = Path(raw)

        def write(name, payload):
            path = tmp / name
            path.write_text(payload if isinstance(payload, str)
                            else json.dumps(payload))
            return path

        good_artifact = write("artifact.json", doc())
        good_baseline = write("baseline.json", doc())

        run(good_artifact, good_baseline, 0, "matching pair passes")
        run(tmp / "nope.json", good_baseline, 77, "missing artifact skips")
        run(good_artifact, tmp / "nope.json", 2, "missing baseline is exit 2")
        run(good_artifact, write("trunc.json", '{"schema": "manet-bench'),
            2, "truncated baseline JSON is exit 2")
        run(good_artifact, write("schema.json", doc() | {"schema": "bogus/9"}),
            2, "wrong baseline schema is exit 2")
        run(good_artifact,
            write("scalar.json", doc(scalars={"min_speedup": "fast"})),
            2, "non-numeric baseline scalar is exit 2")
        run(write("badpoint.json",
                  {"schema": SCHEMA, "series": {"ticks_per_sec_x": [{"n": 1}]},
                   "scalars": {}}),
            good_baseline, 1, "artifact point without mean is exit 1")
        run(write("slow.json", doc(tps=10.0)), good_baseline, 1,
            "5x regression is exit 1")
        run(write("ident.json", doc(scalars={"identity_violations": 2})),
            good_baseline, 1, "identity violations are exit 1")
        run(good_artifact,
            write("floor.json", doc(scalars={"min_capacity_n": 100000})),
            1, "unmet capacity floor is exit 1")
        run(write("big.json", doc(n=100000)),
            write("floor2.json", doc(n=100000,
                                     scalars={"min_capacity_n": 100000})),
            0, "met capacity floor passes")

        # Parallel-speedup gate (bench_capacity E30): the floor binds only
        # when the artifact's manifest reports a multi-core producer; a
        # single-core manifest (or a pre-field manifest with no
        # hardware_concurrency at all) skips the gate with a logged reason.
        def pdoc(hw, scalars):
            d = doc(scalars=scalars)
            d["manifest"] = {"name": "selftest", "hardware_concurrency": hw}
            return d

        speedup_baseline = write("pbase.json",
                                 doc(scalars={"min_parallel_speedup": 1.2}))
        run(write("pfast.json", pdoc(8, {"speedup_max": 1.8, "speedup_2t": 1.5})),
            speedup_baseline, 0, "met parallel-speedup floor passes")
        run(write("pslow.json", pdoc(8, {"speedup_max": 0.9, "speedup_2t": 0.8})),
            speedup_baseline, 1, "unmet parallel-speedup floor is exit 1")
        run(write("pmissing.json", pdoc(8, {})),
            speedup_baseline, 1, "missing speedup_max on multi-core is exit 1")
        single_core = write("psingle.json", pdoc(1, {"speedup_max": 0.5}))
        run(single_core, speedup_baseline, 0,
            "single-core runner skips the parallel-speedup gate")
        result = subprocess.run(
            [sys.executable, check_bench, str(single_core),
             str(speedup_baseline)], capture_output=True, text=True)
        if "min_parallel_speedup gate skipped" not in result.stdout:
            failures.append("single-core skip did not log its reason:\n"
                            f"  stdout: {result.stdout.strip()}")
        else:
            print("ok: single-core skip logs its reason")
        run(write("pnohw.json", doc(scalars={"speedup_max": 0.5})),
            speedup_baseline, 0,
            "manifest without hardware_concurrency skips the gate")

        # Matrix-cell pinning: baseline ticks_per_sec_s<S>_t<T> scalars must
        # survive into the artifact with positive values.
        matrix_baseline = write("mbase.json", doc(scalars={
            "min_parallel_speedup": 1.2,
            "ticks_per_sec_s16_t1": 8.0, "ticks_per_sec_s16_t2": 9.0}))
        run(write("mok.json", pdoc(1, {
                "ticks_per_sec_s16_t1": 7.5, "ticks_per_sec_s16_t2": 8.5})),
            matrix_baseline, 0, "matrix cells present and positive pass")
        run(write("mlost.json", pdoc(1, {"ticks_per_sec_s16_t1": 7.5})),
            matrix_baseline, 1, "lost matrix cell is exit 1")
        run(write("mzero.json", pdoc(1, {
                "ticks_per_sec_s16_t1": 7.5, "ticks_per_sec_s16_t2": 0.0})),
            matrix_baseline, 1, "non-positive matrix cell is exit 1")

        # Query-serving gates (bench_query E31): scalar-only baselines carry
        # no ticks_per_sec_* series at all — recognized gate scalars must be
        # enough for the baseline to validate.
        def qdoc(scalars):
            return {"schema": SCHEMA, "manifest": {"name": "query"},
                    "series": {}, "scalars": scalars}

        query_baseline = write("qbase.json", qdoc(
            {"min_lookups_per_sec": 1000000.0, "max_lookup_p99_us": 5.0}))
        run(write("qfast.json", qdoc(
                {"lookups_per_sec": 2.5e7, "lookup_p99_us": 0.1,
                 "identity_violations": 0})),
            query_baseline, 0, "query floors met on scalar-only baseline")
        run(write("qslow.json", qdoc(
                {"lookups_per_sec": 5e5, "lookup_p99_us": 0.1})),
            query_baseline, 1, "unmet lookups/sec floor is exit 1")
        run(write("qlag.json", qdoc(
                {"lookups_per_sec": 2.5e7, "lookup_p99_us": 50.0})),
            query_baseline, 1, "exceeded lookup p99 cap is exit 1")
        run(write("qmissing.json", qdoc({})),
            query_baseline, 1, "missing query scalars are exit 1")
        run(good_artifact, write("gateless.json", qdoc({})),
            1, "baseline without series or gate scalars is exit 1")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print("check_bench_selftest: all exit-code contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
