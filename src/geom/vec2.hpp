#pragma once

#include <cmath>

/// \file vec2.hpp
/// 2-D vectors for node positions and velocities. The paper's deployment
/// model is a two-dimensional uniform distribution over a circular area
/// (Section 1.2), so all geometry in this library is planar.

namespace manet::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

}  // namespace manet::geom
