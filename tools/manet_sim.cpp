/// manet_sim — the command-line front end to the whole library.
///
/// Single run:   manet_sim --n 512 --mu 2 --duration 120 --registration
/// Scaling sweep: manet_sim --sweep 128,256,512,1024 --reps 3 --csv out.csv
/// Campaign:      manet_sim campaign --spec spec.json --out dir   (+ --plan /
///                --resume dir / --shard i/k / --merge — docs/CAMPAIGNS.md)
///
/// Run with --help for the full flag list (exp/cli.hpp).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "analysis/csv.hpp"
#include "analysis/json.hpp"
#include "analysis/model_fit.hpp"
#include "analysis/table.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "exp/artifacts.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/cli.hpp"
#include "sim/trace.hpp"
#include "viz/json.hpp"

namespace {

using namespace manet;

void print_ledger(const exp::CampaignRunner& runner, const std::vector<bool>* done) {
  analysis::TextTable table(done != nullptr
                                ? std::vector<std::string>{"unit", "n", "block", "reps",
                                                           "status"}
                                : std::vector<std::string>{"unit", "n", "block", "reps"});
  for (const auto& unit : runner.plan()) {
    std::vector<std::string> row{unit.id(), std::to_string(unit.n),
                                 std::to_string(unit.block),
                                 "[" + std::to_string(unit.rep_begin) + "," +
                                     std::to_string(unit.rep_end) + ")"};
    if (done != nullptr) row.push_back((*done)[unit.index] ? "done" : "pending");
    table.add_row(row);
  }
  const auto& spec = runner.spec();
  std::printf("%s", table
                        .to_string("campaign '" + spec.name + "' — " +
                                   std::to_string(runner.plan().size()) + " unit(s), " +
                                   std::to_string(spec.replications) +
                                   " replication(s)/point, fingerprint " +
                                   spec.fingerprint())
                        .c_str());
}

int run_campaign_command(int argc, char** argv) {
  const auto parsed = exp::parse_campaign_cli(argc - 1, argv + 1);
  if (parsed.options.show_help) {
    std::printf("%s", exp::campaign_cli_usage(argv[0]).c_str());
    return 0;
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                 exp::campaign_cli_usage(argv[0]).c_str());
    return 2;
  }
  const auto& opt = parsed.options;

  // Spec source: --spec file, else the campaign.json of the directory.
  exp::CampaignSpec spec;
  std::string error;
  if (!opt.spec_path.empty()) {
    if (!exp::CampaignSpec::load(opt.spec_path, spec, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else if (!exp::read_campaign_manifest(opt.dir, spec, error)) {
    std::fprintf(stderr, "error: %s (pass --spec for a campaign not yet started)\n",
                 error.c_str());
    return 1;
  }

  exp::CampaignRunner runner(spec, opt.dir);

  if (opt.plan) {
    if (opt.dir.empty()) {
      print_ledger(runner, nullptr);
    } else {
      const auto done = runner.completed_units();
      print_ledger(runner, &done);
    }
    return 0;
  }

  if (opt.merge) {
    const auto started = std::chrono::steady_clock::now();
    auto merged = runner.merge();
    if (!merged.ok) {
      std::fprintf(stderr, "error: %s\n", merged.error.c_str());
      for (const Size index : merged.missing) {
        std::fprintf(stderr, "  missing: %s\n", runner.plan()[index].id().c_str());
      }
      return 1;
    }
    analysis::TextTable table({"n", "phi", "gamma", "total", "levels"});
    for (const auto& point : merged.campaign.points) {
      table.add_row({std::to_string(point.n),
                     analysis::TextTable::fmt(point.metrics.mean("phi_rate")),
                     analysis::TextTable::fmt(point.metrics.mean("gamma_rate")),
                     analysis::TextTable::fmt(point.metrics.mean("total_rate")),
                     analysis::TextTable::fmt(point.metrics.mean("levels"), 3)});
    }
    std::printf("%s", table
                          .to_string("campaign '" + spec.name + "' merged (" +
                                     std::to_string(merged.units) + " units)")
                          .c_str());

    std::vector<double> ns, totals;
    merged.campaign.series("total_rate", ns, totals);
    if (ns.size() >= 3) {
      const auto sel = analysis::select_model(ns, totals);
      std::printf("\n%s", sel.to_text().c_str());
    }

    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - started;
    const std::string artifact = opt.dir + "/CAMPAIGN_" + spec.name + ".json";
    if (!exp::write_campaign_artifact(artifact, spec, merged.campaign, wall.count(),
                                      /*thread_count=*/1, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote merged artifact %s\n", artifact.c_str());
    return 0;
  }

  // Execute this shard's pending units.
  common::ThreadPool pool(opt.threads);
  exp::CampaignRunner::RunConfig config;
  config.shard_index = opt.shard_index;
  config.shard_count = opt.shard_count;
  config.resume = opt.resume;
  config.max_units = opt.max_units;
  config.pool = &pool;
  config.progress = [](const exp::WorkUnit& unit, Size done, Size total) {
    std::printf("  [%zu/%zu] %s reps [%zu,%zu) done\n", done, total, unit.id().c_str(),
                unit.rep_begin, unit.rep_end);
    std::fflush(stdout);
  };

  std::printf("campaign '%s': %zu unit(s), shard %zu/%zu, %zu thread(s)\n",
              spec.name.c_str(), runner.plan().size(), opt.shard_index, opt.shard_count,
              pool.thread_count());
  const auto report = runner.run(config);
  if (!report.ok) {
    std::fprintf(stderr, "error: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("executed %zu unit(s), skipped %zu already-checkpointed, of %zu owned\n",
              report.executed, report.skipped, report.total);
  if (report.executed + report.skipped < report.total) {
    std::printf("stopped early (--max-units); resume with: %s campaign --resume %s\n",
                argv[0], opt.dir.c_str());
  } else if (opt.shard_count > 1) {
    std::printf("shard complete; after all shards: %s campaign --resume %s --merge\n",
                argv[0], opt.dir.c_str());
  } else {
    std::printf("all units checkpointed; merge with: %s campaign --resume %s --merge\n",
                argv[0], opt.dir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  if (argc > 1 && std::strcmp(argv[1], "campaign") == 0) {
    return run_campaign_command(argc, argv);
  }

  const auto parsed = exp::parse_cli(argc, argv);
  if (parsed.options.show_help) {
    std::printf("%s", exp::cli_usage(argv[0]).c_str());
    return 0;
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n\n%s", parsed.error.c_str(),
                 exp::cli_usage(argv[0]).c_str());
    return 2;
  }
  const auto& opt = parsed.options;

  if (opt.sweep.empty()) {
    // Single scenario (possibly replicated).
    std::printf("scenario: %s\n", opt.scenario.describe().c_str());
    const auto agg = exp::run_replications(opt.scenario, opt.replications, opt.run);
    analysis::TextTable table({"metric", "mean", "ci95", "min", "max"});
    for (const auto& name : agg.names()) {
      const auto s = agg.summary(name);
      table.add_row({name, analysis::TextTable::fmt(s.mean), analysis::TextTable::fmt(s.ci95, 3),
                     analysis::TextTable::fmt(s.min), analysis::TextTable::fmt(s.max)});
    }
    std::printf("%s", table.to_string("metrics over " + std::to_string(opt.replications) +
                                      " replication(s)")
                          .c_str());
    if (!opt.json_path.empty()) {
      // JSON carries a single canonical replication (the base seed).
      const auto metrics = exp::run_simulation(opt.scenario, opt.run);
      std::ofstream json_file(opt.json_path);
      if (!json_file) {
        std::fprintf(stderr, "error: cannot write %s\n", opt.json_path.c_str());
        return 1;
      }
      viz::write_metrics_json(json_file, metrics);
      std::printf("wrote metrics JSON to %s\n", opt.json_path.c_str());
    }

    if (opt.trace || !opt.metrics_json_path.empty()) {
      // Observability attaches to one canonical replication (the base seed):
      // the registry and trace describe a single run, not an aggregate.
      common::MetricsRegistry registry;
      sim::TraceSink sink(sim::TraceSink::Config{opt.trace_capacity, opt.trace_sample});
      exp::RunOptions observed = opt.run;
      observed.metrics = &registry;
      if (opt.trace) observed.trace = &sink;
      (void)exp::run_simulation(opt.scenario, observed);

      if (opt.trace) {
        std::printf("\ntrace: %zu events seen, %zu retained, %zu dropped "
                    "(capacity %zu, sample 1/%zu)\n",
                    sink.seen(), sink.size(), sink.dropped(), sink.capacity(),
                    opt.trace_sample);
        analysis::TextTable trace_table({"event", "count"});
        const auto& counts = sink.type_counts();
        for (Size i = 0; i < sim::kTraceEventTypeCount; ++i) {
          if (counts[i] == 0) continue;
          trace_table.add_row({sim::to_string(static_cast<sim::TraceEventType>(i)),
                               std::to_string(counts[i])});
        }
        std::printf("%s", trace_table.to_string("trace event counts").c_str());
      }

      if (!opt.metrics_json_path.empty()) {
        std::ofstream file(opt.metrics_json_path);
        if (!file) {
          std::fprintf(stderr, "error: cannot write %s\n", opt.metrics_json_path.c_str());
          return 1;
        }
        auto manifest = exp::RunManifest::capture("manet_sim", opt.scenario,
                                                  /*replications=*/1);
        analysis::JsonWriter w(file, /*pretty=*/true);
        w.begin_object();
        w.field("schema", "manet-sim-run/1");
        w.key("manifest");
        manifest.write_json(w);
        w.key("metrics");
        const Time end = opt.scenario.warmup + opt.scenario.duration;
        exp::write_registry_json(w, registry, end);
        if (opt.trace) {
          w.key("trace");
          exp::write_trace_json(w, sink);
        }
        w.end_object();
        file << '\n';
        std::printf("wrote metrics registry JSON to %s\n", opt.metrics_json_path.c_str());
      }
    }
    return 0;
  }

  if (opt.trace || !opt.metrics_json_path.empty()) {
    std::fprintf(stderr,
                 "warning: --trace/--metrics-json apply to single runs; ignored "
                 "during a sweep\n");
  }

  // Node-count sweep.
  common::ThreadPool pool;
  const auto campaign =
      exp::sweep_node_count(opt.scenario, opt.sweep, opt.replications, opt.run, &pool);

  analysis::TextTable table({"n", "phi", "gamma", "total", "levels"});
  for (const auto& point : campaign.points) {
    table.add_row({std::to_string(point.n),
                   analysis::TextTable::fmt(point.metrics.mean("phi_rate")),
                   analysis::TextTable::fmt(point.metrics.mean("gamma_rate")),
                   analysis::TextTable::fmt(point.metrics.mean("total_rate")),
                   analysis::TextTable::fmt(point.metrics.mean("levels"), 3)});
  }
  std::printf("%s", table.to_string("scaling sweep").c_str());

  std::vector<double> ns, totals;
  campaign.series("total_rate", ns, totals);
  if (ns.size() >= 3) {
    const auto sel = analysis::select_model(ns, totals);
    std::printf("\n%s", sel.to_text().c_str());
  }

  if (!opt.csv_path.empty()) {
    std::ofstream file(opt.csv_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    analysis::CsvWriter csv(file, {"n", "metric", "mean", "ci95", "reps"});
    for (const auto& point : campaign.points) {
      for (const auto& name : point.metrics.names()) {
        const auto s = point.metrics.summary(name);
        csv.write_row({std::to_string(point.n), name, std::to_string(s.mean),
                       std::to_string(s.ci95), std::to_string(s.count)});
      }
    }
    std::printf("wrote %zu CSV rows to %s\n", csv.rows_written(), opt.csv_path.c_str());
  }
  return 0;
}
