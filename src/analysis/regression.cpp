#include "analysis/regression.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace manet::analysis {

namespace {

double mean_of(std::span<const double> xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Shared R^2 / RSS computation for a fitted predictor.
void finish(std::span<const double> xs, std::span<const double> ys, LinearFit& fit) {
  const double y_mean = mean_of(ys);
  double rss = 0.0, tss = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    rss += (ys[i] - pred) * (ys[i] - pred);
    tss += (ys[i] - y_mean) * (ys[i] - y_mean);
  }
  fit.rss = rss;
  fit.r2 = tss > 0.0 ? 1.0 - rss / tss : (rss == 0.0 ? 1.0 : 0.0);
}

}  // namespace

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  MANET_CHECK(xs.size() == ys.size());
  MANET_CHECK(xs.size() >= 2);
  const double x_mean = mean_of(xs);
  const double y_mean = mean_of(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - x_mean) * (xs[i] - x_mean);
    sxy += (xs[i] - x_mean) * (ys[i] - y_mean);
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = y_mean - fit.slope * x_mean;
  finish(xs, ys, fit);
  return fit;
}

LinearFit fit_proportional(std::span<const double> xs, std::span<const double> ys) {
  MANET_CHECK(xs.size() == ys.size());
  MANET_CHECK(!xs.empty());
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = 0.0;
  finish(xs, ys, fit);
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  MANET_CHECK(xs.size() == ys.size());
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    MANET_CHECK_MSG(xs[i] > 0.0 && ys[i] > 0.0, "power-law fit needs positive data");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return fit_linear(lx, ly);
}

}  // namespace manet::analysis
