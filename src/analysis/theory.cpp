#include "analysis/theory.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace manet::analysis {

double expected_levels(double n, const TheoryParams& p) {
  MANET_CHECK(n >= 1.0 && p.alpha > 1.0);
  return std::max(1.0, std::log(n) / std::log(p.alpha));
}

double aggregation_ck(Level k, const TheoryParams& p) {
  return std::pow(p.alpha, static_cast<double>(k));
}

double hop_count_hk(Level k, const TheoryParams& p) {
  return p.scale * std::sqrt(aggregation_ck(k, p));
}

double link_change_f0(const TheoryParams& p) {
  MANET_CHECK(p.tx_radius > 0.0);
  return p.scale * p.mu / p.tx_radius;
}

double migration_fk(Level k, const TheoryParams& p) {
  return link_change_f0(p) / std::sqrt(aggregation_ck(k, p));
}

double phi_k(Level k, double n, const TheoryParams& p) {
  // f_k * h_k * log n; with f_k = f_0 / h_k the h_k factors cancel, leaving
  // f_0 * log n independent of k — the paper's key cancellation.
  (void)k;
  return link_change_f0(p) * std::log(n);
}

double phi_total(double n, const TheoryParams& p) {
  return phi_k(1, n, p) * expected_levels(n, p);  // Theta(log^2 n)
}

double gamma_k(Level k, double n, const TheoryParams& p) {
  // g_k c_k h_k log n with g_k = 1 / (c_k h_k): the c_k h_k factors cancel.
  (void)k;
  return p.scale * std::log(n);
}

double gamma_total(double n, const TheoryParams& p) {
  return gamma_k(1, n, p) * expected_levels(n, p);
}

double level_link_density(Level k, const TheoryParams& p) {
  return p.scale / aggregation_ck(k, p);
}

double entries_per_node(double n, const TheoryParams& p) {
  return p.scale * std::max(0.0, expected_levels(n, p) - 1.0);
}

double recursion_time_bound(Level k, double q1, double p_max, const TheoryParams& p) {
  MANET_CHECK(k >= 2);
  const double denom = p_max * p_max + q1;
  if (denom <= 0.0) return 0.0;
  return (q1 / denom) * hop_count_hk(k - 2, p);
}

}  // namespace manet::analysis
