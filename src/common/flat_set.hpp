#pragma once

#include <vector>

#include "common/flat_map.hpp"

/// \file flat_set.hpp
/// Open-addressing hash set over integral keys — a key-only adapter of
/// common::FlatMap with the same guarantees: allocation-free steady-state
/// churn and deterministic (insertion-ordered) iteration. See flat_map.hpp
/// for the layout and the determinism contract.

namespace manet::common {

template <typename Key, typename Hash = IntegralHash>
class FlatSet {
  struct Unit {};
  using Map = FlatMap<Key, Unit, Hash>;

 public:
  Size size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  void reserve(Size n) { map_.reserve(n); }

  /// True when \p key was newly inserted.
  bool insert(const Key& key) { return map_.insert_or_assign(key, Unit{}); }
  bool contains(const Key& key) const noexcept { return map_.contains(key); }
  bool erase(const Key& key) { return map_.erase(key); }

  /// Live keys in ascending order (cold-path drain helper).
  void sorted_keys(std::vector<Key>& out) const { map_.sorted_keys(out); }

  /// Insertion-ordered iteration over live keys.
  class const_iterator {
   public:
    explicit const_iterator(typename Map::const_iterator it) : it_(it) {}
    const Key& operator*() const { return it_->key; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const const_iterator& other) const { return it_ == other.it_; }
    bool operator!=(const const_iterator& other) const { return it_ != other.it_; }

   private:
    typename Map::const_iterator it_;
  };

  const_iterator begin() const noexcept { return const_iterator(map_.begin()); }
  const_iterator end() const noexcept { return const_iterator(map_.end()); }

 private:
  Map map_;
};

}  // namespace manet::common
