#include "lm/query_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "lm/chlm.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

struct Fixture {
  std::vector<geom::Vec2> pts;
  graph::Graph g{0};
  cluster::Hierarchy h;
  ChlmService service;
};

Fixture make(Size n, std::uint64_t seed, Time now = 0.0) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  Fixture f;
  f.pts.resize(n);
  for (auto& p : f.pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  f.g = builder.build(f.pts);
  f.h = cluster::HierarchyBuilder().build(f.g);
  f.service.rebuild(f.h, now);
  return f;
}

/// Full (owner, level) reference answer grid from the engine's current epoch.
std::vector<QueryResult> capture(const QueryEngine& qe, Size n, Level top) {
  const Size width = top >= kFirstServedLevel ? top - kFirstServedLevel + 1 : 0;
  std::vector<QueryResult> out(n * width);
  for (NodeId owner = 0; owner < n; ++owner) {
    for (Level k = kFirstServedLevel; k <= top; ++k) {
      out[static_cast<Size>(owner) * width + (k - kFirstServedLevel)] = qe.lookup(owner, k);
    }
  }
  return out;
}

bool same(const QueryResult& a, const QueryResult& b) {
  return a.server == b.server && a.version == b.version && a.updated == b.updated &&
         a.found == b.found;
}

TEST(QueryEngine, UnpublishedEngineAnswersNotFound) {
  QueryEngine qe;
  EXPECT_EQ(qe.epoch(), 0u);
  const QueryResult r = qe.lookup(0, kFirstServedLevel);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.server, kInvalidNode);
}

TEST(QueryEngine, LookupMatchesChlmAssignment) {
  const auto f = make(300, 1, /*now=*/5.0);
  ASSERT_GE(f.service.top_level(), 2u);
  QueryEngine qe;
  qe.publish(f.h, f.service.database(), 5.0);
  EXPECT_EQ(qe.epoch(), 1u);
  for (NodeId owner = 0; owner < f.g.vertex_count(); ++owner) {
    for (Level k = kFirstServedLevel; k <= f.service.top_level(); ++k) {
      const QueryResult r = qe.lookup(owner, k);
      EXPECT_EQ(r.server, f.service.server_of(owner, k));
      ASSERT_TRUE(r.found);
      const auto* rec = f.service.database().find(r.server, owner, k);
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(r.version, rec->version);
      EXPECT_DOUBLE_EQ(r.updated, rec->updated);
      EXPECT_DOUBLE_EQ(r.updated, 5.0);
    }
  }
}

TEST(QueryEngine, OutOfRangeTargetsAnswerNotFound) {
  const auto f = make(200, 2);
  QueryEngine qe;
  qe.publish(f.h, f.service.database(), 0.0);
  const Level top = f.service.top_level();
  for (const auto& [owner, k] :
       {std::pair<NodeId, Level>{static_cast<NodeId>(f.g.vertex_count()), kFirstServedLevel},
        std::pair<NodeId, Level>{0, 0},
        std::pair<NodeId, Level>{0, 1},
        std::pair<NodeId, Level>{0, static_cast<Level>(top + 1)}}) {
    const QueryResult r = qe.lookup(owner, k);
    EXPECT_FALSE(r.found) << "owner " << owner << " level " << k;
    EXPECT_EQ(r.server, kInvalidNode);
  }
}

TEST(QueryEngine, BatchMatchesScalarLookups) {
  const auto f = make(250, 3, 1.5);
  QueryEngine qe;
  qe.publish(f.h, f.service.database(), 1.5);
  common::Xoshiro256 rng(0xBA7C4);
  std::vector<NodeId> owners;
  for (Size i = 0; i < 512; ++i) {
    // Mix in out-of-range owners: the batch path must degrade identically.
    owners.push_back(static_cast<NodeId>(common::uniform_index(rng, f.g.vertex_count() + 8)));
  }
  std::vector<QueryResult> batch(owners.size());
  for (Level k = kFirstServedLevel; k <= f.service.top_level(); ++k) {
    const Size found = qe.lookup_batch(owners, k, batch);
    Size expected_found = 0;
    for (Size i = 0; i < owners.size(); ++i) {
      const QueryResult r = qe.lookup(owners[i], k);
      EXPECT_TRUE(same(batch[i], r)) << "owner " << owners[i] << " level " << k;
      expected_found += r.found ? 1 : 0;
    }
    EXPECT_EQ(found, expected_found);
  }
}

TEST(QueryEngine, RepublishFlipsEpochAndAnswers) {
  const auto fa = make(220, 4, 1.0);
  const auto fb = make(220, 5, 2.0);
  QueryEngine qe;
  qe.publish(fa.h, fa.service.database(), 1.0);
  const auto a = capture(qe, 220, fa.service.top_level());
  qe.publish(fb.h, fb.service.database(), 2.0);
  EXPECT_EQ(qe.epoch(), 2u);
  // Post-flip answers are exactly the B state's and differ somewhere from A.
  Size diffs = 0;
  const Level top = std::min(fa.service.top_level(), fb.service.top_level());
  for (NodeId owner = 0; owner < 220; ++owner) {
    for (Level k = kFirstServedLevel; k <= top; ++k) {
      const QueryResult r = qe.lookup(owner, k);
      EXPECT_EQ(r.server, fb.service.server_of(owner, k));
      EXPECT_DOUBLE_EQ(r.updated, 2.0);
      const Size wa = fa.service.top_level() - kFirstServedLevel + 1;
      if (!same(r, a[static_cast<Size>(owner) * wa + (k - kFirstServedLevel)])) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0u);
  // A third publish cycles back onto the first slot without issue.
  qe.publish(fa.h, fa.service.database(), 3.0);
  EXPECT_EQ(qe.epoch(), 3u);
  EXPECT_EQ(qe.lookup(0, kFirstServedLevel).server, fa.service.server_of(0, kFirstServedLevel));
}

/// The tentpole concurrency contract: while the writer flips epochs between
/// two published states, every concurrent answer equals the pre- or the
/// post-flip reference exactly — never a torn mix of the two. Run at 1, 2
/// and 8 reader threads (and under TSan via MANET_SANITIZE=thread).
void churn_torn_check(Size reader_threads) {
  const auto fa = make(200, 6, 1.0);
  const auto fb = make(200, 7, 2.0);
  const Level top = std::min(fa.service.top_level(), fb.service.top_level());
  ASSERT_GE(top, kFirstServedLevel);
  const Size width = top - kFirstServedLevel + 1;

  QueryEngine qe;
  qe.publish(fa.h, fa.service.database(), 1.0);
  const auto answers_a = capture(qe, 200, top);
  qe.publish(fb.h, fb.service.database(), 2.0);
  const auto answers_b = capture(qe, 200, top);

  std::atomic<bool> stop{false};
  std::atomic<Size> violations{0};
  std::vector<std::thread> readers;
  for (Size t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t q = static_cast<std::uint64_t>(t) << 32;
      Size local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 256; ++i, ++q) {
          const auto owner = static_cast<NodeId>((q * 2654435761ULL) % 200);
          const Level k = kFirstServedLevel + static_cast<Level>(q % width);
          const QueryResult r = qe.lookup(owner, k);
          const Size idx = static_cast<Size>(owner) * width + (k - kFirstServedLevel);
          if (!same(r, answers_a[idx]) && !same(r, answers_b[idx])) ++local;
        }
      }
      violations.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (int flip = 0; flip < 120; ++flip) {
    if (flip % 2 == 0) {
      qe.publish(fa.h, fa.service.database(), 1.0);
    } else {
      qe.publish(fb.h, fb.service.database(), 2.0);
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(QueryEngine, EpochFlipNeverTearsOneReader) { churn_torn_check(1); }
TEST(QueryEngine, EpochFlipNeverTearsTwoReaders) { churn_torn_check(2); }
TEST(QueryEngine, EpochFlipNeverTearsEightReaders) { churn_torn_check(8); }

TEST(QueryEngine, BatchAnswersAreMutuallyConsistentUnderChurn) {
  // A batch pins one epoch: all of its answers must come from the same
  // reference state, not merely each from either state.
  const auto fa = make(180, 8, 1.0);
  const auto fb = make(180, 9, 2.0);
  const Level top = std::min(fa.service.top_level(), fb.service.top_level());
  ASSERT_GE(top, kFirstServedLevel);

  QueryEngine qe;
  qe.publish(fa.h, fa.service.database(), 1.0);
  const auto answers_a = capture(qe, 180, top);
  qe.publish(fb.h, fb.service.database(), 2.0);
  const auto answers_b = capture(qe, 180, top);
  const Size width = top - kFirstServedLevel + 1;

  std::atomic<bool> stop{false};
  std::atomic<Size> violations{0};
  std::thread reader([&] {
    std::vector<NodeId> owners(64);
    std::vector<QueryResult> batch(owners.size());
    std::uint64_t q = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& o : owners) o = static_cast<NodeId>(((q++) * 2654435761ULL) % 180);
      qe.lookup_batch(owners, kFirstServedLevel, batch);
      bool all_a = true, all_b = true;
      for (Size i = 0; i < owners.size(); ++i) {
        const Size idx = static_cast<Size>(owners[i]) * width;
        all_a = all_a && same(batch[i], answers_a[idx]);
        all_b = all_b && same(batch[i], answers_b[idx]);
      }
      if (!all_a && !all_b) violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int flip = 0; flip < 120; ++flip) {
    if (flip % 2 == 0) {
      qe.publish(fa.h, fa.service.database(), 1.0);
    } else {
      qe.publish(fb.h, fb.service.database(), 2.0);
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace manet::lm
