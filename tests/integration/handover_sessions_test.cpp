/// Session-riding handover FSM integration contract:
///  1. zero-cost: sessions off leaves run_simulation bit-identical (no new
///     RNG draws, no metric drift) — the plane is opt-in;
///  2. fault-free invisibility: with no faults every handover completes
///     within its spawn tick and sessions never misroute or stall;
///  3. edge coverage: one seeded loss + churn run reaches every FSM failure
///     edge — timeout, retry (and retry exhaustion), target-server crash,
///     rollback, rollback failure — with user-visible misroutes and
///     interruption windows;
///  4. determinism: faulted session runs aggregate bit-identically across
///     1 / 2 / 8 worker threads.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "exp/montecarlo.hpp"
#include "exp/simulation.hpp"
#include "sim/trace.hpp"

namespace manet::exp {
namespace {

ScenarioConfig session_scenario() {
  ScenarioConfig cfg;
  cfg.n = 96;
  cfg.seed = 20020415;
  cfg.warmup = 4.0;
  cfg.duration = 24.0;
  cfg.sessions = true;
  return cfg;
}

ScenarioConfig faulted_scenario() {
  ScenarioConfig cfg = session_scenario();
  cfg.fault.loss = 0.3;
  cfg.fault.crash_rate = 0.03;
  cfg.fault.mean_downtime = 5.0;
  return cfg;
}

RunOptions lean_options() {
  RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  return opts;
}

TEST(HandoverSessions, SessionsOffLeavesRunsBitIdentical) {
  ScenarioConfig off = session_scenario();
  off.sessions = false;
  const auto a = run_simulation(off, lean_options());
  const auto b = run_simulation(off, lean_options());
  ASSERT_EQ(a.values.size(), b.values.size());
  for (Size i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first);
    EXPECT_EQ(a.values[i].second, b.values[i].second);
  }
  EXPECT_FALSE(a.has("handover_started"));
  EXPECT_FALSE(a.has("session_packets"));
}

TEST(HandoverSessions, SessionPlaneDoesNotPerturbSharedMetrics) {
  // The session/FSM plane rides its own derived RNG streams: every metric of
  // a plain run must survive bit-identically when the plane is attached.
  ScenarioConfig off = session_scenario();
  off.sessions = false;
  const auto bare = run_simulation(off, lean_options());
  const auto armed = run_simulation(session_scenario(), lean_options());
  for (const auto& [name, value] : bare.values) {
    ASSERT_TRUE(armed.has(name)) << "metric " << name << " lost under session plane";
    EXPECT_EQ(value, armed.get(name)) << "metric " << name << " perturbed";
  }
}

TEST(HandoverSessions, FaultFreeBaselineIsHandoverInvisible) {
  const auto m = run_simulation(session_scenario(), lean_options());
  EXPECT_GT(m.get("handover_started"), 0.0);
  // Zero signalling loss, nobody down: every procedure completes within its
  // spawn tick — the paper's instant-commit idealization.
  EXPECT_EQ(m.get("handover_completed"), m.get("handover_started"));
  EXPECT_EQ(m.get("handover_in_flight"), 0.0);
  EXPECT_EQ(m.get("handover_timeouts"), 0.0);
  EXPECT_EQ(m.get("handover_rollbacks"), 0.0);
  EXPECT_EQ(m.get("handover_mean_completion"), 0.0);
  EXPECT_GT(m.get("session_packets"), 0.0);
  EXPECT_EQ(m.get("session_misrouted"), 0.0);
  EXPECT_EQ(m.get("session_lost"), 0.0);
  EXPECT_EQ(m.get("session_interruptions"), 0.0);
  // Never interrupted -> the p99 is absent (NaN sentinel), not zero.
  EXPECT_FALSE(m.has("session_interruption_p99"));
}

TEST(HandoverSessions, SeededFaultsReachEveryFsmFailureEdge) {
  const auto m = run_simulation(faulted_scenario(), lean_options());

  // Control-plane edges, every one exercised by this single seeded run.
  EXPECT_GT(m.get("handover_started"), 0.0);
  EXPECT_GT(m.get("handover_completed"), 0.0);
  EXPECT_GT(m.get("handover_timeouts"), 0.0) << "timeout edge";
  EXPECT_GT(m.get("handover_retries"), 0.0) << "retry edge";
  // Exhaustion: a timeout that cannot retry rolls back instead.
  EXPECT_GT(m.get("handover_timeouts"), m.get("handover_retries"))
      << "retry-exhaustion edge";
  EXPECT_GT(m.get("handover_rollbacks"), 0.0) << "rollback edge";
  EXPECT_GT(m.get("handover_target_crashes"), 0.0) << "target-server crash edge";
  EXPECT_GT(m.get("handover_rollback_failures"), 0.0)
      << "rollback-failure edge (old server also dark)";
  EXPECT_GT(m.get("handover_signal_packets"), 0.0);

  // ...and their user-visible consequences on the data plane.
  EXPECT_GT(m.get("session_misrouted"), 0.0) << "stale/rolled-back resolutions misroute";
  EXPECT_GT(m.get("session_misroute_extra"), 0.0);
  EXPECT_GT(m.get("session_interruptions"), 0.0);
  EXPECT_GT(m.get("session_interruption_time"), 0.0);
  EXPECT_GT(m.get("session_interruption_p99"), 0.0);
  EXPECT_GT(m.get("session_lost"), 0.0);
  // The network still mostly works: losses are the exception, not the rule.
  EXPECT_LT(m.get("session_loss_rate"), 0.5);
  EXPECT_GT(m.get("session_delivered"), m.get("session_lost"));
}

TEST(HandoverSessions, TraceCarriesTypedHandoverEvents) {
  sim::TraceSink sink(sim::TraceSink::Config{65536, 1});
  RunOptions opts = lean_options();
  opts.trace = &sink;
  run_simulation(faulted_scenario(), opts);

  const auto count = [&](sim::TraceEventType type) {
    return sink.type_counts()[static_cast<Size>(type)];
  };
  EXPECT_GT(count(sim::TraceEventType::kHandoverStart), 0u);
  EXPECT_GT(count(sim::TraceEventType::kHandoverComplete), 0u);
  EXPECT_GT(count(sim::TraceEventType::kHandoverRetry), 0u);
  EXPECT_GT(count(sim::TraceEventType::kHandoverRollback), 0u);
  EXPECT_GT(count(sim::TraceEventType::kHandoverFail), 0u);
}

TEST(HandoverSessions, FaultedSessionRunsAreDeterministicAcrossThreadCounts) {
  const ScenarioConfig cfg = faulted_scenario();
  const Size reps = 4;

  std::vector<std::pair<std::string, double>> baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    common::ThreadPool pool(threads);
    const auto agg = run_replications(cfg, reps, lean_options(), &pool);
    std::vector<std::pair<std::string, double>> flat;
    for (const auto& name : agg.names()) {
      const auto s = agg.summary(name);
      flat.emplace_back(name + ".mean", s.mean);
      flat.emplace_back(name + ".ci95", s.ci95);
    }
    if (baseline.empty()) {
      baseline = std::move(flat);
      EXPECT_FALSE(baseline.empty());
      continue;
    }
    ASSERT_EQ(baseline.size(), flat.size()) << threads << " threads";
    for (Size i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].first, flat[i].first);
      EXPECT_EQ(baseline[i].second, flat[i].second)
          << baseline[i].first << " drifted at " << threads << " threads";
    }
  }
}

TEST(HandoverSessions, SessionStatsReachTheMetricsRegistry) {
  common::MetricsRegistry registry;
  RunOptions opts = lean_options();
  opts.metrics = &registry;
  run_simulation(faulted_scenario(), opts);

  EXPECT_GT(registry.counter("session.packets").value(), 0u);
  EXPECT_GT(registry.counter("session.delivered").value(), 0u);
  EXPECT_GT(registry.counter("session.misrouted").value(), 0u);
  EXPECT_GT(registry.counter("lm.handover.started").value(), 0u);
  EXPECT_GT(registry.counter("lm.handover.rollbacks").value(), 0u);
  const auto* interruption = registry.find_histogram("session.interruption_s");
  ASSERT_NE(interruption, nullptr);
  EXPECT_GT(interruption->count(), 0u);
  const auto* completion = registry.find_histogram("lm.handover.completion_s");
  ASSERT_NE(completion, nullptr);
  EXPECT_GT(completion->count(), 0u);
}

}  // namespace
}  // namespace manet::exp
