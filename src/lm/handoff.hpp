#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"
#include "lm/chlm.hpp"
#include "lm/reliable.hpp"
#include "net/hop_oracle.hpp"
#include "sim/shard.hpp"
#include "sim/trace.hpp"

/// \file handoff.hpp
/// The LM handoff engine — the measurement core of this reproduction.
///
/// Between consecutive hierarchy snapshots the CHLM server assignment table
/// is recomputed; every (owner, level) entry whose serving node changed is a
/// *handoff*: the old server transfers the entry to the new one, costing
/// hops(old, new) packet transmissions under strict hierarchical routing.
/// Each move is attributed:
///   phi_k   (paper Section 4)  — the owner's level-k cluster changed, i.e.
///           the owner migrated across a level-k boundary;
///   gamma_k (paper Section 5)  — the owner's level-k cluster is unchanged
///           but the assignment moved because the cluster's internal
///           composition changed (link change, election, rejection, ...).
/// Summing per-level rates reproduces the paper's phi = Theta(log^2 |V|) and
/// gamma = Theta(log^2 |V|) claims (experiments E8/E9).

namespace manet::lm {

/// How to price one entry transfer.
enum class HopMetric {
  kBfsExact,  ///< exact shortest-path hops on the level-0 graph (default)
  kUnit,      ///< 1 per moved entry (message count, not packet count)
};

struct HandoffConfig {
  ServerSelectConfig select;
  HopMetric metric = HopMetric::kBfsExact;
};

/// Consumer of the engine's committed entry events — the handover FSM plane
/// (lm/handover_fsm.hpp) rides on these. The engine stays the measurement
/// core: it commits every move instantly and prices it as before; observers
/// only *watch* (they may not mutate the database). Detached (nullptr, the
/// default) the engine is bit-identical to a build without this hook.
class HandoverObserver {
 public:
  virtual ~HandoverObserver() = default;
  /// A committed (owner, k) entry move from -> to priced at \p hops;
  /// \p migrated carries the phi/gamma attribution.
  virtual void on_entry_move(NodeId owner, Level k, NodeId from, NodeId to, Time t,
                             bool migrated, PacketCount hops) = 0;
  /// The (owner, k) entry went stale: transfer failed or its holder crashed.
  /// \p holder is the node still holding an out-of-date copy, kInvalidNode
  /// when the copy is gone entirely.
  virtual void on_entry_stale(NodeId owner, Level k, NodeId holder, Time t) = 0;
  /// A stale (owner, k) entry was re-delivered to server \p server.
  virtual void on_entry_repaired(NodeId owner, Level k, NodeId server, Time t) = 0;
  /// Level k retired for \p owner (the hierarchy lost the level); any
  /// in-flight procedure for the entry is moot.
  virtual void on_entry_retired(NodeId owner, Level k, Time t) = 0;
};

/// Accumulated overhead at one hierarchy level.
struct LevelOverhead {
  PacketCount phi_packets = 0;
  PacketCount gamma_packets = 0;
  Size phi_entries = 0;    ///< entry moves attributed to migration
  Size gamma_entries = 0;  ///< entry moves attributed to reorganization
};

class HandoffEngine {
 public:
  explicit HandoffEngine(HandoffConfig config = HandoffConfig{});

  /// Install the initial snapshot at time \p t. No cost is charged (initial
  /// registration is location *registration* overhead, covered by the
  /// companion papers [16][17], not handoff).
  void prime(const cluster::Hierarchy& h, Time t);

  struct TickResult {
    PacketCount phi_packets = 0;
    PacketCount gamma_packets = 0;
    Size entries_moved = 0;
  };

  /// Advance to snapshot \p h (level-0 graph \p g0 prices the transfers) at
  /// time \p t; returns this tick's cost and accumulates totals.
  TickResult update(const cluster::Hierarchy& h, const graph::Graph& g0, Time t);

  /// Advance to \p t when the caller has proven the hierarchy is unchanged
  /// since the last update()/prime() (the change-gated tick pipeline's skip
  /// path). Equivalent to update() with an identical snapshot — no entry
  /// moves, no migration counts — without recomputing the assignment table.
  TickResult advance_unchanged(Time t);

  // --- Accumulated results ---
  Size node_count() const { return node_count_; }
  Time elapsed() const { return last_time_ - start_time_; }

  /// Per-level ledger; index by level k (entries 0 and 1 stay zero).
  const std::vector<LevelOverhead>& per_level() const { return levels_; }

  PacketCount total_phi() const;
  PacketCount total_gamma() const;

  /// Packet transmissions per node per second — the paper's overhead unit.
  double phi_rate() const;
  double gamma_rate() const;
  double phi_rate_at(Level k) const;
  double gamma_rate_at(Level k) const;

  /// Level-k cluster membership changes observed (f_k numerator, E5):
  /// migration_rate(k) = changes / (node_count * elapsed).
  Size migration_count(Level k) const;
  double migration_rate(Level k) const;

  /// Entry moves whose endpoints were disconnected at transfer time (the
  /// transfer is counted as an entry move with zero packets; should be 0 in
  /// connected scenarios).
  Size unreachable_transfers() const { return unreachable_; }

  /// Registrations/retirements caused by the hierarchy gaining/losing
  /// levels (priced like gamma transfers owner<->server).
  Size level_churn_entries() const { return level_churn_; }

  /// The maintained distributed database (kept consistent with the current
  /// assignment table; integration tests verify this invariant).
  const LmDatabase& database() const { return db_; }

  // --- Observability hooks (both optional; nullptr = off, zero cost) ---

  /// Publish live counters/gauges into \p registry (see docs/ARCHITECTURE.md
  /// "Observability" for the lm.* instrument names). phi_k / gamma_k / f_k
  /// become queryable *during* the run, not just via OverheadReport.
  void set_metrics(common::MetricsRegistry* registry);

  /// Emit one typed TraceEvent per entry transfer / level-churn move.
  void set_trace(sim::TraceSink* trace) noexcept { trace_ = trace; }

  /// Feed committed entry moves / stale transitions / repairs to the
  /// handover FSM plane (nullptr = off, zero cost).
  void set_handover_observer(HandoverObserver* observer) noexcept {
    observer_ = observer;
  }

  // --- Read-only assignment view (the locator plane resolves through these;
  // they never touch the ledgers) ---

  /// Current assignment server for (owner, k); kInvalidNode when the level
  /// is not served or the engine is unprimed.
  NodeId current_server(NodeId owner, Level k) const {
    if (!primed_ || owner >= node_count_ || k < kFirstServedLevel ||
        static_cast<Size>(k - kFirstServedLevel) >= prev_.served_width) {
      return kInvalidNode;
    }
    return prev_.server(owner, k);
  }
  Level top_level() const { return prev_.top; }

  /// True when the (owner, k) entry is flagged stale (lost or out of date).
  bool is_stale(NodeId owner, Level k) const {
    return stale_.find(stale_key(owner, k)) != stale_.end();
  }
  /// Node still holding the out-of-date copy of a stale entry, kInvalidNode
  /// when there is none (or the entry is not stale).
  NodeId stale_holder(NodeId owner, Level k) const {
    const auto it = stale_.find(stale_key(owner, k));
    return it != stale_.end() ? it->second.holder : kInvalidNode;
  }

  /// Route transfer pricing through the landmark hop oracle
  /// (net/hop_oracle.hpp) instead of per-pair bidirectional BFS: each
  /// update() then pays a few BFS sweeps to prepare landmark bounds and
  /// every priced move runs goal-directed A* on them. The oracle is exact on
  /// any graph (the bounds are triangle-inequality facts about the pricing
  /// graph itself), so enabling it never changes a priced value — the
  /// disabled default stays the bit-identity reference.
  void set_fast_pricing(bool on) noexcept { fast_pricing_ = on; }

  /// Shard the per-tick pricing work over \p executor (nullptr = sequential,
  /// the default). update() then pre-scans the snapshot diff for the exact
  /// set of (from, to) endpoint pairs its entry-move loop will price,
  /// computes their hop distances in parallel (each shard with a private
  /// net::HopOracle::Scratch), and the sequential loop reads the answers
  /// from the cache. Hop queries are exact and symmetric, so the cache can
  /// never change a priced value — ledgers, traces, database versions and
  /// observer callbacks are emitted by the unchanged sequential loop in the
  /// unchanged order. Inert while an ARQ layer is attached (the lossy path
  /// consumes per-transfer RNG in loop order, which must stay sequential).
  void set_parallel(sim::ShardExecutor* executor) noexcept { par_ = executor; }

  // --- Resilience plane (fault injection; see sim/fault.hpp) ---
  //
  // With an ARQ layer attached, every entry transfer traverses the lossy
  // control channel: delivered transfers charge the ideal hops into the
  // phi/gamma ledgers exactly as before plus their retransmissions into the
  // retx ledgers; transfers that exhaust the retry budget FAIL and leave the
  // (owner, level) entry stale until the repair path fixes it. Detached
  // (nullptr, the default) the engine is bit-identical to the ideal build.

  /// Accumulated fault-plane accounting. All zero while no ARQ is attached.
  struct ResilienceStats {
    PacketCount phi_retx = 0;        ///< retransmissions on phi-attributed moves
    PacketCount gamma_retx = 0;      ///< retransmissions on gamma-attributed moves
    PacketCount repair_packets = 0;  ///< owner re-registration + audit traffic
    Size failed_transfers = 0;       ///< budget-exhausted entry moves
    Size repairs = 0;                ///< stale entries successfully repaired
    double repair_time_sum = 0.0;    ///< sum of (repair time - stale-since)
    Size entries_dropped = 0;        ///< db entries wiped by node crashes
  };

  /// Attach (or detach with nullptr) the unreliable transfer path. \p down
  /// points at per-node down flags owned by the caller and refreshed every
  /// tick; it must outlive the engine's use (nullptr = nobody is ever down).
  void set_resilience(ReliableTransfer* arq, const std::vector<std::uint8_t>* down);

  /// Node \p v crashed at time \p t: every entry stored at v is wiped and
  /// flagged for repair.
  void on_node_down(NodeId v, Time t);

  /// Node \p v rejoined at time \p t: it re-registers with each of its
  /// current servers over the lossy channel (repair traffic).
  void on_node_up(const graph::Graph& g0, NodeId v, Time t);

  struct RepairResult {
    Size repaired = 0;
    Size remaining = 0;
    PacketCount packets = 0;
  };

  /// Periodic server audit + owner re-registration: walk the stale set and
  /// re-deliver each entry to its current assignment server. Failed repairs
  /// stay stale and are retried at the next audit.
  RepairResult audit_repair(const graph::Graph& g0, Time t);

  /// Query-consistency probe: sample \p samples alive owners; a query
  /// succeeds when at least one served level's entry is present at its
  /// assignment server and that server is up. Returns the success fraction
  /// (1.0 when nothing is served yet).
  double query_probe(common::Xoshiro256& rng, Size samples) const;

  Size stale_entries() const { return stale_.size(); }
  const ResilienceStats& resilience() const { return resil_; }
  double mean_time_to_repair() const {
    return resil_.repairs > 0 ? resil_.repair_time_sum / static_cast<double>(resil_.repairs)
                              : 0.0;
  }
  double phi_retx_rate() const;
  double gamma_retx_rate() const;

 private:
  /// Capture assignment + ancestor tables for a snapshot. Both tables are
  /// flat row-major (one contiguous buffer each) so per-tick capture reuses
  /// the scratch snapshot's capacity instead of allocating n nested vectors.
  struct Snapshot {
    Level top = 0;
    Size served_width = 0;         ///< levels carrying a server: top - 1 when top >= 2
    std::vector<NodeId> servers;   ///< [owner * served_width + (k - 2)], k in [2, top]
    std::vector<NodeId> anc_ids;   ///< [owner * top + (k - 1)], k in [1, top]
    NodeId server(NodeId owner, Level k) const {
      return servers[static_cast<Size>(owner) * served_width + (k - kFirstServedLevel)];
    }
    NodeId anc_id(NodeId owner, Level k) const {
      return anc_ids[static_cast<Size>(owner) * top + (k - 1)];
    }
  };
  void capture(const cluster::Hierarchy& h, Snapshot& snap) const;

  LevelOverhead& ledger(Level k);
  PacketCount price(const graph::Graph& g0, NodeId from, NodeId to);

  /// Exact BFS hop count; graph::kUnreachable when no path exists. Unlike
  /// price() this never touches the unreachable ledger.
  std::uint32_t hops_between(const graph::Graph& g0, NodeId from, NodeId to);
  bool is_down(NodeId v) const {
    return down_ != nullptr && v < down_->size() && (*down_)[v] != 0;
  }
  /// One reliable delivery over from->to: unroutable when either endpoint is
  /// down or no path exists.
  TransferOutcome attempt_transfer(const graph::Graph& g0, NodeId from, NodeId to);

  HandoffConfig config_;
  Size node_count_ = 0;
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  bool primed_ = false;

  Snapshot prev_;
  Snapshot next_scratch_;  ///< swap target for update(); keeps buffer capacity
  common::ArenaScratch arena_;  ///< per-tick transient allocations (rewound each update)
  std::vector<LevelOverhead> levels_;
  std::vector<Size> migrations_;  ///< per level k
  Size unreachable_ = 0;
  Size level_churn_ = 0;
  LmDatabase db_;
  std::uint64_t version_counter_ = 0;

  // Resilience plane (inert until set_resilience attaches an ARQ layer).
  struct StaleEntry {
    NodeId holder = kInvalidNode;  ///< node still holding the entry, if any
    Time since = 0.0;              ///< when the entry went stale
  };
  /// Same packed layout as LmDatabase::key (and the same aliasing hazard:
  /// the level must fit the low 16 bits).
  static std::uint64_t stale_key(NodeId owner, Level k) {
    MANET_CHECK_MSG(k < (Level{1} << 16), "level out of packed-key range");
    return (static_cast<std::uint64_t>(owner) << 16) | k;
  }
  /// Ordered so audits iterate deterministically.
  std::map<std::uint64_t, StaleEntry> stale_;
  ReliableTransfer* arq_ = nullptr;
  const std::vector<std::uint8_t>* down_ = nullptr;
  ResilienceStats resil_;

  /// Reusable bidirectional BFS workspace: transfer endpoints are typically
  /// a few hops apart, so a pair query explores a small neighborhood instead
  /// of sweeping the whole graph per unique source.
  graph::BfsPairScratch pair_bfs_;

  // Landmark pricing oracle (inert until set_fast_pricing(true)). Re-bound
  // to the pricing graph at each update(); audit_repair() and on_node_up()
  // price against the same graph as the last update() by the caller's tick
  // structure, so the binding stays valid between updates.
  net::HopOracle oracle_;
  bool fast_pricing_ = false;

  /// Pre-computed hop distances for this update()'s pricing queries, keyed
  /// by canonical packed pair (min << 32 | max), sorted for binary search.
  /// Filled by batch_price_pairs() when an executor is attached; cleared at
  /// the end of every update() so between-tick callers (audit_repair,
  /// on_node_up) never read answers computed on an older graph.
  void batch_price_pairs(const graph::Graph& g0, const Snapshot& next);
  static std::uint64_t pack_pair(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  }
  sim::ShardExecutor* par_ = nullptr;
  std::vector<net::HopOracle::Scratch> par_scratch_;  ///< one per shard
  std::vector<std::uint64_t> price_keys_;
  std::vector<std::uint32_t> price_vals_;

  // Observability (resolved once in set_metrics; hot path is pointer adds).
  common::MetricsRegistry* metrics_ = nullptr;
  sim::TraceSink* trace_ = nullptr;
  HandoverObserver* observer_ = nullptr;
  common::Counter* phi_packets_c_ = nullptr;
  common::Counter* gamma_packets_c_ = nullptr;
  common::Counter* phi_entries_c_ = nullptr;
  common::Counter* gamma_entries_c_ = nullptr;
  common::Counter* level_churn_c_ = nullptr;
  common::Counter* unreachable_c_ = nullptr;
  common::RateMeter* entry_moves_rate_ = nullptr;
  common::Histogram* transfer_hops_h_ = nullptr;
  std::vector<common::Counter*> phi_level_c_;    ///< lm.phi_packets.k
  std::vector<common::Counter*> gamma_level_c_;  ///< lm.gamma_packets.k
  std::vector<common::Counter*> migration_level_c_;  ///< lm.migrations.k

  common::Counter* level_counter(std::vector<common::Counter*>& cache, const char* base,
                                 Level k);
  void publish_rates();
};

}  // namespace manet::lm
