#pragma once

#include <vector>

#include "common/metrics.hpp"
#include "graph/graph.hpp"
#include "sim/shard.hpp"

/// \file link_tracker.hpp
/// Link-state change detection between consecutive topology snapshots.
///
/// The paper's eq. (4) claims the per-node frequency of level-0 link state
/// change events is f_0 = Theta(1) under random waypoint at constant density.
/// LinkTracker diffs canonical edge lists of consecutive snapshots, reports
/// which links came up / went down, and accumulates the running event rate
/// needed by experiment E4.

namespace manet::net {

struct LinkDelta {
  std::vector<graph::Edge> up;    ///< links present now, absent before
  std::vector<graph::Edge> down;  ///< links absent now, present before

  Size event_count() const { return up.size() + down.size(); }
};

/// Sharded set-difference over canonical sorted edge lists: `a \ b`,
/// bit-identical to std::set_difference at any thread count. The left list
/// is cut into contiguous shard slices; each shard narrows the right list
/// to the value range its slice can cancel against (binary search) and
/// diffs independently; outputs concatenate in shard index order, which is
/// exactly the sequential output order. Owns per-shard scratch so
/// steady-state diffs allocate nothing.
class ShardedEdgeDiff {
 public:
  /// Append a \ b to \p out (not cleared), sharded over \p executor.
  void run(std::span<const graph::Edge> a, std::span<const graph::Edge> b,
           sim::ShardExecutor& executor, std::vector<graph::Edge>& out);

 private:
  std::vector<std::vector<graph::Edge>> shard_out_;
};

class LinkTracker {
 public:
  /// Prime the tracker with the initial topology at time \p t0.
  LinkTracker(const graph::Graph& initial, Time t0);

  /// Diff \p current (at time \p t) against the previous snapshot, update
  /// running counters, and return the delta. \p t must be >= the prior time.
  LinkDelta update(const graph::Graph& current, Time t);

  /// Same, writing into \p delta (cleared first, capacity retained). The
  /// per-tick loop uses this so steady-state link diffing is allocation-free.
  void update_into(const graph::Graph& current, Time t, LinkDelta& delta);

  /// Advance to \p t when the caller has proven the edge set is unchanged
  /// (the change-gated tick pipeline's skip path): no diff, no copy —
  /// identical end state to update() against the same graph.
  void advance_unchanged(Time t);

  /// Total link-state change events observed so far.
  Size total_events() const { return total_events_; }

  /// Observation window covered so far (seconds).
  Time elapsed() const { return last_time_ - start_time_; }

  /// f_0 estimate: events per node per second. A link event involves two
  /// endpoints; following the paper's accounting (eq. (4): |E| * mu / (|V| *
  /// R_TX) events "per node"), each link event is counted once and divided
  /// by |V|.
  double events_per_node_per_second() const;

  /// Publish live counters (net.link_up / net.link_down) and the net.f0
  /// gauge into \p registry on every update. nullptr turns publishing off.
  void set_metrics(common::MetricsRegistry* registry);

  /// Shard the two edge-set differences of update_into() over \p executor
  /// (nullptr = sequential, the default). The sharded diff is bit-identical
  /// to the sequential one — per-shard outputs concatenate in shard index
  /// order — so attaching an executor never changes a delta.
  void set_parallel(sim::ShardExecutor* executor) noexcept { par_ = executor; }

 private:
  std::vector<graph::Edge> prev_edges_;
  Size node_count_;
  Time start_time_;
  Time last_time_;
  Size total_events_ = 0;
  common::MetricsRegistry* metrics_ = nullptr;
  common::Counter* up_c_ = nullptr;
  common::Counter* down_c_ = nullptr;
  sim::ShardExecutor* par_ = nullptr;
  ShardedEdgeDiff diff_;
};

/// Set-difference of two canonical sorted edge lists (a \ b).
std::vector<graph::Edge> edge_difference(std::span<const graph::Edge> a,
                                         std::span<const graph::Edge> b);

/// Same, appending to \p out (not cleared; callers clear to reuse capacity).
void edge_difference_into(std::span<const graph::Edge> a, std::span<const graph::Edge> b,
                          std::vector<graph::Edge>& out);

}  // namespace manet::net
