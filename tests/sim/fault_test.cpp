#include "sim/fault.hpp"

#include <gtest/gtest.h>

namespace manet::sim {
namespace {

TEST(FaultConfig, DefaultIsOffAndDescribesAsOff) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.lossy());
  EXPECT_FALSE(cfg.churn());
  EXPECT_FALSE(cfg.outage());
  EXPECT_FALSE(cfg.enabled());
  EXPECT_EQ(cfg.describe(), "off");
}

TEST(FaultConfig, AnyProcessEnables) {
  FaultConfig loss;
  loss.loss = 0.05;
  EXPECT_TRUE(loss.lossy());
  EXPECT_TRUE(loss.enabled());

  FaultConfig burst;
  burst.burst_loss = 0.5;
  EXPECT_TRUE(burst.lossy());

  FaultConfig churn;
  churn.crash_rate = 0.01;
  EXPECT_TRUE(churn.churn());
  EXPECT_TRUE(churn.enabled());

  FaultConfig outage;
  outage.outage_radius = 5.0;
  outage.outage_duration = 10.0;
  EXPECT_TRUE(outage.outage());
  EXPECT_TRUE(outage.enabled());

  FaultConfig forced;
  forced.force = true;
  EXPECT_TRUE(forced.enabled());
  EXPECT_FALSE(forced.lossy());
  EXPECT_NE(forced.describe(), "");
}

TEST(FaultPlan, NoChurnMeansEmptyPlan) {
  FaultConfig cfg;
  cfg.loss = 0.1;  // lossy but no churn
  const auto plan = FaultPlan::build(cfg, 16, 0.0, 100.0, 42);
  ASSERT_EQ(plan.downtime.size(), 16u);
  for (const auto& ivs : plan.downtime) EXPECT_TRUE(ivs.empty());
}

TEST(FaultPlan, SameSeedSamePlanDifferentSeedDiffers) {
  FaultConfig cfg;
  cfg.crash_rate = 0.05;
  cfg.mean_downtime = 5.0;
  const auto a = FaultPlan::build(cfg, 64, 10.0, 200.0, 7);
  const auto b = FaultPlan::build(cfg, 64, 10.0, 200.0, 7);
  const auto c = FaultPlan::build(cfg, 64, 10.0, 200.0, 8);
  ASSERT_EQ(a.downtime.size(), b.downtime.size());
  Size total_a = 0;
  bool any_diff = false;
  for (NodeId v = 0; v < 64; ++v) {
    ASSERT_EQ(a.downtime[v].size(), b.downtime[v].size());
    total_a += a.downtime[v].size();
    for (Size i = 0; i < a.downtime[v].size(); ++i) {
      EXPECT_EQ(a.downtime[v][i].down, b.downtime[v][i].down);
      EXPECT_EQ(a.downtime[v][i].up, b.downtime[v][i].up);
    }
    if (a.downtime[v].size() != c.downtime[v].size()) any_diff = true;
    for (Size i = 0; i < std::min(a.downtime[v].size(), c.downtime[v].size()); ++i) {
      if (a.downtime[v][i].down != c.downtime[v][i].down) any_diff = true;
    }
  }
  EXPECT_GT(total_a, 0u) << "hazard 0.05 over 190 s should schedule crashes";
  EXPECT_TRUE(any_diff) << "different seed should give a different plan";
}

TEST(FaultPlan, IntervalsSortedWithinWindowAndWellFormed) {
  FaultConfig cfg;
  cfg.crash_rate = 0.1;
  cfg.mean_downtime = 2.0;
  const auto plan = FaultPlan::build(cfg, 32, 5.0, 60.0, 99);
  for (const auto& ivs : plan.downtime) {
    Time prev_up = 0.0;
    for (const auto& iv : ivs) {
      EXPECT_GE(iv.down, 5.0);
      EXPECT_LT(iv.down, 60.0);
      EXPECT_GT(iv.up, iv.down);
      EXPECT_GE(iv.down, prev_up) << "intervals must not overlap";
      prev_up = iv.up;
    }
  }
}

TEST(FaultInjector, CrashedFollowsThePlan) {
  FaultConfig cfg;
  cfg.crash_rate = 0.1;
  cfg.mean_downtime = 4.0;
  const FaultInjector inj(cfg, 32, 0.0, 100.0, 3);
  ASSERT_GT(inj.scheduled_crashes(), 0u);
  for (NodeId v = 0; v < 32; ++v) {
    for (const auto& iv : inj.plan().downtime[v]) {
      EXPECT_TRUE(inj.crashed(v, iv.down));
      EXPECT_TRUE(inj.crashed(v, (iv.down + iv.up) / 2.0));
      EXPECT_FALSE(inj.crashed(v, iv.up));  // half-open [down, up)
    }
    EXPECT_FALSE(inj.crashed(v, -1.0));
  }
  EXPECT_FALSE(inj.crashed(500, 10.0));  // out-of-range node id
}

TEST(FaultInjector, OutageDiskDriftsWithTime) {
  FaultConfig cfg;
  cfg.outage_radius = 2.0;
  cfg.outage_start = 10.0;
  cfg.outage_duration = 10.0;
  cfg.outage_x = 0.0;
  cfg.outage_y = 0.0;
  cfg.outage_vx = 1.0;  // center moves +1 m/s in x
  const FaultInjector inj(cfg, 4, 0.0, 100.0, 1);

  EXPECT_FALSE(inj.in_outage(0.0, 0.0, 9.9));   // before onset
  EXPECT_TRUE(inj.in_outage(0.0, 0.0, 10.0));   // at onset, at center
  EXPECT_TRUE(inj.in_outage(5.0, 0.0, 15.0));   // center has drifted to x=5
  EXPECT_FALSE(inj.in_outage(0.0, 0.0, 15.0));  // origin now 5 m from center
  EXPECT_FALSE(inj.in_outage(0.0, 0.0, 20.0));  // after the outage ends
  EXPECT_FALSE(inj.in_outage(9.9, 0.0, 25.0));
}

TEST(FaultInjector, DisabledOutageNeverTriggers) {
  FaultConfig cfg;  // all off
  const FaultInjector inj(cfg, 8, 0.0, 50.0, 11);
  EXPECT_FALSE(inj.in_outage(0.0, 0.0, 25.0));
  EXPECT_EQ(inj.scheduled_crashes(), 0u);
}

}  // namespace
}  // namespace manet::sim
