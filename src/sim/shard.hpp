#pragma once

#include <algorithm>
#include <functional>
#include <utility>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

/// \file shard.hpp
/// Deterministic intra-run parallelism: a runtime-chosen shard decomposition
/// over a borrowed worker pool.
///
/// The tick pipeline's heavy phases (unit-disk pair enumeration, link-set
/// differences, batch hop pricing) are data-parallel over an index space
/// that already has a canonical sequential order. ShardExecutor splits that
/// space into a number of contiguous shards fixed for the executor's
/// lifetime — decoupled from the thread count — and runs one task per shard
/// on the pool. Each shard writes its own output buffer; callers concatenate
/// the buffers in shard index order, which reproduces the sequential
/// iteration order exactly. The result is bit-identical to the sequential
/// build at ANY shard count x ANY thread count (the sharded-tick identity
/// suite pins shards {1, 4, 16, 64} x threads {1, 2, 8}), so the shard
/// count is a pure throughput knob: RunOptions::shards / --shards picks it
/// per run (resolve_shard_count(), power-of-two rounded, 0 = auto from the
/// worker count).
///
/// Telemetry follows the same discipline through the per-shard
/// common::MetricsRegistry shards (common::ShardedMetrics): shard i is
/// written exclusively by the task running shard i, and merged_metrics()
/// folds the shards in index order, so every par.* counter is a pure
/// function of the workload and the shard count — never of the thread
/// count or the scheduling order.

namespace manet::sim {

/// Default shard grid for the tick pipeline: comfortably above the thread
/// counts the runner accepts in practice (so slow shards rebalance) while
/// keeping the sequential concatenation step trivial. Used as the floor of
/// the auto topology in resolve_shard_count(); every output is bit-identical
/// at any shard count, so this is a throughput default, not a correctness
/// contract.
inline constexpr Size kDefaultShardCount = 16;

/// Upper bound on the per-run shard count: per-shard output buffers are
/// concatenated sequentially, so thousands of shards only add merge overhead.
inline constexpr Size kMaxShardCount = 1024;

/// Resolve a requested shard topology (RunOptions::shards / --shards) into
/// the executor's shard count. \p requested == 0 means auto: modestly
/// oversubscribe the worker count (4x, so slow shards rebalance) with
/// kDefaultShardCount as the floor. Any explicit request is rounded UP to
/// the next power of two — power-of-two counts keep slice boundaries stable
/// under halving/doubling sweeps — and clamped to [1, kMaxShardCount].
/// Outputs never depend on the result (bit-identity across shard counts),
/// so this is pure throughput policy.
inline Size resolve_shard_count(Size requested, Size workers) noexcept {
  Size target = requested;
  if (target == 0) target = std::max<Size>(kDefaultShardCount, 4 * workers);
  if (target > kMaxShardCount) target = kMaxShardCount;
  Size rounded = 1;
  while (rounded < target) rounded *= 2;
  return rounded;
}

class ShardExecutor {
 public:
  /// Shards the run over \p pool. \p shard_count is fixed for the executor's
  /// lifetime; it should modestly exceed the largest thread count in use so
  /// slow shards rebalance, but stay O(tens) — per-shard buffers are
  /// concatenated sequentially. \p pool must outlive the executor.
  ShardExecutor(common::ThreadPool& pool, Size shard_count)
      : pool_(&pool), shard_count_(shard_count), metrics_(shard_count) {}

  Size shard_count() const noexcept { return shard_count_; }
  Size thread_count() const noexcept { return pool_->thread_count(); }

  /// Run fn(shard) for every shard in [0, shard_count) across the pool and
  /// block until all complete. Exceptions propagate (first in shard order).
  void for_each_shard(const std::function<void(Size)>& fn) const {
    pool_->parallel_for(shard_count_, fn);
  }

  /// Contiguous slice [begin, end) of an n-element index space owned by
  /// \p shard: the first n % shard_count shards take one extra element, so
  /// concatenating the slices in shard order walks [0, n) exactly once.
  static std::pair<Size, Size> slice(Size n, Size shard, Size shard_count) {
    const Size base = n / shard_count;
    const Size extra = n % shard_count;
    const Size begin = shard * base + std::min(shard, extra);
    return {begin, begin + base + (shard < extra ? 1 : 0)};
  }

  /// Shard-exclusive registry for the task running \p shard (lock-free by
  /// construction: no two shards share a registry).
  common::MetricsRegistry& metrics(Size shard) { return metrics_.shard(shard); }

  /// Fold the per-shard telemetry into \p target in shard index order (the
  /// ShardedMetrics determinism contract).
  void merge_metrics_into(common::MetricsRegistry& target) const {
    target.merge(metrics_.merged());
  }

 private:
  common::ThreadPool* pool_;
  Size shard_count_;
  mutable common::ShardedMetrics metrics_;
};

}  // namespace manet::sim
