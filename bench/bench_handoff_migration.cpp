/// E8: handoff overhead due to node migration (paper Section 4, eqs. 6a-6c):
///   phi_k = O(log|V|) per level, phi = sum_k phi_k = Theta(log^2 |V|)
/// packet transmissions per node per second.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E8  bench_handoff_migration — phi (migration handoff)",
      "phi_k = O(log|V|) per level [eq. 6b]; phi = Theta(log^2 |V|) [eq. 6c]");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;

  bench::Artifact artifact("handoff_migration", cfg, bench::standard_replications());
  const auto campaign = exp::sweep_node_count(cfg, bench::standard_nodes(),
                                              bench::standard_replications(), opts);
  artifact.add_campaign(campaign, "phi_rate");
  artifact.add_campaign(campaign, "levels");

  analysis::TextTable table({"|V|", "phi", "phi/log^2(n)", "levels"});
  for (const auto& point : campaign.points) {
    const double n = static_cast<double>(point.n);
    const double logn = std::log(n);
    const double phi = point.metrics.mean("phi_rate");
    table.add_row({std::to_string(point.n), bench::cell(point.metrics, "phi_rate"),
                   bench::fixed(phi / (logn * logn), 4),
                   bench::cell(point.metrics, "levels")});
  }
  std::printf("%s", table.to_string("phi vs |V| (pkts/node/s)").c_str());

  for (const auto& point : campaign.points) {
    analysis::TextTable levels({"level", "phi_k", "f_k"});
    for (Level k = 1; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "phi_k.%u", k);
      if (!point.metrics.has(key)) break;
      const double phik = point.metrics.mean(key);
      artifact.add_point(key, static_cast<double>(point.n), point.metrics, key);
      std::snprintf(key, sizeof(key), "f_k.%u", k);
      const double fk = point.metrics.has(key) ? point.metrics.mean(key) : 0.0;
      levels.add_row({std::to_string(k), bench::fixed(phik), bench::fixed(fk)});
    }
    char title[64];
    std::snprintf(title, sizeof(title), "per-level phi_k at |V| = %zu", point.n);
    std::printf("%s", levels.to_string(title).c_str());
  }

  bench::print_model_selection("phi", campaign, "phi_rate");
  std::printf(
      "\nreading: phi_k roughly flat across levels (the f_k*h_k cancellation)\n"
      "and the log^2 model competitive at the top of the ranking; shape, not\n"
      "absolute numbers, is the reproduction target.\n");
  artifact.write();
  return 0;
}
