#include "viz/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace manet::viz {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON number rendering: finite doubles as shortest round-trip-ish %g;
/// NaN/inf (not representable in JSON) as null.
std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace

void write_hierarchy_json(std::ostream& os, const cluster::Hierarchy& h,
                          bool with_addresses) {
  os << "{\"levels\":" << h.level_count() << ",\"level\":[";
  for (Level k = 0; k <= h.top_level(); ++k) {
    if (k) os << ',';
    os << "{\"k\":" << k << ",\"clusters\":[";
    const auto& view = h.level(k);
    for (NodeId c = 0; c < view.vertex_count(); ++c) {
      if (c) os << ',';
      os << "{\"id\":" << view.ids[c] << ",\"members\":[";
      const auto& members = h.members0(k, c);
      for (Size i = 0; i < members.size(); ++i) {
        if (i) os << ',';
        os << h.level(0).ids[members[i]];
      }
      os << "]}";
    }
    os << "]}";
  }
  os << ']';
  if (with_addresses) {
    os << ",\"addresses\":{";
    const Size n = h.level(0).vertex_count();
    for (NodeId v = 0; v < n; ++v) {
      if (v) os << ',';
      os << '"' << h.level(0).ids[v] << "\":[";
      const auto addr = h.address(v);
      for (Size i = 0; i < addr.size(); ++i) {
        if (i) os << ',';
        os << addr[i];
      }
      os << ']';
    }
    os << '}';
  }
  os << "}\n";
}

void write_metrics_json(std::ostream& os, const exp::RunMetrics& metrics) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : metrics.values) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << number(value);
  }
  os << "}\n";
}

}  // namespace manet::viz
