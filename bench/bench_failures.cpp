/// E21 (extension): resilience of the clustered hierarchy and the CHLM
/// database to node death. The paper explicitly sets node birth/death aside
/// ("extremely rare ... its effect is not evaluated"); this bench quantifies
/// the cost it set aside: kill a fraction of nodes at a static snapshot,
/// rebuild on the survivors, and measure
///   - how much of the hierarchy survives (levels, clusterhead churn),
///   - what fraction of LM entries must move (repair volume),
///   - how many owners lost a server and at what re-registration cost.

#include <algorithm>

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "graph/bfs.hpp"
#include "lm/chlm.hpp"
#include "net/unit_disk.hpp"

using namespace manet;

namespace {

struct FailureResult {
  double surviving_levels = 0.0;
  double head_churn = 0.0;     ///< fraction of surviving level-1+ heads replaced
  double entries_moved = 0.0;  ///< fraction of surviving owners' entries relocated
  double repair_packets_per_survivor = 0.0;
};

FailureResult run_failure(Size n, double kill_fraction, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto g = builder.build(pts);
  cluster::HierarchyBuilder hb;
  const auto before = hb.build(g);

  lm::ChlmService chlm_before;
  chlm_before.rebuild(before);

  // Kill a uniform random fraction.
  std::vector<bool> keep(n, true);
  const auto kills = static_cast<Size>(kill_fraction * static_cast<double>(n));
  Size killed = 0;
  while (killed < kills) {
    const auto v = static_cast<NodeId>(common::uniform_index(rng, n));
    if (keep[v]) {
      keep[v] = false;
      ++killed;
    }
  }

  // Survivors' world: induced positions and graph (re-bridged if split).
  std::vector<geom::Vec2> surv_pts;
  std::vector<NodeId> surv_ids;
  for (NodeId v = 0; v < n; ++v) {
    if (keep[v]) {
      surv_pts.push_back(pts[v]);
      surv_ids.push_back(v);  // keep original ids so elections are comparable
    }
  }
  net::UnitDiskBuilder surv_builder(2.2, true);
  const auto surv_g = surv_builder.build(surv_pts);
  const auto after = hb.build(surv_g, surv_ids);

  lm::ChlmService chlm_after;
  chlm_after.rebuild(after);

  FailureResult result;
  result.surviving_levels = static_cast<double>(after.top_level());

  // Clusterhead churn among survivors at level >= 1.
  std::vector<NodeId> heads_before, heads_after;
  for (Level k = 1; k <= before.top_level(); ++k) {
    for (const NodeId id : before.level(k).ids) {
      if (keep[id]) heads_before.push_back(id);
    }
  }
  for (Level k = 1; k <= after.top_level(); ++k) {
    for (const NodeId id : after.level(k).ids) heads_after.push_back(id);
  }
  std::sort(heads_before.begin(), heads_before.end());
  heads_before.erase(std::unique(heads_before.begin(), heads_before.end()),
                     heads_before.end());
  std::sort(heads_after.begin(), heads_after.end());
  heads_after.erase(std::unique(heads_after.begin(), heads_after.end()), heads_after.end());
  std::vector<NodeId> lost;
  std::set_difference(heads_before.begin(), heads_before.end(), heads_after.begin(),
                      heads_after.end(), std::back_inserter(lost));
  if (!heads_before.empty()) {
    result.head_churn =
        static_cast<double>(lost.size()) / static_cast<double>(heads_before.size());
  }

  // LM repair: for surviving owners, compare their server (by original id)
  // before and after; moved entries cost BFS hops in the survivors' graph.
  graph::BfsScratch bfs;
  Size entries = 0, moved = 0;
  PacketCount repair = 0;
  std::vector<NodeId> to_new(n, kInvalidNode);
  for (Size i = 0; i < surv_ids.size(); ++i) to_new[surv_ids[i]] = static_cast<NodeId>(i);

  for (Size i = 0; i < surv_ids.size(); ++i) {
    const NodeId owner_old = surv_ids[i];
    const auto owner_new = static_cast<NodeId>(i);
    const Level top = std::min(before.top_level(), after.top_level());
    for (Level k = lm::kFirstServedLevel; k <= top; ++k) {
      const NodeId s_before = chlm_before.server_of(owner_old, k);
      const NodeId s_after_new = chlm_after.server_of(owner_new, k);
      if (s_before == kInvalidNode || s_after_new == kInvalidNode) continue;
      ++entries;
      const NodeId s_after_old = surv_ids[s_after_new];
      const bool server_died = !keep[s_before];
      if (s_before == s_after_old) continue;
      ++moved;
      // Dead server: the owner re-registers (owner -> new server). Live
      // server: normal transfer (old -> new).
      const NodeId src_new = server_died ? owner_new : to_new[s_before];
      if (src_new == kInvalidNode) continue;
      bfs.run(surv_g, src_new);
      const auto hops = bfs.hops_to(s_after_new);
      if (hops != graph::kUnreachable) repair += hops;
    }
  }
  if (entries > 0) {
    result.entries_moved = static_cast<double>(moved) / static_cast<double>(entries);
  }
  result.repair_packets_per_survivor =
      static_cast<double>(repair) / static_cast<double>(surv_ids.size());
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "E21  bench_failures — node-death resilience (paper's excluded case)",
      "cost of the birth/death events the paper assumes away (Section 1)");

  const Size n = 1024;
  exp::ScenarioConfig base;
  base.n = n;
  base.seed = 1000;
  bench::Artifact artifact("failures", base, 3);

  analysis::TextTable table({"killed", "levels after", "head churn", "entries moved",
                             "repair pkts/survivor"});
  for (const double fraction : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    analysis::Accumulator levels, churn, moved, repair;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      const auto r = run_failure(n, fraction, 1000 + rep);
      levels.add(r.surviving_levels);
      churn.add(r.head_churn);
      moved.add(r.entries_moved);
      repair.add(r.repair_packets_per_survivor);
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", fraction * 100.0);
    table.add_row({label, bench::fixed(levels.mean(), 3), bench::fixed(churn.mean(), 3),
                   bench::fixed(moved.mean(), 3), bench::fixed(repair.mean(), 4)});
    // Series are keyed by killed percentage (the sweep axis), not node count.
    const double pct = fraction * 100.0;
    const auto point = [&](const analysis::Accumulator& acc) {
      return exp::SeriesPoint{pct, acc.mean(), acc.ci95_halfwidth(), acc.count()};
    };
    artifact.add_point("surviving_levels", point(levels));
    artifact.add_point("head_churn", point(churn));
    artifact.add_point("entries_moved", point(moved));
    artifact.add_point("repair_packets_per_survivor", point(repair));
  }
  std::printf("%s", table.to_string("killing a fraction of |V| = 1024 nodes").c_str());
  artifact.write();

  std::printf(
      "\nreading: entry relocation grows roughly linearly in the killed\n"
      "fraction (flat-successor arcs localize damage); head churn above the\n"
      "killed fraction itself reveals election cascades. The paper's\n"
      "rarity assumption is safe when repair cost per event stays near the\n"
      "per-tick handoff volume — compare against bench_handoff_reorg.\n");
  return 0;
}
