#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

namespace manet::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(DeriveSeed, DistinctKeysGiveDistinctSeeds) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    seeds.push_back(derive_seed(123456789, key));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(DeriveSeed, DistinctParentsGiveDistinctSeeds) {
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));
}

TEST(Xoshiro256, ReproducibleFromSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, LongJumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Uniform01, StaysInHalfOpenUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform01, MeanIsNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Uniform, RespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = uniform(rng, -3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(UniformIndex, CoversRangeWithoutBias) {
  Xoshiro256 rng(13);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[uniform_index(rng, 5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(UniformIndex, SingleValueAlwaysZero) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(rng, 1), 0u);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(19);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exponential(rng, lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Exponential, AlwaysNonNegative) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(exponential(rng, 0.5), 0.0);
}

TEST(Normal, MeanZeroUnitVariance) {
  Xoshiro256 rng(29);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = normal(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  shuffle(rng, shuffled.data(), shuffled.size());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Shuffle, ActuallyPermutes) {
  Xoshiro256 rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  shuffle(rng, shuffled.data(), shuffled.size());
  EXPECT_NE(shuffled, v);  // probability 1/100! of spurious failure
}

/// Property sweep: uniform_index stays unbiased across a range of moduli.
class UniformIndexModulus : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexModulus, ChiSquareWithinBound) {
  const std::uint64_t m = GetParam();
  Xoshiro256 rng(41 + m);
  std::vector<int> counts(m, 0);
  const int draws = 20000 * static_cast<int>(m);
  for (int i = 0; i < draws; ++i) ++counts[static_cast<std::size_t>(uniform_index(rng, m))];
  const double expected = static_cast<double>(draws) / static_cast<double>(m);
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 99.9th percentile of chi^2 with m-1 dof is far below 3*m for m >= 2.
  EXPECT_LT(chi2, 3.0 * static_cast<double>(m) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Moduli, UniformIndexModulus, ::testing::Values(2, 3, 7, 10, 16));

}  // namespace
}  // namespace manet::common
