#include "lm/reliable.hpp"

#include <gtest/gtest.h>

#include "net/lossy_channel.hpp"

namespace manet::lm {
namespace {

net::LossyChannel make_channel(double loss, std::uint64_t seed = 1) {
  sim::FaultConfig cfg;
  cfg.loss = loss;
  return net::LossyChannel(cfg, seed);
}

TEST(ReliableTransfer, ZeroHopsIsFreeSuccess) {
  auto ch = make_channel(1.0);
  ReliableTransfer arq(ch, 4, 0.05, 2.0);
  const auto out = arq.transfer(0);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.packets, 0u);
  EXPECT_EQ(out.retx, 0u);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_DOUBLE_EQ(out.latency, 0.0);
}

TEST(ReliableTransfer, LosslessChannelDeliversFirstTryAtIdealCost) {
  auto ch = make_channel(0.0);
  ReliableTransfer arq(ch, 4, 0.05, 2.0);
  const auto out = arq.transfer(7);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.packets, 7u);
  EXPECT_EQ(out.retx, 0u) << "ideal delivery has zero retransmission overhead";
  EXPECT_EQ(arq.total_retx(), 0u);
  EXPECT_EQ(arq.failed_transfers(), 0u);
}

TEST(ReliableTransfer, BudgetExhaustionFailsWithAllPacketsAsRetx) {
  auto ch = make_channel(1.0);
  const Size budget = 3;
  ReliableTransfer arq(ch, budget, 0.05, 2.0);
  const auto out = arq.transfer(5);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, budget + 1);
  // Every attempt dies at hop 1, so budget+1 transmissions total, all waste.
  EXPECT_EQ(out.packets, budget + 1);
  EXPECT_EQ(out.retx, out.packets);
  EXPECT_EQ(arq.failed_transfers(), 1u);
  EXPECT_EQ(arq.total_retries(), budget);
}

TEST(ReliableTransfer, BackoffLatencyIsGeometricSum) {
  auto ch = make_channel(1.0);
  ReliableTransfer arq(ch, 3, 0.1, 2.0);
  const auto out = arq.transfer(2);
  // Waits between the 4 attempts: 0.1 + 0.2 + 0.4.
  EXPECT_DOUBLE_EQ(out.latency, 0.1 + 0.2 + 0.4);
}

TEST(ReliableTransfer, RetxSplitsDeliveredCostFromOverhead) {
  // Deterministic seed; with 30% loss over 4 hops some transfers need
  // retries. For each delivered outcome the invariant is
  //   packets == hops + retx,
  // i.e. the ideal cost is recoverable exactly.
  auto ch = make_channel(0.3, 99);
  ReliableTransfer arq(ch, 16, 0.05, 2.0);
  Size delivered = 0;
  Size retried = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = arq.transfer(4);
    if (out.delivered) {
      ++delivered;
      EXPECT_EQ(out.packets, 4u + out.retx);
    } else {
      EXPECT_EQ(out.retx, out.packets) << "a failed transfer is pure overhead";
    }
    if (out.attempts > 1) ++retried;
  }
  // Per-attempt success is 0.7^4 ~ 0.24, so budget 16 succeeds ~99% of the
  // time; the vast majority must deliver and some must need retries.
  EXPECT_GT(delivered, 180u);
  EXPECT_GT(retried, 0u);
  EXPECT_GT(arq.total_retx(), 0u);
}

TEST(ReliableTransfer, UnroutableBurnsBudgetAndFails) {
  auto ch = make_channel(0.0);
  const Size budget = 4;
  ReliableTransfer arq(ch, budget, 0.05, 2.0);
  const auto out = arq.transfer_unroutable();
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, budget + 1);
  EXPECT_EQ(out.packets, budget + 1);
  EXPECT_EQ(out.retx, out.packets);
  EXPECT_EQ(arq.failed_transfers(), 1u);
  // Route probes never touch the channel accounting.
  EXPECT_EQ(ch.packets_sent(), 0u);
}

TEST(ReliableTransfer, TotalsAccumulateAcrossTransfers) {
  auto ch = make_channel(1.0);
  ReliableTransfer arq(ch, 2, 0.05, 2.0);
  arq.transfer(3);
  arq.transfer(3);
  arq.transfer_unroutable();
  EXPECT_EQ(arq.failed_transfers(), 3u);
  EXPECT_EQ(arq.total_retx(), 3u + 3u + 3u);  // (budget+1) wasted packets each
}

}  // namespace
}  // namespace manet::lm
