#include "cluster/alca.hpp"

#include "common/check.hpp"

namespace manet::cluster {

ElectionResult alca_elect(const graph::Graph& g, std::span<const NodeId> ids) {
  const Size n = g.vertex_count();
  MANET_CHECK_MSG(ids.size() == n, "ids array size must match vertex count");

  ElectionResult result;
  result.head_of.resize(n);
  result.votes.assign(n, 0);

  // Each vertex elects the max-original-ID member of its closed neighborhood.
  for (NodeId u = 0; u < n; ++u) {
    NodeId best = u;
    for (const NodeId w : g.neighbors(u)) {
      if (ids[w] > ids[best]) best = w;
    }
    result.head_of[u] = best;
  }

  // A vertex is a clusterhead iff someone (possibly itself) elected it. An
  // elected head h may itself have a larger closed neighbor H; the paper's
  // Fig. 1 shows this case (node 68 is elected by 63 while not being the
  // largest in its own neighborhood) and resolves it by making h lead its own
  // cluster anyway. We therefore remap head_of[h] = h for every head so that
  // cluster membership is a well-defined partition with the head inside.
  std::vector<bool> is_head(n, false);
  for (NodeId u = 0; u < n; ++u) is_head[result.head_of[u]] = true;
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) {
      result.head_of[v] = v;
      result.clusterheads.push_back(v);
    }
  }

  // Fig. 3 ALCA state: the number of *neighbors* whose final affiliation is
  // v (self-affiliation excluded). Computed after the head remap so that a
  // head does not count as electing its larger neighbor.
  for (NodeId u = 0; u < n; ++u) {
    if (result.head_of[u] != u) ++result.votes[result.head_of[u]];
  }
  return result;
}

ElectionResult Alca::elect(const graph::Graph& g, std::span<const NodeId> ids) const {
  return alca_elect(g, ids);
}

}  // namespace manet::cluster
