#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event kernel: a binary min-heap keyed
/// by (time, sequence). The sequence number makes simultaneous events fire in
/// scheduling order, which keeps runs bit-reproducible.

namespace manet::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule \p fn at absolute time \p when; returns a cancellation handle.
  EventId schedule(Time when, EventFn fn);

  /// Cancel a pending event. Returns false if already fired or cancelled.
  /// Cancellation is lazy: the heap entry is tombstoned and skipped on pop.
  bool cancel(EventId id);

  bool empty() const;

  /// Time of the earliest pending (non-cancelled) event. Requires !empty().
  Time next_time() const;

  struct Fired {
    Time time;
    EventId id;
    EventFn fn;
  };

  /// Pop and return the earliest event. Requires !empty().
  Fired pop();

  Size pending_count() const { return callbacks_.size(); }

 private:
  struct Entry {
    Time time;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  /// Discard tombstoned (cancelled) heap heads.
  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  EventId next_id_ = 0;
};

}  // namespace manet::sim
