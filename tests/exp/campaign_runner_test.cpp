#include "exp/campaign_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/thread_pool.hpp"

namespace manet::exp {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test campaign directory under the gtest temp root.
std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "campaign_runner_" + tag;
  fs::remove_all(dir);
  return dir;
}

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.args = {"--seed",   "7",  "--warmup", "2",         "--duration", "6",
               "--radius", "degree", "--degree", "12",
               "--no-events", "--no-states", "--no-hops"};
  spec.sweep = {40, 56};
  spec.replications = 3;
  spec.block = 2;

  // Resolve scenario/options the same way from_json does: round-trip the
  // args through the spec parser so tests exercise the production path.
  std::ostringstream json;
  analysis::JsonWriter w(json);
  spec.write_json(w);
  const auto parsed = analysis::parse_json(json.str());
  EXPECT_TRUE(parsed.ok) << parsed.error;
  CampaignSpec out;
  std::string error;
  EXPECT_TRUE(CampaignSpec::from_json(parsed.value, out, error)) << error;
  return out;
}

TEST(CampaignSpec, LedgerDecomposition) {
  const auto spec = tiny_spec();
  EXPECT_EQ(spec.blocks_per_point(), 2u);  // ceil(3/2)
  EXPECT_EQ(spec.unit_count(), 4u);

  CampaignRunner runner(spec, "");
  const auto& ledger = runner.plan();
  ASSERT_EQ(ledger.size(), 4u);
  EXPECT_EQ(ledger[0].n, 40u);
  EXPECT_EQ(ledger[0].rep_begin, 0u);
  EXPECT_EQ(ledger[0].rep_end, 2u);
  EXPECT_EQ(ledger[1].n, 40u);
  EXPECT_EQ(ledger[1].rep_begin, 2u);
  EXPECT_EQ(ledger[1].rep_end, 3u);  // short tail block
  EXPECT_EQ(ledger[2].point, 1u);
  EXPECT_EQ(ledger[2].n, 56u);
  for (Size i = 0; i < ledger.size(); ++i) EXPECT_EQ(ledger[i].index, i);
  EXPECT_EQ(ledger[0].id(), "u0000-n40-b00");
}

TEST(CampaignSpec, FromJsonValidates) {
  auto parse_spec = [](const std::string& text, CampaignSpec& out, std::string& error) {
    const auto parsed = analysis::parse_json(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return CampaignSpec::from_json(parsed.value, out, error);
  };

  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec(R"({"schema":"nope","name":"x","sweep":[64]})", spec, error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  EXPECT_FALSE(parse_spec(R"({"schema":"manet-campaign-spec/1","sweep":[64]})", spec,
                          error));  // missing name
  EXPECT_FALSE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"a/b","sweep":[64]})", spec, error));
  EXPECT_FALSE(parse_spec(R"({"schema":"manet-campaign-spec/1","name":"x"})", spec,
                          error));  // missing sweep
  EXPECT_FALSE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"x","sweep":[1]})", spec, error));
  EXPECT_FALSE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"x","sweep":[64],"replications":0})",
      spec, error));

  // Campaign-level flags are rejected inside args.
  EXPECT_FALSE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"x","sweep":[64],"args":["--reps","3"]})",
      spec, error));
  EXPECT_NE(error.find("--reps"), std::string::npos);

  // Unknown flags fail exactly as on the command line.
  EXPECT_FALSE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"x","sweep":[64],"args":["--bogus"]})",
      spec, error));

  EXPECT_TRUE(parse_spec(
      R"({"schema":"manet-campaign-spec/1","name":"ok","sweep":[64,128],
          "replications":2,"block":1,"args":["--mu","2.0","--registration"]})",
      spec, error))
      << error;
  EXPECT_DOUBLE_EQ(spec.scenario.mu, 2.0);
  EXPECT_TRUE(spec.options.track_registration);
  EXPECT_EQ(spec.unit_count(), 4u);
}

TEST(CampaignSpec, FingerprintTracksContent) {
  const auto base = tiny_spec();
  auto changed = base;
  EXPECT_EQ(base.fingerprint(), changed.fingerprint());
  changed.replications = 4;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.sweep.push_back(72);
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.args.push_back("--registration");
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.block = 1;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
}

TEST(CampaignSpec, SpecFileRoundTrip) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("spec_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/spec.json";
  {
    std::ofstream file(path);
    analysis::JsonWriter w(file, /*pretty=*/true);
    spec.write_json(w);
  }
  CampaignSpec loaded;
  std::string error;
  ASSERT_TRUE(CampaignSpec::load(path, loaded, error)) << error;
  EXPECT_EQ(loaded.name, spec.name);
  EXPECT_EQ(loaded.args, spec.args);
  EXPECT_EQ(loaded.sweep, spec.sweep);
  EXPECT_EQ(loaded.fingerprint(), spec.fingerprint());
}

TEST(CampaignCheckpoint, RoundTripIsExact) {
  const auto spec = tiny_spec();
  CampaignRunner runner(spec, fresh_dir("ckpt_roundtrip"));
  const auto& unit = runner.plan()[1];  // the short tail block

  const UnitRecord record = run_unit(spec, unit);
  ASSERT_EQ(record.replications.size(), 1u);

  std::string error;
  ASSERT_TRUE(write_unit_checkpoint(runner.dir(), spec, record, error)) << error;

  UnitRecord loaded;
  ASSERT_TRUE(read_unit_checkpoint(unit_checkpoint_path(runner.dir(), unit), spec,
                                   loaded, error))
      << error;
  ASSERT_EQ(loaded.replications.size(), record.replications.size());
  for (Size r = 0; r < record.replications.size(); ++r) {
    const auto& expect = record.replications[r].values;
    const auto& got = loaded.replications[r].values;
    ASSERT_EQ(got.size(), expect.size());
    for (Size i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].first, expect[i].first);
      if (std::isnan(expect[i].second)) {
        EXPECT_TRUE(std::isnan(got[i].second));
      } else {
        // %.17g round-trips IEEE doubles exactly: bit-identical values.
        EXPECT_EQ(got[i].second, expect[i].second) << got[i].first;
      }
    }
  }
}

TEST(CampaignCheckpoint, ForeignFingerprintRejected) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("ckpt_foreign");
  CampaignRunner runner(spec, dir);
  const auto& unit = runner.plan()[0];
  const UnitRecord record = run_unit(spec, unit);
  std::string error;
  ASSERT_TRUE(write_unit_checkpoint(dir, spec, record, error)) << error;

  auto other = spec;
  other.replications = 5;
  UnitRecord loaded;
  EXPECT_FALSE(
      read_unit_checkpoint(unit_checkpoint_path(dir, unit), other, loaded, error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos);
}

TEST(CampaignManifest, RoundTripAndTamperDetection) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("manifest");
  std::string error;
  ASSERT_TRUE(write_campaign_manifest(dir, spec, error)) << error;

  CampaignSpec loaded;
  ASSERT_TRUE(read_campaign_manifest(dir, loaded, error)) << error;
  EXPECT_EQ(loaded.fingerprint(), spec.fingerprint());
  EXPECT_EQ(loaded.sweep, spec.sweep);
  EXPECT_EQ(loaded.replications, spec.replications);

  // A manifest whose fingerprint no longer matches its embedded spec fails.
  const std::string path = dir + "/campaign.json";
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  const auto pos = text.find(spec.fingerprint());
  ASSERT_NE(pos, std::string::npos);
  text[pos] = text[pos] == '0' ? '1' : '0';  // corrupt one fingerprint nibble
  std::ofstream(path) << text;
  EXPECT_FALSE(read_campaign_manifest(dir, loaded, error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos);
}

TEST(CampaignRunner, MergeReportsGapsAndStrays) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("gaps");
  CampaignRunner runner(spec, dir);

  CampaignRunner::RunConfig config;
  config.max_units = 3;  // leave the last unit unexecuted
  const auto report = runner.run(config);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.executed, 3u);

  auto merged = runner.merge();
  EXPECT_FALSE(merged.ok);
  ASSERT_EQ(merged.missing.size(), 1u);
  EXPECT_EQ(merged.missing[0], 3u);

  // Finish, then plant a stray unit file: merge must refuse.
  CampaignRunner::RunConfig resume;
  resume.resume = true;
  ASSERT_TRUE(runner.run(resume).ok);
  EXPECT_TRUE(runner.merge().ok);
  std::ofstream(dir + "/units/u9999-n40-b00.json") << "{}";
  merged = runner.merge();
  EXPECT_FALSE(merged.ok);
  ASSERT_EQ(merged.stray.size(), 1u);
  EXPECT_NE(merged.error.find("stray"), std::string::npos);
}

TEST(CampaignRunner, RunRefusesMismatchedSpec) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("mismatch");
  CampaignRunner runner(spec, dir);
  CampaignRunner::RunConfig config;
  config.max_units = 1;
  ASSERT_TRUE(runner.run(config).ok);

  auto other = spec;
  other.replications = 5;
  CampaignRunner other_runner(other, dir);
  const auto report = other_runner.run(config);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("fingerprint"), std::string::npos);
}

TEST(CampaignRunner, ProgressHookSeesEveryOwnedUnit) {
  const auto spec = tiny_spec();
  CampaignRunner runner(spec, fresh_dir("progress"));
  std::vector<Size> seen;
  Size last_total = 0;
  CampaignRunner::RunConfig config;
  config.shard_index = 1;
  config.shard_count = 2;
  config.progress = [&](const WorkUnit& unit, Size done, Size total) {
    seen.push_back(unit.index);
    EXPECT_EQ(done, seen.size());
    last_total = total;
  };
  ASSERT_TRUE(runner.run(config).ok);
  EXPECT_EQ(seen, (std::vector<Size>{1, 3}));  // index % 2 == 1
  EXPECT_EQ(last_total, 2u);
}

TEST(CampaignArtifact, WritesBenchSchemaWithAllSeries) {
  const auto spec = tiny_spec();
  const std::string dir = fresh_dir("artifact");
  CampaignRunner runner(spec, dir);
  ASSERT_TRUE(runner.run().ok);
  const auto merged = runner.merge();
  ASSERT_TRUE(merged.ok) << merged.error;

  const std::string path = dir + "/CAMPAIGN_tiny.json";
  std::string error;
  ASSERT_TRUE(write_campaign_artifact(path, spec, merged.campaign, 1.25, 1, error))
      << error;

  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto parsed = analysis::parse_json(buffer.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "manet-bench-artifact/1");

  RunManifest manifest;
  const auto* m = parsed.value.find("manifest");
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(RunManifest::from_json(*m, manifest));
  EXPECT_EQ(manifest.name, "tiny");
  EXPECT_EQ(manifest.replications, spec.replications);

  const auto* series = parsed.value.find("series");
  ASSERT_NE(series, nullptr);
  const auto* phi = series->find("phi_rate");
  ASSERT_NE(phi, nullptr);
  ASSERT_TRUE(phi->is_array());
  EXPECT_EQ(phi->items.size(), spec.sweep.size());
  // Series points carry the exact aggregated mean.
  EXPECT_EQ(phi->items[0].number_or("mean", -1.0),
            merged.campaign.points[0].metrics.mean("phi_rate"));

  const auto* scalars = parsed.value.find("scalars");
  ASSERT_NE(scalars, nullptr);
  EXPECT_EQ(scalars->number_or("units", 0.0), 4.0);
}

TEST(CampaignSeries, DroppedPointsAreCountedNotSilent) {
  Campaign campaign;
  campaign.points.resize(3);
  for (Size i = 0; i < 3; ++i) {
    campaign.points[i].n = 100 * (i + 1);
    RunMetrics m;
    m.set("always", static_cast<double>(i));
    if (i != 1) m.set("patchy", 1.0);  // absent at the middle point
    campaign.points[i].metrics.add(m);
  }

  std::vector<double> ns, ys, errs;
  EXPECT_EQ(campaign.series("always", ns, ys), 0u);
  EXPECT_EQ(ns.size(), 3u);

  EXPECT_EQ(campaign.series("patchy", ns, ys), 1u);
  EXPECT_EQ(ns.size(), 2u);
  EXPECT_DOUBLE_EQ(ns[0], 100.0);
  EXPECT_DOUBLE_EQ(ns[1], 300.0);

  EXPECT_EQ(campaign.series_with_error("patchy", ns, ys, errs), 1u);
  EXPECT_EQ(errs.size(), 2u);

  EXPECT_EQ(campaign.series("absent_everywhere", ns, ys), 3u);
  EXPECT_TRUE(ns.empty());
}

}  // namespace
}  // namespace manet::exp
