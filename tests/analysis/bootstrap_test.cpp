#include "analysis/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manet::analysis {
namespace {

std::vector<double> ns() { return {128, 256, 512, 1024, 2048, 4096}; }

TEST(Bootstrap, NoiselessDataAlwaysPicksTruth) {
  std::vector<double> means;
  for (const double n : ns()) means.push_back(0.2 * std::log(n) * std::log(n));
  const std::vector<double> zero(ns().size(), 0.0);
  const auto sel = bootstrap_model_selection(ns(), means, zero, 200);
  EXPECT_EQ(sel.modal_winner, GrowthLaw::kLogSquared);
  EXPECT_DOUBLE_EQ(sel.modal_fraction, 1.0);
  EXPECT_DOUBLE_EQ(sel.polylog_beats_roots, 1.0);
}

TEST(Bootstrap, WinFractionsSumToOne) {
  std::vector<double> means;
  for (const double n : ns()) means.push_back(std::sqrt(n));
  const std::vector<double> noise(ns().size(), 0.5);
  const auto sel = bootstrap_model_selection(ns(), means, noise, 500);
  double total = 0.0;
  for (const double f : sel.win_fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(sel.resamples, 500u);
}

TEST(Bootstrap, SqrtDataRejectsPolylogMostly) {
  std::vector<double> means;
  for (const double n : ns()) means.push_back(0.25 * std::sqrt(n));
  const std::vector<double> noise(ns().size(), 0.2);
  const auto sel = bootstrap_model_selection(ns(), means, noise, 500);
  EXPECT_EQ(sel.modal_winner, GrowthLaw::kSqrt);
  EXPECT_LT(sel.polylog_beats_roots, 0.5);
}

TEST(Bootstrap, NoiseSpreadsTheVote) {
  std::vector<double> exact, noisy_err;
  for (const double n : ns()) {
    exact.push_back(std::log(n) * std::log(n));
    noisy_err.push_back(5.0);  // large vs the signal differences
  }
  const auto sel = bootstrap_model_selection(ns(), exact, noisy_err, 500);
  // With heavy noise no single law should sweep every resample.
  EXPECT_LT(sel.modal_fraction, 1.0);
  EXPECT_GT(sel.modal_fraction, 0.0);
}

TEST(Bootstrap, Deterministic) {
  std::vector<double> means;
  for (const double n : ns()) means.push_back(std::log(n));
  const std::vector<double> noise(ns().size(), 0.1);
  const auto a = bootstrap_model_selection(ns(), means, noise, 300, 42);
  const auto b = bootstrap_model_selection(ns(), means, noise, 300, 42);
  EXPECT_EQ(a.win_fraction, b.win_fraction);
  EXPECT_EQ(a.polylog_beats_roots, b.polylog_beats_roots);
}

TEST(BootstrapDeath, RequiresThreePoints) {
  const std::vector<double> two{10, 20};
  EXPECT_DEATH(bootstrap_model_selection(two, two, two, 10), "3");
}

}  // namespace
}  // namespace manet::analysis
