#include "mobility/group.hpp"

#include <gtest/gtest.h>

#include "geom/region.hpp"

namespace manet::mobility {
namespace {

const geom::DiskRegion kDisk({0, 0}, 40.0);

ReferencePointGroup::Params params(Size group_size = 10) {
  ReferencePointGroup::Params p;
  p.group_size = group_size;
  p.leader_speed = 2.0;
  p.member_speed = 1.0;
  return p;
}

TEST(Rpgm, GroupAssignmentCoversAllNodes) {
  ReferencePointGroup model(kDisk, 95, params(10), 1);
  EXPECT_EQ(model.group_count(), 10u);  // ceil(95/10)
  for (NodeId v = 0; v < 95; ++v) {
    EXPECT_LT(model.group_of(v), model.group_count());
    EXPECT_EQ(model.group_of(v), v / 10);
  }
}

TEST(Rpgm, PositionsStayInsideRegion) {
  ReferencePointGroup model(kDisk, 80, params(), 2);
  for (Time t = 0.5; t <= 60.0; t += 0.5) {
    model.advance_to(t);
    for (const auto& p : model.positions()) EXPECT_TRUE(kDisk.contains(p));
  }
}

TEST(Rpgm, MembersStayNearTheirReferencePoint) {
  auto p = params();
  p.member_radius = 5.0;
  ReferencePointGroup model(kDisk, 60, p, 3);
  for (Time t = 1.0; t <= 30.0; t += 1.0) {
    model.advance_to(t);
    for (NodeId v = 0; v < 60; ++v) {
      const auto ref = model.reference_point(model.group_of(v));
      // Offset bounded by the jitter radius (clamping can only shrink it).
      EXPECT_LE(geom::distance(model.positions()[v], ref), 5.0 + 1e-6) << "node " << v;
    }
  }
}

TEST(Rpgm, GroupsMoveCoherently) {
  // Group members' displacement should correlate with the reference point's.
  ReferencePointGroup model(kDisk, 40, params(20), 4);
  const auto before = model.positions();
  const auto ref_before0 = model.reference_point(0);
  model.advance_to(8.0);
  const auto ref_after0 = model.reference_point(0);
  const geom::Vec2 ref_delta = ref_after0 - ref_before0;
  ASSERT_GT(ref_delta.norm(), 2.0);  // the leader moved measurably
  Size coherent = 0;
  for (NodeId v = 0; v < 20; ++v) {  // group 0
    const geom::Vec2 member_delta = model.positions()[v] - before[v];
    if (member_delta.dot(ref_delta) > 0.0) ++coherent;
  }
  EXPECT_GE(coherent, 14u);  // most members move with the reference point
}

TEST(Rpgm, Deterministic) {
  ReferencePointGroup a(kDisk, 50, params(), 7);
  ReferencePointGroup b(kDisk, 50, params(), 7);
  a.advance_to(12.5);
  b.advance_to(12.5);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(Rpgm, TimeMonotoneEnforced) {
  ReferencePointGroup model(kDisk, 10, params(), 8);
  model.advance_to(5.0);
  EXPECT_DEATH(model.advance_to(4.0), "monotone");
}

TEST(Rpgm, SingleGroupDegeneratesGracefully) {
  auto p = params(1000);  // everyone in one group
  ReferencePointGroup model(kDisk, 30, p, 9);
  EXPECT_EQ(model.group_count(), 1u);
  model.advance_to(10.0);
  for (const auto& pos : model.positions()) EXPECT_TRUE(kDisk.contains(pos));
}

}  // namespace
}  // namespace manet::mobility
