/// Fault-injection integration contract:
///  1. zero-cost: FaultConfig off leaves run_simulation bit-identical, and
///     even a forced-on fault plane with every process at zero reproduces
///     all shared metrics exactly (no hidden RNG draws, no cost drift);
///  2. determinism: faulted runs (loss + churn) aggregate bit-identically
///     across 1 / 2 / 8 worker threads;
///  3. repair: under sustained 10% per-hop loss the ARQ + audit + rejoin
///     repair path keeps the final query-consistency probe >= 0.99 while
///     paying a nonzero retransmission tax.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "exp/montecarlo.hpp"
#include "exp/simulation.hpp"
#include "sim/trace.hpp"

namespace manet::exp {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.n = 96;
  cfg.seed = 20020415;
  cfg.warmup = 4.0;
  cfg.duration = 16.0;
  return cfg;
}

RunOptions lean_options() {
  RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  return opts;
}

TEST(Resilience, FaultOffIsBitIdenticalAndEmitsNoFaultMetrics) {
  const ScenarioConfig cfg = small_scenario();
  const auto a = run_simulation(cfg, lean_options());
  const auto b = run_simulation(cfg, lean_options());
  ASSERT_EQ(a.values.size(), b.values.size());
  for (Size i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first);
    EXPECT_EQ(a.values[i].second, b.values[i].second);
  }
  EXPECT_FALSE(a.has("phi_retx"));
  EXPECT_FALSE(a.has("query_success_rate"));
  EXPECT_FALSE(a.has("crashes"));
}

TEST(Resilience, ForcedOnFaultPlaneIsZeroCost) {
  const ScenarioConfig off = small_scenario();
  ScenarioConfig forced = small_scenario();
  forced.fault.force = true;  // machinery attached, every fault process off

  const auto bare = run_simulation(off, lean_options());
  const auto armed = run_simulation(forced, lean_options());

  // Every fault-free metric must survive bit-identically: the attached
  // channel/ARQ/injector must draw no RNG and charge no packets at zero
  // loss and zero churn.
  for (const auto& [name, value] : bare.values) {
    ASSERT_TRUE(armed.has(name)) << "metric " << name << " lost under forced fault plane";
    EXPECT_EQ(value, armed.get(name)) << "metric " << name << " perturbed";
  }

  // The armed run reports the fault plane explicitly — and reports it clean.
  EXPECT_EQ(armed.get("packets_dropped"), 0.0);
  EXPECT_EQ(armed.get("phi_retx"), 0.0);
  EXPECT_EQ(armed.get("gamma_retx"), 0.0);
  EXPECT_EQ(armed.get("failed_transfers"), 0.0);
  EXPECT_EQ(armed.get("stale_entries"), 0.0);
  EXPECT_EQ(armed.get("crashes"), 0.0);
  EXPECT_EQ(armed.get("query_success_rate"), 1.0);
}

TEST(Resilience, FaultedRunsAreDeterministicAcrossThreadCounts) {
  ScenarioConfig cfg = small_scenario();
  cfg.fault.loss = 0.08;
  cfg.fault.crash_rate = 0.003;
  cfg.fault.mean_downtime = 4.0;
  const Size reps = 4;

  std::vector<std::pair<std::string, double>> baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    common::ThreadPool pool(threads);
    const auto agg = run_replications(cfg, reps, lean_options(), &pool);
    std::vector<std::pair<std::string, double>> flat;
    for (const auto& name : agg.names()) {
      const auto s = agg.summary(name);
      flat.emplace_back(name + ".mean", s.mean);
      flat.emplace_back(name + ".ci95", s.ci95);
    }
    if (baseline.empty()) {
      baseline = std::move(flat);
      EXPECT_FALSE(baseline.empty());
      continue;
    }
    ASSERT_EQ(baseline.size(), flat.size()) << threads << " threads";
    for (Size i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].first, flat[i].first);
      EXPECT_EQ(baseline[i].second, flat[i].second)
          << baseline[i].first << " drifted at " << threads << " threads";
    }
  }
}

TEST(Resilience, RepairHoldsQueryConsistencyUnderSustainedLoss) {
  ScenarioConfig cfg = small_scenario();
  cfg.duration = 24.0;
  cfg.fault.loss = 0.1;
  const auto m = run_simulation(cfg, lean_options());

  EXPECT_GT(m.get("phi_retx") + m.get("gamma_retx"), 0.0)
      << "10% per-hop loss must force retransmissions";
  EXPECT_GT(m.get("packets_dropped"), 0.0);
  EXPECT_GE(m.get("query_success_rate"), 0.99)
      << "the repair path must restore consistency";
  // Whatever went stale and got repaired took positive time to fix.
  if (m.get("repairs") > 0.0) EXPECT_GT(m.get("mean_time_to_repair"), 0.0);
}

TEST(Resilience, CrashesDropEntriesAndSurvivorsReElect) {
  ScenarioConfig cfg = small_scenario();
  cfg.duration = 24.0;
  cfg.fault.crash_rate = 0.01;  // ~ 96 * 0.01 * 24 = 23 crash events expected
  cfg.fault.mean_downtime = 3.0;
  const auto m = run_simulation(cfg, lean_options());

  EXPECT_GT(m.get("crashes"), 0.0);
  EXPECT_GT(m.get("rejoins"), 0.0);
  EXPECT_GT(m.get("entries_dropped"), 0.0) << "a crashed server loses its store";
  EXPECT_GE(m.get("query_success_rate"), 0.9);
  // The run must stay alive and keep producing the core overhead metrics.
  EXPECT_GT(m.get("total_rate"), 0.0);
}

TEST(Resilience, TraceCarriesTypedFaultEvents) {
  ScenarioConfig cfg = small_scenario();
  cfg.fault.loss = 0.25;
  cfg.fault.crash_rate = 0.01;
  cfg.fault.mean_downtime = 3.0;

  sim::TraceSink sink(sim::TraceSink::Config{16384, 1});
  RunOptions opts = lean_options();
  opts.trace = &sink;
  run_simulation(cfg, opts);

  const auto count = [&](sim::TraceEventType type) {
    return sink.type_counts()[static_cast<Size>(type)];
  };
  EXPECT_GT(count(sim::TraceEventType::kRetransmit), 0u);
  EXPECT_GT(count(sim::TraceEventType::kPacketDropped), 0u);
  EXPECT_GT(count(sim::TraceEventType::kNodeCrash), 0u);
  EXPECT_GT(count(sim::TraceEventType::kRepair), 0u);
}

}  // namespace
}  // namespace manet::exp
