#pragma once

#include "common/rng.hpp"
#include "routing/table.hpp"

/// \file sessions.hpp
/// Data-plane session workload: Poisson unicast session arrivals between
/// uniform random pairs, each carrying a packet train routed over *strict
/// hierarchical routing* (not idealized shortest paths — stretch and
/// recovery detours are charged). This is the denominator of the paper's
/// Section-6 significance claim: LM control overhead must vanish relative
/// to the data load the network exists to carry (experiment E19).

namespace manet::traffic {

struct SessionConfig {
  double sessions_per_node_per_sec = 0.2;
  Size packets_per_session = 10;
};

struct SessionStats {
  Size sessions = 0;
  Size undeliverable = 0;          ///< routing failures (should be 0)
  Size recovered = 0;              ///< sessions that used recovery forwarding
  PacketCount data_transmissions = 0;
  double window = 0.0;             ///< accumulated seconds

  /// Data-plane packet transmissions per node per second.
  double rate(Size node_count) const;
  /// Mean data transmissions per delivered session (= packet train length
  /// times the routed path length).
  double mean_transmissions_per_session() const;
};

class SessionWorkload {
 public:
  SessionWorkload(SessionConfig config, std::uint64_t seed);

  /// Generate Poisson(n * rate * dt) sessions between uniform random pairs
  /// and route each over \p tables; accumulate the transmission count.
  void tick(const routing::RoutingTables& tables, Size node_count, Time dt);

  const SessionStats& stats() const { return stats_; }

 private:
  SessionConfig config_;
  common::Xoshiro256 rng_;
  SessionStats stats_;
};

}  // namespace manet::traffic
