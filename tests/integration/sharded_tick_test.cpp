/// Bit-identity of the sharded parallel tick (RunOptions::threads,
/// RunOptions::shards) against the sequential legacy path.
///
/// The contract (sim/shard.hpp): the shard topology is chosen at run start
/// (resolve_shard_count; --shards, 0 = auto from the worker count), every
/// per-shard output is merged in shard index order, and boundary work is
/// owned by exactly one shard — so every run product (flattened RunMetrics,
/// trace stream, metrics registry) must be byte-identical at *any* shard
/// count x *any* thread count. The suite pins shards {1, 4, 16, 64} x
/// threads {1, 2, 8} for the faulted-sessions and query-serving regimes.
/// Like the golden fixtures, the config uses a dyadic tick (0.5) so float
/// accumulation is order-exact and byte-identity is a meaningful contract.
///
/// The only permitted difference: parallel runs additionally publish par.*
/// telemetry counters (sharded-work accounting) that a sequential run never
/// creates. Those are excluded when comparing sequential vs parallel and
/// compared in full between parallel runs: every par.* counter is a sum of
/// per-item work over shards, so the totals are invariant to BOTH the
/// thread count and the shard count.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/metrics.hpp"
#include "exp/montecarlo.hpp"
#include "exp/simulation.hpp"
#include "sim/trace.hpp"

using namespace manet;

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

exp::ScenarioConfig base_config() {
  exp::ScenarioConfig cfg;
  cfg.n = 96;
  cfg.density = 1.0;
  cfg.mu = 1.0;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  cfg.tick = 0.5;  // dyadic — see file comment
  cfg.warmup = 2.0;
  cfg.duration = 6.0;
  cfg.seed = 424242;
  return cfg;
}

/// Faults + long-lived sessions: covers the ARQ-attached regime where batch
/// pricing must stay inert (the per-transfer RNG stream is order-sensitive)
/// while unit-disk and link diffing still shard.
exp::ScenarioConfig faulted_sessions_config() {
  auto cfg = base_config();
  cfg.fault.loss = 0.05;
  cfg.fault.crash_rate = 0.02;
  cfg.fault.mean_downtime = 3.0;
  cfg.sessions = true;
  return cfg;
}

std::string serialize(const exp::RunMetrics& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics.values) {
    out += name + '=' + fmt(value) + '\n';
  }
  return out;
}

std::string serialize(const sim::TraceSink& sink) {
  std::string out;
  for (const auto& e : sink.snapshot()) {
    out += fmt(e.t);
    out += ' ';
    out += sim::to_string(e.type);
    out += " k=" + std::to_string(e.level);
    out += " a=" + std::to_string(e.a);
    out += " b=" + std::to_string(e.b);
    out += " v=" + fmt(e.value);
    out += '\n';
  }
  out += "seen=" + std::to_string(sink.seen()) + '\n';
  return out;
}

/// alloc.* exists only under MANET_PROFILE_ALLOC; par.* exists only when an
/// executor is attached (skip_par excludes it for seq-vs-par comparisons).
std::string serialize(const common::MetricsRegistry& registry, bool skip_par) {
  std::string out;
  for (const auto& entry : registry.entries()) {
    if (entry.name.rfind("alloc.", 0) == 0) continue;
    if (skip_par && entry.name.rfind("par.", 0) == 0) continue;
    switch (entry.kind) {
      case common::MetricsRegistry::Entry::Kind::kCounter:
        out += "C " + entry.name + " " + std::to_string(entry.counter->value());
        break;
      case common::MetricsRegistry::Entry::Kind::kGauge:
        out += "G " + entry.name + " " + fmt(entry.gauge->value());
        break;
      case common::MetricsRegistry::Entry::Kind::kRateMeter:
        out += "R " + entry.name + " " + std::to_string(entry.rate_meter->total());
        break;
      case common::MetricsRegistry::Entry::Kind::kHistogram:
        out += "H " + entry.name + " " + std::to_string(entry.histogram->count()) +
               " " + fmt(entry.histogram->sum()) + " " + fmt(entry.histogram->max_seen());
        break;
    }
    out += '\n';
  }
  return out;
}

struct Products {
  std::string metrics;
  std::string trace;
  std::string registry;       ///< par.* excluded (comparable to sequential)
  std::string registry_full;  ///< par.* included (parallel-vs-parallel)
};

Products run_with_threads(const exp::ScenarioConfig& cfg, Size threads,
                          Size query_load = 0, Size shards = 0) {
  exp::RunOptions opts;
  opts.run_gls = true;
  opts.track_registration = true;
  opts.measure_routing = true;
  opts.threads = threads;
  opts.shards = shards;
  opts.query_load = query_load;
  common::MetricsRegistry registry;
  sim::TraceSink trace;
  opts.metrics = &registry;
  opts.trace = &trace;
  const auto metrics = exp::run_simulation(cfg, opts);
  return Products{serialize(metrics), serialize(trace),
                  serialize(registry, /*skip_par=*/true),
                  serialize(registry, /*skip_par=*/false)};
}

/// The full ISSUE-pinned topology sweep: shards {1, 4, 16, 64} x threads
/// {1, 2, 8}, every cell compared against the pure sequential legacy path
/// (threads=1, shards=0: no executor at all). par.* is excluded against
/// sequential; between parallel cells even par.* must agree (workload sums).
void expect_shard_count_identity(const exp::ScenarioConfig& cfg,
                                 Size query_load = 0) {
  const auto seq = run_with_threads(cfg, 1, query_load, 0);
  std::string par_registry_full;  // from the first parallel cell
  for (const Size shards : {Size{1}, Size{4}, Size{16}, Size{64}}) {
    for (const Size threads : {Size{1}, Size{2}, Size{8}}) {
      const auto par = run_with_threads(cfg, threads, query_load, shards);
      const std::string cell = " at shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads);
      EXPECT_EQ(seq.metrics, par.metrics) << "RunMetrics diverged" << cell;
      EXPECT_EQ(seq.trace, par.trace) << "trace stream diverged" << cell;
      EXPECT_EQ(seq.registry, par.registry) << "registry diverged" << cell;
      EXPECT_NE(par.registry_full, par.registry)
          << "no par.* telemetry" << cell << " — executor not attached?";
      if (par_registry_full.empty()) {
        par_registry_full = par.registry_full;
      } else {
        EXPECT_EQ(par_registry_full, par.registry_full)
            << "par.* telemetry depends on the topology" << cell;
      }
    }
  }
}

void expect_thread_identity(const exp::ScenarioConfig& cfg) {
  const auto seq = run_with_threads(cfg, 1);
  const auto par2 = run_with_threads(cfg, 2);
  const auto par8 = run_with_threads(cfg, 8);

  EXPECT_EQ(seq.metrics, par2.metrics) << "RunMetrics diverged at threads=2";
  EXPECT_EQ(seq.metrics, par8.metrics) << "RunMetrics diverged at threads=8";
  EXPECT_EQ(seq.trace, par2.trace) << "trace stream diverged at threads=2";
  EXPECT_EQ(seq.trace, par8.trace) << "trace stream diverged at threads=8";
  EXPECT_EQ(seq.registry, par2.registry) << "registry diverged at threads=2";
  EXPECT_EQ(seq.registry, par8.registry) << "registry diverged at threads=8";
  // Between two parallel runs even the par.* telemetry must agree: the
  // sharded workload accounting is a pure function of the (fixed) shard
  // decomposition, never of the worker count.
  EXPECT_EQ(par2.registry_full, par8.registry_full)
      << "par.* telemetry depends on the thread count";
  EXPECT_NE(par2.registry_full, par2.registry)
      << "parallel run published no par.* telemetry — executor not attached?";
}

TEST(ShardedTick, FaultFreeRunIsThreadCountInvariant) {
  expect_thread_identity(base_config());
}

TEST(ShardedTick, FaultedSessionsRunIsThreadCountInvariant) {
  expect_thread_identity(faulted_sessions_config());
}

TEST(ShardedTick, QueryServingRunIsThreadCountInvariant) {
  // The query plane (RunOptions::query_load, lm::QueryEngine) serves its
  // deterministic lookup stream over the same canonical shard slices in the
  // sequential and parallel paths, so query_lookups / query_hits /
  // query_digest must be byte-identical at every thread count.
  const auto cfg = base_config();
  const auto seq = run_with_threads(cfg, 1, /*query_load=*/512);
  const auto par2 = run_with_threads(cfg, 2, /*query_load=*/512);
  const auto par8 = run_with_threads(cfg, 8, /*query_load=*/512);
  EXPECT_NE(seq.metrics.find("query_digest"), std::string::npos)
      << "query plane was not enabled";
  EXPECT_EQ(seq.metrics, par2.metrics) << "query metrics diverged at threads=2";
  EXPECT_EQ(seq.metrics, par8.metrics) << "query metrics diverged at threads=8";
  EXPECT_EQ(seq.trace, par2.trace);
  EXPECT_EQ(seq.registry, par2.registry);
}

TEST(ShardedTick, FaultedSessionsRunIsShardCountInvariant) {
  // Tentpole acceptance sweep (runtime-tunable topology): the ARQ-attached
  // faulted + sessions regime across the full shards x threads grid.
  expect_shard_count_identity(faulted_sessions_config());
}

TEST(ShardedTick, QueryServingRunIsShardCountInvariant) {
  // The query plane slices its lookup stream over the RESOLVED shard count
  // and folds per-shard digests with a commutative sum, so query_lookups /
  // query_hits / query_digest are invariant to the partitioning too.
  expect_shard_count_identity(base_config(), /*query_load=*/512);
}

TEST(ShardedTick, ExplicitShardsOnOneWorkerMatchesSequential) {
  // threads=1 + shards>0 runs the sharded path on a one-worker pool; it
  // must still match the executor-free sequential run bit-for-bit.
  const auto cfg = base_config();
  const auto seq = run_with_threads(cfg, 1);
  const auto par = run_with_threads(cfg, 1, 0, /*shards=*/4);
  EXPECT_EQ(seq.metrics, par.metrics);
  EXPECT_EQ(seq.trace, par.trace);
  EXPECT_EQ(seq.registry, par.registry);
  EXPECT_NE(par.registry_full, par.registry)
      << "shards>0 on one worker should still attach the executor";
}

TEST(ShardedTick, HardwareConcurrencyMatchesSequential) {
  const auto cfg = base_config();
  const auto seq = run_with_threads(cfg, 1);
  const auto par = run_with_threads(cfg, 0);  // 0 = hardware concurrency
  EXPECT_EQ(seq.metrics, par.metrics);
  EXPECT_EQ(seq.trace, par.trace);
  EXPECT_EQ(seq.registry, par.registry);
}

}  // namespace
