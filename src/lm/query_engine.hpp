#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "lm/database.hpp"
#include "lm/server_select.hpp"

/// \file query_engine.hpp
/// Read-optimized concurrent query front over the LM database.
///
/// The simulator's write plane (HandoffEngine / ChlmService) mutates the
/// FlatMap-backed LmDatabase during the tick's write phase; this engine turns
/// that state into a *serving* surface: many reader threads answering
/// location lookups at memory speed while the handoff plane churns the
/// hierarchy underneath (ROADMAP item 3, bench_query E31).
///
/// Concurrency model — epoch-gated double buffering (RCU-lite):
///  - The single writer (the tick's write phase) calls publish() with the
///    fresh hierarchy + database. publish() builds the *inactive* snapshot
///    slot, then flips the front-slot index with one atomic store. Each
///    publish is one **epoch**; epoch() exposes the monotone counter.
///  - Readers (lookup / lookup_batch, any thread) pin the front slot with a
///    pin -> validate -> retry protocol: bump the slot's reader count, then
///    re-check the front index; if it moved, retract and retry. A validated
///    pin guarantees the writer cannot rebuild that slot until the reader
///    unpins, so every answer is a consistent pre- or post-flip value —
///    never a torn mix (tests/lm/query_engine_test.cpp proves this at
///    1/2/8 threads and under TSan).
///  - Readers never block each other and never block the writer's flip; the
///    writer waits only for readers still pinned on the slot it is about to
///    rebuild — i.e. calls still in flight from *two* publishes ago. The
///    pin/validate pair and the flip use seq_cst so the Dekker-style
///    "reader pinned stale slot" vs "writer saw zero readers" race cannot
///    occur.
/// See docs/QUERY_ENGINE.md for the user-facing contract.

namespace manet::lm {

/// One lookup answer. `server` is the level-k location server the owner's
/// entry hashes to under the published hierarchy; `found` says whether that
/// server actually held the (owner, k) record at publish time (false also
/// covers out-of-range owners/levels, with server == kInvalidNode).
struct QueryResult {
  NodeId server = kInvalidNode;
  std::uint64_t version = 0;  ///< the record's monotone version, 0 if !found
  Time updated = 0.0;         ///< the record's last refresh time, 0 if !found
  bool found = false;
};

/// Single-writer / many-reader location query engine. Writer methods
/// (publish) must come from one thread at a time — the tick structure's
/// write phase provides that naturally; reader methods (lookup,
/// lookup_batch, epoch) are safe from any number of concurrent threads.
class QueryEngine {
 public:
  explicit QueryEngine(ServerSelectConfig select = ServerSelectConfig{});

  /// Writer: snapshot the (hierarchy, database) pair as the next epoch and
  /// flip readers onto it. Blocks only while readers are still pinned on the
  /// slot being rebuilt (in-flight calls from two publishes ago).
  void publish(const cluster::Hierarchy& h, const LmDatabase& db, Time now);

  /// Reader: answer one (owner, level-k) location query against the current
  /// epoch. Lock-free with respect to the writer.
  QueryResult lookup(NodeId owner, Level k) const;

  /// Reader: answer a batch of same-level queries, one QueryResult per
  /// owner (out.size() must equal owners.size()). The whole batch is served
  /// from a single pinned epoch, so its answers are mutually consistent.
  /// Returns the number of found entries.
  Size lookup_batch(std::span<const NodeId> owners, Level k, std::span<QueryResult> out) const;

  /// Reader: the current epoch number (0 before the first publish; each
  /// publish increments it by one).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  /// Immutable-once-published flat view of one (hierarchy, database) state.
  /// Indexed [owner * width + (k - kFirstServedLevel)], mirroring the
  /// handoff engine's row-major snapshot layout.
  struct Snapshot {
    std::uint64_t epoch = 0;
    Size n = 0;
    Level top = 0;
    Size width = 0;
    Time published_at = 0.0;
    std::vector<NodeId> servers;
    std::vector<std::uint64_t> versions;
    std::vector<Time> updated;
    std::vector<std::uint8_t> present;
  };

  struct Slot {
    Snapshot snap;
    mutable std::atomic<Size> readers{0};
  };

  const Slot* acquire() const;
  void release(const Slot* slot) const;
  static QueryResult lookup_in(const Snapshot& s, NodeId owner, Level k);

  ServerSelectConfig select_;
  Slot slots_[2];
  std::atomic<std::uint32_t> front_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t epoch_counter_ = 0;  ///< writer-only
};

}  // namespace manet::lm
