#pragma once

#include <string>
#include <vector>

#include "lm/handoff.hpp"

/// \file overhead.hpp
/// Run-level overhead report extracted from a HandoffEngine: the per-level
/// phi_k / gamma_k packet-transmission rates and migration frequencies f_k
/// in the paper's units (per node per second), ready for the analysis layer
/// and the benchmark tables.

namespace manet::lm {

struct OverheadReport {
  Size node_count = 0;
  Time window = 0.0;  ///< observation window, seconds

  double phi_rate = 0.0;    ///< total migration handoff (eq. 6c)
  double gamma_rate = 0.0;  ///< total reorganization handoff (eq. 11)

  /// Indexed by level k. phi/gamma entries 0..1 are zero by construction
  /// (no location entries live below level 2); to_text() CHECKs this.
  /// migration_per_level[1] (f_1) is real data.
  std::vector<double> phi_per_level;
  std::vector<double> gamma_per_level;
  std::vector<double> migration_per_level;  ///< f_k estimates

  Size phi_entries = 0;
  Size gamma_entries = 0;
  Size unreachable_transfers = 0;

  double total_rate() const { return phi_rate + gamma_rate; }

  static OverheadReport from(const HandoffEngine& engine);

  /// Multi-line human-readable rendering, one row per live level (rows whose
  /// phi_k, gamma_k and f_k are all zero are omitted).
  std::string to_text() const;
};

}  // namespace manet::lm
