#pragma once

#include <array>
#include <span>

#include "analysis/model_fit.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

/// \file bootstrap.hpp
/// Parametric bootstrap for the growth-law selection: the headline result
/// ("log^2 ranks first") is a point estimate over noisy Monte-Carlo means,
/// so we resample each point from Normal(mean_i, stderr_i), rerun the model
/// selection, and report how often each law wins. This turns "log^2 ranked
/// first" into "log^2 ranked first in 84% of resamples" — the confidence
/// statement EXPERIMENTS.md reports for E14.

namespace manet::analysis {

struct BootstrapSelection {
  /// Fraction of resamples in which each GrowthLaw ranked first.
  std::array<double, kGrowthLawCount> win_fraction{};

  /// Fraction of resamples in which log^2 ranked ABOVE both sqrt and linear
  /// (the decisive comparison even when log wins outright).
  double polylog_beats_roots = 0.0;

  GrowthLaw modal_winner{};
  double modal_fraction = 0.0;
  Size resamples = 0;
};

/// \p stderrs are the per-point standard errors of the means (0 = exact).
BootstrapSelection bootstrap_model_selection(std::span<const double> ns,
                                             std::span<const double> means,
                                             std::span<const double> stderrs,
                                             Size resamples = 1000,
                                             std::uint64_t seed = 0xB007);

}  // namespace manet::analysis
