/// E29: end-to-end session continuity over the handover FSM control plane.
/// The paper's instant-commit handoff hides every user-visible consequence
/// of a non-atomic transfer; this bench rides long-lived sessions on the
/// make-before-break FSM (lm/handover_fsm.hpp) under a fixed fault profile
/// and sweeps the mobility regime:
///   - static (mu = 0: only crash churn moves server assignments),
///   - vehicular (mu = 0.2: the paper's walking/driving band),
///   - saturation (mu = 1.0: the stress regime used everywhere else).
/// Measured per regime: handover procedure counts (timeouts, retries,
/// rollbacks, rollback failures), session misroute rate (packets chased
/// through a stale or rolled-back location copy), packet loss, and the p99
/// session-interruption window.
/// The headline acceptance bars (gated by tools/check_bench.py against the
/// committed baseline): in the vehicular regime the p99 interruption stays
/// under the baseline's max_session_interruption_p99 cap and the misroute
/// rate under max_misroute_rate.

#include "bench_util.hpp"

#include <chrono>
#include <limits>

using namespace manet;

namespace {

struct Regime {
  const char* name;
  double mu;
  exp::MobilityKind mobility;
};

constexpr Regime kRegimes[] = {
    {"static", 0.0, exp::MobilityKind::kStatic},
    {"vehicular", 0.2, exp::MobilityKind::kRandomWaypoint},
    {"saturation", 1.0, exp::MobilityKind::kRandomWaypoint},
};

exp::ScenarioConfig session_scenario(Size n, const Regime& regime) {
  exp::ScenarioConfig cfg = bench::paper_scenario();
  cfg.n = n;
  cfg.mu = regime.mu;
  cfg.mobility = regime.mobility;
  cfg.sessions = true;
  // Fixed fault profile: a moderately lossy control channel plus churn, the
  // same shape (milder dose) as the resilience bench's stress points.
  cfg.fault.loss = 0.1;
  cfg.fault.crash_rate = 0.01;
  cfg.fault.mean_downtime = 5.0;
  return cfg;
}

exp::RunOptions bench_options() {
  exp::RunOptions opts;
  // Per-tick session/FSM accounting only; the sampled end-of-run
  // measurements would dilute the throughput series.
  opts.measure_hops = false;
  opts.track_states = false;
  return opts;
}

/// Best-of-`reps` wall-clock throughput for the regression tripwire.
double ticks_per_sec(const exp::ScenarioConfig& cfg, Size reps) {
  double best_wall = std::numeric_limits<double>::infinity();
  double ticks = 0.0;
  for (Size r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const auto metrics = exp::run_simulation(cfg, bench_options());
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    best_wall = std::min(best_wall, wall.count());
    ticks = metrics.get("ticks");
  }
  return ticks / best_wall;
}

}  // namespace

int main() {
  bench::print_header(
      "E29  bench_sessions — session continuity across FSM handovers",
      "vehicular regime holds p99 interruption and misroute rate under the "
      "baseline caps; misroute tax grows with mu");

  const std::vector<Size> nodes = {128, 256};
  const Size reps = bench::standard_replications();
  common::ThreadPool pool;

  bench::Artifact artifact("sessions",
                           session_scenario(nodes.back(), kRegimes[1]), reps,
                           pool.thread_count());

  exp::SessionReport headline;  // vehicular regime, largest n
  for (const Size n : nodes) {
    analysis::TextTable table({"regime", "ho start", "complete", "timeout", "retry",
                               "rollback", "rb fail", "misroute", "p99 s", "loss"});
    for (const Regime& regime : kRegimes) {
      const exp::ScenarioConfig cfg = session_scenario(n, regime);
      const auto agg = exp::run_replications(cfg, reps, bench_options(), &pool);
      table.add_row({regime.name, bench::fixed(agg.mean("handover_started"), 1),
                     bench::fixed(agg.mean("handover_completed"), 1),
                     bench::fixed(agg.mean("handover_timeouts"), 1),
                     bench::fixed(agg.mean("handover_retries"), 1),
                     bench::fixed(agg.mean("handover_rollbacks"), 1),
                     bench::fixed(agg.mean("handover_rollback_failures"), 1),
                     bench::fixed(agg.mean("session_misroute_rate"), 4),
                     bench::fixed(agg.mean("session_interruption_p99"), 2),
                     bench::fixed(agg.mean("session_loss_rate"), 4)});

      const char* series[] = {"session_misroute_rate", "session_interruption_p99",
                              "session_loss_rate", "handover_rollbacks"};
      for (const char* key : series) {
        const auto s = agg.summary(key);
        artifact.add_point(std::string(key) + "." + regime.name,
                           exp::SeriesPoint{static_cast<double>(n), s.mean, s.ci95,
                                            s.count});
      }
      if (n == nodes.back() && regime.mu == 0.2) {
        headline.mu = cfg.mu;
        headline.loss = cfg.fault.loss;
        headline.crash_rate = cfg.fault.crash_rate;
        headline.packets_offered = agg.mean("session_packets");
        headline.delivered = agg.mean("session_delivered");
        headline.misrouted = agg.mean("session_misrouted");
        headline.lost = agg.mean("session_lost");
        headline.misroute_rate = agg.mean("session_misroute_rate");
        headline.loss_rate = agg.mean("session_loss_rate");
        headline.interruptions = agg.mean("session_interruptions");
        headline.interruption_time = agg.mean("session_interruption_time");
        headline.interruption_p99 = agg.mean("session_interruption_p99");
        headline.handover_started = agg.mean("handover_started");
        headline.handover_completed = agg.mean("handover_completed");
        headline.handover_retries = agg.mean("handover_retries");
        headline.handover_rollbacks = agg.mean("handover_rollbacks");
        headline.handover_rollback_failures = agg.mean("handover_rollback_failures");
        headline.handover_mean_completion = agg.mean("handover_mean_completion");
      }
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "|V| = %zu, loss = 0.1, crash = 0.01 /node/s, reps = %zu", n, reps);
    std::printf("%s", table.to_string(title).c_str());
  }

  // Throughput tripwire (vehicular regime): the session + FSM plane must not
  // quietly eat the tick budget.
  {
    analysis::TextTable table({"|V|", "ticks/s"});
    for (const Size n : nodes) {
      const double tps = ticks_per_sec(session_scenario(n, kRegimes[1]), 2);
      table.add_row({std::to_string(n), bench::fixed(tps, 5)});
      artifact.add_point("ticks_per_sec_sessions",
                         exp::SeriesPoint{static_cast<double>(n), tps, 0.0, 2});
    }
    std::printf("%s", table.to_string("session-plane throughput (vehicular)").c_str());
  }

  artifact.set_scalar("interruption_p99_vehicular", headline.interruption_p99);
  artifact.set_scalar("misroute_rate_vehicular", headline.misroute_rate);
  artifact.set_scalar("loss_rate_vehicular", headline.loss_rate);
  artifact.write();

  // Standalone continuity report (schema manet-sessions/1) for the headline
  // point, next to the bench artifact.
  {
    const char* dir = std::getenv("MANET_BENCH_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
        "SESSIONS_headline.json";
    std::ofstream file(path);
    if (file) {
      analysis::JsonWriter w(file, /*pretty=*/true);
      exp::write_sessions_json(w, headline);
      file << '\n';
      std::printf("wrote report %s\n", path.c_str());
    }
  }

  std::printf(
      "\nreading: in the static regime handovers come only from crash churn\n"
      "(re-elections move the assignment), so the misroute tax sits near the\n"
      "floor. Once servers move for real (vehicular and up) the non-atomic\n"
      "transfer shows through at 3-5x that floor: packets\n"
      "resolved mid-procedure chase the old copy (misroute tax ~ one extra\n"
      "leg), lost signalling opens retry/backoff windows, and crashed targets\n"
      "roll sessions back to the old server. The p99 interruption window is\n"
      "the user-facing price of those retries; it grows with mu but stays\n"
      "bounded because rollback pins the session to a live copy instead of\n"
      "blackholing it.\n");
  return 0;
}
