#include "lm/handoff.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace manet::lm {

namespace {
/// Transfer-cost histogram buckets (hops per moved entry).
constexpr double kHopBuckets[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}  // namespace

HandoffEngine::HandoffEngine(HandoffConfig config) : config_(config) {}

void HandoffEngine::set_metrics(common::MetricsRegistry* registry) {
  metrics_ = registry;
  phi_level_c_.clear();
  gamma_level_c_.clear();
  migration_level_c_.clear();
  if (registry == nullptr) {
    phi_packets_c_ = gamma_packets_c_ = phi_entries_c_ = gamma_entries_c_ = nullptr;
    level_churn_c_ = unreachable_c_ = nullptr;
    entry_moves_rate_ = nullptr;
    transfer_hops_h_ = nullptr;
    return;
  }
  phi_packets_c_ = &registry->counter("lm.phi_packets");
  gamma_packets_c_ = &registry->counter("lm.gamma_packets");
  phi_entries_c_ = &registry->counter("lm.phi_entries");
  gamma_entries_c_ = &registry->counter("lm.gamma_entries");
  level_churn_c_ = &registry->counter("lm.level_churn");
  unreachable_c_ = &registry->counter("lm.unreachable");
  entry_moves_rate_ = &registry->rate_meter("lm.entry_moves", 10.0);
  transfer_hops_h_ = &registry->histogram("lm.transfer_hops", kHopBuckets);
}

common::Counter* HandoffEngine::level_counter(std::vector<common::Counter*>& cache,
                                              const char* base, Level k) {
  if (cache.size() <= k) cache.resize(k + 1, nullptr);
  if (cache[k] == nullptr) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s.%u", base, k);
    cache[k] = &metrics_->counter(name);
  }
  return cache[k];
}

void HandoffEngine::publish_rates() {
  metrics_->gauge("lm.phi_rate").set(phi_rate());
  metrics_->gauge("lm.gamma_rate").set(gamma_rate());
  metrics_->gauge("lm.total_rate").set(phi_rate() + gamma_rate());
}

HandoffEngine::Snapshot HandoffEngine::capture(const cluster::Hierarchy& h) const {
  Snapshot snap;
  const Size n = h.level(0).vertex_count();
  snap.top = h.top_level();
  snap.servers = select_all_servers(h, config_.select);
  snap.anc_ids.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& anc = snap.anc_ids[v];
    anc.resize(snap.top);  // k = 1..top
    for (Level k = 1; k <= snap.top; ++k) anc[k - 1] = h.ancestor_id(v, k);
  }
  return snap;
}

void HandoffEngine::prime(const cluster::Hierarchy& h, Time t) {
  prev_ = capture(h);
  node_count_ = h.level(0).vertex_count();
  start_time_ = last_time_ = t;
  primed_ = true;
  migrations_.assign(prev_.top + 2, 0);
  levels_.assign(prev_.top + 2, LevelOverhead{});

  db_.reset(node_count_);
  for (NodeId owner = 0; owner < node_count_; ++owner) {
    for (Size i = 0; i < prev_.servers[owner].size(); ++i) {
      const Level k = static_cast<Level>(i) + kFirstServedLevel;
      db_.put(prev_.servers[owner][i], LocationRecord{owner, k, t, version_counter_++});
    }
  }
}

LevelOverhead& HandoffEngine::ledger(Level k) {
  if (levels_.size() <= k) levels_.resize(k + 1, LevelOverhead{});
  return levels_[k];
}

PacketCount HandoffEngine::price(const graph::Graph& g0, NodeId from, NodeId to) {
  if (from == to) return 0;
  if (config_.metric == HopMetric::kUnit) return 1;
  auto it = dist_cache_.find(from);
  if (it == dist_cache_.end()) {
    it = dist_cache_.emplace(from, graph::bfs_hops(g0, from)).first;
  }
  const std::uint32_t hops = it->second[to];
  if (hops == graph::kUnreachable) {
    ++unreachable_;
    if (unreachable_c_ != nullptr) unreachable_c_->add(1);
    return 0;
  }
  return hops;
}

HandoffEngine::TickResult HandoffEngine::update(const cluster::Hierarchy& h,
                                                const graph::Graph& g0, Time t) {
  MANET_CHECK_MSG(primed_, "HandoffEngine::update before prime");
  MANET_CHECK_MSG(t >= last_time_, "handoff time must be monotone");
  MANET_CHECK_MSG(h.level(0).vertex_count() == node_count_, "node population changed");

  Snapshot next = capture(h);
  dist_cache_.clear();
  TickResult tick;

  // Count per-level cluster membership changes (f_k numerators).
  const Level common_top = std::min(prev_.top, next.top);
  if (migrations_.size() <= common_top) migrations_.resize(common_top + 1, 0);
  const std::vector<Size> migrations_before =
      metrics_ != nullptr ? migrations_ : std::vector<Size>{};
  for (NodeId v = 0; v < node_count_; ++v) {
    for (Level k = 1; k <= common_top; ++k) {
      if (prev_.anc_ids[v][k - 1] != next.anc_ids[v][k - 1]) ++migrations_[k];
    }
  }
  if (metrics_ != nullptr) {
    for (Level k = 1; k <= common_top; ++k) {
      const Size before = k < migrations_before.size() ? migrations_before[k] : 0;
      const Size delta = migrations_[k] - before;
      if (delta > 0) level_counter(migration_level_c_, "lm.migrations", k)->add(delta);
    }
  }

  // Entry moves.
  const Level max_top = std::max(prev_.top, next.top);
  for (NodeId v = 0; v < node_count_; ++v) {
    for (Level k = kFirstServedLevel; k <= max_top; ++k) {
      const bool had = k <= prev_.top;
      const bool has = k <= next.top;
      const NodeId s_old = had ? prev_.servers[v][k - kFirstServedLevel] : kInvalidNode;
      const NodeId s_new = has ? next.servers[v][k - kFirstServedLevel] : kInvalidNode;
      if (had && has) {
        if (s_old == s_new) continue;
        // Attribution: migration when the owner's level-k cluster changed;
        // otherwise the cluster kept its head but recomposed (reorg).
        const bool anc_known =
            k <= prev_.top && k <= next.top;
        const bool migrated =
            anc_known && prev_.anc_ids[v][k - 1] != next.anc_ids[v][k - 1];
        const PacketCount cost = price(g0, s_old, s_new);
        auto& lvl = ledger(k);
        if (migrated) {
          lvl.phi_packets += cost;
          ++lvl.phi_entries;
          tick.phi_packets += cost;
          if (metrics_ != nullptr) {
            phi_packets_c_->add(cost);
            phi_entries_c_->add(1);
            level_counter(phi_level_c_, "lm.phi_packets", k)->add(cost);
          }
        } else {
          lvl.gamma_packets += cost;
          ++lvl.gamma_entries;
          tick.gamma_packets += cost;
          if (metrics_ != nullptr) {
            gamma_packets_c_->add(cost);
            gamma_entries_c_->add(1);
            level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          }
        }
        ++tick.entries_moved;
        if (metrics_ != nullptr) {
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{
              t, migrated ? sim::TraceEventType::kHandoffPhi
                          : sim::TraceEventType::kHandoffGamma,
              k, s_old, s_new, static_cast<double>(cost)});
        }
        const LocationRecord rec = db_.take(s_old, v, k);
        db_.put(s_new, LocationRecord{v, k, t, rec.owner == kInvalidNode
                                                   ? version_counter_++
                                                   : rec.version + 1});
      } else if (had && !has) {
        // Hierarchy lost level k: the entry retires to its owner.
        const PacketCount cost = price(g0, s_old, v);
        auto& lvl = ledger(k);
        lvl.gamma_packets += cost;
        ++lvl.gamma_entries;
        tick.gamma_packets += cost;
        ++tick.entries_moved;
        ++level_churn_;
        db_.take(s_old, v, k);
        if (metrics_ != nullptr) {
          gamma_packets_c_->add(cost);
          gamma_entries_c_->add(1);
          level_churn_c_->add(1);
          level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{t, sim::TraceEventType::kLevelChurn, k, s_old, v,
                                         static_cast<double>(cost)});
        }
      } else if (!had && has) {
        // Hierarchy gained level k: the owner registers with the new server.
        const PacketCount cost = price(g0, v, s_new);
        auto& lvl = ledger(k);
        lvl.gamma_packets += cost;
        ++lvl.gamma_entries;
        tick.gamma_packets += cost;
        ++tick.entries_moved;
        ++level_churn_;
        db_.put(s_new, LocationRecord{v, k, t, version_counter_++});
        if (metrics_ != nullptr) {
          gamma_packets_c_->add(cost);
          gamma_entries_c_->add(1);
          level_churn_c_->add(1);
          level_counter(gamma_level_c_, "lm.gamma_packets", k)->add(cost);
          entry_moves_rate_->mark(t);
          transfer_hops_h_->observe(static_cast<double>(cost));
        }
        if (trace_ != nullptr) {
          trace_->record(sim::TraceEvent{t, sim::TraceEventType::kLevelChurn, k, v, s_new,
                                         static_cast<double>(cost)});
        }
      }
    }
  }

  prev_ = std::move(next);
  last_time_ = t;
  if (metrics_ != nullptr) publish_rates();
  return tick;
}

PacketCount HandoffEngine::total_phi() const {
  PacketCount sum = 0;
  for (const auto& lvl : levels_) sum += lvl.phi_packets;
  return sum;
}

PacketCount HandoffEngine::total_gamma() const {
  PacketCount sum = 0;
  for (const auto& lvl : levels_) sum += lvl.gamma_packets;
  return sum;
}

double HandoffEngine::phi_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_phi()) / denom : 0.0;
}

double HandoffEngine::gamma_rate() const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_gamma()) / denom : 0.0;
}

double HandoffEngine::phi_rate_at(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  if (denom <= 0.0 || k >= levels_.size()) return 0.0;
  return static_cast<double>(levels_[k].phi_packets) / denom;
}

double HandoffEngine::gamma_rate_at(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  if (denom <= 0.0 || k >= levels_.size()) return 0.0;
  return static_cast<double>(levels_[k].gamma_packets) / denom;
}

Size HandoffEngine::migration_count(Level k) const {
  return k < migrations_.size() ? migrations_[k] : 0;
}

double HandoffEngine::migration_rate(Level k) const {
  const double denom = static_cast<double>(node_count_) * elapsed();
  return denom > 0.0 ? static_cast<double>(migration_count(k)) / denom : 0.0;
}

}  // namespace manet::lm
