#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file flat_map.hpp
/// Open-addressing hash map for integral keys (NodeId, packed u64) with
/// deterministic iteration, built for the simulation kernel's hot paths
/// where std::unordered_map's per-node allocations dominated the tick cost.
///
/// Layout: a dense `entries_` vector (each element a {key, value} pair, in
/// insertion order) plus a power-of-two slot table of 32-bit indices
/// (index + 1; 0 = empty) probed linearly. Lookups touch the slot table and
/// one dense element; inserts append to the dense vector; erases backward-
/// shift the slot run (no slot tombstones) and mark the dense entry dead,
/// compacting when dead entries outnumber live ones. Steady-state churn
/// (insert/erase at stable size) therefore allocates nothing.
///
/// Determinism contract: iteration visits live entries in insertion order —
/// pointer values and hash seeds never influence the order, so iterating a
/// FlatMap cannot leak nondeterminism into metrics or traces the way
/// unordered_map bucket order can. sorted_keys() provides the sorted drain
/// for the few cold paths that want key order.

namespace manet::common {

/// Stafford variant-13 finalizer of MurmurHash3 (same mixer as
/// common::mix64, inlined here because the map probes on every lookup).
struct IntegralHash {
  template <typename K>
  std::uint64_t operator()(K key) const noexcept {
    auto x = static_cast<std::uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }
};

template <typename Key, typename Value, typename Hash = IntegralHash>
class FlatMap {
 public:
  struct Entry {
    Key key{};
    Value value{};
    bool alive = true;  ///< internal — dead entries are skipped and compacted
  };

  FlatMap() = default;

  Size size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Drops all entries; keeps both the dense and slot capacity.
  void clear() noexcept {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
    live_ = 0;
    dead_ = 0;
  }

  void reserve(Size n) {
    entries_.reserve(n);
    if (slot_budget(slots_.size()) < n) rebuild(slots_for(n));
  }

  Value* find(const Key& key) noexcept {
    const Size slot = find_slot(key);
    return slot == kNoSlot ? nullptr : &entries_[slots_[slot] - 1].value;
  }

  const Value* find(const Key& key) const noexcept {
    const Size slot = find_slot(key);
    return slot == kNoSlot ? nullptr : &entries_[slots_[slot] - 1].value;
  }

  bool contains(const Key& key) const noexcept { return find_slot(key) != kNoSlot; }

  /// Value of \p key, default-constructing (and inserting) when absent.
  Value& operator[](const Key& key) {
    if (slot_budget(slots_.size()) < live_ + 1) rebuild(slots_for(live_ + 1));
    Size i = home_of(key);
    while (slots_[i] != 0) {
      Entry& e = entries_[slots_[i] - 1];
      if (e.key == key) return e.value;
      i = next(i);
    }
    MANET_CHECK_MSG(entries_.size() < 0xFFFFFFFFu, "FlatMap index overflow");
    entries_.push_back(Entry{key, Value{}, true});
    slots_[i] = static_cast<std::uint32_t>(entries_.size());  // index + 1
    ++live_;
    return entries_.back().value;
  }

  /// Insert \p value under \p key (overwriting); true when newly inserted.
  bool insert_or_assign(const Key& key, Value value) {
    const Size before = live_;
    (*this)[key] = std::move(value);
    return live_ != before;
  }

  /// Remove \p key; true when it was present. O(1) amortized — the slot run
  /// is backward-shifted so probes never cross stale slots, and the dense
  /// hole is reclaimed by the next compaction.
  bool erase(const Key& key) {
    Size i = find_slot(key);
    if (i == kNoSlot) return false;
    entries_[slots_[i] - 1].alive = false;
    --live_;
    ++dead_;
    // Backward-shift deletion: any displaced entry later in the probe run
    // whose home slot lies at or before the hole moves into it.
    Size j = i;
    for (;;) {
      j = next(j);
      if (slots_[j] == 0) break;
      const Size home = home_of(entries_[slots_[j] - 1].key);
      if (((j - home) & mask()) >= ((j - i) & mask())) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i] = 0;
    if (dead_ > live_ + 16) rebuild(slots_.size());
    return true;
  }

  /// Live keys in ascending key order (cold-path drain helper).
  void sorted_keys(std::vector<Key>& out) const {
    out.clear();
    out.reserve(live_);
    for (const Entry& e : entries_) {
      if (e.alive) out.push_back(e.key);
    }
    std::sort(out.begin(), out.end());
  }

  // Insertion-ordered iteration over live entries (see determinism contract).
  template <typename EntryT, typename VecT>
  class Iter {
   public:
    Iter(VecT* entries, Size i) : entries_(entries), i_(i) { skip(); }
    EntryT& operator*() const { return (*entries_)[i_]; }
    EntryT* operator->() const { return &(*entries_)[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& other) const { return i_ == other.i_; }
    bool operator!=(const Iter& other) const { return i_ != other.i_; }

   private:
    void skip() {
      while (i_ < entries_->size() && !(*entries_)[i_].alive) ++i_;
    }
    VecT* entries_;
    Size i_;
  };
  using iterator = Iter<Entry, std::vector<Entry>>;
  using const_iterator = Iter<const Entry, const std::vector<Entry>>;

  iterator begin() noexcept { return iterator(&entries_, 0); }
  iterator end() noexcept { return iterator(&entries_, entries_.size()); }
  const_iterator begin() const noexcept { return const_iterator(&entries_, 0); }
  const_iterator end() const noexcept { return const_iterator(&entries_, entries_.size()); }

 private:
  static constexpr Size kNoSlot = static_cast<Size>(-1);
  static constexpr Size kMinSlots = 8;

  Size mask() const noexcept { return slots_.size() - 1; }
  Size next(Size i) const noexcept { return (i + 1) & mask(); }
  Size home_of(const Key& key) const noexcept {
    return static_cast<Size>(Hash{}(key)) & mask();
  }

  /// Max live entries a slot table of \p slots supports (7/8 load factor).
  static Size slot_budget(Size slots) noexcept { return slots - slots / 8; }

  static Size slots_for(Size live) {
    Size slots = kMinSlots;
    while (slot_budget(slots) < live) slots *= 2;
    return slots;
  }

  Size find_slot(const Key& key) const noexcept {
    if (slots_.empty()) return kNoSlot;
    Size i = home_of(key);
    while (slots_[i] != 0) {
      if (entries_[slots_[i] - 1].key == key) return i;
      i = next(i);
    }
    return kNoSlot;
  }

  /// Re-point the slot table at \p slot_count slots, compacting dead dense
  /// entries in the same pass (survivors keep their relative order).
  void rebuild(Size slot_count) {
    if (dead_ > 0) {
      Size w = 0;
      for (Size r = 0; r < entries_.size(); ++r) {
        if (!entries_[r].alive) continue;
        if (w != r) entries_[w] = std::move(entries_[r]);
        ++w;
      }
      entries_.resize(w);
      dead_ = 0;
    }
    slots_.assign(slot_count, 0u);
    for (Size idx = 0; idx < entries_.size(); ++idx) {
      Size i = home_of(entries_[idx].key);
      while (slots_[i] != 0) i = next(i);
      slots_[i] = static_cast<std::uint32_t>(idx + 1);
    }
  }

  std::vector<Entry> entries_;        ///< dense, insertion-ordered, may hold dead
  std::vector<std::uint32_t> slots_;  ///< power-of-two probe table, index + 1
  Size live_ = 0;
  Size dead_ = 0;
};

}  // namespace manet::common
