#include "common/alloc_profile.hpp"

#ifdef MANET_PROFILE_ALLOC

#include <atomic>
#include <cstdlib>
#include <new>

namespace manet::common::alloc_profile {
namespace {

// constinit: the interposed operators can run before any dynamic initializer.
constinit std::atomic<std::uint64_t> g_allocations{0};
constinit std::atomic<std::uint64_t> g_frees{0};
constinit std::atomic<std::uint64_t> g_bytes{0};

void* allocate(std::size_t size) noexcept {
  // malloc(0) may return nullptr legally; operator new must return a unique
  // pointer, so round zero-byte requests up.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

void* allocate_aligned(std::size_t size, std::size_t alignment) noexcept {
  // aligned_alloc demands size % alignment == 0; round up.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p != nullptr) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

void record_free(void* p) noexcept {
  if (p != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

bool enabled() noexcept { return true; }

Totals totals() noexcept {
  return Totals{g_allocations.load(std::memory_order_relaxed),
                g_frees.load(std::memory_order_relaxed),
                g_bytes.load(std::memory_order_relaxed)};
}

Totals delta(const Totals& later, const Totals& earlier) noexcept {
  return Totals{later.allocations - earlier.allocations, later.frees - earlier.frees,
                later.bytes - earlier.bytes};
}

}  // namespace manet::common::alloc_profile

// ---------------------------------------------------------------------------
// Global replacement operators. Every flavor must be replaced together: a
// mixed set (e.g. counted scalar new but default aligned new) would pair a
// malloc'd pointer with the wrong deallocator.

void* operator new(std::size_t size) {
  void* p = manet::common::alloc_profile::allocate(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = manet::common::alloc_profile::allocate(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return manet::common::alloc_profile::allocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return manet::common::alloc_profile::allocate(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = manet::common::alloc_profile::allocate_aligned(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = manet::common::alloc_profile::allocate_aligned(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return manet::common::alloc_profile::allocate_aligned(
      size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return manet::common::alloc_profile::allocate_aligned(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { manet::common::alloc_profile::record_free(p); }
void operator delete[](void* p) noexcept { manet::common::alloc_profile::record_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  manet::common::alloc_profile::record_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  manet::common::alloc_profile::record_free(p);
}

#else  // !MANET_PROFILE_ALLOC

namespace manet::common::alloc_profile {

bool enabled() noexcept { return false; }
Totals totals() noexcept { return Totals{}; }
Totals delta(const Totals& later, const Totals& earlier) noexcept {
  return Totals{later.allocations - earlier.allocations, later.frees - earlier.frees,
                later.bytes - earlier.bytes};
}

}  // namespace manet::common::alloc_profile

#endif  // MANET_PROFILE_ALLOC
