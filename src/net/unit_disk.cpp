#include "net/unit_disk.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "graph/components.hpp"

namespace manet::net {

graph::Graph build_unit_disk_graph(const std::vector<geom::Vec2>& positions,
                                   double tx_radius) {
  UnitDiskBuilder builder(tx_radius);
  return builder.build(positions);
}

UnitDiskBuilder::UnitDiskBuilder(double tx_radius, bool ensure_connected)
    : tx_radius_(tx_radius), ensure_connected_(ensure_connected), grid_(tx_radius) {
  MANET_CHECK(tx_radius > 0.0);
}

graph::Graph UnitDiskBuilder::build(const std::vector<geom::Vec2>& positions) {
  grid_.rebuild(positions);
  edge_buffer_.clear();
  grid_.for_each_pair_within(tx_radius_, [this](NodeId u, NodeId v) {
    edge_buffer_.emplace_back(u, v);
  });
  // for_each_pair_within emits canonical (u < v) pairs, each exactly once.
  graph::Graph g(positions.size(), edge_buffer_);
  last_augmented_ = 0;
  if (!ensure_connected_ || graph::is_connected(g) || positions.size() < 2) return g;

  // Bridge every minor component to the giant one via the closest node pair
  // (checked against every giant-component node; component populations are
  // tiny in practice, so the quadratic scan is cheap and exact).
  const auto labels = graph::component_labels(g);
  const std::uint32_t n_comp = 1 + *std::max_element(labels.begin(), labels.end());
  std::vector<Size> comp_size(n_comp, 0);
  for (const auto l : labels) ++comp_size[l];
  const std::uint32_t giant = static_cast<std::uint32_t>(
      std::max_element(comp_size.begin(), comp_size.end()) - comp_size.begin());

  std::vector<NodeId> giant_nodes;
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] == giant) giant_nodes.push_back(v);
  }
  for (std::uint32_t c = 0; c < n_comp; ++c) {
    if (c == giant) continue;
    double best_d2 = std::numeric_limits<double>::infinity();
    NodeId best_u = kInvalidNode, best_v = kInvalidNode;
    for (NodeId u = 0; u < labels.size(); ++u) {
      if (labels[u] != c) continue;
      for (const NodeId v : giant_nodes) {
        const double d2 = geom::distance2(positions[u], positions[v]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_u = u;
          best_v = v;
        }
      }
    }
    MANET_CHECK(best_u != kInvalidNode);
    edge_buffer_.emplace_back(std::min(best_u, best_v), std::max(best_u, best_v));
    ++last_augmented_;
  }
  return graph::Graph(positions.size(), edge_buffer_);
}

}  // namespace manet::net
