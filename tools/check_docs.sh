#!/bin/sh
# Documentation lint, run as a ctest (see tools/CMakeLists.txt).
#
# Checks that the prose cannot silently drift from the code:
#   1. every src/<subsystem>/ directory is mentioned in docs/ARCHITECTURE.md;
#   2. every `bench_*` binary named in EXPERIMENTS.md exists in
#      bench/CMakeLists.txt (and therefore gets built);
#   3. every bench source file has a matching bench/CMakeLists.txt entry.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
status=0

fail() {
    echo "check_docs: $1" >&2
    status=1
}

arch="$root/docs/ARCHITECTURE.md"
experiments="$root/EXPERIMENTS.md"
bench_cmake="$root/bench/CMakeLists.txt"

for f in "$arch" "$experiments" "$bench_cmake"; do
    [ -f "$f" ] || { echo "check_docs: missing $f" >&2; exit 1; }
done

# 1. Every src/ subsystem appears in ARCHITECTURE.md.
for dir in "$root"/src/*/; do
    name=$(basename "$dir")
    grep -q "$name" "$arch" ||
        fail "src/$name is never mentioned in docs/ARCHITECTURE.md"
done

# 2. Every bench binary named in EXPERIMENTS.md is registered in
#    bench/CMakeLists.txt.
for bench in $(grep -o 'bench_[a-z_0-9]*' "$experiments" | sort -u); do
    [ "$bench" = "bench_util" ] && continue  # shared header, not a binary
    grep -q "$bench" "$bench_cmake" ||
        fail "EXPERIMENTS.md names $bench but bench/CMakeLists.txt does not build it"
done

# 3. Every bench source has a CMake registration (catches forgotten adds).
for src in "$root"/bench/bench_*.cpp; do
    name=$(basename "$src" .cpp)
    grep -q "$name" "$bench_cmake" ||
        fail "bench/$name.cpp exists but bench/CMakeLists.txt does not build it"
done

# 4. The fault-injection chapter exists and names the three fault-plane
#    classes plus the sanitizer switch (keeps the chapter from rotting if
#    the classes are renamed).
grep -q '^## Fault injection & resilience' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Fault injection & resilience' chapter"
for sym in FaultConfig LossyChannel ReliableTransfer MANET_SANITIZE; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md fault chapter no longer mentions $sym"
done

# 5. The incremental tick pipeline is documented: the architecture chapter
#    exists and names the load-bearing pieces, and the bench + regression
#    gate are described in EXPERIMENTS.md.
grep -q '^## Incremental tick pipeline' "$arch" ||
    fail "docs/ARCHITECTURE.md lost its 'Incremental tick pipeline' chapter"
for sym in incremental_tick UnitDiskBuilder::update bit-identical tick_pipeline_test; do
    grep -q "$sym" "$arch" ||
        fail "docs/ARCHITECTURE.md tick-pipeline chapter no longer mentions $sym"
done
grep -q 'bench_tick_pipeline' "$experiments" ||
    fail "EXPERIMENTS.md lost its bench_tick_pipeline section"
grep -q 'check_bench.py' "$experiments" ||
    fail "EXPERIMENTS.md must describe the check_bench.py regression gate"
[ -f "$root/tools/baselines/BENCH_tick_pipeline.json" ] ||
    fail "tools/baselines/BENCH_tick_pipeline.json baseline is missing"

# 6. The dynamic resilience experiment is documented.
grep -q 'E21-dynamic' "$experiments" ||
    fail "EXPERIMENTS.md lost its E21-dynamic section"
grep -q 'manet-resilience/1' "$experiments" ||
    fail "EXPERIMENTS.md E21-dynamic must name the manet-resilience/1 schema"

[ "$status" -eq 0 ] && echo "check_docs: OK"
exit "$status"
