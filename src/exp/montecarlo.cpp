#include "exp/montecarlo.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace manet::exp {

void AggregatedMetrics::add(const RunMetrics& metrics) {
  for (const auto& [name, value] : metrics.values) {
    if (!std::isnan(value)) acc_[name].add(value);
  }
  ++replications_;
}

void AggregatedMetrics::merge(const AggregatedMetrics& other) {
  for (const auto& [name, acc] : other.acc_) acc_[name].merge(acc);
  replications_ += other.replications_;
}

bool AggregatedMetrics::has(const std::string& name) const { return acc_.contains(name); }

double AggregatedMetrics::mean(const std::string& name) const {
  const auto it = acc_.find(name);
  return it == acc_.end() ? std::numeric_limits<double>::quiet_NaN() : it->second.mean();
}

analysis::Summary AggregatedMetrics::summary(const std::string& name) const {
  const auto it = acc_.find(name);
  if (it == acc_.end()) return analysis::Summary{};
  const auto& a = it->second;
  return analysis::Summary{a.count(), a.mean(), a.stddev(), a.ci95_halfwidth(), a.min(),
                           a.max()};
}

std::vector<std::string> AggregatedMetrics::names() const {
  std::vector<std::string> out;
  out.reserve(acc_.size());
  for (const auto& [name, acc] : acc_) {
    (void)acc;
    out.push_back(name);
  }
  return out;
}

std::vector<RunMetrics> run_replication_block(const ScenarioConfig& base, Size rep_begin,
                                              Size rep_end, const RunOptions& options,
                                              common::ThreadPool* pool) {
  MANET_CHECK(rep_end > rep_begin);
  const Size count = rep_end - rep_begin;
  std::vector<RunMetrics> results(count);

  auto run_one = [&](Size i) {
    ScenarioConfig cfg = base;
    cfg.seed = common::derive_seed(base.seed, rep_begin + i);
    results[i] = run_simulation(cfg, options);
  };

  if (pool != nullptr && pool->thread_count() > 1 && count > 1) {
    pool->parallel_for(count, run_one);
  } else {
    for (Size i = 0; i < count; ++i) run_one(i);
  }
  return results;
}

AggregatedMetrics run_replications(const ScenarioConfig& base, Size replications,
                                   const RunOptions& options, common::ThreadPool* pool) {
  MANET_CHECK(replications >= 1);
  const auto results = run_replication_block(base, 0, replications, options, pool);
  AggregatedMetrics agg;
  for (const auto& metrics : results) agg.add(metrics);  // index order: deterministic
  return agg;
}

}  // namespace manet::exp
