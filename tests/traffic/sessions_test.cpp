#include "traffic/sessions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::traffic {
namespace {

struct World {
  graph::Graph g{0};
  cluster::Hierarchy h;
  Size n = 0;
};

World make(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  World w;
  w.g = builder.build(pts);
  w.h = cluster::HierarchyBuilder().build(w.g);
  w.n = n;
  return w;
}

TEST(Sessions, GeneratesExpectedVolume) {
  const auto w = make(200, 1);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.5;
  cfg.packets_per_session = 5;
  SessionWorkload workload(cfg, 2);
  for (int t = 0; t < 40; ++t) workload.tick(tables, w.n, 1.0);
  const auto& stats = workload.stats();
  // Expected sessions: 0.5 * 200 * 40 = 4000; Poisson CI is tight here.
  EXPECT_NEAR(static_cast<double>(stats.sessions), 4000.0, 300.0);
  EXPECT_DOUBLE_EQ(stats.window, 40.0);
  EXPECT_EQ(stats.undeliverable, 0u);
  EXPECT_GT(stats.data_transmissions, 0u);
}

TEST(Sessions, RateScalesWithPacketTrainLength) {
  const auto w = make(150, 3);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig small_cfg, big_cfg;
  small_cfg.packets_per_session = 2;
  big_cfg.packets_per_session = 20;
  SessionWorkload small_load(small_cfg, 4), big_load(big_cfg, 4);  // same seed: same pairs
  for (int t = 0; t < 20; ++t) {
    small_load.tick(tables, w.n, 1.0);
    big_load.tick(tables, w.n, 1.0);
  }
  EXPECT_EQ(big_load.stats().data_transmissions,
            10 * small_load.stats().data_transmissions);
}

TEST(Sessions, MeanTransmissionsMatchPathScale) {
  const auto w = make(300, 5);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.packets_per_session = 10;
  SessionWorkload workload(cfg, 6);
  for (int t = 0; t < 20; ++t) workload.tick(tables, w.n, 1.0);
  const double per_session = workload.stats().mean_transmissions_per_session();
  // 10 packets x typical path of a 300-node disk (a few to ~20 hops).
  EXPECT_GT(per_session, 10.0);
  EXPECT_LT(per_session, 400.0);
}

TEST(Sessions, Deterministic) {
  const auto w = make(120, 7);
  const routing::RoutingTables tables(w.g, w.h);
  SessionWorkload a(SessionConfig{}, 8), b(SessionConfig{}, 8);
  for (int t = 0; t < 10; ++t) {
    a.tick(tables, w.n, 1.0);
    b.tick(tables, w.n, 1.0);
  }
  EXPECT_EQ(a.stats().sessions, b.stats().sessions);
  EXPECT_EQ(a.stats().data_transmissions, b.stats().data_transmissions);
}

TEST(Sessions, FewerThanTwoNodesSkipsTheTickInsteadOfAborting) {
  // Regression: crash faults can shrink the alive set below 2; this used to
  // trip MANET_CHECK and abort the whole run.
  const auto w = make(50, 9);
  const routing::RoutingTables tables(w.g, w.h);
  SessionWorkload workload(SessionConfig{}, 10);
  workload.tick(tables, 1, 1.0);
  workload.tick(tables, 0, 1.0);
  EXPECT_EQ(workload.stats().skipped_ticks, 2u);
  EXPECT_EQ(workload.stats().sessions, 0u);
  EXPECT_DOUBLE_EQ(workload.stats().window, 0.0);

  SessionWorkload long_lived(SessionConfig{}, 10);
  SessionWorkload::TickContext ctx;
  ctx.tables = &tables;
  ctx.node_count = 1;
  ctx.now = 1.0;
  long_lived.tick_sessions(ctx);
  EXPECT_EQ(long_lived.stats().skipped_ticks, 1u);

  // Back above the threshold the workload resumes normally.
  workload.tick(tables, w.n, 1.0);
  EXPECT_DOUBLE_EQ(workload.stats().window, 1.0);
}

/// Scripted resolution: every destination resolves the same way, so the
/// continuity accounting is exactly predictable.
struct FixedLocator : LocatorView {
  LocateOutcome outcome;
  LocateOutcome locate(NodeId /*dst*/) override { return outcome; }
};

TEST(Sessions, LongLivedSessionsPersistAndDeliver) {
  const auto w = make(150, 11);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.1;
  cfg.mean_duration = 6.0;
  cfg.packets_per_sec = 2.0;
  SessionWorkload workload(cfg, 12);
  SessionWorkload::TickContext ctx;
  ctx.tables = &tables;
  ctx.node_count = w.n;
  ctx.dt = 1.0;
  for (int t = 1; t <= 30; ++t) {
    ctx.now = t;
    workload.tick_sessions(ctx);
  }
  workload.finish(31.0);
  const auto& stats = workload.stats();
  EXPECT_GT(stats.sessions, 0u);
  EXPECT_GT(stats.packets_offered, stats.sessions);  // sessions outlive a tick
  // Idealized resolution (no locator) + connected graph: everything delivers.
  EXPECT_EQ(stats.packets_delivered, stats.packets_offered);
  EXPECT_EQ(stats.packets_misrouted, 0u);
  EXPECT_EQ(stats.packets_lost, 0u);
  EXPECT_EQ(stats.interruptions, 0u);
  // No window ever closed -> the quantile is *absent* (quiet NaN, the
  // repo-wide sentinel), not a 0.0 that would pollute aggregates.
  EXPECT_TRUE(std::isnan(workload.interruption_quantile(0.99)));
}

TEST(Sessions, ResolutionMissOpensAnInterruptionWindowAndFreshCloses) {
  const auto w = make(100, 13);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.2;
  cfg.mean_duration = 100.0;  // sessions span the whole test
  cfg.packets_per_sec = 1.0;
  SessionWorkload workload(cfg, 14);
  FixedLocator locator;
  SessionWorkload::TickContext ctx;
  ctx.tables = &tables;
  ctx.locator = &locator;
  ctx.node_count = w.n;
  ctx.dt = 1.0;

  locator.outcome = LocateOutcome{LocateResult::kFresh, 0, kInvalidNode};
  ctx.now = 1.0;
  workload.tick_sessions(ctx);
  ASSERT_GT(workload.live_sessions(), 0u);
  EXPECT_EQ(workload.stats().interruptions, 0u);

  // Every resolution misses for 3 ticks: a window opens for each live
  // session (sessions expiring mid-outage close theirs at their natural end).
  locator.outcome = LocateOutcome{LocateResult::kMiss, kInvalidNode, kInvalidNode};
  const Size live = workload.live_sessions();
  for (int t = 2; t <= 4; ++t) {
    ctx.now = t;
    workload.tick_sessions(ctx);
  }
  EXPECT_GT(workload.stats().packets_lost, 0u);

  // Resolution recovers: every still-open window closes. Sessions that
  // survived the whole outage report windows of >= 3 s.
  locator.outcome = LocateOutcome{LocateResult::kFresh, 0, kInvalidNode};
  ctx.now = 5.0;
  workload.tick_sessions(ctx);
  EXPECT_GE(workload.stats().interruptions, live);
  EXPECT_GE(workload.interruption_quantile(1.0), 3.0);
  EXPECT_GT(workload.stats().interruption_time, 0.0);
}

TEST(Sessions, StaleResolutionMisroutesThroughTheHolder) {
  const auto w = make(100, 15);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.2;
  cfg.mean_duration = 50.0;
  cfg.packets_per_sec = 1.0;
  SessionWorkload workload(cfg, 16);
  FixedLocator locator;
  locator.outcome = LocateOutcome{LocateResult::kStaleHit, 7, 7};
  SessionWorkload::TickContext ctx;
  ctx.tables = &tables;
  ctx.locator = &locator;
  ctx.node_count = w.n;
  ctx.dt = 1.0;
  for (int t = 1; t <= 10; ++t) {
    ctx.now = t;
    workload.tick_sessions(ctx);
  }
  const auto& stats = workload.stats();
  ASSERT_GT(stats.packets_offered, 0u);
  // Destination 7's own packets resolve holder == dst and route directly;
  // everything else chases the stale holder first.
  EXPECT_GT(stats.packets_misrouted, 0u);
  EXPECT_GT(stats.misroute_extra, 0u);
  EXPECT_GT(stats.misroute_rate(), 0.5);
  // Misrouted packets still arrive (both legs route on a connected graph).
  EXPECT_EQ(stats.packets_delivered, stats.packets_offered);
  EXPECT_EQ(stats.interruptions, 0u);
}

TEST(Sessions, DownEndpointsLosePacketsWithoutRouting) {
  const auto w = make(80, 17);
  const routing::RoutingTables tables(w.g, w.h);
  SessionConfig cfg;
  cfg.sessions_per_node_per_sec = 0.3;
  cfg.mean_duration = 50.0;
  SessionWorkload workload(cfg, 18);
  std::vector<std::uint8_t> down(w.n, 1);  // everyone dark
  SessionWorkload::TickContext ctx;
  ctx.tables = &tables;
  ctx.down = &down;
  ctx.node_count = w.n;
  ctx.dt = 1.0;
  ctx.now = 1.0;
  workload.tick_sessions(ctx);
  // Dark endpoints are never admitted, so no sessions and no packets.
  EXPECT_EQ(workload.stats().sessions, 0u);
  EXPECT_EQ(workload.stats().packets_offered, 0u);

  // Admission draws were consumed anyway, so the arrival stream stays
  // aligned: once everyone is back up the workload admits sessions again,
  // and a mirror that never saw down nodes admits strictly more (only the
  // dark first tick differs).
  SessionWorkload mirror(cfg, 18);
  SessionWorkload::TickContext mirror_ctx = ctx;
  mirror_ctx.down = nullptr;
  mirror.tick_sessions(mirror_ctx);
  std::fill(down.begin(), down.end(), 0);  // everyone back up
  for (int t = 2; t <= 6; ++t) {
    ctx.now = t;
    mirror_ctx.now = t;
    workload.tick_sessions(ctx);
    mirror.tick_sessions(mirror_ctx);
  }
  EXPECT_GT(workload.stats().sessions, 0u);
  EXPECT_GT(mirror.stats().sessions, workload.stats().sessions);
}

TEST(Poisson, MeanAndVarianceMatch) {
  common::Xoshiro256 rng(9);
  for (const double lambda : {0.5, 4.0, 100.0}) {
    double sum = 0.0, sum2 = 0.0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
      const auto k = static_cast<double>(common::poisson(rng, lambda));
      sum += k;
      sum2 += k * k;
    }
    const double mean = sum / draws;
    const double var = sum2 / draws - mean * mean;
    EXPECT_NEAR(mean, lambda, lambda * 0.05 + 0.05) << "lambda " << lambda;
    EXPECT_NEAR(var, lambda, lambda * 0.15 + 0.1) << "lambda " << lambda;
  }
}

}  // namespace
}  // namespace manet::traffic
