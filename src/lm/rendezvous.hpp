#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

/// \file rendezvous.hpp
/// Highest-random-weight (rendezvous) hashing — scalar and batched kernels.
///
/// CHLM (paper Section 3.2) needs a hash that picks, for owner node v, one
/// member of a candidate set (a cluster's children) such that (a) any node
/// knowing v's id and the candidate set computes the *same* choice with no
/// coordination — unambiguous server selection — and (b) over many owners
/// the choices spread evenly — equitable server load. The paper notes GLS's
/// successor rule (its eq. (5)) fails requirement (b) in CHLM because every
/// owner in a cluster would hash to the same minimal member, and leaves the
/// concrete function open. Rendezvous hashing satisfies both requirements:
/// score(owner, candidate) = mix64(owner ^ salt ^ candidate) and the winner
/// is the argmax, so each owner sees an independent uniform permutation of
/// candidates.
///
/// The batched kernels exist for the query-serving path (lm/query_engine.hpp,
/// bench_query E31): many owners are scored against one candidate span in a
/// single pass, with the per-candidate hash work (`candidate * phi64`) hoisted
/// out of the per-owner inner loop so the remaining mix is a straight-line
/// elementwise map the compiler can auto-vectorize. Both batch kernels are
/// bit-identical to their scalar counterparts by construction and by test
/// (tests/lm/rendezvous_test.cpp).

namespace manet::lm {

/// Score of one (owner, candidate) pair under domain \p salt.
std::uint64_t rendezvous_score(std::uint64_t salt, NodeId owner, NodeId candidate) noexcept;

/// Weighted rendezvous score: w / -ln(u) with u the (0,1)-uniform image of
/// rendezvous_score(salt, owner, candidate). Argmax over candidates selects
/// candidate c with probability w_c / sum(w) — classic weighted HRW — which
/// is what lets server_select weight children by level-0 member counts.
double rendezvous_weighted_score(std::uint64_t salt, NodeId owner, NodeId candidate,
                                 double weight) noexcept;

/// Winner among \p candidates for \p owner; candidates must be non-empty.
/// Deterministic: ties (probability ~2^-64) break toward the smaller id.
NodeId rendezvous_pick(std::uint64_t salt, NodeId owner, std::span<const NodeId> candidates);

/// Winner among the *indices* [0, n): convenience when candidates are dense.
Size rendezvous_pick_index(std::uint64_t salt, NodeId owner, Size n);

/// Weighted winner among \p candidates (parallel \p weights span, all > 0);
/// ties break toward the smaller id. Matches the weighted-descent rule in
/// server_select exactly (same score, same tie-break).
NodeId rendezvous_pick_weighted(std::uint64_t salt, NodeId owner,
                                std::span<const NodeId> candidates,
                                std::span<const double> weights);

/// Reusable per-thread scratch for the batch kernels: holds the hoisted
/// per-candidate products and the per-candidate score lane. Reuse one
/// instance across calls to keep the batch path allocation-free.
struct RendezvousScratch {
  std::vector<std::uint64_t> products;  ///< candidate[j] * phi64, hoisted
  std::vector<std::uint64_t> scores;    ///< per-candidate scores for one owner
};

/// Batched rendezvous: for every owner in \p owners, pick the winner among
/// \p candidates and write it to \p out (same length as \p owners).
/// Bit-identical to calling rendezvous_pick per owner; the batch form hoists
/// the candidate-side multiply out of the inner loop and scores candidates
/// in a flat elementwise pass that auto-vectorizes.
void rendezvous_pick_batch(std::uint64_t salt, std::span<const NodeId> owners,
                           std::span<const NodeId> candidates, std::span<NodeId> out,
                           RendezvousScratch& scratch);

/// Batched weighted rendezvous: the weighted_descent analogue of
/// rendezvous_pick_batch. Bit-identical to rendezvous_pick_weighted per owner.
void rendezvous_pick_weighted_batch(std::uint64_t salt, std::span<const NodeId> owners,
                                    std::span<const NodeId> candidates,
                                    std::span<const double> weights, std::span<NodeId> out,
                                    RendezvousScratch& scratch);

}  // namespace manet::lm
