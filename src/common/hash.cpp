#include "common/hash.hpp"

namespace manet::common {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // Mix each input to full width before combining: the boost-style
  // a ^ (b + c + (a<<6) + (a>>2)) inner form collides on small structured
  // inputs (its low bits mix poorly), which matters here because node ids
  // and levels are small integers.
  return mix64(mix64(a) ^ (mix64(b) + 0x9E3779B97F4A7C15ULL));
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace manet::common
