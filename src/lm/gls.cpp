#include "lm/gls.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace manet::lm {

GridHierarchy::GridHierarchy(geom::Vec2 origin, double side, Level levels)
    : origin_(origin), side_(side), levels_(levels) {
  MANET_CHECK(side > 0.0);
  MANET_CHECK(levels >= 1);
}

GridHierarchy GridHierarchy::cover(geom::Vec2 origin, double side, double min_cell) {
  MANET_CHECK(min_cell > 0.0);
  MANET_CHECK(side > 0.0);
  Level levels = 1;
  while (side / std::pow(2.0, levels + 1) >= min_cell && levels < 30) ++levels;
  return GridHierarchy(origin, side, levels);
}

double GridHierarchy::cell_side(Level k) const {
  MANET_CHECK(k >= 1 && k <= levels_ + 1);
  // Level-(L+1) is the whole square; each step down halves the side.
  return side_ / std::pow(2.0, static_cast<double>(levels_ + 1 - k));
}

std::pair<std::int32_t, std::int32_t> GridHierarchy::cell(geom::Vec2 p, Level k) const {
  const double s = cell_side(k);
  // Clamp into the square so boundary points land in the outermost cells.
  const double x = std::clamp(p.x - origin_.x, 0.0, side_ * (1.0 - 1e-12));
  const double y = std::clamp(p.y - origin_.y, 0.0, side_ * (1.0 - 1e-12));
  return {static_cast<std::int32_t>(x / s), static_cast<std::int32_t>(y / s)};
}

std::uint64_t GridHierarchy::cell_key(geom::Vec2 p, Level k) const {
  const auto [cx, cy] = cell(p, k);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

GlsService::GlsService(GridHierarchy grid) : grid_(grid) {}

namespace {

/// Successor-ID rule of the paper's eq. (5): pick z in \p candidates
/// minimizing (id_z - id_v - 1) mod 2^32 — the least id greater than the
/// owner's, cyclically. The owner itself scores 2^32 - 1 and so is never
/// chosen unless alone, in which case the slot is reported empty.
NodeId successor_pick(NodeId owner_id, std::span<const std::pair<NodeId, NodeId>> candidates) {
  NodeId best = kInvalidNode;
  std::uint32_t best_score = 0xFFFFFFFFu;
  for (const auto& [node, id] : candidates) {
    if (id == owner_id) continue;
    const std::uint32_t score = id - owner_id - 1;  // mod 2^32 wraparound
    if (best == kInvalidNode || score < best_score) {
      best = node;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

void GlsService::rebuild(const std::vector<geom::Vec2>& positions, std::span<const NodeId> ids,
                         Time now) {
  (void)now;
  const Size n = positions.size();
  std::vector<NodeId> identity;
  if (ids.empty()) {
    identity.resize(n);
    for (NodeId v = 0; v < n; ++v) identity[v] = v;
    ids = identity;
  }
  MANET_CHECK(ids.size() == n);

  // Bucket nodes per level-(k-1) cell, for k-1 in [1, L]. One exact map per
  // level, keyed by the packed (cx, cy) cell coordinates.
  if (buckets_.size() < static_cast<Size>(grid_.levels()) + 1) {
    buckets_.resize(grid_.levels() + 1);
  }
  for (Level lvl = 1; lvl <= grid_.levels(); ++lvl) {
    buckets_[lvl].clear();
    for (NodeId v = 0; v < n; ++v) {
      buckets_[lvl][grid_.cell_key(positions[v], lvl)].push_back({v, ids[v]});
    }
  }

  const Level top = grid_.top_level();
  assignments_.assign(n, std::vector<NodeId>((top - 1) * kGlsSiblings, kInvalidNode));

  for (NodeId v = 0; v < n; ++v) {
    for (Level k = 2; k <= top; ++k) {
      // The 4 level-(k-1) children of v's level-k square; the 3 that differ
      // from v's own child square are the sibling slots.
      const Level child = k - 1;
      const auto [pcx, pcy] = grid_.cell(positions[v], k);
      const auto [own_cx, own_cy] = grid_.cell(positions[v], child);
      Size slot = 0;
      for (int dx = 0; dx < 2; ++dx) {
        for (int dy = 0; dy < 2; ++dy) {
          const std::int32_t cx = pcx * 2 + dx;
          const std::int32_t cy = pcy * 2 + dy;
          if (cx == own_cx && cy == own_cy) continue;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
              static_cast<std::uint32_t>(cy);
          const Bucket* cell_bucket = buckets_[child].find(key);
          NodeId server = kInvalidNode;
          if (cell_bucket != nullptr) server = successor_pick(ids[v], *cell_bucket);
          assignments_[v][(k - 2) * kGlsSiblings + slot] = server;
          ++slot;
        }
      }
      MANET_CHECK(slot == kGlsSiblings);
    }
  }
}

NodeId GlsService::server_of(NodeId owner, Level k, Size sibling) const {
  MANET_CHECK(owner < assignments_.size());
  MANET_CHECK(k >= 2 && k <= grid_.top_level());
  MANET_CHECK(sibling < kGlsSiblings);
  return assignments_[owner][(k - 2) * kGlsSiblings + sibling];
}

std::vector<Size> GlsService::load_vector() const {
  std::vector<Size> loads(node_count(), 0);
  for (const auto& row : assignments_) {
    for (const NodeId s : row) {
      if (s != kInvalidNode) ++loads[s];
    }
  }
  return loads;
}

GlsHandoffTracker::GlsHandoffTracker(GridHierarchy grid) : service_(grid) {}

void GlsHandoffTracker::prime(const std::vector<geom::Vec2>& positions,
                              std::span<const NodeId> ids, Time t) {
  service_.rebuild(positions, ids, t);
  prev_ = service_.assignments_;
  start_time_ = last_time_ = t;
  primed_ = true;
}

PacketCount GlsHandoffTracker::price(const graph::Graph& g0, NodeId from, NodeId to) {
  if (from == to) return 0;
  const std::uint32_t hops = pair_bfs_.hops(g0, from, to);
  if (hops == graph::kUnreachable) {
    ++unreachable_;
    return 0;
  }
  return hops;
}

GlsHandoffTracker::TickResult GlsHandoffTracker::update(
    const std::vector<geom::Vec2>& positions, const graph::Graph& g0,
    std::span<const NodeId> ids, Time t) {
  MANET_CHECK_MSG(primed_, "GlsHandoffTracker::update before prime");
  MANET_CHECK_MSG(t >= last_time_, "tracker time must be monotone");
  service_.rebuild(positions, ids, t);

  TickResult tick;
  const auto& next = service_.assignments_;
  MANET_CHECK(next.size() == prev_.size());
  for (NodeId v = 0; v < next.size(); ++v) {
    MANET_CHECK(next[v].size() == prev_[v].size());
    for (Size i = 0; i < next[v].size(); ++i) {
      const NodeId s_old = prev_[v][i];
      const NodeId s_new = next[v][i];
      if (s_old == s_new) continue;
      if (s_old != kInvalidNode && s_new != kInvalidNode) {
        tick.handoff_packets += price(g0, s_old, s_new);
        ++tick.entries_moved;
      } else if (s_new != kInvalidNode) {
        tick.update_packets += price(g0, v, s_new);
        ++tick.entries_moved;
      }
      // s_new == kInvalidNode: the sibling square emptied; entry evaporates
      // (the old server purges it lazily in real GLS — no transfer cost).
    }
  }
  total_handoff_ += tick.handoff_packets;
  total_update_ += tick.update_packets;
  prev_ = next;
  last_time_ = t;
  return tick;
}

double GlsHandoffTracker::handoff_rate() const {
  const double denom = static_cast<double>(node_count()) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_handoff_) / denom : 0.0;
}

double GlsHandoffTracker::update_rate() const {
  const double denom = static_cast<double>(node_count()) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_update_) / denom : 0.0;
}

double GlsHandoffTracker::combined_rate() const { return handoff_rate() + update_rate(); }

}  // namespace manet::lm
