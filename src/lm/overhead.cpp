#include "lm/overhead.hpp"

#include <cstdio>

namespace manet::lm {

OverheadReport OverheadReport::from(const HandoffEngine& engine) {
  OverheadReport report;
  report.node_count = engine.node_count();
  report.window = engine.elapsed();
  report.phi_rate = engine.phi_rate();
  report.gamma_rate = engine.gamma_rate();
  report.unreachable_transfers = engine.unreachable_transfers();

  const auto& levels = engine.per_level();
  report.phi_per_level.resize(levels.size());
  report.gamma_per_level.resize(levels.size());
  report.migration_per_level.resize(levels.size());
  for (Level k = 0; k < levels.size(); ++k) {
    report.phi_per_level[k] = engine.phi_rate_at(k);
    report.gamma_per_level[k] = engine.gamma_rate_at(k);
    report.migration_per_level[k] = engine.migration_rate(k);
    report.phi_entries += levels[k].phi_entries;
    report.gamma_entries += levels[k].gamma_entries;
  }
  return report;
}

std::string OverheadReport::to_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "n=%zu window=%.1fs phi=%.5f gamma=%.5f total=%.5f pkts/node/s\n",
                node_count, window, phi_rate, gamma_rate, total_rate());
  out += line;
  std::snprintf(line, sizeof(line), "%-6s %12s %12s %12s\n", "level", "phi_k", "gamma_k",
                "f_k");
  out += line;
  for (Level k = 1; k < phi_per_level.size(); ++k) {
    std::snprintf(line, sizeof(line), "%-6u %12.6f %12.6f %12.6f\n", k, phi_per_level[k],
                  gamma_per_level[k], migration_per_level[k]);
    out += line;
  }
  return out;
}

}  // namespace manet::lm
