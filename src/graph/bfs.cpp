#include "graph/bfs.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::graph {

namespace {

/// Shared BFS core over a preinitialized distance array and seeded queue.
void bfs_core(const Graph& g, std::vector<std::uint32_t>& dist, std::vector<NodeId>& queue) {
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const std::uint32_t du = dist[u];
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
}

}  // namespace

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  MANET_CHECK(source < g.vertex_count());
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  bfs_core(g, dist, queue);
  return dist;
}

std::vector<std::uint32_t> bfs_hops_multi(const Graph& g, std::span<const NodeId> sources) {
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<NodeId> queue;
  for (const NodeId s : sources) {
    MANET_CHECK(s < g.vertex_count());
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  bfs_core(g, dist, queue);
  return dist;
}

std::span<const std::uint32_t> BfsScratch::run(const Graph& g, NodeId source) {
  MANET_CHECK(source < g.vertex_count());
  dist_.assign(g.vertex_count(), kUnreachable);
  queue_.clear();
  dist_[source] = 0;
  queue_.push_back(source);
  bfs_core(g, dist_, queue_);
  return dist_;
}

std::uint32_t BfsScratch::hops_to(NodeId v) const {
  MANET_CHECK(v < dist_.size());
  return dist_[v];
}

std::uint32_t BfsPairScratch::hops(const Graph& g, NodeId u, NodeId v) {
  const Size n = g.vertex_count();
  MANET_CHECK(u < n && v < n);
  if (u == v) return 0;

  if (mark_s_.size() < n) {
    mark_s_.assign(n, 0);
    mark_t_.assign(n, 0);
    ds_.resize(n);
    dt_.resize(n);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // stamp wraparound: old stamps become ambiguous
    std::fill(mark_s_.begin(), mark_s_.end(), 0u);
    std::fill(mark_t_.begin(), mark_t_.end(), 0u);
    epoch_ = 1;
  }
  const std::uint32_t e = epoch_;

  mark_s_[u] = e;
  ds_[u] = 0;
  mark_t_[v] = e;
  dt_[v] = 0;
  frontier_s_.assign(1, u);
  frontier_t_.assign(1, v);
  std::uint32_t radius_s = 0;
  std::uint32_t radius_t = 0;
  std::uint32_t best = kUnreachable;

  for (;;) {
    // Once the explored radii cover `best`, no shorter meeting exists (see
    // header proof) — best is the exact distance.
    if (best != kUnreachable && best <= radius_s + radius_t) return best;

    const bool expand_s = frontier_s_.size() <= frontier_t_.size();
    auto& frontier = expand_s ? frontier_s_ : frontier_t_;
    // A side with an empty frontier has exhausted its component without a
    // meeting: the endpoints are disconnected.
    if (frontier.empty()) return best;

    auto& mark_mine = expand_s ? mark_s_ : mark_t_;
    auto& dist_mine = expand_s ? ds_ : dt_;
    const auto& mark_other = expand_s ? mark_t_ : mark_s_;
    const auto& dist_other = expand_s ? dt_ : ds_;
    const std::uint32_t depth = (expand_s ? radius_s : radius_t) + 1;

    next_.clear();
    for (const NodeId w : frontier) {
      for (const NodeId x : g.neighbors(w)) {
        if (mark_mine[x] == e) continue;
        mark_mine[x] = e;
        dist_mine[x] = depth;
        if (mark_other[x] == e) {
          const std::uint32_t candidate = depth + dist_other[x];
          if (candidate < best) best = candidate;
        }
        next_.push_back(x);
      }
    }
    frontier.swap(next_);
    (expand_s ? radius_s : radius_t) = depth;
  }
}

}  // namespace manet::graph
