#include "lm/registration.hpp"

#include <cmath>

#include "common/check.hpp"

namespace manet::lm {

RegistrationTracker::RegistrationTracker(RegistrationConfig config) : config_(config) {
  MANET_CHECK(config_.threshold > 0.0);
  MANET_CHECK(config_.tx_radius > 0.0);
}

void RegistrationTracker::prime(const cluster::Hierarchy& h,
                                const std::vector<geom::Vec2>& positions, Time t) {
  const Size n = h.level(0).vertex_count();
  MANET_CHECK(positions.size() == n);
  top_ = h.top_level();
  anchors_.assign(n, {});
  const Size levels = top_ >= kFirstServedLevel ? top_ - kFirstServedLevel + 1 : 0;
  for (NodeId v = 0; v < n; ++v) anchors_[v].assign(levels, positions[v]);
  start_time_ = last_time_ = t;
  primed_ = true;
}

PacketCount RegistrationTracker::price(const graph::Graph& g, NodeId from, NodeId to) {
  if (from == to) return 0;
  const std::uint32_t hops = pair_bfs_.hops(g, from, to);
  return hops == graph::kUnreachable ? 0 : hops;
}

RegistrationTracker::TickResult RegistrationTracker::update(
    const cluster::Hierarchy& h, const graph::Graph& g,
    const std::vector<geom::Vec2>& positions, Time t) {
  MANET_CHECK_MSG(primed_, "RegistrationTracker::update before prime");
  MANET_CHECK_MSG(t >= last_time_, "registration time must be monotone");
  const Size n = anchors_.size();
  MANET_CHECK(positions.size() == n);

  TickResult tick;
  const Level top = std::min(top_, h.top_level());
  // Hierarchy depth may drift between ticks; anchors for a newly appearing
  // level start at the node's current position (no spurious first update).
  if (h.top_level() > top_) {
    const Size levels =
        h.top_level() >= kFirstServedLevel ? h.top_level() - kFirstServedLevel + 1 : 0;
    for (NodeId v = 0; v < n; ++v) anchors_[v].resize(levels, positions[v]);
    top_ = h.top_level();
  }

  const double n_d = static_cast<double>(n);
  for (Level k = kFirstServedLevel; k <= top; ++k) {
    const double mean_ck = n_d / static_cast<double>(h.cluster_count(k));
    const double delta_k = config_.threshold * config_.tx_radius * std::sqrt(mean_ck);
    const double delta2 = delta_k * delta_k;
    const Size slot = k - kFirstServedLevel;
    if (per_level_packets_.size() <= k) per_level_packets_.resize(k + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (geom::distance2(positions[v], anchors_[v][slot]) < delta2) continue;
      if (arq_ != nullptr && is_down(v)) continue;  // crashed nodes send nothing
      const NodeId server = select_server(h, v, k, config_.select);
      PacketCount cost = 0;
      if (arq_ == nullptr) {
        cost = price(g, v, server);
      } else {
        TransferOutcome out;
        if (is_down(server)) {
          out = arq_->transfer_unroutable();
        } else {
          const PacketCount hops = price(g, v, server);
          out = (hops == 0 && v != server) ? arq_->transfer_unroutable()
                                           : arq_->transfer(hops);
        }
        reg_retx_ += out.retx;
        if (!out.delivered) {
          // Budget exhausted: leave the anchor un-refreshed so the distance
          // rule fires again next tick — registration is its own repair.
          ++failed_updates_;
          continue;
        }
        cost = out.packets - out.retx;
      }
      tick.packets += cost;
      ++tick.updates;
      per_level_packets_[k] += cost;
      anchors_[v][slot] = positions[v];
    }
  }
  total_packets_ += tick.packets;
  total_updates_ += tick.updates;
  last_time_ = t;
  return tick;
}

double RegistrationTracker::rate() const {
  const double denom = static_cast<double>(node_count()) * elapsed();
  return denom > 0.0 ? static_cast<double>(total_packets_) / denom : 0.0;
}

void RegistrationTracker::set_resilience(ReliableTransfer* arq,
                                         const std::vector<std::uint8_t>* down) {
  arq_ = arq;
  down_ = down;
}

double RegistrationTracker::retx_rate() const {
  const double denom = static_cast<double>(node_count()) * elapsed();
  return denom > 0.0 ? static_cast<double>(reg_retx_) / denom : 0.0;
}

double RegistrationTracker::rate_at(Level k) const {
  const double denom = static_cast<double>(node_count()) * elapsed();
  if (denom <= 0.0 || k >= per_level_packets_.size()) return 0.0;
  return static_cast<double>(per_level_packets_[k]) / denom;
}

}  // namespace manet::lm
