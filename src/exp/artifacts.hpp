#pragma once

#include <iosfwd>
#include <string>

#include "analysis/json.hpp"
#include "common/metrics.hpp"
#include "exp/montecarlo.hpp"
#include "lm/overhead.hpp"
#include "sim/trace.hpp"

/// \file artifacts.hpp
/// Machine-readable run artifacts. Every bench binary (and manet_sim
/// --metrics-json) writes a JSON artifact next to its text tables so results
/// can be re-audited, diffed across PRs and fed to tooling without parsing
/// prose. An artifact always embeds a RunManifest — enough provenance to
/// re-run the exact configuration that produced it.
///
/// Artifact schema (BENCH_<name>.json, validated by tests):
///   { "schema": "manet-bench-artifact/1",
///     "manifest": { "name", "git_sha", "seed", "n", "replications",
///                   "thread_count", "wall_seconds", "scenario", ... },
///     "series":  { "<metric>": [ {"n", "mean", "ci95", "count"}, ... ] },
///     "scalars": { "<key>": number, ... } }

namespace manet::exp {

/// Provenance record for one run or bench invocation.
struct RunManifest {
  std::string name;          ///< artifact name (bench binary / run label)
  std::string git_sha;       ///< build-time commit (unknown outside git)
  std::uint64_t seed = 0;
  Size n = 0;                ///< node count (0 for sweeps; see series)
  Size replications = 0;
  Size thread_count = 1;
  /// std::thread::hardware_concurrency() on the machine that produced the
  /// artifact (0 in manifests written before the field existed). Speedup
  /// scalars are only interpretable relative to this; check_bench.py skips
  /// the min_parallel_speedup gate when it is < 2 (single-core runner).
  Size hardware_concurrency = 0;
  double wall_seconds = 0.0; ///< measured by the artifact writer
  std::string scenario;      ///< ScenarioConfig::describe() of the base config
  std::string fault = "off"; ///< FaultConfig::describe(); "off" when disabled

  /// Capture everything derivable from the config; wall_seconds is filled in
  /// by the caller (or the bench Artifact helper) at write time.
  static RunManifest capture(std::string name, const ScenarioConfig& config,
                             Size replications, Size thread_count = 1);

  void write_json(analysis::JsonWriter& w) const;
  /// Strict read-back: false when a required field is missing or mistyped.
  static bool from_json(const analysis::JsonValue& v, RunManifest& out);
};

/// Git SHA baked in at configure time (-DMANET_GIT_SHA=...); "unknown"
/// when the build tree was not a git checkout.
std::string build_git_sha();

/// OverheadReport <-> JSON (schema "manet-overhead/1": scalar rates plus the
/// per-level phi_k / gamma_k / f_k arrays).
void write_overhead_json(analysis::JsonWriter& w, const lm::OverheadReport& report);
bool overhead_from_json(const analysis::JsonValue& v, lm::OverheadReport& out);

/// Dump a registry: counters as integers, gauges as numbers, rate meters as
/// {total, rate} (rate evaluated at \p now), histograms as {count, sum, mean,
/// p50, p99, buckets}.
void write_registry_json(analysis::JsonWriter& w, const common::MetricsRegistry& registry,
                         Time now = 0.0);

/// Dump a trace sink: header (seen/stored/dropped + per-type counts) and the
/// retained ring contents oldest-to-newest.
void write_trace_json(analysis::JsonWriter& w, const sim::TraceSink& sink);

/// Aggregated resilience measurements for one fault scenario (one point of a
/// bench_resilience sweep). Schema "manet-resilience/1".
struct ResilienceReport {
  double loss = 0.0;             ///< configured per-hop Bernoulli loss
  double crash_rate = 0.0;       ///< configured crash hazard
  double phi_retx_rate = 0.0;    ///< retransmissions /node/s on phi moves
  double gamma_retx_rate = 0.0;  ///< retransmissions /node/s on gamma moves
  double failed_transfers = 0.0;
  double stale_entries = 0.0;    ///< left unrepaired at run end
  double repairs = 0.0;
  double mean_time_to_repair = 0.0;
  double query_success_rate = 0.0;  ///< final consistency probe
  double query_success_mean = 0.0;  ///< mean over per-audit probes
  double crashes = 0.0;
  double rejoins = 0.0;
};

void write_resilience_json(analysis::JsonWriter& w, const ResilienceReport& report);
bool resilience_from_json(const analysis::JsonValue& v, ResilienceReport& out);

/// Aggregated session-continuity + handover-FSM measurements for one
/// scenario (one point of a bench_sessions sweep). Schema "manet-sessions/1".
struct SessionReport {
  double mu = 0.0;                  ///< configured node speed, m/s
  double loss = 0.0;                ///< configured per-hop Bernoulli loss
  double crash_rate = 0.0;          ///< configured crash hazard
  double packets_offered = 0.0;
  double delivered = 0.0;
  double misrouted = 0.0;           ///< resolved via a stale / rolled-back copy
  double lost = 0.0;
  double misroute_rate = 0.0;       ///< misrouted / offered
  double loss_rate = 0.0;           ///< lost / offered
  double interruptions = 0.0;       ///< interruption windows opened
  double interruption_time = 0.0;   ///< summed window lengths, s
  double interruption_p99 = 0.0;    ///< p99 closed-window length, s (NaN =
                                    ///< no windows closed; JSON null)
  double handover_started = 0.0;
  double handover_completed = 0.0;
  double handover_retries = 0.0;
  double handover_rollbacks = 0.0;
  double handover_rollback_failures = 0.0;
  double handover_mean_completion = 0.0;  ///< mean start -> complete, s
};

void write_sessions_json(analysis::JsonWriter& w, const SessionReport& report);
bool sessions_from_json(const analysis::JsonValue& v, SessionReport& out);

/// RunMetrics <-> JSON: an object whose member order is the metric emission
/// order (duplicate names preserved — first occurrence wins on lookup, but
/// every entry re-enters aggregation exactly as it would in-process).
/// Values render as %.17g so doubles round-trip bit-exactly; NaN renders as
/// null and reads back as NaN. This is the payload of campaign unit
/// checkpoints (exp/campaign_runner.hpp).
void write_run_metrics_json(analysis::JsonWriter& w, const RunMetrics& metrics);
bool run_metrics_from_json(const analysis::JsonValue& v, RunMetrics& out);

/// One aggregated sweep point for artifact series.
struct SeriesPoint {
  double n = 0.0;
  double mean = 0.0;
  double ci95 = 0.0;
  Size count = 0;
};

void write_series_point_json(analysis::JsonWriter& w, const SeriesPoint& point);

}  // namespace manet::exp
