/// The full user-plane story in one program: node A wants to talk to node B.
///   1. A resolves B's location through the CHLM distributed database
///      (probe chain up the cluster levels — paper Sec. 3.2 / Sec. 6).
///   2. A then sends a packet train over strict hierarchical routing,
///      forwarding purely on B's hierarchical address (paper Sec. 2.1).
/// Prints the resolved addresses, the query cost, the routed path with the
/// cluster boundaries it crosses, and the stretch vs the shortest path.
///
/// Usage: ./build/examples/locate_and_route [n] [srcId] [dstId]

#include <cstdio>
#include <cstdlib>

#include "cluster/hierarchy_builder.hpp"
#include "exp/scenario.hpp"
#include "graph/bfs.hpp"
#include "lm/address.hpp"
#include "lm/chlm.hpp"
#include "net/unit_disk.hpp"
#include "routing/table.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 400;
  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 12;
  cfg.mobility = exp::MobilityKind::kStatic;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  auto scenario = exp::Scenario::materialize(cfg);

  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  const auto g = disk.build(scenario.mobility->positions());
  const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

  const NodeId src = argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 0;
  const NodeId dst =
      argc > 3 ? static_cast<NodeId>(std::atoi(argv[3])) : static_cast<NodeId>(n - 1);

  std::printf("network: %zu nodes, %u clustered levels\n\n", n, h.top_level());
  std::printf("source      %-5u address %s\n", src,
              lm::to_string(lm::make_address(h, src)).c_str());
  std::printf("destination %-5u address %s\n", dst,
              lm::to_string(lm::make_address(h, dst)).c_str());
  const Level shared = lm::lowest_common_level(h, src, dst);
  std::printf("smallest shared cluster: level %u (head %u)\n\n", shared,
              h.ancestor_id(src, shared));

  // Step 1: location resolution.
  lm::ChlmService chlm;
  chlm.rebuild(h);
  const auto query_cost = chlm.query_cost(h, g, src, dst);
  std::printf("CHLM lookup: %llu packet transmissions (probe chain up to level %u)\n",
              static_cast<unsigned long long>(query_cost), shared);
  if (shared >= lm::kFirstServedLevel) {
    const NodeId server = chlm.server_of(dst, shared);
    std::printf("  %u's level-%u location server is node %u\n", dst, shared, server);
  } else {
    std::printf("  same level-1 cluster: full intra-cluster topology known, no probe\n");
  }

  // Step 2: hierarchical forwarding.
  const routing::RoutingTables tables(g, h);
  const auto routed = tables.route(src, dst);
  graph::BfsScratch bfs;
  bfs.run(g, src);
  const auto shortest = bfs.hops_to(dst);

  std::printf("\nhierarchical route (%zu hops, shortest %u, stretch %.2f%s):\n",
              routed.path.size() - 1, shortest,
              static_cast<double>(routed.path.size() - 1) / shortest,
              routed.recovered ? ", used recovery" : "");
  Level prev_boundary = 0;
  for (Size i = 0; i < routed.path.size(); ++i) {
    const NodeId hop = routed.path[i];
    std::printf("  %s%u", i ? "-> " : "   ", hop);
    if (i + 1 < routed.path.size()) {
      const Level crossing = lm::lowest_common_level(h, hop, routed.path[i + 1]);
      if (crossing > 1 && crossing != prev_boundary) {
        std::printf("   (crossing into a different level-%u subtree)", crossing - 1);
      }
      prev_boundary = crossing;
    }
    std::printf("\n");
  }
  std::printf(
      "\ntotal session setup = lookup (%llu) + %zu data hops per packet;\n"
      "the lookup amortizes over the session — the paper's Sec. 6 argument.\n",
      static_cast<unsigned long long>(query_cost), routed.path.size() - 1);
  return 0;
}
