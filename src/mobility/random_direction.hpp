#pragma once

#include "common/rng.hpp"
#include "mobility/model.hpp"

/// \file random_direction.hpp
/// Random direction mobility (extension; not in the paper). Each node picks a
/// uniform heading and travels until it hits the region boundary or an
/// exponentially distributed epoch expires, then picks a new heading.
/// Unlike random waypoint, the stationary node distribution stays
/// near-uniform (no center bias), which makes it a useful sensitivity check
/// for the paper's constant-density assumption.

namespace manet::mobility {

class RandomDirection final : public MobilityModel {
 public:
  struct Params {
    double speed = 1.0;             ///< m/s
    double mean_epoch = 60.0;       ///< s, mean of the exponential epoch length
  };

  RandomDirection(const geom::Region& region, Size n, Params params, std::uint64_t seed);

  void advance_to(Time t) override;
  const std::vector<geom::Vec2>& positions() const override { return positions_; }
  Time now() const override { return now_; }
  Size node_count() const override { return positions_.size(); }
  const char* name() const override { return "random_direction"; }

 private:
  struct State {
    geom::Vec2 heading;  ///< unit vector
    Time epoch_end;      ///< when a new heading is drawn
  };

  void new_heading(NodeId v, Time at);

  const geom::Region& region_;
  Params params_;
  common::Xoshiro256 rng_;
  std::vector<geom::Vec2> positions_;
  std::vector<State> states_;
  Time now_ = 0.0;
};

}  // namespace manet::mobility
