#include "geom/region.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace manet::geom {
namespace {

TEST(DiskRegion, AreaMatchesRadius) {
  const DiskRegion disk({0, 0}, 2.0);
  EXPECT_NEAR(disk.area(), 4.0 * std::numbers::pi, 1e-12);
}

TEST(DiskRegion, WithDensityGivesRequestedArea) {
  const auto disk = DiskRegion::with_density(1000, 2.0);
  EXPECT_NEAR(disk.area(), 500.0, 1e-9);
}

TEST(DiskRegion, ContainsCenterAndBoundary) {
  const DiskRegion disk({1, 1}, 3.0);
  EXPECT_TRUE(disk.contains({1, 1}));
  EXPECT_TRUE(disk.contains({4, 1}));
  EXPECT_FALSE(disk.contains({4.01, 1}));
}

TEST(DiskRegion, SamplesStayInside) {
  const DiskRegion disk({-5, 2}, 4.0);
  common::Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) EXPECT_TRUE(disk.contains(disk.sample(rng)));
}

TEST(DiskRegion, SamplingIsAreaUniform) {
  // In a uniform disk, P(r <= R/2) = 1/4.
  const DiskRegion disk({0, 0}, 1.0);
  common::Xoshiro256 rng(2);
  int inner = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (disk.sample(rng).norm() <= 0.5) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 0.25, 0.01);
}

TEST(DiskRegion, ClampProjectsToBoundary) {
  const DiskRegion disk({0, 0}, 1.0);
  const Vec2 p = disk.clamp({10.0, 0.0});
  EXPECT_NEAR(p.norm(), 1.0, 1e-12);
  EXPECT_EQ(disk.clamp({0.3, 0.2}), (Vec2{0.3, 0.2}));  // inside untouched
}

TEST(SquareRegion, ContainsAndArea) {
  const SquareRegion sq({0, 0}, 10.0);
  EXPECT_TRUE(sq.contains({0, 0}));
  EXPECT_TRUE(sq.contains({10, 10}));
  EXPECT_FALSE(sq.contains({10.01, 5}));
  EXPECT_FALSE(sq.contains({-0.01, 5}));
  EXPECT_DOUBLE_EQ(sq.area(), 100.0);
  EXPECT_EQ(sq.center(), (Vec2{5.0, 5.0}));
}

TEST(SquareRegion, SamplesStayInside) {
  const SquareRegion sq({-3, 4}, 2.0);
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_TRUE(sq.contains(sq.sample(rng)));
}

TEST(SquareRegion, ClampProjectsComponentwise) {
  const SquareRegion sq({0, 0}, 1.0);
  EXPECT_EQ(sq.clamp({2.0, -1.0}), (Vec2{1.0, 0.0}));
  EXPECT_EQ(sq.clamp({0.5, 0.5}), (Vec2{0.5, 0.5}));
}

TEST(SquareRegion, WithDensityGivesRequestedArea) {
  const auto sq = SquareRegion::with_density(400, 4.0);
  EXPECT_NEAR(sq.area(), 100.0, 1e-9);
}

}  // namespace
}  // namespace manet::geom
