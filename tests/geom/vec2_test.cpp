#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manet::geom {
namespace {

TEST(Vec2, ArithmeticIdentities) {
  const Vec2 a{3.0, 4.0}, b{-1.0, 2.0};
  EXPECT_EQ(a + b, (Vec2{2.0, 6.0}));
  EXPECT_EQ(a - b, (Vec2{4.0, 2.0}));
  EXPECT_EQ(a * 2.0, (Vec2{6.0, 8.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec2{1.5, 2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += Vec2{2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
  a -= Vec2{3.0, 4.0};
  EXPECT_EQ(a, (Vec2{0.0, 0.0}));
}

TEST(Vec2, NormAndDot) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(a.dot(a), a.norm2());
}

TEST(Vec2, NormalizedIsUnitLength) {
  const Vec2 a{3.0, 4.0};
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{0.0, 0.0}));  // zero vector stays zero
}

TEST(Vec2, DistanceIsSymmetricAndTriangle) {
  const Vec2 a{0.0, 0.0}, b{1.0, 1.0}, c{2.0, 0.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-12);
  EXPECT_DOUBLE_EQ(distance2(a, b), 2.0);
}

}  // namespace
}  // namespace manet::geom
