/// Side-by-side comparison of the paper's CHLM against the Grid Location
/// Service it is modelled on (Li et al. 2000, paper ref [5]): same nodes,
/// same motion, same BFS-hop packet pricing. Prints maintenance rates, the
/// server-load profile of both services, and a sample location query.
///
/// Usage: ./build/examples/gls_vs_chlm [n]

#include <cstdio>
#include <cstdlib>

#include "cluster/hierarchy_builder.hpp"
#include "exp/simulation.hpp"
#include "lm/chlm.hpp"
#include "lm/database.hpp"
#include "lm/gls.hpp"
#include "net/unit_disk.hpp"

int main(int argc, char** argv) {
  using namespace manet;

  const Size n = argc > 1 ? static_cast<Size>(std::atoi(argv[1])) : 400;

  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 5;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.warmup = 10.0;
  cfg.duration = 45.0;

  std::printf("running CHLM and GLS over identical motion (%zu nodes, 45 s)...\n\n", n);
  exp::RunOptions opts;
  opts.run_gls = true;
  opts.track_events = false;
  opts.track_states = false;
  const auto m = exp::run_simulation(cfg, opts);

  std::printf("maintenance overhead (packet transmissions per node per second):\n");
  std::printf("  CHLM  phi = %7.4f  gamma = %7.4f  total = %7.4f\n", m.get("phi_rate"),
              m.get("gamma_rate"), m.get("total_rate"));
  std::printf("  GLS   handoff = %7.4f  update = %7.4f  total = %7.4f\n",
              m.get("gls_handoff_rate"), m.get("gls_update_rate"), m.get("gls_total_rate"));

  // Static snapshot: compare the two services' server-load profiles.
  auto scenario = exp::Scenario::materialize(cfg);
  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  const auto g = disk.build(scenario.mobility->positions());
  const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

  lm::ChlmService chlm;
  chlm.rebuild(h);
  const auto chlm_load = lm::load_stats(chlm.database().load_vector());

  const auto* region = dynamic_cast<const geom::DiskRegion*>(scenario.region.get());
  const double r = region->radius();
  lm::GlsService gls(lm::GridHierarchy::cover(region->center() - geom::Vec2{r, r}, 2 * r,
                                              cfg.tx_radius()));
  gls.rebuild(scenario.mobility->positions(), scenario.ids);
  const auto gls_load = lm::load_stats(gls.load_vector());

  std::printf("\nserver load (entries per node) on a static snapshot:\n");
  std::printf("  CHLM  mean %5.2f  max %5.0f  gini %5.3f\n", chlm_load.mean, chlm_load.max,
              chlm_load.gini);
  std::printf("  GLS   mean %5.2f  max %5.0f  gini %5.3f\n", gls_load.mean, gls_load.max,
              gls_load.gini);

  // One worked location query, CHLM-style (paper Sec. 6: cost ~ hop count).
  const NodeId requester = 0, target = static_cast<NodeId>(n / 2);
  const auto cost = chlm.query_cost(h, g, requester, target);
  std::printf("\nsample CHLM query: node %u locates node %u for %llu packet transmissions\n",
              requester, target, static_cast<unsigned long long>(cost));

  std::printf(
      "\nGLS recruits 3 sibling servers per grid level while CHLM keeps one\n"
      "server per cluster level, so GLS stores ~3x the entries; both stay\n"
      "polylogarithmic in maintenance cost (paper Section 3).\n");
  return 0;
}
