#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

/// \file rendezvous.hpp
/// Highest-random-weight (rendezvous) hashing.
///
/// CHLM (paper Section 3.2) needs a hash that picks, for owner node v, one
/// member of a candidate set (a cluster's children) such that (a) any node
/// knowing v's id and the candidate set computes the *same* choice with no
/// coordination — unambiguous server selection — and (b) over many owners
/// the choices spread evenly — equitable server load. The paper notes GLS's
/// successor rule (its eq. (5)) fails requirement (b) in CHLM because every
/// owner in a cluster would hash to the same minimal member, and leaves the
/// concrete function open. Rendezvous hashing satisfies both requirements:
/// score(owner, candidate) = mix64(owner ^ salt ^ candidate) and the winner
/// is the argmax, so each owner sees an independent uniform permutation of
/// candidates.

namespace manet::lm {

/// Score of one (owner, candidate) pair under domain \p salt.
std::uint64_t rendezvous_score(std::uint64_t salt, NodeId owner, NodeId candidate) noexcept;

/// Winner among \p candidates for \p owner; candidates must be non-empty.
/// Deterministic: ties (probability ~2^-64) break toward the smaller id.
NodeId rendezvous_pick(std::uint64_t salt, NodeId owner, std::span<const NodeId> candidates);

/// Winner among the *indices* [0, n): convenience when candidates are dense.
Size rendezvous_pick_index(std::uint64_t salt, NodeId owner, Size n);

}  // namespace manet::lm
