#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace manet::sim {

std::uint32_t EventQueue::acquire_slot(EventId id, EventClosure fn) {
  if (free_.empty()) {
    MANET_CHECK_MSG(slab_.size() < 0xFFFFFFFFu, "event slab overflow");
    slab_.push_back(Slot{id, std::move(fn)});
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  slab_[slot].id = id;
  slab_[slot].fn = std::move(fn);
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  slab_[slot].fn = EventClosure{};  // drop captured state eagerly
  free_.push_back(slot);
}

EventId EventQueue::schedule(Time when, EventClosure fn) {
  MANET_CHECK_MSG(fn != nullptr, "null event callback");
  const EventId id = next_id_++;
  index_[id] = acquire_slot(id, std::move(fn));
  heap_.push_back(Entry{when, id});
  std::push_heap(heap_.begin(), heap_.end(), &later);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return false;
  release_slot(*slot);
  index_.erase(id);
  ++tombstones_;
  // Keep the heap at least half live: a cancel-heavy workload (ARQ timers,
  // retired recurring schedules) otherwise accumulates dead entries that
  // every subsequent push/pop still has to sift through.
  if (tombstones_ * 2 > heap_.size()) compact();
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !index_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), &later);
  tombstones_ = 0;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !index_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), &later);
    heap_.pop_back();
    --tombstones_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  MANET_CHECK(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  MANET_CHECK(!heap_.empty());
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), &later);
  heap_.pop_back();
  const std::uint32_t slot = *index_.find(top.id);
  Fired fired{top.time, top.id, std::move(slab_[slot].fn)};
  free_.push_back(slot);
  index_.erase(top.id);
  return fired;
}

}  // namespace manet::sim
