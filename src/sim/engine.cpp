#include "sim/engine.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"

namespace manet::sim {

EventId Engine::schedule_at(Time when, EventFn fn) {
  MANET_CHECK_MSG(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Engine::schedule_in(Time delay, EventFn fn) {
  MANET_CHECK(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

Engine::RecurringHandle Engine::schedule_every(Time period, EventFn fn) {
  MANET_CHECK(period > 0.0);
  const std::uint64_t token = next_recurring_token_++;
  recurring_alive_[token] = true;

  // Self-rescheduling closure; checks liveness each firing so that
  // stop_recurring() takes effect at the next tick boundary. The engine owns
  // the closure via recurring_ticks_; the queued copies capture only a weak
  // reference so the schedule cannot keep itself alive once retired.
  //
  // The k-th firing is placed at origin + k * period (one multiply, one
  // rounding) rather than by accumulating now() + period: summed rounding
  // error in the accumulation drifts for periods with no exact binary
  // representation and can skip or repeat a firing against a run horizon.
  auto tick = std::make_shared<EventFn>();
  auto shared_fn = std::make_shared<EventFn>(std::move(fn));
  std::weak_ptr<EventFn> weak_tick = tick;
  const Time origin = now_;
  auto fired = std::make_shared<std::uint64_t>(0);
  *tick = [this, token, period, origin, fired, shared_fn, weak_tick]() {
    const auto it = recurring_alive_.find(token);
    if (it == recurring_alive_.end() || !it->second) {
      recurring_alive_.erase(token);
      recurring_ticks_.erase(token);
      return;
    }
    (*shared_fn)();
    if (auto self = weak_tick.lock()) {
      ++*fired;
      schedule_at(origin + static_cast<Time>(*fired + 1) * period, *self);
    }
  };
  schedule_at(origin + period, *tick);
  recurring_ticks_.emplace(token, std::move(tick));
  return RecurringHandle{token};
}

void Engine::stop_recurring(RecurringHandle handle) {
  const auto it = recurring_alive_.find(handle.token);
  if (it != recurring_alive_.end()) it->second = false;
}

Size Engine::run_until(Time horizon) {
  Size executed = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    MANET_CHECK(fired.time >= now_);
    now_ = fired.time;
    fired.fn();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  MANET_CHECK(fired.time >= now_);
  now_ = fired.time;
  fired.fn();
  return true;
}

}  // namespace manet::sim
