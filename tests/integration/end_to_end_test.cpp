#include <gtest/gtest.h>

#include <cmath>

#include "exp/montecarlo.hpp"

/// End-to-end behaviour of the whole stack under the paper's scenario:
/// random waypoint at constant density with recursive ALCA clustering and
/// CHLM handoff accounting. These are the coarse physical sanity properties
/// every reproduction experiment relies on.

namespace manet::exp {
namespace {

ScenarioConfig base_config(Size n, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.warmup = 8.0;
  cfg.duration = 25.0;
  cfg.radius_policy = RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  return cfg;
}

TEST(EndToEnd, OverheadUnitsAreReasonable) {
  const auto m = run_simulation(base_config(300, 1));
  // Packet transmissions per node per second: positive, far below the
  // everything-reshuffles-every-tick catastrophe (~ n * L).
  EXPECT_GT(m.get("total_rate"), 0.1);
  EXPECT_LT(m.get("total_rate"), 200.0);
}

TEST(EndToEnd, F0IsInsensitiveToNodeCount) {
  // Paper eq. (4): f_0 = Theta(1) at constant density and fixed R_TX.
  const auto small = run_simulation(base_config(128, 2));
  const auto large = run_simulation(base_config(1024, 2));
  const double ratio = large.get("f0") / small.get("f0");
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.5);  // 8x nodes, ~same link-change rate per node
}

TEST(EndToEnd, MigrationFrequencyDecaysWithLevel) {
  // Paper eq. (9): f_k = Theta(1/h_k) — strictly decreasing across levels.
  const auto m = run_simulation(base_config(600, 3));
  const double f1 = m.get("f_k.1");
  const double f3 = m.get("f_k.3");
  ASSERT_FALSE(std::isnan(f1));
  ASSERT_FALSE(std::isnan(f3));
  EXPECT_LT(f3, f1);
}

TEST(EndToEnd, PerLinkChangeRateDecaysWithLevel) {
  // Paper eq. (14): g'_k = O(1/h_k).
  const auto m = run_simulation(base_config(600, 4));
  const double g1 = m.get("gprime_k.1");
  const double g3 = m.get("gprime_k.3");
  ASSERT_FALSE(std::isnan(g1));
  ASSERT_FALSE(std::isnan(g3));
  EXPECT_LT(g3, g1 * 1.1);
}

TEST(EndToEnd, LevelLinkDensityDecaysGeometrically) {
  // Paper eq. (13b): |E_k|/|V| = Theta(1/c_k).
  const auto m = run_simulation(base_config(600, 5));
  const double e1 = m.get("ek_per_v.1");
  const double e2 = m.get("ek_per_v.2");
  const double e3 = m.get("ek_per_v.3");
  EXPECT_GT(e1, e2);
  EXPECT_GT(e2, e3);
}

TEST(EndToEnd, HkGrowsLikeSqrtCk) {
  // Paper eq. (3): h_k = Theta(sqrt(c_k)); check monotone growth and a loose
  // ratio band against the measured aggregation.
  const auto m = run_simulation(base_config(600, 6));
  const double h1 = m.get("h_k.1");
  const double h2 = m.get("h_k.2");
  const double h3 = m.get("h_k.3");
  EXPECT_GT(h2, h1);
  EXPECT_GT(h3, h2);
}

TEST(EndToEnd, EntriesPerNodeTracksLevels) {
  const auto m = run_simulation(base_config(500, 7));
  // Every node registers at levels [2, L]: entries/node == levels - 1 when
  // the depth is stable (it can drift a little as the hierarchy breathes).
  EXPECT_NEAR(m.get("entries_per_node"), m.get("levels") - 1.0, 1.5);
}

TEST(EndToEnd, LoadIsEquitablyDistributed) {
  const auto m = run_simulation(base_config(500, 8));
  // The paper's equitable-distribution requirement: Gini far below the
  // single-hot-spot regime and max load a small multiple of the mean.
  EXPECT_LT(m.get("load_gini"), 0.75);
  EXPECT_LT(m.get("load_max"), 25.0 * m.get("load_mean") + 5.0);
}

TEST(EndToEnd, ReorgEventRatesDecayAcrossLevels) {
  // Section 5.3: every event family's frequency falls with level.
  const auto m = run_simulation(base_config(600, 9));
  const double ev1 = m.get("ev.i.1");
  const double ev2 = m.get("ev.i.2");
  if (!std::isnan(ev1) && !std::isnan(ev2)) {
    EXPECT_LT(ev2, ev1);
  }
  const double el1 = m.get("ev.iii.1");
  const double el2 = m.get("ev.iii.2");
  if (!std::isnan(el1) && !std::isnan(el2)) {
    EXPECT_LT(el2, el1 * 1.25);
  }
}

TEST(EndToEnd, Q1BoundedAwayFromZero) {
  // Eq. (22) — the paper's future-work measurement: q1 > epsilon > 0.
  const auto m = run_simulation(base_config(500, 10));
  EXPECT_GT(m.get("q1"), 0.01);
  EXPECT_GT(m.get("q1_over_Q"), 0.2);
}

TEST(EndToEnd, GlsAndChlmAreComparable) {
  RunOptions opts;
  opts.run_gls = true;
  const auto m = run_simulation(base_config(400, 11), opts);
  const double chlm = m.get("total_rate");
  const double gls = m.get("gls_total_rate");
  EXPECT_GT(gls, 0.0);
  // Same order of magnitude (both are hierarchical LM on the same motion).
  EXPECT_LT(chlm / gls, 20.0);
  EXPECT_LT(gls / chlm, 20.0);
}

}  // namespace
}  // namespace manet::exp
