#include "exp/campaign.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/log.hpp"

namespace manet::exp {

namespace {

void warn_dropped(const std::string& metric, const std::vector<Size>& dropped_ns,
                  Size total_points) {
  if (dropped_ns.empty()) return;
  std::string message = "campaign: metric '" + metric + "' absent at n=";
  for (Size i = 0; i < dropped_ns.size(); ++i) {
    if (i > 0) message += ",";
    message += std::to_string(dropped_ns[i]);
  }
  message += " (" + std::to_string(dropped_ns.size()) + " of " +
             std::to_string(total_points) + " sweep points dropped from the series)";
  common::log_warn(message);
}

}  // namespace

Size Campaign::series(const std::string& metric, std::vector<double>& ns,
                      std::vector<double>& ys) const {
  ns.clear();
  ys.clear();
  std::vector<Size> dropped;
  for (const auto& point : points) {
    const double y = point.metrics.mean(metric);
    if (std::isnan(y)) {
      dropped.push_back(point.n);
      continue;
    }
    ns.push_back(static_cast<double>(point.n));
    ys.push_back(y);
  }
  warn_dropped(metric, dropped, points.size());
  return dropped.size();
}

Size Campaign::series_with_error(const std::string& metric, std::vector<double>& ns,
                                 std::vector<double>& ys,
                                 std::vector<double>& stderrs) const {
  ns.clear();
  ys.clear();
  stderrs.clear();
  std::vector<Size> dropped;
  for (const auto& point : points) {
    const auto s = point.metrics.summary(metric);
    if (s.count == 0) {
      dropped.push_back(point.n);
      continue;
    }
    ns.push_back(static_cast<double>(point.n));
    ys.push_back(s.mean);
    stderrs.push_back(s.ci95 / 1.96);
  }
  warn_dropped(metric, dropped, points.size());
  return dropped.size();
}

Campaign sweep_node_count(const ScenarioConfig& base, std::span<const Size> node_counts,
                          Size replications, const RunOptions& options,
                          common::ThreadPool* pool) {
  MANET_CHECK(!node_counts.empty());
  Campaign campaign;
  campaign.points.reserve(node_counts.size());
  for (const Size n : node_counts) {
    ScenarioConfig cfg = base;
    cfg.n = n;
    SweepPoint point;
    point.n = n;
    point.metrics = run_replications(cfg, replications, options, pool);
    campaign.points.push_back(std::move(point));
  }
  return campaign;
}

}  // namespace manet::exp
