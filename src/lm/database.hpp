#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "common/types.hpp"

/// \file database.hpp
/// The distributed LM database: each node stores location entries for the
/// owners that hash to it. The paper's key storage claim (Section 3.2) is
/// that with L = Theta(log|V|) levels each node serves Theta(log|V|) owners
/// on average — this module provides the entry store plus the load census
/// used by experiment E7 to verify equitable distribution.

namespace manet::lm {

/// One stored location record.
struct LocationRecord {
  NodeId owner = kInvalidNode;  ///< whose location this is
  Level level = 0;              ///< which level-k server role stores it
  Time updated = 0.0;           ///< last refresh time
  std::uint64_t version = 0;    ///< monotone per-entry version
};

/// Per-node entry stores, keyed by (owner, level).
class LmDatabase {
 public:
  explicit LmDatabase(Size n_nodes = 0);

  void reset(Size n_nodes);

  /// Insert or overwrite the (owner, level) record at \p server.
  void put(NodeId server, LocationRecord record);

  /// Remove the (owner, level) record from \p server; returns the record or
  /// a default one with owner == kInvalidNode if absent.
  LocationRecord take(NodeId server, NodeId owner, Level level);

  /// Lookup without removal; nullptr when absent.
  const LocationRecord* find(NodeId server, NodeId owner, Level level) const;

  /// Remove and return every record stored at \p server (a node crash wipes
  /// its store). Records are returned sorted by (owner, level) so callers
  /// iterate deterministically.
  std::vector<LocationRecord> drop_all(NodeId server);

  /// Number of entries held by \p server.
  Size entry_count(NodeId server) const;

  Size total_entries() const { return total_; }
  Size node_count() const { return stores_.size(); }

  /// Entry counts for every node (the load histogram source).
  std::vector<Size> load_vector() const;

 private:
  /// Packed (owner, level) store key. The low 16 bits carry the level, so a
  /// level at or above 2^16 would silently alias another owner's entry —
  /// guard the range (hierarchy depth is Theta(log |V|), i.e. tiny, so the
  /// check can never fire on real input, only on corrupted arguments).
  static std::uint64_t key(NodeId owner, Level level) {
    static_assert(sizeof(NodeId) * 8 <= 48, "owner<<16 must fit the packed u64");
    MANET_CHECK_MSG(level < (Level{1} << 16), "level out of packed-key range");
    return (static_cast<std::uint64_t>(owner) << 16) | level;
  }

  std::vector<common::FlatMap<std::uint64_t, LocationRecord>> stores_;
  Size total_ = 0;
};

/// Server-load summary over a load vector.
struct LoadStats {
  double mean = 0.0;
  double max = 0.0;
  double variance = 0.0;
  double gini = 0.0;  ///< 0 = perfectly equal, -> 1 = concentrated
};

LoadStats load_stats(const std::vector<Size>& loads);

}  // namespace manet::lm
