#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "lm/database.hpp"
#include "lm/server_select.hpp"

/// \file chlm.hpp
/// Clustered-Hierarchy Location Management (CHLM) — the paper's primary
/// contribution (Section 3.2). For every node v and every hierarchy level
/// k in [2, L], a level-k LM server stores v's location. The assignment
/// table is a pure function of (hierarchy snapshot, select config); this
/// class materializes it, populates the distributed database, and answers
/// GLS-style location queries (walk up the enclosing clusters of the
/// requester until a server that covers the target is found).

namespace manet::lm {

class ChlmService {
 public:
  explicit ChlmService(ServerSelectConfig config = ServerSelectConfig{});

  /// Recompute the full assignment table for hierarchy snapshot \p h and
  /// (re)populate the database at time \p now.
  void rebuild(const cluster::Hierarchy& h, Time now = 0.0);

  Size node_count() const { return servers_.empty() ? 0 : servers_.size(); }

  /// Highest served level in the last rebuild (the hierarchy top). Levels
  /// [2, top] carry servers; a hierarchy with top < 2 has none.
  Level top_level() const { return top_level_; }

  /// Level-k server of \p owner, or kInvalidNode when k is outside [2, top].
  NodeId server_of(NodeId owner, Level k) const;

  /// Flat view: servers_of(owner)[k - 2] is the level-k server.
  std::span<const NodeId> servers_of(NodeId owner) const;

  /// Number of distinct served levels (top - 1 when top >= 2, else 0).
  Size served_levels() const;

  const LmDatabase& database() const { return db_; }

  /// Query cost in packet transmissions: \p requester looks up \p target by
  /// probing its candidate level-k servers computed within the requester's
  /// own level-k clusters, k ascending, until the true server is hit; then
  /// the reply returns directly. Requires both nodes in the (connected)
  /// level-0 graph \p g. Implements the paper's Section 6 observation that
  /// query cost is on the order of the requester-target hop count.
  PacketCount query_cost(const cluster::Hierarchy& h, const graph::Graph& g, NodeId requester,
                         NodeId target) const;

  const ServerSelectConfig& config() const { return config_; }

 private:
  ServerSelectConfig config_;
  /// servers_[owner][k - 2] for k in [2, top_level_].
  std::vector<std::vector<NodeId>> servers_;
  Level top_level_ = 0;
  LmDatabase db_;
};

}  // namespace manet::lm
