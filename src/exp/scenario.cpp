#include "exp/scenario.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mobility/field.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/group.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/radio.hpp"

namespace manet::exp {

double ScenarioConfig::tx_radius() const {
  switch (radius_policy) {
    case RadiusPolicy::kConnectivity:
      return net::connectivity_radius(n, density, connectivity_margin);
    case RadiusPolicy::kMeanDegree:
      return net::radius_for_mean_degree(target_degree, density);
  }
  return 1.0;
}

std::string ScenarioConfig::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu density=%.3g mu=%.3g rtx=%.3g tick=%.3g warmup=%.3g dur=%.3g seed=%llu",
                n, density, mu, tx_radius(), tick, warmup, duration,
                static_cast<unsigned long long>(seed));
  std::string out = buf;
  if (fault.enabled()) out += " fault[" + fault.describe() + "]";
  if (sessions) {
    std::snprintf(buf, sizeof(buf),
                  " sessions[rate=%.3g dur=%.3g pps=%.3g ho_timeout=%.3g ho_retries=%zu]",
                  session.sessions_per_node_per_sec, session.mean_duration,
                  session.packets_per_sec, handover.timeout, handover.max_retries);
    out += buf;
  }
  return out;
}

Scenario Scenario::materialize(const ScenarioConfig& config) {
  MANET_CHECK(config.n >= 2);
  Scenario scenario;
  scenario.config = config;
  scenario.region = std::make_unique<geom::DiskRegion>(
      geom::DiskRegion::with_density(config.n, config.density));

  const std::uint64_t mob_seed = common::derive_seed(config.seed, 0xA0B1);
  switch (config.mobility) {
    case MobilityKind::kRandomWaypoint:
      scenario.mobility = std::make_unique<mobility::RandomWaypoint>(
          *scenario.region, config.n, mobility::RandomWaypoint::Params::fixed_speed(config.mu),
          mob_seed);
      break;
    case MobilityKind::kRandomDirection:
      scenario.mobility = std::make_unique<mobility::RandomDirection>(
          *scenario.region, config.n,
          mobility::RandomDirection::Params{config.mu, 60.0}, mob_seed);
      break;
    case MobilityKind::kGaussMarkov:
      scenario.mobility = std::make_unique<mobility::GaussMarkov>(
          *scenario.region, config.n,
          mobility::GaussMarkov::Params{config.mu, 0.3 * config.mu, 0.85, 1.0}, mob_seed);
      break;
    case MobilityKind::kGroup: {
      mobility::ReferencePointGroup::Params params;
      params.group_size = config.group_size;
      params.leader_speed = config.mu;
      params.member_speed = 0.5 * config.mu;
      scenario.mobility = std::make_unique<mobility::ReferencePointGroup>(
          *scenario.region, config.n, params, mob_seed);
      break;
    }
    case MobilityKind::kStatic:
      scenario.mobility =
          std::make_unique<mobility::StaticField>(*scenario.region, config.n, mob_seed);
      break;
  }

  scenario.ids.resize(config.n);
  for (NodeId v = 0; v < config.n; ++v) scenario.ids[v] = v;
  if (config.shuffle_ids) {
    common::Xoshiro256 rng(common::derive_seed(config.seed, 0xC2D3));
    common::shuffle(rng, scenario.ids.data(), scenario.ids.size());
  }
  return scenario;
}

}  // namespace manet::exp
