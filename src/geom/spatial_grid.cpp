#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace manet::geom {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_(cell_size) {
  MANET_CHECK(cell_size > 0.0);
}

std::int64_t SpatialGrid::cell_key(std::int64_t cx, std::int64_t cy) const {
  // Pack signed 32-bit cell coordinates into one 64-bit key. Cell coords are
  // bounded by (region extent / cell size), far below 2^31 at any scale this
  // library targets.
  return (cx << 32) | (cy & 0xFFFFFFFF);
}

std::int64_t SpatialGrid::cell_of(Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_size_));
  return cell_key(cx, cy);
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_ = positions;
  const auto n = static_cast<std::uint32_t>(positions_.size());
  // Pass 1: key every node, sort ids by key (stable layout, cache friendly).
  std::vector<std::pair<std::int64_t, NodeId>> keyed(n);
  for (std::uint32_t i = 0; i < n; ++i) keyed[i] = {cell_of(positions_[i]), i};
  std::sort(keyed.begin(), keyed.end());
  // Pass 2: emit CSR buckets.
  sorted_ids_.resize(n);
  cell_starts_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    sorted_ids_[i] = keyed[i].second;
    if (i == 0 || keyed[i].first != keyed[i - 1].first) {
      cell_starts_.emplace_back(keyed[i].first, i);
    }
  }
}

std::pair<std::uint32_t, std::uint32_t> SpatialGrid::bucket(std::int64_t key) const {
  const auto it = std::lower_bound(
      cell_starts_.begin(), cell_starts_.end(), key,
      [](const auto& entry, std::int64_t k) { return entry.first < k; });
  if (it == cell_starts_.end() || it->first != key) return {0, 0};
  const std::uint32_t begin = it->second;
  const std::uint32_t end = (it + 1 != cell_starts_.end())
                                ? (it + 1)->second
                                : static_cast<std::uint32_t>(sorted_ids_.size());
  return {begin, end};
}

std::int32_t SpatialGrid::bucket_index_of(Vec2 p) const {
  const std::int64_t key = cell_of(p);
  const auto it = std::lower_bound(
      cell_starts_.begin(), cell_starts_.end(), key,
      [](const auto& entry, std::int64_t k) { return entry.first < k; });
  if (it == cell_starts_.end() || it->first != key) return -1;
  return static_cast<std::int32_t>(it - cell_starts_.begin());
}

void SpatialGrid::neighbors_within(Vec2 query, double radius, NodeId self,
                                   std::vector<NodeId>& out) const {
  MANET_CHECK_MSG(radius <= cell_size_ * (1.0 + 1e-9),
                  "query radius exceeds grid cell size; 3x3 stencil would miss pairs");
  const double r2 = radius * radius;
  const auto cx = static_cast<std::int64_t>(std::floor(query.x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(query.y / cell_size_));
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto [begin, end] = bucket(cell_key(cx + dx, cy + dy));
      for (std::uint32_t i = begin; i < end; ++i) {
        const NodeId v = sorted_ids_[i];
        if (v == self) continue;
        if (distance2(query, positions_[v]) <= r2) out.push_back(v);
      }
    }
  }
}

}  // namespace manet::geom
