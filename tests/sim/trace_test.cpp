#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace manet::sim {
namespace {

TraceEvent event_at(Time t, TraceEventType type = TraceEventType::kMigration) {
  TraceEvent ev;
  ev.t = t;
  ev.type = type;
  return ev;
}

TEST(TraceSink, StoresEventsInOrderBeforeWraparound) {
  TraceSink sink(TraceSink::Config{8, 1});
  for (int i = 0; i < 5; ++i) sink.record(event_at(static_cast<Time>(i)));
  EXPECT_EQ(sink.seen(), 5u);
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(events[static_cast<Size>(i)].t, i);
}

TEST(TraceSink, RingWraparoundKeepsNewestEvents) {
  TraceSink sink(TraceSink::Config{4, 1});
  for (int i = 0; i < 10; ++i) sink.record(event_at(static_cast<Time>(i)));
  EXPECT_EQ(sink.seen(), 10u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: events 6, 7, 8, 9 survive.
  for (Size i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(6 + i));
  }
}

TEST(TraceSink, ExactlyFullRingDropsNothing) {
  TraceSink sink(TraceSink::Config{4, 1});
  for (int i = 0; i < 4; ++i) sink.record(event_at(static_cast<Time>(i)));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().t, 0.0);
  EXPECT_DOUBLE_EQ(events.back().t, 3.0);
}

TEST(TraceSink, SamplingKeepsEveryNth) {
  TraceSink sink(TraceSink::Config{64, 3});
  for (int i = 0; i < 10; ++i) sink.record(event_at(static_cast<Time>(i)));
  EXPECT_EQ(sink.seen(), 10u);
  EXPECT_EQ(sink.size(), 4u);  // calls 0, 3, 6, 9
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].t, 0.0);
  EXPECT_DOUBLE_EQ(events[1].t, 3.0);
  EXPECT_DOUBLE_EQ(events[2].t, 6.0);
  EXPECT_DOUBLE_EQ(events[3].t, 9.0);
}

TEST(TraceSink, TypeCountsSurviveWraparound) {
  TraceSink sink(TraceSink::Config{2, 1});
  for (int i = 0; i < 6; ++i) {
    sink.record(event_at(static_cast<Time>(i), TraceEventType::kHandoffPhi));
  }
  sink.record(event_at(7.0, TraceEventType::kHandoffGamma));
  const auto& counts = sink.type_counts();
  EXPECT_EQ(counts[static_cast<Size>(TraceEventType::kHandoffPhi)], 6u);
  EXPECT_EQ(counts[static_cast<Size>(TraceEventType::kHandoffGamma)], 1u);
  EXPECT_EQ(sink.size(), 2u);  // ring only holds the newest two
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink(TraceSink::Config{4, 1});
  for (int i = 0; i < 10; ++i) sink.record(event_at(static_cast<Time>(i)));
  sink.clear();
  EXPECT_EQ(sink.seen(), 0u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
  sink.record(event_at(42.0));
  ASSERT_EQ(sink.snapshot().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.snapshot().front().t, 42.0);
}

TEST(TraceSink, EveryEventTypeHasAName) {
  for (Size i = 0; i < kTraceEventTypeCount; ++i) {
    const char* name = to_string(static_cast<TraceEventType>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown");
  }
}

}  // namespace
}  // namespace manet::sim
