#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal CSV emission for experiment campaigns (examples write sweep
/// results to disk for external plotting). Values are quoted only when they
/// contain separators/quotes, per RFC 4180.

namespace manet::analysis {

class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  void write_row(const std::vector<std::string>& cells);
  void write_row_values(const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ostream& os_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace manet::analysis
