#include "lm/handover_fsm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace manet::lm {

namespace {
/// Completion-latency histogram buckets (seconds).
constexpr double kCompletionBuckets[] = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
}  // namespace

const char* to_string(HandoverState state) {
  switch (state) {
    case HandoverState::kMeasure: return "measure";
    case HandoverState::kDecide: return "decide";
    case HandoverState::kAllocate: return "allocate";
    case HandoverState::kDetect: return "detect";
    case HandoverState::kComplete: return "complete";
    case HandoverState::kRollback: return "rollback";
    case HandoverState::kRolledBack: return "rolled_back";
    case HandoverState::kFailed: return "failed";
  }
  return "unknown";
}

HandoverManager::HandoverManager(HandoverFsmConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  MANET_CHECK(config_.timeout > 0.0);
  MANET_CHECK(config_.backoff >= 1.0);
  MANET_CHECK(config_.holdoff > 0.0);
}

void HandoverManager::set_metrics(common::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    started_c_ = completed_c_ = retries_c_ = timeouts_c_ = nullptr;
    rollbacks_c_ = rollback_failures_c_ = nullptr;
    completion_h_ = nullptr;
    return;
  }
  started_c_ = &registry->counter("lm.handover.started");
  completed_c_ = &registry->counter("lm.handover.completed");
  retries_c_ = &registry->counter("lm.handover.retries");
  timeouts_c_ = &registry->counter("lm.handover.timeouts");
  rollbacks_c_ = &registry->counter("lm.handover.rollbacks");
  rollback_failures_c_ = &registry->counter("lm.handover.rollback_failures");
  completion_h_ = &registry->histogram("lm.handover.completion_s", kCompletionBuckets);
}

void HandoverManager::trace(sim::TraceEventType type, const Flight& flight, Time t,
                            double value) const {
  if (trace_ == nullptr) return;
  trace_->record(
      sim::TraceEvent{t, type, flight.level, flight.old_server, flight.new_server, value});
}

bool HandoverManager::attempt(const Flight& flight) {
  const PacketCount packets = flight.hops > 0 ? flight.hops : 1;
  stats_.signal_packets += packets;
  if (config_.signal_loss <= 0.0) return true;
  if (config_.signal_loss >= 1.0) return false;
  const double survive =
      std::pow(1.0 - config_.signal_loss, static_cast<double>(packets));
  return common::uniform01(rng_) < survive;
}

bool HandoverManager::rollback(Flight& flight, Time now, bool target_crash) {
  flight.state = HandoverState::kRollback;
  ++stats_.rollbacks;
  if (target_crash) ++stats_.target_crashes;
  if (rollbacks_c_ != nullptr) rollbacks_c_->add(1);
  if (flight.old_server == kInvalidNode || is_down(flight.old_server)) {
    // Nowhere to fall back to: the procedure dies and the (owner, level)
    // entry is dark until the engine's repair path re-delivers it.
    flight.state = HandoverState::kFailed;
    ++stats_.rollback_failures;
    if (rollback_failures_c_ != nullptr) rollback_failures_c_->add(1);
    trace(sim::TraceEventType::kHandoverFail, flight, now, 0.0);
    return false;
  }
  flight.state = HandoverState::kRolledBack;
  flight.deadline = now + config_.holdoff;
  flight.awaiting = false;
  flight.attempts = 0;
  trace(sim::TraceEventType::kHandoverRollback, flight, now, 0.0);
  return true;
}

bool HandoverManager::advance(Flight& flight, Time now) {
  while (true) {
    switch (flight.state) {
      case HandoverState::kMeasure:
        // Measurement = the engine's observed server change; always ripe.
        flight.state = HandoverState::kDecide;
        break;
      case HandoverState::kDecide:
        // The assignment table is authoritative, so the decision is always
        // "go" — what can still fail is everything after it.
        flight.state = HandoverState::kAllocate;
        flight.attempts = 0;
        flight.awaiting = false;
        break;
      case HandoverState::kAllocate:
      case HandoverState::kDetect: {
        if (is_down(flight.new_server)) return rollback(flight, now, /*target_crash=*/true);
        if (flight.awaiting) {
          if (now < flight.deadline) return true;  // attempt still outstanding
          ++stats_.timeouts;
          if (timeouts_c_ != nullptr) timeouts_c_->add(1);
          flight.awaiting = false;
          if (flight.attempts > config_.max_retries) {
            return rollback(flight, now, /*target_crash=*/false);
          }
          ++stats_.retries;
          if (retries_c_ != nullptr) retries_c_->add(1);
          trace(sim::TraceEventType::kHandoverRetry, flight, now,
                static_cast<double>(flight.attempts));
        }
        ++flight.attempts;
        if (attempt(flight)) {
          if (flight.state == HandoverState::kAllocate) {
            flight.state = HandoverState::kDetect;
            flight.attempts = 0;
            flight.awaiting = false;
            break;  // detect proceeds within the same tick
          }
          flight.state = HandoverState::kComplete;
          ++stats_.completed;
          const double latency = now - flight.started_at;
          stats_.completion_time_sum += latency;
          if (completed_c_ != nullptr) completed_c_->add(1);
          if (completion_h_ != nullptr) completion_h_->observe(latency);
          trace(sim::TraceEventType::kHandoverComplete, flight, now, latency);
          return false;
        }
        // Attempt lost in transit; discovered only when the timer fires.
        flight.awaiting = true;
        flight.deadline =
            now + config_.timeout *
                      std::pow(config_.backoff, static_cast<double>(flight.attempts - 1));
        return true;
      }
      case HandoverState::kRolledBack:
        // Pinned to the old server. Re-attempt once the holdoff expires and
        // the target is reachable again.
        if (now < flight.deadline || is_down(flight.new_server)) return true;
        flight.state = HandoverState::kAllocate;
        flight.attempts = 0;
        flight.awaiting = false;
        break;
      case HandoverState::kComplete:
      case HandoverState::kRollback:
      case HandoverState::kFailed:
        // Terminal/transient states are never stored between ticks.
        return false;
    }
  }
}

void HandoverManager::tick(Time now) {
  for (auto it = flights_.begin(); it != flights_.end();) {
    if (advance(it->second, now)) {
      ++it;
    } else {
      it = flights_.erase(it);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("lm.handover.in_flight").set(static_cast<double>(flights_.size()));
  }
}

void HandoverManager::on_entry_move(NodeId owner, Level k, NodeId from, NodeId to, Time t,
                                    bool migrated, PacketCount hops) {
  const std::uint64_t fk = key(owner, k);
  const auto it = flights_.find(fk);
  if (it != flights_.end()) {
    // The assignment moved again mid-procedure: the newer move wins.
    ++stats_.superseded;
    flights_.erase(it);
  }
  Flight flight;
  flight.owner = owner;
  flight.level = k;
  flight.old_server = from;
  flight.new_server = to;
  flight.state = HandoverState::kMeasure;
  flight.started_at = t;
  flight.migrated = migrated;
  flight.hops = hops > 0 ? hops : 1;
  ++stats_.started;
  if (started_c_ != nullptr) started_c_->add(1);
  trace(sim::TraceEventType::kHandoverStart, flight, t, static_cast<double>(flight.hops));
  flights_.emplace(fk, flight);
}

void HandoverManager::on_entry_stale(NodeId owner, Level k, NodeId /*holder*/, Time t) {
  const auto it = flights_.find(key(owner, k));
  if (it == flights_.end()) return;
  // The serving copy is gone (transfer failed or its holder crashed): abort
  // toward the old server; if that is dark too the procedure fails outright.
  // A down target means the staleness *is* the target-server crash (the
  // engine wipes a crashed server's store before this manager ticks, so the
  // crash always arrives here as a stale event first).
  const bool target_crash = is_down(it->second.new_server);
  if (!rollback(it->second, t, target_crash)) flights_.erase(it);
}

void HandoverManager::on_entry_repaired(NodeId owner, Level k, NodeId /*server*/, Time t) {
  const auto it = flights_.find(key(owner, k));
  if (it == flights_.end()) return;
  // The repair path re-delivered the entry to the current assignment server;
  // whatever this procedure was still signalling is moot.
  (void)t;
  ++stats_.repaired;
  flights_.erase(it);
}

void HandoverManager::on_entry_retired(NodeId owner, Level k, Time /*t*/) {
  const auto it = flights_.find(key(owner, k));
  if (it == flights_.end()) return;
  ++stats_.retired;
  flights_.erase(it);
}

HandoverManager::FlightView HandoverManager::view(NodeId owner, Level k) const {
  const auto it = flights_.find(key(owner, k));
  if (it == flights_.end()) return FlightView{};
  const Flight& flight = it->second;
  return FlightView{true, flight.old_server,
                    flight.state == HandoverState::kRolledBack};
}

bool HandoverManager::has_flight(NodeId owner, Level k) const {
  return flights_.find(key(owner, k)) != flights_.end();
}

HandoverState HandoverManager::state_of(NodeId owner, Level k) const {
  const auto it = flights_.find(key(owner, k));
  MANET_CHECK_MSG(it != flights_.end(), "state_of: no in-flight handover");
  return it->second.state;
}

}  // namespace manet::lm
