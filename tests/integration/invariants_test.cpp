#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/diff.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "exp/simulation.hpp"
#include "graph/components.hpp"
#include "lm/handoff.hpp"
#include "net/unit_disk.hpp"

/// Cross-module invariants exercised over a mobile run: every tick of a
/// realistic simulation must preserve the structural properties the
/// analytical machinery assumes. Violations here indicate silent metric
/// corruption that unit tests cannot see.

namespace manet {
namespace {

TEST(Invariants, MobileRunPreservesAllStructuralInvariants) {
  const Size n = 250;
  exp::ScenarioConfig cfg;
  cfg.n = n;
  cfg.seed = 31;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  cfg.target_degree = 12.0;
  auto scenario = exp::Scenario::materialize(cfg);

  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  cluster::HierarchyOptions hopts;
  hopts.geometric_links = true;
  hopts.tx_radius = cfg.tx_radius();
  cluster::HierarchyBuilder builder(hopts);

  lm::HandoffEngine engine;
  graph::Graph g = disk.build(scenario.mobility->positions());
  cluster::Hierarchy h = builder.build(g, scenario.ids, scenario.mobility->positions());
  engine.prime(h, 0.0);

  for (int tick = 1; tick <= 25; ++tick) {
    scenario.mobility->advance_to(static_cast<Time>(tick));
    g = disk.build(scenario.mobility->positions());
    cluster::Hierarchy next =
        builder.build(g, scenario.ids, scenario.mobility->positions());

    // 1. Connectivity enforcement held.
    ASSERT_TRUE(graph::is_connected(g)) << "tick " << tick;

    // 2. Membership is a partition at every level, heads self-consistent.
    for (Level k = 0; k <= next.top_level(); ++k) {
      Size members_total = 0;
      for (NodeId c = 0; c < next.cluster_count(k); ++c) {
        members_total += next.members0(k, c).size();
      }
      ASSERT_EQ(members_total, n) << "tick " << tick << " level " << k;
    }

    // 3. Aggregation is strict below the top.
    for (Level k = 1; k <= next.top_level(); ++k) {
      ASSERT_LT(next.cluster_count(k), next.cluster_count(k - 1))
          << "tick " << tick << " level " << k;
    }

    // 4. Diff is self-consistent: heads gained/lost match level id sets.
    const auto delta = cluster::diff_hierarchies(h, next);
    for (Level k = 1; k < delta.heads_gained.size() && k <= next.top_level(); ++k) {
      for (const NodeId id : delta.heads_gained[k]) {
        const auto& ids = next.level(k).ids;
        ASSERT_NE(std::find(ids.begin(), ids.end(), id), ids.end());
      }
    }

    // 5. Handoff engine's database matches the assignment function.
    engine.update(next, g, static_cast<Time>(tick));
    ASSERT_EQ(engine.database().total_entries(),
              next.top_level() >= 2
                  ? n * (next.top_level() - lm::kFirstServedLevel + 1)
                  : 0)
        << "tick " << tick;

    // 6. No transfer ever crossed a disconnected graph.
    ASSERT_EQ(engine.unreachable_transfers(), 0u) << "tick " << tick;

    h = std::move(next);
  }
}

TEST(Invariants, HandoffTotalsEqualSumOfLevels) {
  exp::ScenarioConfig cfg;
  cfg.n = 200;
  cfg.seed = 33;
  cfg.radius_policy = exp::RadiusPolicy::kMeanDegree;
  auto scenario = exp::Scenario::materialize(cfg);
  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  cluster::HierarchyBuilder builder;
  lm::HandoffEngine engine;

  graph::Graph g = disk.build(scenario.mobility->positions());
  engine.prime(builder.build(g, scenario.ids), 0.0);
  for (int tick = 1; tick <= 15; ++tick) {
    scenario.mobility->advance_to(static_cast<Time>(tick));
    g = disk.build(scenario.mobility->positions());
    engine.update(builder.build(g, scenario.ids), g, static_cast<Time>(tick));
  }

  PacketCount phi = 0, gamma = 0;
  for (const auto& lvl : engine.per_level()) {
    phi += lvl.phi_packets;
    gamma += lvl.gamma_packets;
  }
  EXPECT_EQ(phi, engine.total_phi());
  EXPECT_EQ(gamma, engine.total_gamma());
}

TEST(Invariants, TickRateRobustness) {
  // Halving the sampling tick must not change measured rates wildly (the
  // Delta-t validation promised in DESIGN.md). Rates are tick-sensitive for
  // fast events, so allow a 2x band.
  exp::ScenarioConfig coarse;
  coarse.n = 200;
  coarse.seed = 35;
  coarse.warmup = 5.0;
  coarse.duration = 20.0;
  coarse.tick = 1.0;
  coarse.radius_policy = exp::RadiusPolicy::kMeanDegree;
  auto fine = coarse;
  fine.tick = 0.5;

  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  const auto mc = exp::run_simulation(coarse, opts);
  const auto mf = exp::run_simulation(fine, opts);
  const double rc = mc.get("total_rate");
  const double rf = mf.get("total_rate");
  EXPECT_LT(rf / rc, 2.0);
  EXPECT_GT(rf / rc, 0.5);
}

}  // namespace
}  // namespace manet
