#pragma once

#include <memory>

#include "common/flat_map.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

/// \file engine.hpp
/// Discrete-event simulation engine: a monotone clock plus the pending-event
/// set. Mobility waypoint arrivals, topology sampling ticks and measurement
/// epochs are all events; the engine knows nothing about their semantics.
///
/// The engine also carries the run's TraceSink hook: producers driven by the
/// engine call emit() (stamped with the engine clock) so every subsystem
/// shares one sink without extra plumbing. With no sink attached, emit() is
/// a single predictable branch — tracing off costs nothing.

namespace manet::sim {

class Engine {
 public:
  Time now() const noexcept { return now_; }

  /// Schedule at absolute time \p when (must be >= now()).
  EventId schedule_at(Time when, EventClosure fn);

  /// Schedule \p delay seconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventClosure fn);

  /// Schedule \p fn every \p period seconds, first firing at now() + period.
  /// Returns the id of the *first* occurrence; cancelling a recurring event
  /// is done via stop_recurring() with the handle returned here.
  struct RecurringHandle {
    std::uint64_t token;
  };
  RecurringHandle schedule_every(Time period, EventClosure fn);
  void stop_recurring(RecurringHandle handle);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue is empty or the clock would pass \p horizon.
  /// Events scheduled exactly at the horizon DO fire. Returns the number of
  /// events executed.
  Size run_until(Time horizon);

  /// Execute exactly one event if any is pending; returns whether one fired.
  bool step();

  Size pending_count() const { return queue_.pending_count(); }

  /// Attach (or detach with nullptr) the run's trace sink. Not owned.
  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }
  TraceSink* trace_sink() const noexcept { return trace_; }
  bool tracing() const noexcept { return trace_ != nullptr; }

  /// Record a typed event stamped with the current simulation time. No-op
  /// (one branch) when no sink is attached.
  void emit(TraceEventType type, Level level, NodeId a = kInvalidNode,
            NodeId b = kInvalidNode, double value = 0.0) {
    if (trace_ != nullptr) trace_->record(TraceEvent{now_, type, level, a, b, value});
  }

 private:
  /// Engine-owned state of one recurring schedule. Heap-pinned (unique_ptr)
  /// so the callback may itself create or retire recurring schedules while
  /// it runs: the map may rehash, the Recurring never moves.
  struct Recurring {
    EventClosure fn;
    Time origin = 0.0;
    Time period = 0.0;
    std::uint64_t fired = 0;
    bool alive = true;
  };

  void fire_recurring(std::uint64_t token);

  EventQueue queue_;
  TraceSink* trace_ = nullptr;
  Time now_ = 0.0;
  std::uint64_t next_recurring_token_ = 1;
  common::FlatMap<std::uint64_t, std::unique_ptr<Recurring>> recurring_;
};

}  // namespace manet::sim
