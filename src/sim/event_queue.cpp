#include "sim/event_queue.hpp"

#include <utility>

#include "common/check.hpp"

namespace manet::sim {

EventId EventQueue::schedule(Time when, EventFn fn) {
  MANET_CHECK_MSG(fn != nullptr, "null event callback");
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  MANET_CHECK(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  MANET_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

}  // namespace manet::sim
