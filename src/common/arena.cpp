#include "common/arena.hpp"

#include <cstdint>

#include "common/check.hpp"

namespace manet::common {

void* ArenaScratch::allocate(Size bytes, Size align) {
  MANET_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
  for (;;) {
    if (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      // Align the absolute address, not the block offset: operator new[]
      // only guarantees max_align_t, so over-aligned requests must account
      // for the block base's own misalignment.
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const Size aligned =
          static_cast<Size>(((base + offset_ + align - 1) & ~(std::uintptr_t{align} - 1)) -
                            base);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      // Current block exhausted; fall through to the next (or a new) one.
      ++block_;
      offset_ = 0;
      continue;
    }
    // Geometric growth keeps the block count logarithmic in peak usage, so
    // after warmup rewind()/allocate() cycles touch a handful of blocks.
    Size want = blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
    if (want < bytes + align) want = bytes + align;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
  }
}

}  // namespace manet::common
