#include "mobility/field.hpp"

#include "common/check.hpp"

namespace manet::mobility {

StaticField::StaticField(const geom::Region& region, Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  positions_.resize(n);
  for (auto& p : positions_) p = region.sample(rng);
}

StaticField::StaticField(std::vector<geom::Vec2> positions)
    : positions_(std::move(positions)) {}

void StaticField::advance_to(Time t) {
  MANET_CHECK_MSG(t >= now_, "mobility time must be monotone");
  now_ = t;
}

}  // namespace manet::mobility
