#!/usr/bin/env python3
"""Throughput-regression gate for bench artifacts.

Compares a freshly produced ``BENCH_<name>.json`` (schema
``manet-bench-artifact/1``) against a committed baseline and fails when any
``ticks_per_sec_*`` series point regressed by more than the threshold
(default 20%). Absolute ticks/sec is machine-dependent, so the committed
baseline is only a tripwire for order-of-magnitude regressions on comparable
hardware — the machine-independent invariants (the incremental speedup and
bit-identity) are enforced by the bench binary itself and by
tests/integration/tick_pipeline_test.

Exit codes: 0 ok, 1 regression or malformed artifact, 2 baseline missing or
malformed (a repo problem, not a perf problem — regenerate the committed
baseline), 77 artifact missing (bench not run; registered with
SKIP_RETURN_CODE 77 so ctest reports a skip).

Usage: check_bench.py ARTIFACT BASELINE [--threshold 0.20]
"""

import argparse
import json
import sys

SKIP = 77
BASELINE_ERROR = 2
SCHEMA = "manet-bench-artifact/1"


def validate(doc):
    """Return an error string when ``doc`` deviates from the artifact shape
    the gates below index into; None when well-formed. Every access pattern
    used later (series -> list of {n, mean} points, numeric scalars) is
    pinned here so a truncated or hand-mangled JSON fails with a one-line
    diagnosis instead of a KeyError/TypeError traceback."""
    if not isinstance(doc, dict):
        return "top level is not an object"
    if doc.get("schema") != SCHEMA:
        return f"unexpected schema {doc.get('schema')!r}"
    series = doc.get("series", {})
    if not isinstance(series, dict):
        return "'series' is not an object"
    for name, points in series.items():
        if not isinstance(points, list):
            return f"series {name!r} is not a list of points"
        for point in points:
            if not isinstance(point, dict):
                return f"series {name!r} has a non-object point"
            for key in ("n", "mean"):
                value = point.get(key)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    return f"series {name!r} has a point without a numeric {key!r}"
    scalars = doc.get("scalars", {})
    if not isinstance(scalars, dict):
        return "'scalars' is not an object"
    for key, value in scalars.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"scalar {key!r} is not a number"
    return None


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench: cannot read {path}: {err}", file=sys.stderr)
        return None
    error = validate(doc)
    if error is not None:
        print(f"check_bench: {path}: {error}", file=sys.stderr)
        return None
    return doc


def series_points(doc, name):
    """Map n -> mean for one series."""
    return {p["n"]: p["mean"] for p in doc.get("series", {}).get(name, [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional ticks/sec drop (default 0.20)")
    args = parser.parse_args()

    try:
        artifact_file = open(args.artifact, encoding="utf-8")
    except FileNotFoundError:
        print(f"check_bench: {args.artifact} not found — run the bench first "
              "(skipping)")
        return SKIP
    artifact_file.close()

    artifact = load(args.artifact)
    if artifact is None:
        return 1
    # A bad *baseline* is a repo problem, not a perf regression: distinct
    # exit code so CI can tell "fix the committed file" from "fix the code".
    baseline = load(args.baseline)
    if baseline is None:
        print(f"check_bench: baseline {args.baseline} is missing or malformed "
              "— regenerate it from a known-good bench run", file=sys.stderr)
        return BASELINE_ERROR

    throughput_series = sorted(
        name for name in baseline.get("series", {})
        if name.startswith("ticks_per_sec_"))
    # Scalar-only baselines are legitimate when they carry recognized gate
    # scalars (bench_query's is gated purely on absolute floors/caps); a
    # baseline with neither throughput series nor gates checks nothing and
    # is flagged as malformed.
    gate_scalar_keys = (
        "min_speedup", "min_capacity_n", "min_speedup_high",
        "max_orchestrator_overhead_frac", "max_allocs_per_tick",
        "max_session_interruption_p99", "max_misroute_rate",
        "min_lookups_per_sec", "max_lookup_p99_us", "min_parallel_speedup")
    baseline_scalars = baseline.get("scalars", {})
    if not throughput_series and not any(
            key in baseline_scalars for key in gate_scalar_keys):
        print("check_bench: baseline has no ticks_per_sec_* series and no "
              "recognized gate scalars", file=sys.stderr)
        return 1

    # Speedup gate (bench_memory): when the baseline carries a `min_speedup`
    # scalar, it was produced by a *pre-optimization* binary on purpose, and
    # every throughput point must beat it by at least that factor (the E27
    # >=1.3x acceptance criterion) instead of merely not regressing.
    min_speedup = baseline.get("scalars", {}).get("min_speedup")

    status = 0
    checked = 0
    for name in throughput_series:
        base_points = series_points(baseline, name)
        new_points = series_points(artifact, name)
        for n, base_mean in sorted(base_points.items()):
            if n not in new_points:
                print(f"check_bench: FAIL {name} lost its n={n:g} point",
                      file=sys.stderr)
                status = 1
                continue
            new_mean = new_points[n]
            checked += 1
            if base_mean <= 0:
                continue
            ratio = new_mean / base_mean
            if min_speedup is not None:
                verdict = "ok" if ratio >= min_speedup else "FAIL"
                if verdict == "FAIL":
                    status = 1
                print(f"check_bench: {verdict} {name} n={n:g} "
                      f"baseline={base_mean:.4g} now={new_mean:.4g} "
                      f"(speedup {ratio:.2f}x, need >={min_speedup:g}x)")
                continue
            drop = 1.0 - ratio
            verdict = "ok"
            if drop > args.threshold:
                verdict = "FAIL"
                status = 1
            print(f"check_bench: {verdict} {name} n={n:g} "
                  f"baseline={base_mean:.4g} now={new_mean:.4g} "
                  f"({-drop:+.1%})")

    violations = artifact.get("scalars", {}).get("identity_violations")
    if violations:
        print(f"check_bench: FAIL artifact reports {violations:g} "
              "identity violations", file=sys.stderr)
        status = 1

    # Capacity gate (bench_capacity): the artifact must demonstrate a
    # measured throughput point at or above the committed node-count floor
    # (the 10^5-node acceptance bar for the sharded tick). Simulated scale,
    # not machine speed, so the floor is absolute.
    floor_n = baseline.get("scalars", {}).get("min_capacity_n")
    if floor_n is not None:
        largest = max(
            (n for name in artifact.get("series", {})
             if name.startswith("ticks_per_sec_")
             for n in series_points(artifact, name)),
            default=0)
        if largest < floor_n:
            print(f"check_bench: FAIL largest measured throughput point "
                  f"n={largest:g} is below the n={floor_n:g} capacity floor",
                  file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok capacity point n={largest:g} "
                  f"(floor n={floor_n:g})")

    # Shards x threads matrix pinning (bench_capacity E30): every
    # ticks_per_sec_s<S>_t<T> cell the baseline recorded must exist in the
    # artifact with a positive throughput. The cells are wall-clock on the
    # producing machine, so they are shape-pinned — a lost cell means the
    # matrix shrank — but never timing-compared (the series gate above and
    # the speedup gate below cover performance).
    matrix_cells = sorted(
        key for key in baseline_scalars
        if key.startswith("ticks_per_sec_s") and "_t" in key)
    matrix_bad = 0
    for key in matrix_cells:
        value = artifact.get("scalars", {}).get(key)
        if value is None:
            print(f"check_bench: FAIL artifact lost the {key} matrix cell",
                  file=sys.stderr)
            matrix_bad += 1
        elif value <= 0:
            print(f"check_bench: FAIL matrix cell {key} is not positive "
                  f"({value:g})", file=sys.stderr)
            matrix_bad += 1
        else:
            checked += 1
    if matrix_bad:
        status = 1
    elif matrix_cells:
        print(f"check_bench: ok shards x threads matrix "
              f"({len(matrix_cells)} cells present and positive)")

    # Parallel-speedup gate (bench_capacity E30): on a multi-core machine the
    # best shards x threads cell must beat its own single-thread cell by at
    # least `min_parallel_speedup`. The ratio compares two runs on the same
    # machine, so the floor is absolute — but it is meaningless on a
    # single-core runner (threads > 1 only add contention), so the gate skips
    # itself, with the reason logged, when the artifact's manifest reports
    # hardware_concurrency < 2.
    min_parallel = baseline.get("scalars", {}).get("min_parallel_speedup")
    if min_parallel is not None:
        manifest = artifact.get("manifest", {})
        hw = manifest.get("hardware_concurrency", 0) \
            if isinstance(manifest, dict) else 0
        if not isinstance(hw, (int, float)) or isinstance(hw, bool):
            hw = 0
        if hw < 2:
            print(f"check_bench: min_parallel_speedup gate skipped "
                  f"(hardware_concurrency={hw:g} < 2: single-core runner, "
                  f"parallel speedup is unmeasurable here)")
        else:
            speedup = artifact.get("scalars", {}).get("speedup_max")
            if speedup is None:
                print("check_bench: FAIL artifact is missing the "
                      "speedup_max scalar", file=sys.stderr)
                status = 1
            elif speedup < min_parallel:
                print(f"check_bench: FAIL parallel speedup {speedup:.2f}x is "
                      f"below the {min_parallel:g}x floor", file=sys.stderr)
                status = 1
            else:
                checked += 1
                print(f"check_bench: ok parallel speedup {speedup:.2f}x "
                      f"(floor {min_parallel:g}x)")

    # High-mobility speedup gate (bench_tick_pipeline): the incremental arm
    # must beat the full-rebuild arm by at least `min_speedup_high` at
    # n = `min_speedup_high_n` in the high-mobility regime. Like the overhead
    # gate below, the speedup is a ratio of two runs on the same machine, so
    # the floor is absolute rather than baseline-relative.
    min_high = baseline.get("scalars", {}).get("min_speedup_high")
    if min_high is not None:
        high_n = baseline.get("scalars", {}).get("min_speedup_high_n")
        speedup = series_points(artifact, "speedup_high").get(high_n)
        if speedup is None:
            print(f"check_bench: FAIL artifact has no speedup_high point at "
                  f"n={high_n:g}", file=sys.stderr)
            status = 1
        elif speedup < min_high:
            print(f"check_bench: FAIL high-mobility speedup {speedup:.2f}x at "
                  f"n={high_n:g} is below the {min_high:g}x floor",
                  file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok high-mobility speedup {speedup:.2f}x at "
                  f"n={high_n:g} (floor {min_high:g}x)")

    # Orchestrator-overhead gate (bench_campaign): the measured wall-clock
    # overhead of the checkpointed campaign path over raw run_replications
    # must stay under the cap committed in the baseline. Machine-independent
    # (a ratio of two runs on the same machine), so the cap is absolute.
    cap = baseline.get("scalars", {}).get("max_orchestrator_overhead_frac")
    if cap is not None:
        overhead = artifact.get("scalars", {}).get("orchestrator_overhead_frac")
        if overhead is None:
            print("check_bench: FAIL artifact is missing the "
                  "orchestrator_overhead_frac scalar", file=sys.stderr)
            status = 1
        elif overhead > cap:
            print(f"check_bench: FAIL orchestrator overhead {overhead:+.2%} "
                  f"exceeds the {cap:.0%} cap", file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok orchestrator overhead {overhead:+.2%} "
                  f"(cap {cap:.0%})")

    # Allocations-per-tick gate (bench_memory): enforced only when the
    # artifact came from a MANET_PROFILE_ALLOC build (alloc_profile == 1);
    # a default build has nothing interposed, so the artifact legitimately
    # lacks the scalar and the gate reports itself skipped.
    alloc_cap = baseline.get("scalars", {}).get("max_allocs_per_tick")
    if alloc_cap is not None:
        profiled = artifact.get("scalars", {}).get("alloc_profile")
        allocs = artifact.get("scalars", {}).get("allocs_per_tick")
        if not profiled:
            print("check_bench: alloc gate skipped (artifact from a build "
                  "without MANET_PROFILE_ALLOC)")
        elif allocs is None:
            print("check_bench: FAIL profiled artifact is missing the "
                  "allocs_per_tick scalar", file=sys.stderr)
            status = 1
        elif allocs > alloc_cap:
            print(f"check_bench: FAIL {allocs:g} allocations per steady-state "
                  f"tick exceeds the cap of {alloc_cap:g}", file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok {allocs:g} allocations per steady-state "
                  f"tick (cap {alloc_cap:g})")

    # Session-continuity gate (bench_sessions): the vehicular-regime p99
    # interruption window and misroute rate must stay under the caps
    # committed in the baseline (the E29 acceptance bars). Both are
    # simulated quantities, so the caps are absolute, not machine-relative.
    for cap_key, value_key, unit in (
            ("max_session_interruption_p99", "interruption_p99_vehicular", "s"),
            ("max_misroute_rate", "misroute_rate_vehicular", "")):
        cap = baseline.get("scalars", {}).get(cap_key)
        if cap is None:
            continue
        value = artifact.get("scalars", {}).get(value_key)
        if value is None:
            print(f"check_bench: FAIL artifact is missing the "
                  f"{value_key} scalar", file=sys.stderr)
            status = 1
        elif value > cap:
            print(f"check_bench: FAIL {value_key} {value:g}{unit} exceeds "
                  f"the cap of {cap:g}{unit}", file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok {value_key} {value:g}{unit} "
                  f"(cap {cap:g}{unit})")

    # Query-serving gates (bench_query E31): the frozen-snapshot
    # single-thread serving rate must meet the committed absolute floor and
    # the p99 per-lookup latency must stay under the cap. The floor is a
    # deliberate lowball (any in-memory epoch-pinned lookup path clears
    # 10^6/s even on the slowest CI hardware) so it trips on structural
    # regressions — a lock on the read path, a per-lookup allocation — not
    # on machine variance.
    floor_rate = baseline.get("scalars", {}).get("min_lookups_per_sec")
    if floor_rate is not None:
        rate = artifact.get("scalars", {}).get("lookups_per_sec")
        if rate is None:
            print("check_bench: FAIL artifact is missing the "
                  "lookups_per_sec scalar", file=sys.stderr)
            status = 1
        elif rate < floor_rate:
            print(f"check_bench: FAIL {rate:g} lookups/s is below the "
                  f"{floor_rate:g}/s floor", file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok {rate:g} lookups/s "
                  f"(floor {floor_rate:g}/s)")
    p99_cap = baseline.get("scalars", {}).get("max_lookup_p99_us")
    if p99_cap is not None:
        p99 = artifact.get("scalars", {}).get("lookup_p99_us")
        if p99 is None:
            print("check_bench: FAIL artifact is missing the "
                  "lookup_p99_us scalar", file=sys.stderr)
            status = 1
        elif p99 > p99_cap:
            print(f"check_bench: FAIL lookup p99 {p99:g}us exceeds the "
                  f"{p99_cap:g}us cap", file=sys.stderr)
            status = 1
        else:
            checked += 1
            print(f"check_bench: ok lookup p99 {p99:g}us "
                  f"(cap {p99_cap:g}us)")

    if status == 0:
        print(f"check_bench: OK ({checked} points within "
              f"{args.threshold:.0%} of baseline)")
    return status


if __name__ == "__main__":
    sys.exit(main())
