/// E14: the headline claim (paper Conclusions): total LM handoff overhead
/// phi + gamma grows polylogarithmically in |V| — Theta(log^2 |V|) packet
/// transmissions per node per second. Runs the widest sweep in the suite
/// and ranks growth models for phi, gamma and the total, plus mobility-model
/// sensitivity at one scale.

#include "analysis/bootstrap.hpp"
#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E14  bench_scaling_fit — headline scaling of total handoff overhead",
      "phi + gamma = Theta(log^2 |V|) pkts/node/s (paper Section 6)");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;

  // Extend the sweep one octave beyond the standard set for a cleaner fit.
  auto nodes = bench::standard_nodes();
  nodes.push_back(4096);
  bench::Artifact artifact("scaling_fit", cfg, bench::standard_replications());
  const auto campaign =
      exp::sweep_node_count(cfg, nodes, bench::standard_replications(), opts);
  artifact.add_campaign(campaign, "phi_rate");
  artifact.add_campaign(campaign, "gamma_rate");
  artifact.add_campaign(campaign, "total_rate");
  artifact.add_campaign(campaign, "levels");

  analysis::TextTable table({"|V|", "phi", "gamma", "total", "total/log^2", "total/sqrt(n)",
                             "levels"});
  for (const auto& point : campaign.points) {
    const double n = static_cast<double>(point.n);
    const double total = point.metrics.mean("total_rate");
    table.add_row({std::to_string(point.n), bench::cell(point.metrics, "phi_rate"),
                   bench::cell(point.metrics, "gamma_rate"),
                   bench::cell(point.metrics, "total_rate"),
                   bench::fixed(total / (std::log(n) * std::log(n)), 4),
                   bench::fixed(total / std::sqrt(n), 4),
                   bench::cell(point.metrics, "levels")});
  }
  std::printf("%s", table.to_string("scaling sweep (pkts/node/s)").c_str());

  bench::print_model_selection("phi", campaign, "phi_rate");
  bench::print_model_selection("gamma", campaign, "gamma_rate");
  bench::print_model_selection("total", campaign, "total_rate");

  // Bootstrap confidence of the headline ranking: resample the per-point
  // means within their standard errors and count how often each law wins.
  {
    std::vector<double> ns, ys, es;
    campaign.series_with_error("total_rate", ns, ys, es);
    const auto boot = analysis::bootstrap_model_selection(ns, ys, es, 2000);
    std::printf("\nbootstrap over 2000 resamples of the total series:\n");
    for (std::size_t law = 0; law < analysis::kGrowthLawCount; ++law) {
      std::printf("  P(%-9s ranks first) = %.3f\n",
                  analysis::to_string(static_cast<analysis::GrowthLaw>(law)),
                  boot.win_fraction[law]);
    }
    std::printf("  P(best polylog law beats both sqrt(n) and n) = %.3f\n",
                boot.polylog_beats_roots);
    artifact.set_scalar("bootstrap_polylog_beats_roots", boot.polylog_beats_roots);
    for (std::size_t law = 0; law < analysis::kGrowthLawCount; ++law) {
      artifact.set_scalar(
          std::string("bootstrap_win.") +
              analysis::to_string(static_cast<analysis::GrowthLaw>(law)),
          boot.win_fraction[law]);
    }
  }

  // Mobility-model sensitivity (extension beyond the paper). RPGM is the
  // group-motion scenario HSR [11] targets: correlated motion keeps clusters
  // aligned with groups, so handoff should drop relative to independent
  // motion at the same speed.
  std::printf("\n");
  analysis::TextTable mob({"mobility", "phi", "gamma", "total", "f0"});
  cfg.n = 1024;
  for (const auto kind :
       {exp::MobilityKind::kRandomWaypoint, exp::MobilityKind::kRandomDirection,
        exp::MobilityKind::kGaussMarkov, exp::MobilityKind::kGroup}) {
    cfg.mobility = kind;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    const char* name = kind == exp::MobilityKind::kRandomWaypoint    ? "random_waypoint"
                       : kind == exp::MobilityKind::kRandomDirection ? "random_direction"
                       : kind == exp::MobilityKind::kGaussMarkov     ? "gauss_markov"
                                                                     : "rpgm_group(16)";
    mob.add_row({name, bench::cell(agg, "phi_rate"), bench::cell(agg, "gamma_rate"),
                 bench::cell(agg, "total_rate"), bench::cell(agg, "f0")});
    artifact.add_point(std::string("mobility_total.") + name,
                       static_cast<double>(cfg.n), agg, "total_rate");
  }
  std::printf("%s", mob.to_string("mobility sensitivity, |V| = 1024 (E23)").c_str());

  std::printf(
      "\nreading: the decisive comparison is log^2 vs sqrt(n) vs n in the\n"
      "rankings above — the paper's claim survives if log^2 ranks at or near\n"
      "the top and linear growth is clearly rejected. Finite-size effects\n"
      "(top hierarchy levels still maturing) bias small-n exponents upward;\n"
      "EXPERIMENTS.md discusses the residuals.\n");
  artifact.write();
  return 0;
}
