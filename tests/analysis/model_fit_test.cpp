#include "analysis/model_fit.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace manet::analysis {
namespace {

std::vector<double> standard_ns() { return {64, 128, 256, 512, 1024, 2048, 4096, 8192}; }

std::vector<double> apply(GrowthLaw law, const std::vector<double>& ns, double a, double b,
                          double noise, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<double> ys;
  for (const double n : ns) {
    ys.push_back(a + b * growth_value(law, n) + noise * common::normal(rng));
  }
  return ys;
}

class ModelRecovery : public ::testing::TestWithParam<GrowthLaw> {};

TEST_P(ModelRecovery, SelectsTheGeneratingLaw) {
  const GrowthLaw truth = GetParam();
  const auto ns = standard_ns();
  const auto ys = apply(truth, ns, 1.0, 2.0, 0.0, 1);
  const auto sel = select_model(ns, ys);
  EXPECT_EQ(sel.best(), truth) << "expected " << to_string(truth) << " got "
                               << to_string(sel.best());
  EXPECT_NEAR(sel.best_fit().fit.slope, 2.0, 1e-6);
  EXPECT_NEAR(sel.best_fit().fit.intercept, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Laws, ModelRecovery,
                         ::testing::Values(GrowthLaw::kLog, GrowthLaw::kLogSquared,
                                           GrowthLaw::kSqrt, GrowthLaw::kLinear),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(ModelFit, LogSquaredBeatsSqrtOnPolylogData) {
  // The paper's headline discrimination: log^2 data must rank log^2 above
  // sqrt even with moderate noise.
  const auto ns = standard_ns();
  const auto ys = apply(GrowthLaw::kLogSquared, ns, 0.5, 0.3, 0.05, 2);
  const auto sel = select_model(ns, ys);
  int rank_log2 = -1, rank_sqrt = -1;
  for (int i = 0; i < static_cast<int>(sel.ranked.size()); ++i) {
    if (sel.ranked[static_cast<Size>(i)].law == GrowthLaw::kLogSquared) rank_log2 = i;
    if (sel.ranked[static_cast<Size>(i)].law == GrowthLaw::kSqrt) rank_sqrt = i;
  }
  EXPECT_LT(rank_log2, rank_sqrt);
}

TEST(ModelFit, PowerLawExponentDiagnosesGrowth) {
  const auto ns = standard_ns();
  const auto sel_lin = select_model(ns, apply(GrowthLaw::kLinear, ns, 0.0, 1.0, 0.0, 3));
  EXPECT_NEAR(sel_lin.power_law.slope, 1.0, 0.01);
  const auto sel_sqrt = select_model(ns, apply(GrowthLaw::kSqrt, ns, 0.0, 1.0, 0.0, 4));
  EXPECT_NEAR(sel_sqrt.power_law.slope, 0.5, 0.01);
}

TEST(ModelFit, RankedIsSortedByRss) {
  const auto ns = standard_ns();
  const auto sel = select_model(ns, apply(GrowthLaw::kLog, ns, 2.0, 1.0, 0.1, 5));
  for (Size i = 1; i < sel.ranked.size(); ++i) {
    EXPECT_LE(sel.ranked[i - 1].fit.rss, sel.ranked[i].fit.rss);
  }
  EXPECT_EQ(sel.ranked.size(), kGrowthLawCount);
}

TEST(ModelFit, TextRenderingMentionsEveryModel) {
  const auto ns = standard_ns();
  const auto sel = select_model(ns, apply(GrowthLaw::kLog, ns, 2.0, 1.0, 0.0, 6));
  const auto text = sel.to_text();
  for (std::size_t i = 0; i < kGrowthLawCount; ++i) {
    EXPECT_NE(text.find(to_string(static_cast<GrowthLaw>(i))), std::string::npos);
  }
  EXPECT_NE(text.find("exponent"), std::string::npos);
}

TEST(GrowthValue, KnownValues) {
  EXPECT_DOUBLE_EQ(growth_value(GrowthLaw::kConstant, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(growth_value(GrowthLaw::kLinear, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(growth_value(GrowthLaw::kSqrt, 100.0), 10.0);
  EXPECT_NEAR(growth_value(GrowthLaw::kLog, std::exp(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(growth_value(GrowthLaw::kLogSquared, std::exp(2.0)), 4.0, 1e-12);
}

TEST(ModelFitDeath, NeedsThreePoints) {
  const std::vector<double> ns{10, 20};
  const std::vector<double> ys{1, 2};
  EXPECT_DEATH(select_model(ns, ys), "3");
}

}  // namespace
}  // namespace manet::analysis
