/// Two separately named query-cost artifacts share this binary:
///
/// E12b (paper Section 6 remark, artifact BENCH_query_cost.json):
/// location-query overhead is of the same order as the requester-target hop
/// count and occurs once per session, so it is absorbed by the session.
/// Measures CHLM query cost against the direct shortest-path hop count
/// across |V|.
///
/// E31 (ROADMAP item 3, artifact BENCH_query.json): the epoch-gated
/// lm::QueryEngine serves millions of location lookups per second from
/// 1/2/8 reader threads against a frozen n = 4096 hierarchy snapshot, stays
/// torn-free while the write plane churns epochs underneath, and the batched
/// rendezvous kernels are bit-identical to the scalar ones. Gated by
/// tools/check_bench.py (min_lookups_per_sec, max_lookup_p99_us,
/// identity_violations) against tools/baselines/BENCH_query.json.

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/thread_pool.hpp"
#include "graph/bfs.hpp"
#include "lm/chlm.hpp"
#include "lm/query_engine.hpp"
#include "lm/rendezvous.hpp"
#include "net/unit_disk.hpp"

using namespace manet;

namespace {

constexpr Size kQueryN = 4096;       // frozen-snapshot node count (E31)
constexpr Size kBatch = 256;         // lookups per pinned batch
constexpr Size kBatchesPerThread = 4096;  // throughput batches per reader
constexpr Size kChurnFlips = 200;    // epoch flips in the churn phase

/// Frozen serving state: one static scenario, its hierarchy and the CHLM
/// database built from it.
struct FrozenState {
  graph::Graph g;
  cluster::Hierarchy h;
  lm::ChlmService service;
};

FrozenState build_state(Size n, std::uint64_t seed, Time now) {
  auto cfg = bench::paper_scenario();
  cfg.n = n;
  cfg.seed = seed;
  cfg.mobility = exp::MobilityKind::kStatic;
  auto scenario = exp::Scenario::materialize(cfg);
  net::UnitDiskBuilder disk(cfg.tx_radius(), true);
  FrozenState state;
  state.g = disk.build(scenario.mobility->positions());
  state.h = cluster::HierarchyBuilder().build(state.g, scenario.ids);
  state.service.rebuild(state.h, now);
  return state;
}

bool same_result(const lm::QueryResult& a, const lm::QueryResult& b) {
  return a.server == b.server && a.version == b.version && a.updated == b.updated &&
         a.found == b.found;
}

/// Capture the engine's current answer for every (owner, level) cell — the
/// reference answer set for one epoch.
std::vector<lm::QueryResult> capture_answers(const lm::QueryEngine& qe, Size n, Level top) {
  std::vector<lm::QueryResult> out;
  const Level lo = lm::kFirstServedLevel;
  const Size width = top >= lo ? top - lo + 1 : 0;
  out.resize(n * std::max<Size>(width, 1));
  for (NodeId owner = 0; owner < n; ++owner) {
    for (Level k = lo; k <= top; ++k) {
      out[static_cast<Size>(owner) * width + (k - lo)] = qe.lookup(owner, k);
    }
  }
  return out;
}

/// Scalar-vs-batch rendezvous identity sweep (unweighted + weighted paths).
Size rendezvous_identity_violations(Size trials, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  lm::RendezvousScratch scratch;
  std::vector<NodeId> candidates, owners, batch_out;
  std::vector<double> weights;
  Size violations = 0;
  for (Size trial = 0; trial < trials; ++trial) {
    const Size m = 1 + common::uniform_index(rng, 64);
    candidates.clear();
    weights.clear();
    for (Size j = 0; j < m; ++j) {
      candidates.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
      weights.push_back(0.5 + 3.5 * static_cast<double>(rng() >> 11) /
                                  9007199254740992.0);
    }
    owners.clear();
    for (Size i = 0; i < kBatch; ++i) {
      owners.push_back(static_cast<NodeId>(rng() & 0xFFFFFFFFu));
    }
    const std::uint64_t salt = rng();
    batch_out.assign(owners.size(), kInvalidNode);
    lm::rendezvous_pick_batch(salt, owners, candidates, batch_out, scratch);
    for (Size i = 0; i < owners.size(); ++i) {
      if (batch_out[i] != lm::rendezvous_pick(salt, owners[i], candidates)) ++violations;
    }
    lm::rendezvous_pick_weighted_batch(salt, owners, candidates, weights, batch_out, scratch);
    for (Size i = 0; i < owners.size(); ++i) {
      if (batch_out[i] != lm::rendezvous_pick_weighted(salt, owners[i], candidates, weights)) {
        ++violations;
      }
    }
  }
  return violations;
}

}  // namespace

int main() {
  // ---------------------------------------------------------------- E12b --
  bench::print_header(
      "E12b  bench_query — location query cost vs direct hop count",
      "query cost = O(hops(requester, target)) per session (paper Section 6)",
      "manet-bench-artifact/1");

  bench::Artifact cost_artifact("query_cost", bench::paper_scenario(), 1);
  analysis::TextTable table({"|V|", "mean query cost", "mean direct hops", "ratio",
                             "max ratio"});
  for (const Size n : bench::standard_nodes()) {
    auto cfg = bench::paper_scenario();
    cfg.n = n;
    cfg.mobility = exp::MobilityKind::kStatic;
    auto scenario = exp::Scenario::materialize(cfg);
    net::UnitDiskBuilder disk(cfg.tx_radius(), true);
    const auto g = disk.build(scenario.mobility->positions());
    const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);

    lm::ChlmService service;
    service.rebuild(h);

    common::Xoshiro256 rng(common::derive_seed(cfg.seed, 0x51AA));
    graph::BfsScratch bfs;
    double query_sum = 0.0, direct_sum = 0.0, max_ratio = 0.0;
    Size samples = 0;
    while (samples < 200) {
      const auto u = static_cast<NodeId>(common::uniform_index(rng, n));
      const auto v = static_cast<NodeId>(common::uniform_index(rng, n));
      if (u == v) continue;
      const auto cost = service.query_cost(h, g, u, v);
      bfs.run(g, u);
      const auto direct = bfs.hops_to(v);
      if (direct == graph::kUnreachable || direct == 0) continue;
      query_sum += static_cast<double>(cost);
      direct_sum += direct;
      max_ratio = std::max(max_ratio, static_cast<double>(cost) / direct);
      ++samples;
    }
    table.add_row({std::to_string(n), bench::fixed(query_sum / 200.0),
                   bench::fixed(direct_sum / 200.0),
                   bench::fixed(query_sum / direct_sum, 3), bench::fixed(max_ratio, 3)});
    cost_artifact.add_point("query_cost_ratio",
                            exp::SeriesPoint{static_cast<double>(n),
                                             query_sum / direct_sum, 0.0, 1});
  }
  std::printf("%s", table.to_string("query cost (packet transmissions per lookup)").c_str());
  std::printf(
      "\nreading: the mean ratio should stay a small constant across |V| —\n"
      "query cost rides the session's own path length, so it amortizes.\n");
  cost_artifact.write();

  // ----------------------------------------------------------------- E31 --
  bench::print_header(
      "E31  bench_query — epoch-gated query-engine serving throughput",
      "lm::QueryEngine answers >= 1M location lookups/s on one thread against\n"
      "a frozen n=4096 snapshot, torn-free under epoch churn, with the batched\n"
      "rendezvous kernels bit-identical to the scalar ones",
      "manet-bench-artifact/1");

  auto qcfg = bench::paper_scenario();
  qcfg.n = kQueryN;
  qcfg.mobility = exp::MobilityKind::kStatic;
  bench::Artifact artifact("query", qcfg, 1, 8);

  FrozenState state = build_state(kQueryN, qcfg.seed, /*now=*/1.0);
  lm::QueryEngine engine;
  engine.publish(state.h, state.service.database(), 1.0);
  const Level top = state.service.top_level();
  const Size width = state.service.served_levels();
  std::printf("frozen snapshot: n=%zu top=%u served levels=%zu epoch=%llu\n",
              static_cast<std::size_t>(kQueryN), top, static_cast<std::size_t>(width),
              static_cast<unsigned long long>(engine.epoch()));

  // --- Throughput + p99 at 1/2/8 reader threads against the frozen epoch ---
  analysis::TextTable tput({"reader threads", "lookups", "Mlookups/s", "p99 us/lookup"});
  double single_thread_rate = 0.0, single_thread_p99 = 0.0;
  for (const Size threads : {Size{1}, Size{2}, Size{8}}) {
    common::ThreadPool pool(threads);
    std::vector<std::vector<double>> batch_us(threads);  // per-batch us/lookup
    const auto start = std::chrono::steady_clock::now();
    pool.parallel_for(threads, [&](Size t) {
      std::vector<NodeId> owners(kBatch);
      std::vector<lm::QueryResult> results(kBatch);
      auto& times = batch_us[t];
      times.reserve(kBatchesPerThread);
      for (Size b = 0; b < kBatchesPerThread; ++b) {
        const std::uint64_t base =
            (static_cast<std::uint64_t>(t) * kBatchesPerThread + b) * kBatch;
        for (Size i = 0; i < kBatch; ++i) {
          owners[i] = static_cast<NodeId>(((base + i) * 2654435761ULL) % kQueryN);
        }
        const Level k = lm::kFirstServedLevel + static_cast<Level>(b % std::max<Size>(width, 1));
        const auto b0 = std::chrono::steady_clock::now();
        engine.lookup_batch(owners, k, results);
        const std::chrono::duration<double, std::micro> us =
            std::chrono::steady_clock::now() - b0;
        times.push_back(us.count() / static_cast<double>(kBatch));
      }
    });
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
    const Size lookups = threads * kBatchesPerThread * kBatch;
    const double rate = static_cast<double>(lookups) / wall.count();
    std::vector<double> all;
    for (auto& v : batch_us) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    // Nearest-rank p99: index ceil(0.99 * N) - 1.
    const Size p99_idx = std::min(all.size() - 1, (all.size() * 99 + 99) / 100 - 1);
    const double p99 = all[p99_idx];
    tput.add_row({std::to_string(threads), std::to_string(lookups),
                  bench::fixed(rate / 1e6, 3), bench::fixed(p99, 4)});
    artifact.add_point("lookups_per_sec",
                       exp::SeriesPoint{static_cast<double>(threads), rate, 0.0, 1});
    if (threads == 1) {
      single_thread_rate = rate;
      single_thread_p99 = p99;
    }
  }
  std::printf("%s", tput.to_string("frozen-snapshot serving throughput").c_str());

  // --- Churn phase: epoch flips under live readers, torn-answer check ---
  // Two distinct serving states (different seeds => different topology,
  // hierarchy and database) alternate as epochs. Every concurrent answer
  // must equal one of the two captured reference answer sets, field for
  // field — a mixed (pre-flip server, post-flip version/update) answer is a
  // torn read and counts as a violation.
  FrozenState state_b = build_state(kQueryN, qcfg.seed + 1, /*now=*/2.0);
  const Level top_b = state_b.service.top_level();
  const Level probe_top = std::min(top, top_b);
  const auto answers_a = capture_answers(engine, kQueryN, probe_top);
  engine.publish(state_b.h, state_b.service.database(), 2.0);
  const auto answers_b = capture_answers(engine, kQueryN, probe_top);
  const Size probe_width = probe_top >= lm::kFirstServedLevel
                               ? probe_top - lm::kFirstServedLevel + 1
                               : 0;

  std::atomic<bool> stop{false};
  std::atomic<Size> violations{0};
  std::atomic<std::uint64_t> churn_lookups{0};
  {
    std::vector<std::thread> reader_threads;
    for (Size t = 0; t < 8; ++t) {
      reader_threads.emplace_back([&, t] {
        std::uint64_t q = static_cast<std::uint64_t>(t) << 32;
        Size local_violations = 0;
        std::uint64_t local_lookups = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (Size i = 0; i < kBatch; ++i, ++q) {
            const auto owner = static_cast<NodeId>((q * 2654435761ULL) % kQueryN);
            const Level k =
                lm::kFirstServedLevel + static_cast<Level>(q % std::max<Size>(probe_width, 1));
            const lm::QueryResult r = engine.lookup(owner, k);
            const Size idx =
                static_cast<Size>(owner) * probe_width + (k - lm::kFirstServedLevel);
            if (!same_result(r, answers_a[idx]) && !same_result(r, answers_b[idx])) {
              ++local_violations;
            }
            ++local_lookups;
          }
        }
        violations.fetch_add(local_violations, std::memory_order_relaxed);
        churn_lookups.fetch_add(local_lookups, std::memory_order_relaxed);
      });
    }
    for (Size flip = 0; flip < kChurnFlips; ++flip) {
      if (flip % 2 == 0) {
        engine.publish(state.h, state.service.database(), 1.0);
      } else {
        engine.publish(state_b.h, state_b.service.database(), 2.0);
      }
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : reader_threads) th.join();
  }

  const Size rdv_violations =
      rendezvous_identity_violations(/*trials=*/256, common::derive_seed(qcfg.seed, 0xE31));
  const Size total_violations = violations.load() + rdv_violations;
  std::printf(
      "\nchurn: %llu lookups across %zu epoch flips, %zu torn answers;\n"
      "scalar-vs-batch rendezvous sweep: %zu mismatches\n",
      static_cast<unsigned long long>(churn_lookups.load()),
      static_cast<std::size_t>(kChurnFlips), static_cast<std::size_t>(violations.load()),
      static_cast<std::size_t>(rdv_violations));
  std::printf(
      "reading: every concurrent answer must match the pre- or post-flip\n"
      "reference exactly — the epoch pin makes torn reads structurally\n"
      "impossible, and the batch kernels must agree with the scalar ones\n"
      "bit for bit.\n");

  artifact.set_scalar("lookups_per_sec", single_thread_rate);
  artifact.set_scalar("lookup_p99_us", single_thread_p99);
  artifact.set_scalar("identity_violations", static_cast<double>(total_violations));
  artifact.set_scalar("epoch_flips", static_cast<double>(kChurnFlips));
  artifact.set_scalar("churn_lookups", static_cast<double>(churn_lookups.load()));
  artifact.write();
  return total_violations == 0 ? 0 : 1;
}
