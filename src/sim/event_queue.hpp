#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "sim/event_closure.hpp"

/// \file event_queue.hpp
/// Pending-event set for the discrete-event kernel: a binary min-heap keyed
/// by (time, sequence). The sequence number makes simultaneous events fire in
/// scheduling order, which keeps runs bit-reproducible.
///
/// Storage is allocation-free at steady state: callbacks live in a free-list
/// slab of EventClosure slots (recycled on fire/cancel), the id->slot index
/// is a FlatMap, and the heap is a plain vector driven by std::push_heap /
/// std::pop_heap. Cancellation is lazy — the heap entry is tombstoned — but
/// when tombstones outnumber live entries the heap is compacted in place, so
/// a cancel-heavy workload cannot grow the heap unboundedly. Compaction never
/// changes pop order: (time, id) is a strict total order, so the sequence of
/// heap minima depends only on the surviving set.

namespace manet::sim {

using EventId = std::uint64_t;
/// Historical alias from the std::function era; see sim/event_closure.hpp.
using EventFn = EventClosure;

class EventQueue {
 public:
  /// Schedule \p fn at absolute time \p when; returns a cancellation handle.
  EventId schedule(Time when, EventClosure fn);

  /// Cancel a pending event. Returns false if already fired or cancelled.
  /// Cancellation is lazy: the heap entry is tombstoned and skipped on pop
  /// (the closure itself is released immediately).
  bool cancel(EventId id);

  bool empty() const;

  /// Time of the earliest pending (non-cancelled) event. Requires !empty().
  Time next_time() const;

  struct Fired {
    Time time;
    EventId id;
    EventClosure fn;
  };

  /// Pop and return the earliest event. Requires !empty().
  Fired pop();

  /// Live (non-cancelled) pending events; heap tombstones are not counted.
  Size pending_count() const { return index_.size(); }

 private:
  struct Entry {
    Time time;
    EventId id;
  };
  /// Comparator for std::*_heap (max-heap semantics -> invert for min-heap).
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }

  struct Slot {
    EventId id = 0;
    EventClosure fn;
  };

  /// Discard tombstoned (cancelled) heap heads.
  void drop_cancelled() const;
  /// Remove all tombstones and restore the heap invariant.
  void compact();
  std::uint32_t acquire_slot(EventId id, EventClosure fn);
  void release_slot(std::uint32_t slot);

  mutable std::vector<Entry> heap_;
  mutable Size tombstones_ = 0;  ///< cancelled entries still in heap_
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_;  ///< recyclable slab slots
  common::FlatMap<EventId, std::uint32_t> index_;  ///< live id -> slab slot
  EventId next_id_ = 0;
};

}  // namespace manet::sim
