#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

/// \file metrics.hpp
/// Graph-level statistics used by the experiments:
///  - average pairwise hop count h (paper eq. (3) context; [2] shows
///    h = Theta(sqrt(|V|)) for 2-D constant-density networks),
///  - degree statistics (d in eq. (1a)),
///  - eccentricity/diameter estimates.

namespace manet::graph {

struct HopStats {
  double mean = 0.0;       ///< mean hops over sampled connected pairs
  double max = 0.0;        ///< max observed hops (diameter lower bound)
  Size sampled_pairs = 0;  ///< number of (source, target) pairs measured
  Size unreachable = 0;    ///< pairs with no path (0 when graph connected)
};

/// Estimate pairwise hop statistics by exact BFS from \p n_sources uniformly
/// sampled sources (all targets per source). For n_sources >= |V| this is the
/// exact all-pairs statistic.
HopStats sample_hop_stats(const Graph& g, Size n_sources, common::Xoshiro256& rng);

/// Exact all-pairs hop statistics (BFS from every vertex); O(|V| (|V|+|E|)).
HopStats exact_hop_stats(const Graph& g);

struct DegreeStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double variance = 0.0;
};

DegreeStats degree_stats(const Graph& g);

}  // namespace manet::graph
