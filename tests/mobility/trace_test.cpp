#include "mobility/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "geom/region.hpp"
#include "mobility/field.hpp"
#include "mobility/random_waypoint.hpp"

namespace manet::mobility {
namespace {

const geom::DiskRegion kDisk({0, 0}, 20.0);

TEST(Trace, RecordCapturesExpectedFrameCount) {
  RandomWaypoint model(kDisk, 10, RandomWaypoint::Params::fixed_speed(1.0), 1);
  const Trace trace = Trace::record(model, 10.0, 1.0);
  EXPECT_EQ(trace.frame_count(), 11u);  // t = 0..10 inclusive
  EXPECT_EQ(trace.node_count(), 10u);
}

TEST(Trace, FramesAreTimeOrdered) {
  RandomWaypoint model(kDisk, 5, RandomWaypoint::Params::fixed_speed(2.0), 2);
  const Trace trace = Trace::record(model, 5.0, 0.5);
  for (Size f = 1; f < trace.frame_count(); ++f) {
    EXPECT_GT(trace.frames()[f].time, trace.frames()[f - 1].time);
  }
}

TEST(Trace, SaveLoadRoundTrip) {
  RandomWaypoint model(kDisk, 7, RandomWaypoint::Params::fixed_speed(1.5), 3);
  const Trace original = Trace::record(model, 4.0, 1.0);

  std::stringstream buffer;
  original.save(buffer);
  const Trace loaded = Trace::load(buffer);

  ASSERT_EQ(loaded.frame_count(), original.frame_count());
  ASSERT_EQ(loaded.node_count(), original.node_count());
  for (Size f = 0; f < original.frame_count(); ++f) {
    EXPECT_NEAR(loaded.frames()[f].time, original.frames()[f].time, 1e-9);
    for (Size v = 0; v < original.node_count(); ++v) {
      EXPECT_NEAR(loaded.frames()[f].positions[v].x, original.frames()[f].positions[v].x,
                  1e-6);
      EXPECT_NEAR(loaded.frames()[f].positions[v].y, original.frames()[f].positions[v].y,
                  1e-6);
    }
  }
}

TEST(Trace, MeanStepDisplacementMatchesSpeed) {
  RandomWaypoint model(kDisk, 50, RandomWaypoint::Params::fixed_speed(2.0), 4);
  const Trace trace = Trace::record(model, 20.0, 1.0);
  // With fixed 2 m/s, per-second displacement is <= 2 and usually close to
  // it (waypoint turns shorten it slightly).
  const double disp = trace.mean_step_displacement();
  EXPECT_GT(disp, 1.0);
  EXPECT_LE(disp, 2.0 + 1e-9);
}

TEST(TraceReplay, InterpolatesBetweenFrames) {
  Trace trace;
  trace.append({0.0, {{0.0, 0.0}}});
  trace.append({10.0, {{10.0, 0.0}}});
  TraceReplay replay(trace);
  replay.advance_to(5.0);
  EXPECT_NEAR(replay.positions()[0].x, 5.0, 1e-12);
  replay.advance_to(7.5);
  EXPECT_NEAR(replay.positions()[0].x, 7.5, 1e-12);
}

TEST(TraceReplay, ClampsBeyondLastFrame) {
  Trace trace;
  trace.append({0.0, {{0.0, 0.0}}});
  trace.append({1.0, {{4.0, 2.0}}});
  TraceReplay replay(trace);
  replay.advance_to(100.0);
  EXPECT_EQ(replay.positions()[0], (geom::Vec2{4.0, 2.0}));
}

TEST(TraceReplay, ReproducesRecordedMotionExactlyAtFrameTimes) {
  RandomWaypoint model(kDisk, 8, RandomWaypoint::Params::fixed_speed(1.0), 5);
  const Trace trace = Trace::record(model, 6.0, 1.0);
  TraceReplay replay(trace);
  for (Size f = 0; f < trace.frame_count(); ++f) {
    replay.advance_to(trace.frames()[f].time);
    EXPECT_EQ(replay.positions(), trace.frames()[f].positions);
  }
}

TEST(TraceDeath, InconsistentNodeCountRejected) {
  Trace trace;
  trace.append({0.0, {{0.0, 0.0}}});
  EXPECT_DEATH(trace.append({1.0, {{0.0, 0.0}, {1.0, 1.0}}}), "node count");
}

TEST(TraceDeath, OutOfOrderFrameRejected) {
  Trace trace;
  trace.append({5.0, {{0.0, 0.0}}});
  EXPECT_DEATH(trace.append({1.0, {{0.0, 0.0}}}), "time-ordered");
}

}  // namespace
}  // namespace manet::mobility
