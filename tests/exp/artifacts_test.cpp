#include "exp/artifacts.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "common/metrics.hpp"
#include "exp/scenario.hpp"
#include "exp/simulation.hpp"
#include "sim/trace.hpp"

namespace manet::exp {
namespace {

std::string render(const std::function<void(analysis::JsonWriter&)>& fn, bool pretty) {
  std::ostringstream os;
  analysis::JsonWriter w(os, pretty);
  fn(w);
  EXPECT_TRUE(w.complete());
  return os.str();
}

TEST(RunManifest, CaptureFillsProvenance) {
  ScenarioConfig cfg;
  cfg.n = 77;
  cfg.seed = 1234;
  const auto m = RunManifest::capture("unit", cfg, 3, 4);
  EXPECT_EQ(m.name, "unit");
  EXPECT_EQ(m.seed, 1234u);
  EXPECT_EQ(m.n, 77u);
  EXPECT_EQ(m.replications, 3u);
  EXPECT_EQ(m.thread_count, 4u);
  EXPECT_EQ(m.git_sha, build_git_sha());
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_EQ(m.scenario, cfg.describe());
}

TEST(RunManifest, JsonRoundTrip) {
  ScenarioConfig cfg;
  cfg.n = 512;
  cfg.seed = 42;
  auto m = RunManifest::capture("roundtrip", cfg, 5, 2);
  m.wall_seconds = 1.5;

  for (const bool pretty : {false, true}) {
    const auto text =
        render([&m](analysis::JsonWriter& w) { m.write_json(w); }, pretty);
    const auto parsed = analysis::parse_json(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    RunManifest back;
    ASSERT_TRUE(RunManifest::from_json(parsed.value, back));
    EXPECT_EQ(back.name, m.name);
    EXPECT_EQ(back.git_sha, m.git_sha);
    EXPECT_EQ(back.seed, m.seed);
    EXPECT_EQ(back.n, m.n);
    EXPECT_EQ(back.replications, m.replications);
    EXPECT_EQ(back.thread_count, m.thread_count);
    EXPECT_DOUBLE_EQ(back.wall_seconds, m.wall_seconds);
    EXPECT_EQ(back.scenario, m.scenario);
  }
}

TEST(RunManifest, FromJsonRejectsMissingRequiredFields) {
  const auto parsed = analysis::parse_json(R"({"name": "x", "seed": 1})");
  ASSERT_TRUE(parsed.ok);
  RunManifest out;
  EXPECT_FALSE(RunManifest::from_json(parsed.value, out));  // no git_sha/scenario
}

TEST(RunManifest, RecordsFaultPlanAndDefaultsToOff) {
  ScenarioConfig clean;
  clean.n = 64;
  const auto off = RunManifest::capture("clean", clean, 1);
  EXPECT_EQ(off.fault, "off");

  ScenarioConfig faulty = clean;
  faulty.fault.loss = 0.05;
  faulty.fault.crash_rate = 0.002;
  const auto on = RunManifest::capture("faulty", faulty, 1);
  EXPECT_EQ(on.fault, faulty.fault.describe());
  EXPECT_NE(on.fault, "off");
  EXPECT_NE(on.fault.find("loss=0.05"), std::string::npos);

  // Round trip preserves the plan; manifests written before the field
  // existed read back as fault-free.
  const auto text = render([&on](analysis::JsonWriter& w) { on.write_json(w); }, true);
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  RunManifest back;
  ASSERT_TRUE(RunManifest::from_json(parsed.value, back));
  EXPECT_EQ(back.fault, on.fault);

  const auto legacy = analysis::parse_json(
      R"({"name": "old", "git_sha": "abc", "scenario": "n=64", "seed": 1})");
  ASSERT_TRUE(legacy.ok);
  RunManifest old;
  ASSERT_TRUE(RunManifest::from_json(legacy.value, old));
  EXPECT_EQ(old.fault, "off");
}

TEST(ResilienceJson, RoundTripIsExact) {
  ResilienceReport report;
  report.loss = 0.05;
  report.crash_rate = 0.002;
  report.phi_retx_rate = 0.123;
  report.gamma_retx_rate = 0.045;
  report.failed_transfers = 17.0;
  report.stale_entries = 2.0;
  report.repairs = 15.0;
  report.mean_time_to_repair = 3.25;
  report.query_success_rate = 0.996;
  report.query_success_mean = 0.991;
  report.crashes = 4.0;
  report.rejoins = 3.0;

  const auto text = render(
      [&report](analysis::JsonWriter& w) { write_resilience_json(w, report); }, true);
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "manet-resilience/1");

  ResilienceReport back;
  ASSERT_TRUE(resilience_from_json(parsed.value, back));
  EXPECT_EQ(back.loss, report.loss);
  EXPECT_EQ(back.crash_rate, report.crash_rate);
  EXPECT_EQ(back.phi_retx_rate, report.phi_retx_rate);
  EXPECT_EQ(back.gamma_retx_rate, report.gamma_retx_rate);
  EXPECT_EQ(back.failed_transfers, report.failed_transfers);
  EXPECT_EQ(back.stale_entries, report.stale_entries);
  EXPECT_EQ(back.repairs, report.repairs);
  EXPECT_EQ(back.mean_time_to_repair, report.mean_time_to_repair);
  EXPECT_EQ(back.query_success_rate, report.query_success_rate);
  EXPECT_EQ(back.query_success_mean, report.query_success_mean);
  EXPECT_EQ(back.crashes, report.crashes);
  EXPECT_EQ(back.rejoins, report.rejoins);
}

TEST(ResilienceJson, RejectsWrongSchemaOrMissingFields) {
  ResilienceReport out;
  const auto wrong =
      analysis::parse_json(R"({"schema": "bogus/1", "loss": 0.1, "query_success_rate": 1})");
  ASSERT_TRUE(wrong.ok);
  EXPECT_FALSE(resilience_from_json(wrong.value, out));

  const auto missing = analysis::parse_json(R"({"schema": "manet-resilience/1"})");
  ASSERT_TRUE(missing.ok);
  EXPECT_FALSE(resilience_from_json(missing.value, out));
}

lm::OverheadReport sample_report() {
  lm::OverheadReport report;
  report.node_count = 250;
  report.window = 60.0;
  report.phi_rate = 0.125;
  report.gamma_rate = 0.0625;
  report.phi_per_level = {0.0, 0.0, 0.1, 0.025};
  report.gamma_per_level = {0.0, 0.0, 0.05, 0.0125};
  report.migration_per_level = {0.0, 0.5, 0.25, 0.125};
  report.phi_entries = 17;
  report.gamma_entries = 9;
  report.unreachable_transfers = 2;
  return report;
}

TEST(SessionsJson, RoundTripPreservesNumbers) {
  SessionReport report;
  report.mu = 4.0;
  report.packets_offered = 1000.0;
  report.delivered = 990.0;
  report.interruptions = 3.0;
  report.interruption_time = 2.5;
  report.interruption_p99 = 1.75;
  report.handover_started = 12.0;

  const auto text = render(
      [&report](analysis::JsonWriter& w) { write_sessions_json(w, report); }, true);
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;

  SessionReport back;
  ASSERT_TRUE(sessions_from_json(parsed.value, back));
  EXPECT_EQ(back.mu, report.mu);
  EXPECT_EQ(back.packets_offered, report.packets_offered);
  EXPECT_EQ(back.delivered, report.delivered);
  EXPECT_EQ(back.interruptions, report.interruptions);
  EXPECT_EQ(back.interruption_time, report.interruption_time);
  EXPECT_EQ(back.interruption_p99, report.interruption_p99);
  EXPECT_EQ(back.handover_started, report.handover_started);
}

TEST(SessionsJson, AbsentP99RoundTripsThroughNull) {
  // An uninterrupted run has no p99 (satellite of the NaN-sentinel
  // convention): the writer must emit JSON null, and the reader must map
  // null back to quiet NaN rather than rejecting the document or
  // resurrecting a fake 0.0.
  SessionReport report;
  report.packets_offered = 100.0;
  report.delivered = 100.0;
  report.interruption_p99 = std::numeric_limits<double>::quiet_NaN();

  const auto text = render(
      [&report](analysis::JsonWriter& w) { write_sessions_json(w, report); }, true);
  EXPECT_NE(text.find("null"), std::string::npos) << text;
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;

  SessionReport back;
  ASSERT_TRUE(sessions_from_json(parsed.value, back));
  EXPECT_TRUE(std::isnan(back.interruption_p99));
  EXPECT_EQ(back.packets_offered, report.packets_offered);
}

TEST(OverheadJson, RoundTripIsExact) {
  const auto report = sample_report();
  const auto text = render(
      [&report](analysis::JsonWriter& w) { write_overhead_json(w, report); }, true);

  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("schema", ""), "manet-overhead/1");

  lm::OverheadReport back;
  ASSERT_TRUE(overhead_from_json(parsed.value, back));
  EXPECT_EQ(back.node_count, report.node_count);
  EXPECT_DOUBLE_EQ(back.window, report.window);
  // %.17g serialization means doubles survive bit-exactly.
  EXPECT_EQ(back.phi_rate, report.phi_rate);
  EXPECT_EQ(back.gamma_rate, report.gamma_rate);
  EXPECT_EQ(back.phi_per_level, report.phi_per_level);
  EXPECT_EQ(back.gamma_per_level, report.gamma_per_level);
  EXPECT_EQ(back.migration_per_level, report.migration_per_level);
  EXPECT_EQ(back.phi_entries, report.phi_entries);
  EXPECT_EQ(back.gamma_entries, report.gamma_entries);
  EXPECT_EQ(back.unreachable_transfers, report.unreachable_transfers);
}

TEST(OverheadJson, RejectsWrongSchema) {
  const auto parsed =
      analysis::parse_json(R"({"schema": "bogus/9", "phi_rate": 1, "gamma_rate": 2})");
  ASSERT_TRUE(parsed.ok);
  lm::OverheadReport out;
  EXPECT_FALSE(overhead_from_json(parsed.value, out));
}

TEST(RegistryJson, SerializesEveryInstrumentKind) {
  common::MetricsRegistry reg;
  reg.counter("lm.phi_packets").add(42);
  reg.gauge("lm.phi_rate").set(0.75);
  reg.rate_meter("lm.entry_moves", 10.0, 10).mark(3.0, 6);
  const std::array<double, 3> bounds{1.0, 4.0, 16.0};
  auto& h = reg.histogram("lm.transfer_hops", bounds);
  h.observe(2.0);
  h.observe(5.0);

  const auto text = render(
      [&reg](analysis::JsonWriter& w) { write_registry_json(w, reg, 4.0); }, true);
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& v = parsed.value;
  EXPECT_EQ(v.string_or("schema", ""), "manet-metrics/1");

  const auto* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("lm.phi_packets", -1.0), 42.0);

  const auto* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("lm.phi_rate", -1.0), 0.75);

  const auto* rates = v.find("rates");
  ASSERT_NE(rates, nullptr);
  const auto* moves = rates->find("lm.entry_moves");
  ASSERT_NE(moves, nullptr);
  EXPECT_DOUBLE_EQ(moves->number_or("total", -1.0), 6.0);
  EXPECT_GT(moves->number_or("rate", -1.0), 0.0);

  const auto* hists = v.find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* hops = hists->find("lm.transfer_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_DOUBLE_EQ(hops->number_or("count", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(hops->number_or("sum", -1.0), 7.0);
  const auto* buckets = hops->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_EQ(buckets->items.size(), 4u);  // 3 bounds + overflow
}

TEST(TraceJson, SerializesHeaderAndEvents) {
  sim::TraceSink sink(sim::TraceSink::Config{4, 1});
  for (int i = 0; i < 6; ++i) {
    sim::TraceEvent ev;
    ev.t = static_cast<Time>(i);
    ev.type = sim::TraceEventType::kHandoffPhi;
    ev.level = 2;
    ev.a = 7;
    ev.b = 9;
    ev.value = 3.0;
    sink.record(ev);
  }

  const auto text = render(
      [&sink](analysis::JsonWriter& w) { write_trace_json(w, sink); }, true);
  const auto parsed = analysis::parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& v = parsed.value;
  EXPECT_EQ(v.string_or("schema", ""), "manet-trace/1");
  EXPECT_DOUBLE_EQ(v.number_or("seen", -1.0), 6.0);
  EXPECT_DOUBLE_EQ(v.number_or("stored", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(v.number_or("dropped", -1.0), 2.0);

  const auto* counts = v.find("type_counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_DOUBLE_EQ(counts->number_or("handoff_phi", -1.0), 6.0);

  const auto* events = v.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 4u);
  const auto& first = events->items.front();
  EXPECT_DOUBLE_EQ(first.number_or("t", -1.0), 2.0);  // oldest surviving event
  EXPECT_EQ(first.string_or("type", ""), "handoff_phi");
  EXPECT_DOUBLE_EQ(first.number_or("k", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(first.number_or("a", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(first.number_or("b", -1.0), 9.0);
  EXPECT_DOUBLE_EQ(first.number_or("cost", -1.0), 3.0);
}

/// The observability hooks must not perturb the simulation: the RunMetrics of
/// an instrumented run are identical to an uninstrumented one, and the live
/// registry agrees with the reported phi/gamma rates.
TEST(SimulationObservability, HooksArePassiveAndConsistent) {
  ScenarioConfig cfg;
  cfg.n = 96;
  cfg.seed = 9;
  cfg.warmup = 2.0;
  cfg.duration = 8.0;

  RunOptions plain;
  plain.track_events = false;
  plain.measure_hops = false;
  const auto bare = run_simulation(cfg, plain);

  common::MetricsRegistry registry;
  sim::TraceSink sink;
  RunOptions observed = plain;
  observed.metrics = &registry;
  observed.trace = &sink;
  const auto instrumented = run_simulation(cfg, observed);

  ASSERT_EQ(bare.values.size(), instrumented.values.size());
  for (Size i = 0; i < bare.values.size(); ++i) {
    EXPECT_EQ(bare.values[i].first, instrumented.values[i].first);
    EXPECT_EQ(bare.values[i].second, instrumented.values[i].second)
        << "metric " << bare.values[i].first << " perturbed by instrumentation";
  }

  const auto* phi_gauge = registry.find_gauge("lm.phi_rate");
  ASSERT_NE(phi_gauge, nullptr);
  EXPECT_EQ(phi_gauge->value(), instrumented.get("phi_rate"));
  const auto* gamma_gauge = registry.find_gauge("lm.gamma_rate");
  ASSERT_NE(gamma_gauge, nullptr);
  EXPECT_EQ(gamma_gauge->value(), instrumented.get("gamma_rate"));

  // A mobile 96-node run has migrations; tracing must have captured activity.
  EXPECT_GT(sink.seen(), 0u);
}

}  // namespace
}  // namespace manet::exp
