#include "exp/campaign_runner.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "exp/cli.hpp"

namespace manet::exp {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSpecSchema = "manet-campaign-spec/1";
constexpr const char* kManifestSchema = "manet-campaign/1";
constexpr const char* kUnitSchema = "manet-campaign-unit/1";

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

/// Write a JSON document atomically: temp file in the same directory, then
/// rename over the final path (rename within one filesystem is atomic, so a
/// crash leaves either the old state or the complete new file, never a torn
/// checkpoint).
bool write_json_atomic(const std::string& path,
                       const std::function<void(analysis::JsonWriter&)>& emit,
                       std::string& error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      error = "cannot write " + tmp;
      return false;
    }
    analysis::JsonWriter w(file, /*pretty=*/true);
    emit(w);
    file << '\n';
    file.flush();
    if (!file) {
      error = "short write to " + tmp;
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    error = "cannot rename " + tmp + " to " + path + ": " + ec.message();
    return false;
  }
  return true;
}

bool parse_positive_size(const analysis::JsonValue& v, std::string_view key,
                         Size fallback, Size& out, std::string& error) {
  const auto* member = v.find(key);
  if (member == nullptr) {
    out = fallback;
    return true;
  }
  if (!member->is_number() || member->number < 1.0 ||
      member->number != static_cast<double>(static_cast<Size>(member->number))) {
    error = "spec field '" + std::string(key) + "' must be a positive integer";
    return false;
  }
  out = static_cast<Size>(member->number);
  return true;
}

std::vector<WorkUnit> build_ledger(const CampaignSpec& spec) {
  std::vector<WorkUnit> ledger;
  ledger.reserve(spec.unit_count());
  Size index = 0;
  for (Size point = 0; point < spec.sweep.size(); ++point) {
    for (Size block = 0; block < spec.blocks_per_point(); ++block) {
      WorkUnit unit;
      unit.index = index++;
      unit.point = point;
      unit.n = spec.sweep[point];
      unit.block = block;
      unit.rep_begin = block * spec.block;
      unit.rep_end = std::min(spec.replications, (block + 1) * spec.block);
      ledger.push_back(unit);
    }
  }
  return ledger;
}

void write_unit_coords(analysis::JsonWriter& w, const WorkUnit& unit) {
  w.field("unit", static_cast<std::uint64_t>(unit.index));
  w.field("point", static_cast<std::uint64_t>(unit.point));
  w.field("n", static_cast<std::uint64_t>(unit.n));
  w.field("block", static_cast<std::uint64_t>(unit.block));
  w.field("rep_begin", static_cast<std::uint64_t>(unit.rep_begin));
  w.field("rep_end", static_cast<std::uint64_t>(unit.rep_end));
}

WorkUnit read_unit_coords(const analysis::JsonValue& v) {
  WorkUnit unit;
  unit.index = static_cast<Size>(v.number_or("unit", 0.0));
  unit.point = static_cast<Size>(v.number_or("point", 0.0));
  unit.n = static_cast<Size>(v.number_or("n", 0.0));
  unit.block = static_cast<Size>(v.number_or("block", 0.0));
  unit.rep_begin = static_cast<Size>(v.number_or("rep_begin", 0.0));
  unit.rep_end = static_cast<Size>(v.number_or("rep_end", 0.0));
  return unit;
}

bool same_coords(const WorkUnit& a, const WorkUnit& b) {
  return a.index == b.index && a.point == b.point && a.n == b.n && a.block == b.block &&
         a.rep_begin == b.rep_begin && a.rep_end == b.rep_end;
}

}  // namespace

Size CampaignSpec::blocks_per_point() const {
  MANET_CHECK(block >= 1);
  return (replications + block - 1) / block;
}

Size CampaignSpec::unit_count() const { return sweep.size() * blocks_per_point(); }

std::string CampaignSpec::fingerprint() const {
  std::uint64_t h = common::fnv1a(kManifestSchema);
  h = common::hash_combine(h, common::fnv1a(name));
  for (const auto& arg : args) h = common::hash_combine(h, common::fnv1a(arg));
  for (const Size n : sweep) h = common::hash_combine(h, static_cast<std::uint64_t>(n));
  h = common::hash_combine(h, static_cast<std::uint64_t>(replications));
  h = common::hash_combine(h, static_cast<std::uint64_t>(block));
  // The resolved scenario catches drift that the verbatim args cannot (e.g.
  // a changed ScenarioConfig default between builds).
  ScenarioConfig cfg = scenario;
  if (!sweep.empty()) cfg.n = sweep.front();
  h = common::hash_combine(h, common::fnv1a(cfg.describe()));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

void CampaignSpec::write_json(analysis::JsonWriter& w) const {
  w.begin_object();
  w.field("schema", kSpecSchema);
  w.field("name", name);
  w.key("sweep").begin_array();
  for (const Size n : sweep) w.value(static_cast<std::uint64_t>(n));
  w.end_array();
  w.field("replications", static_cast<std::uint64_t>(replications));
  w.field("block", static_cast<std::uint64_t>(block));
  w.key("args").begin_array();
  for (const auto& arg : args) w.value(arg);
  w.end_array();
  w.end_object();
}

bool CampaignSpec::from_json(const analysis::JsonValue& v, CampaignSpec& out,
                             std::string& error) {
  out = CampaignSpec{};
  if (!v.is_object()) {
    error = "spec is not a JSON object";
    return false;
  }
  const std::string schema = v.string_or("schema", "");
  if (schema != kSpecSchema) {
    error = "expected schema " + std::string(kSpecSchema) + ", got '" + schema + "'";
    return false;
  }

  out.name = v.string_or("name", "");
  if (out.name.empty()) {
    error = "spec needs a non-empty 'name'";
    return false;
  }
  for (const char c : out.name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '-') {
      error = "spec 'name' must match [A-Za-z0-9_-]+ (it names files)";
      return false;
    }
  }

  const auto* sweep = v.find("sweep");
  if (sweep == nullptr || !sweep->is_array() || sweep->items.empty()) {
    error = "spec needs a non-empty 'sweep' array of node counts";
    return false;
  }
  for (const auto& item : sweep->items) {
    if (!item.is_number() || item.number < 2.0 ||
        item.number != static_cast<double>(static_cast<Size>(item.number))) {
      error = "'sweep' entries must be integers >= 2";
      return false;
    }
    out.sweep.push_back(static_cast<Size>(item.number));
  }

  if (!parse_positive_size(v, "replications", 1, out.replications, error) ||
      !parse_positive_size(v, "block", 8, out.block, error)) {
    return false;
  }

  if (const auto* args = v.find("args"); args != nullptr) {
    if (!args->is_array()) {
      error = "'args' must be an array of manet_sim flags";
      return false;
    }
    for (const auto& item : args->items) {
      if (!item.is_string()) {
        error = "'args' must contain only strings";
        return false;
      }
      out.args.push_back(item.string);
    }
  }

  // Campaign-level concerns have spec fields (or are single-run-only); their
  // flag forms inside args would silently fight the spec, so they are errors.
  static constexpr const char* kBanned[] = {
      "--sweep", "--reps", "--n",          "--csv",           "--json",
      "--trace", "--help", "--metrics-json", "--trace-capacity", "--trace-sample"};
  for (const auto& arg : out.args) {
    for (const char* banned : kBanned) {
      if (arg == banned) {
        error = "spec args may not contain " + arg +
                " (campaign-level: use the spec fields / single-run mode instead)";
        return false;
      }
    }
  }

  std::vector<const char*> argv;
  argv.reserve(out.args.size() + 1);
  argv.push_back("manet_sim");
  for (const auto& arg : out.args) argv.push_back(arg.c_str());
  const auto parsed = parse_cli(static_cast<int>(argv.size()), argv.data());
  if (!parsed.ok) {
    error = "spec args: " + parsed.error;
    return false;
  }
  out.scenario = parsed.options.scenario;
  out.options = parsed.options.run;
  return true;
}

bool CampaignSpec::load(const std::string& path, CampaignSpec& out, std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  const auto parsed = analysis::parse_json(text);
  if (!parsed.ok) {
    error = path + ": " + parsed.error;
    return false;
  }
  if (!from_json(parsed.value, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::string WorkUnit::id() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "u%04zu-n%zu-b%02zu", index, n, block);
  return buf;
}

UnitRecord run_unit(const CampaignSpec& spec, const WorkUnit& unit,
                    common::ThreadPool* pool) {
  MANET_CHECK(unit.rep_end > unit.rep_begin);
  const auto started = std::chrono::steady_clock::now();
  ScenarioConfig cfg = spec.scenario;
  cfg.n = unit.n;
  UnitRecord record;
  record.unit = unit;
  record.replications =
      run_replication_block(cfg, unit.rep_begin, unit.rep_end, spec.options, pool);
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return record;
}

std::string unit_checkpoint_path(const std::string& dir, const WorkUnit& unit) {
  return dir + "/units/" + unit.id() + ".json";
}

bool write_unit_checkpoint(const std::string& dir, const CampaignSpec& spec,
                           const UnitRecord& record, std::string& error) {
  std::error_code ec;
  fs::create_directories(dir + "/units", ec);
  if (ec) {
    error = "cannot create " + dir + "/units: " + ec.message();
    return false;
  }
  const std::string path = unit_checkpoint_path(dir, record.unit);
  return write_json_atomic(
      path,
      [&](analysis::JsonWriter& w) {
        w.begin_object();
        w.field("schema", kUnitSchema);
        w.field("campaign", spec.name);
        w.field("fingerprint", spec.fingerprint());
        write_unit_coords(w, record.unit);
        w.field("wall_seconds", record.wall_seconds);
        w.key("replications").begin_array();
        for (const auto& metrics : record.replications) {
          write_run_metrics_json(w, metrics);
        }
        w.end_array();
        w.end_object();
      },
      error);
}

bool read_unit_checkpoint(const std::string& path, const CampaignSpec& spec,
                          UnitRecord& out, std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  const auto parsed = analysis::parse_json(text);
  if (!parsed.ok) {
    error = path + ": " + parsed.error;
    return false;
  }
  const auto& v = parsed.value;
  if (v.string_or("schema", "") != kUnitSchema) {
    error = path + ": not a " + std::string(kUnitSchema) + " checkpoint";
    return false;
  }
  if (v.string_or("fingerprint", "") != spec.fingerprint()) {
    error = path + ": fingerprint mismatch (checkpoint from a different campaign)";
    return false;
  }
  out = UnitRecord{};
  out.unit = read_unit_coords(v);
  out.wall_seconds = v.number_or("wall_seconds", 0.0);
  if (out.unit.rep_end <= out.unit.rep_begin) {
    error = path + ": empty replication range";
    return false;
  }
  const auto* reps = v.find("replications");
  if (reps == nullptr || !reps->is_array()) {
    error = path + ": missing 'replications' array";
    return false;
  }
  if (reps->items.size() != out.unit.rep_end - out.unit.rep_begin) {
    error = path + ": replication count does not match the unit's range";
    return false;
  }
  out.replications.reserve(reps->items.size());
  for (const auto& item : reps->items) {
    RunMetrics metrics;
    if (!run_metrics_from_json(item, metrics)) {
      error = path + ": malformed replication metrics";
      return false;
    }
    out.replications.push_back(std::move(metrics));
  }
  return true;
}

bool write_campaign_manifest(const std::string& dir, const CampaignSpec& spec,
                             std::string& error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  const auto ledger = build_ledger(spec);
  return write_json_atomic(
      dir + "/campaign.json",
      [&](analysis::JsonWriter& w) {
        w.begin_object();
        w.field("schema", kManifestSchema);
        w.field("fingerprint", spec.fingerprint());
        w.field("git_sha", build_git_sha());
        w.key("spec");
        spec.write_json(w);
        w.key("units").begin_array();
        for (const auto& unit : ledger) {
          w.begin_object();
          write_unit_coords(w, unit);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      },
      error);
}

bool read_campaign_manifest(const std::string& dir, CampaignSpec& out,
                            std::string& error) {
  std::string text;
  const std::string path = dir + "/campaign.json";
  if (!read_file(path, text, error)) return false;
  const auto parsed = analysis::parse_json(text);
  if (!parsed.ok) {
    error = path + ": " + parsed.error;
    return false;
  }
  const auto& v = parsed.value;
  if (v.string_or("schema", "") != kManifestSchema) {
    error = path + ": not a " + std::string(kManifestSchema) + " manifest";
    return false;
  }
  const auto* spec = v.find("spec");
  if (spec == nullptr) {
    error = path + ": missing embedded spec";
    return false;
  }
  if (!CampaignSpec::from_json(*spec, out, error)) {
    error = path + ": " + error;
    return false;
  }
  if (v.string_or("fingerprint", "") != out.fingerprint()) {
    error = path + ": fingerprint does not match the embedded spec (edited by hand?)";
    return false;
  }
  return true;
}

bool write_campaign_artifact(const std::string& path, const CampaignSpec& spec,
                             const Campaign& campaign, double wall_seconds,
                             Size thread_count, std::string& error) {
  auto manifest = RunManifest::capture(spec.name, spec.scenario, spec.replications,
                                       thread_count);
  manifest.n = 0;  // sweep artifact: per-point n lives in the series
  manifest.wall_seconds = wall_seconds;

  std::set<std::string> names;
  for (const auto& point : campaign.points) {
    for (const auto& name : point.metrics.names()) names.insert(name);
  }

  return write_json_atomic(
      path,
      [&](analysis::JsonWriter& w) {
        w.begin_object();
        w.field("schema", "manet-bench-artifact/1");
        w.key("manifest");
        manifest.write_json(w);
        w.key("series").begin_object();
        for (const auto& name : names) {
          w.key(name).begin_array();
          for (const auto& point : campaign.points) {
            const auto s = point.metrics.summary(name);
            if (s.count == 0) continue;
            write_series_point_json(
                w, SeriesPoint{static_cast<double>(point.n), s.mean, s.ci95, s.count});
          }
          w.end_array();
        }
        w.end_object();
        w.key("scalars").begin_object();
        w.field("units", static_cast<std::uint64_t>(spec.unit_count()));
        w.field("sweep_points", static_cast<std::uint64_t>(spec.sweep.size()));
        w.end_object();
        w.end_object();
      },
      error);
}

CampaignRunner::CampaignRunner(CampaignSpec spec, std::string dir)
    : spec_(std::move(spec)), dir_(std::move(dir)), ledger_(build_ledger(spec_)) {}

std::vector<bool> CampaignRunner::completed_units() const {
  std::vector<bool> done(ledger_.size(), false);
  for (const auto& unit : ledger_) {
    const std::string path = unit_checkpoint_path(dir_, unit);
    std::error_code ec;
    if (!fs::exists(path, ec)) continue;
    UnitRecord record;
    std::string error;
    if (!read_unit_checkpoint(path, spec_, record, error) ||
        !same_coords(record.unit, unit)) {
      common::log_warn("campaign: ignoring invalid checkpoint " + path +
                       (error.empty() ? " (unit coordinates mismatch)" : ": " + error));
      continue;
    }
    done[unit.index] = true;
  }
  return done;
}

CampaignRunner::RunReport CampaignRunner::run(const RunConfig& config) {
  RunReport report;
  auto fail = [&](std::string message) {
    report.ok = false;
    report.error = std::move(message);
    return report;
  };

  if (config.shard_count < 1 || config.shard_index >= config.shard_count) {
    return fail("invalid shard " + std::to_string(config.shard_index) + "/" +
                std::to_string(config.shard_count));
  }

  // Create / validate the campaign directory before any work runs.
  std::error_code ec;
  const std::string manifest_path = dir_ + "/campaign.json";
  if (fs::exists(manifest_path, ec)) {
    CampaignSpec existing;
    std::string error;
    if (!read_campaign_manifest(dir_, existing, error)) return fail(error);
    if (existing.fingerprint() != spec_.fingerprint()) {
      return fail("spec does not match the campaign directory (fingerprint " +
                  spec_.fingerprint() + " vs " + existing.fingerprint() +
                  "); use a fresh --out for a different campaign");
    }
  } else {
    std::string error;
    if (!write_campaign_manifest(dir_, spec_, error)) return fail(error);
  }

  const auto done = completed_units();
  for (const auto& unit : ledger_) {
    if (unit.index % config.shard_count == config.shard_index) ++report.total;
  }

  Size already = 0;
  for (const auto& unit : ledger_) {
    if (unit.index % config.shard_count != config.shard_index) continue;
    if (done[unit.index]) ++already;
  }
  if (already > 0 && !config.resume) {
    return fail(std::to_string(already) +
                " unit(s) are already checkpointed in " + dir_ +
                "; pass --resume to continue this campaign or use a fresh --out");
  }

  for (const auto& unit : ledger_) {
    if (unit.index % config.shard_count != config.shard_index) continue;
    if (done[unit.index]) {
      ++report.skipped;
      if (config.progress) {
        config.progress(unit, report.executed + report.skipped, report.total);
      }
      continue;
    }
    if (config.max_units > 0 && report.executed >= config.max_units) break;
    const UnitRecord record = run_unit(spec_, unit, config.pool);
    std::string error;
    if (!write_unit_checkpoint(dir_, spec_, record, error)) return fail(error);
    ++report.executed;
    if (config.progress) {
      config.progress(unit, report.executed + report.skipped, report.total);
    }
  }
  report.ok = true;
  return report;
}

CampaignRunner::MergeResult CampaignRunner::merge() const {
  MergeResult result;
  result.campaign.points.resize(spec_.sweep.size());
  for (Size p = 0; p < spec_.sweep.size(); ++p) {
    result.campaign.points[p].n = spec_.sweep[p];
  }

  // The ledger is ordered sweep-point-outer, replication-block-inner, so
  // replaying each record's raw metrics in ledger order reproduces the exact
  // index-ordered add sequence of run_replications — bit-identical merge.
  std::set<std::string> expected_names;
  for (const auto& unit : ledger_) {
    const std::string path = unit_checkpoint_path(dir_, unit);
    expected_names.insert(unit.id() + ".json");
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      result.missing.push_back(unit.index);
      continue;
    }
    UnitRecord record;
    std::string error;
    if (!read_unit_checkpoint(path, spec_, record, error)) {
      result.ok = false;
      result.error = error;
      return result;
    }
    if (!same_coords(record.unit, unit)) {
      result.ok = false;
      result.error = path + ": checkpoint does not match the unit ledger";
      return result;
    }
    for (const auto& metrics : record.replications) {
      result.campaign.points[unit.point].metrics.add(metrics);
    }
    ++result.units;
  }

  // Strays: unit files no ledger entry claims (foreign or duplicated work).
  std::error_code ec;
  const std::string units_dir = dir_ + "/units";
  if (fs::is_directory(units_dir, ec)) {
    for (const auto& entry : fs::directory_iterator(units_dir, ec)) {
      const std::string base = entry.path().filename().string();
      if (base.size() >= 5 && base.substr(base.size() - 5) == ".json" &&
          expected_names.find(base) == expected_names.end()) {
        result.stray.push_back(base);
      }
    }
  }

  if (!result.missing.empty()) {
    result.ok = false;
    result.error = "coverage gap: " + std::to_string(result.missing.size()) +
                   " unit(s) have no checkpoint (run the missing shards, or "
                   "--resume to finish)";
    return result;
  }
  if (!result.stray.empty()) {
    result.ok = false;
    result.error = "stray checkpoint(s) in " + units_dir + " (e.g. " +
                   result.stray.front() + "): not part of this campaign's ledger";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace manet::exp
