#pragma once

#include <iosfwd>
#include <string>

#include "cluster/hierarchy.hpp"
#include "exp/simulation.hpp"

/// \file json.hpp
/// JSON export of hierarchy snapshots and run metrics, for external tooling
/// (plots, dashboards, diffing runs). The format is stable and documented:
///
/// hierarchy:
///   { "levels": L+1,
///     "level": [ { "k": 0, "clusters": [ { "id": head-id,
///                                          "members": [level-0 ids...] } ] } ],
///     "addresses": { "<node-id>": [top-down head ids] } }
///
/// metrics:
///   { "<name>": value, ... }   (insertion order preserved)

namespace manet::viz {

/// Serialize the clustered hierarchy. \p with_addresses adds the per-node
/// hierarchical address map (O(n log n) output size).
void write_hierarchy_json(std::ostream& os, const cluster::Hierarchy& h,
                          bool with_addresses = false);

/// Serialize run metrics as a flat JSON object.
void write_metrics_json(std::ostream& os, const exp::RunMetrics& metrics);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

}  // namespace manet::viz
