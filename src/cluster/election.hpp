#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file election.hpp
/// Clusterhead election interface shared by the ALCA (Baker & Ephremides,
/// paper ref [1]) and max-min d-hop (Amis et al., paper ref [8]) algorithms.
///
/// An election runs over one level of the hierarchy: a graph whose dense
/// vertices carry the *original* node IDs of the clusterheads they represent
/// (level 0: identity). ID order decides elections, exactly as in the paper.

namespace manet::cluster {

struct ElectionResult {
  /// For each vertex u: the vertex index (same level, dense) of the
  /// clusterhead u affiliates with. head_of[h] == h for every clusterhead.
  std::vector<NodeId> head_of;

  /// Dense vertex indices of the elected clusterheads, ascending.
  std::vector<NodeId> clusterheads;

  /// ALCA state of each vertex (Fig. 3 of the paper): the number of
  /// *neighbors* that elected it (self-election not counted). Algorithms
  /// without a natural vote notion (max-min) report affiliation counts.
  std::vector<std::uint32_t> votes;

  Size cluster_count() const { return clusterheads.size(); }
};

/// Abstract election algorithm, applied recursively per hierarchy level.
class ElectionAlgorithm {
 public:
  virtual ~ElectionAlgorithm() = default;

  /// \p ids maps dense vertices to original node IDs (strictly unique).
  virtual ElectionResult elect(const graph::Graph& g,
                               std::span<const NodeId> ids) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace manet::cluster
