#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/fault.hpp"

/// \file lossy_channel.hpp
/// Unreliable multi-hop control channel. The ideal simulator charges a
/// transfer exactly hops(src, dst) packet transmissions and assumes
/// delivery; this channel makes each hop a Bernoulli trial instead, with an
/// optional Gilbert-Elliott chain for bursty loss, so an h-hop transfer
/// delivers with probability (1 - p)^h (p the per-hop loss in the current
/// chain state).
///
/// Accounting: an attempt that is dropped at hop i still consumed i
/// transmissions (the packet died on the air at hop i); a delivered attempt
/// consumed all h. Callers (lm::ReliableTransfer) layer retries on top and
/// split the total into base cost vs retransmission overhead.
///
/// Determinism: the channel owns one explicitly seeded RNG and one GE chain;
/// a run consults it from a single thread in simulation order, so identical
/// (seed, config) runs draw identical loss sequences.

namespace manet::net {

class LossyChannel {
 public:
  LossyChannel(const sim::FaultConfig& config, std::uint64_t seed);

  struct Attempt {
    bool delivered = false;
    PacketCount packets = 0;  ///< transmissions consumed by this attempt
  };

  /// Send one control packet over \p hops level-0 hops. hops == 0 (src ==
  /// dst) always delivers for free.
  Attempt try_deliver(Size hops);

  /// Per-hop loss probability the *next* transmission would see (depends on
  /// the GE chain state).
  double current_loss() const {
    return bad_state_ ? config_.burst_loss : config_.loss;
  }

  PacketCount packets_sent() const { return packets_sent_; }
  PacketCount packets_dropped() const { return packets_dropped_; }

 private:
  sim::FaultConfig config_;
  common::Xoshiro256 rng_;
  bool bad_state_ = false;
  PacketCount packets_sent_ = 0;
  PacketCount packets_dropped_ = 0;
};

}  // namespace manet::net
