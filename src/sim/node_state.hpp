#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "geom/vec2.hpp"

/// \file node_state.hpp
/// Structure-of-arrays node state for the sharded tick's hot loops.
///
/// The mobility model, scenario plumbing and cold paths all speak
/// std::vector<geom::Vec2> (AoS) — convenient, but every distance check in
/// the unit-disk delta then strides over interleaved x/y pairs, and shards
/// working disjoint node ranges share cache lines. NodeStateSoA keeps the
/// same state as separate contiguous arrays:
///
///   x, y     committed current positions (the hot operands of every
///            distance comparison; contiguous doubles so the inner loops
///            auto-vectorize and per-shard slices touch disjoint lines)
///   vx, vy   displacement committed by the last advance() per node
///            (zero after a (re)seed; groundwork for mobility-aware shard
///            placement — ROADMAP item 1's NUMA direction)
///   cell     anchored spatial-grid bucket per node (kNoCell when the node
///            was absent from the anchor snapshot), refreshed whenever the
///            owner re-anchors its grid; gives shards a contiguous
///            node -> bucket map without touching the grid's CSR internals
///
/// build_from()/write_back() bridge to the existing AoS structs so cold
/// paths (grid rebuilds, bridge computation) stay unchanged. Bit-identity
/// note: advance() detects movement with the exact comparison
/// (nx != x[v] || ny != y[v]), which is precisely !(Vec2 ==) memberwise,
/// and pos(v) reconstructs the committed Vec2 bit-for-bit — so swapping the
/// AoS mirror for this layout cannot change any produced edge set.

namespace manet::sim {

class NodeStateSoA {
 public:
  /// Sentinel cell for nodes without an anchored bucket.
  static constexpr std::int32_t kNoCell = -1;

  Size size() const noexcept { return x_.size(); }
  bool empty() const noexcept { return x_.empty(); }

  /// Reset to \p positions: x/y copied, vx/vy zeroed, cells cleared to
  /// kNoCell (the owner re-derives them after anchoring its grid).
  void build_from(const std::vector<geom::Vec2>& positions) {
    const Size n = positions.size();
    x_.resize(n);
    y_.resize(n);
    for (Size v = 0; v < n; ++v) {
      x_[v] = positions[v].x;
      y_[v] = positions[v].y;
    }
    vx_.assign(n, 0.0);
    vy_.assign(n, 0.0);
    cell_.assign(n, kNoCell);
  }

  /// Write the committed positions back into an AoS vector (resized to fit).
  void write_back(std::vector<geom::Vec2>& positions) const {
    positions.resize(size());
    for (Size v = 0; v < size(); ++v) positions[v] = {x_[v], y_[v]};
  }

  /// Detect-and-commit bridge for one tick: appends to \p moved every node
  /// whose position in \p positions differs from the committed state (exact
  /// comparison — identical to Vec2::operator!=), records the displacement
  /// in vx/vy and commits the new coordinates. Unmoved nodes keep the last
  /// committed displacement in vx/vy; callers needing "this-tick velocity"
  /// consult \p moved.
  void advance(const std::vector<geom::Vec2>& positions, std::vector<NodeId>& moved) {
    const Size n = size();
    for (NodeId v = 0; v < n; ++v) {
      const double nx = positions[v].x;
      const double ny = positions[v].y;
      if (nx != x_[v] || ny != y_[v]) {
        moved.push_back(v);
        vx_[v] = nx - x_[v];
        vy_[v] = ny - y_[v];
        x_[v] = nx;
        y_[v] = ny;
      }
    }
  }

  /// Committed position of \p v, reconstructed bit-for-bit.
  geom::Vec2 pos(NodeId v) const { return {x_[v], y_[v]}; }
  /// Displacement committed by the last advance() that moved \p v.
  geom::Vec2 velocity(NodeId v) const { return {vx_[v], vy_[v]}; }

  const double* x() const noexcept { return x_.data(); }
  const double* y() const noexcept { return y_.data(); }
  const double* vx() const noexcept { return vx_.data(); }
  const double* vy() const noexcept { return vy_.data(); }

  std::int32_t cell(NodeId v) const { return cell_[v]; }
  void set_cell(NodeId v, std::int32_t c) { cell_[v] = c; }
  /// Reset every anchored bucket (before a re-anchor refresh).
  void clear_cells() { cell_.assign(size(), kNoCell); }

 private:
  std::vector<double> x_, y_;
  std::vector<double> vx_, vy_;
  std::vector<std::int32_t> cell_;
};

}  // namespace manet::sim
