#include "lm/address.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::lm {
namespace {

using graph::Edge;
using graph::Graph;

cluster::Hierarchy random_hierarchy(Size n, std::uint64_t seed,
                                    std::vector<geom::Vec2>* out_pts = nullptr) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, true);
  const auto g = builder.build(pts);
  if (out_pts) *out_pts = pts;
  return cluster::HierarchyBuilder().build(g);
}

TEST(Address, ChainEndsAtNodeAndStartsAtTop) {
  const auto h = random_hierarchy(200, 1);
  const auto addr = make_address(h, 17);
  ASSERT_EQ(addr.chain.size(), h.level_count());
  EXPECT_EQ(addr.chain.back(), 17u);
  EXPECT_EQ(addr.chain.front(), h.level(h.top_level()).ids[h.ancestor(17, h.top_level())]);
}

TEST(Address, ToStringIsDotted) {
  HierAddress addr;
  addr.chain = {100, 85, 68, 63};
  EXPECT_EQ(to_string(addr), "100.85.68.63");
  EXPECT_EQ(to_string(HierAddress{{7}}), "7");
}

TEST(Address, LowestCommonLevelOfSelfIsZero) {
  const auto h = random_hierarchy(150, 2);
  EXPECT_EQ(lowest_common_level(h, 5, 5), 0u);
}

TEST(Address, LowestCommonLevelSymmetric) {
  const auto h = random_hierarchy(150, 3);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 0; v < 20; ++v) {
      EXPECT_EQ(lowest_common_level(h, u, v), lowest_common_level(h, v, u));
    }
  }
}

TEST(Address, LowestCommonLevelMatchesAncestors) {
  const auto h = random_hierarchy(250, 4);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < 30; ++v) {
      if (u == v) continue;
      const Level k = lowest_common_level(h, u, v);
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, h.top_level());
      EXPECT_EQ(h.ancestor(u, k), h.ancestor(v, k));
      EXPECT_NE(h.ancestor(u, k - 1), h.ancestor(v, k - 1));
    }
  }
}

TEST(Address, MapSizeIsLogarithmicNotLinear) {
  // The paper's O(log|V|) hierarchical map claim: the per-node map must be
  // far below n and grow slowly.
  const auto h300 = random_hierarchy(300, 5);
  double mean300 = 0.0;
  for (NodeId v = 0; v < 300; ++v) {
    mean300 += static_cast<double>(hierarchical_map_size(h300, v));
  }
  mean300 /= 300.0;
  EXPECT_LT(mean300, 80.0);  // << n

  const auto h1200 = random_hierarchy(1200, 6);
  double mean1200 = 0.0;
  for (NodeId v = 0; v < 1200; ++v) {
    mean1200 += static_cast<double>(hierarchical_map_size(h1200, v));
  }
  mean1200 /= 1200.0;
  // 4x the nodes must not cost anywhere near 4x the map.
  EXPECT_LT(mean1200, mean300 * 2.5);
}

TEST(Address, AddressesAreUniquePerNode) {
  const auto h = random_hierarchy(100, 7);
  for (NodeId u = 0; u < 100; ++u) {
    for (NodeId v = u + 1; v < 100; ++v) {
      EXPECT_NE(make_address(h, u), make_address(h, v));
    }
  }
}

}  // namespace
}  // namespace manet::lm
