/// E11: ALCA cluster-state occupancy (paper Fig. 3 + Section 5.3.2) and the
/// paper's explicitly named future work: "Actual quantification of q1 via
/// simulation". Reports p_j (critical-state probability) per level, the
/// recursion profile q_j of eq. (15), q1/Q, and the eq. (21b) lower bound,
/// and verifies eq. (22): q1 stays bounded away from 0 as |V| grows.

#include "bench_util.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E11  bench_alca_states — ALCA state occupancy and q1 (paper future work)",
      "p_j in (0,1); q1 > epsilon > 0 for all |V| [eq. 22]; T_R bound of eq. (23)");

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = true;
  opts.measure_hops = false;

  exp::Campaign campaign;
  analysis::TextTable summary({"|V|", "q1", "q1/Q", "eq21b bound", "levels"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    exp::SweepPoint point;
    point.n = n;
    point.metrics = exp::run_replications(cfg, bench::standard_replications(), opts);
    summary.add_row({std::to_string(n), bench::cell(point.metrics, "q1"),
                     bench::cell(point.metrics, "q1_over_Q"),
                     bench::cell(point.metrics, "q_lower_bound"),
                     bench::cell(point.metrics, "levels")});
    campaign.points.push_back(std::move(point));
  }
  std::printf("%s", summary.to_string("recursion profile vs |V| (eq. 15-22)").c_str());

  for (const auto& point : campaign.points) {
    analysis::TextTable table({"level j", "p_j = P(state 1)"});
    for (Level k = 0; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "p_state1.%u", k);
      if (!point.metrics.has(key)) break;
      table.add_row({std::to_string(k), bench::cell(point.metrics, key)});
    }
    char title[80];
    std::snprintf(title, sizeof(title), "critical-state probability per level, |V| = %zu",
                  point.n);
    std::printf("%s", table.to_string(title).c_str());
  }

  // E22: clusterhead tenure per level — the temporal claims T_m = Theta(h_m)
  // (Sec. 5.3.1) and the T_R lower bound (eq. 23a) predict longer-lived
  // heads at higher levels. "min" rows are censored (no completed tenure in
  // the window): the mean current age is a lower bound.
  for (const auto& point : campaign.points) {
    analysis::TextTable table({"level", "mean head tenure (s)"});
    for (Level k = 1; k <= 12; ++k) {
      char key[32];
      std::snprintf(key, sizeof(key), "tenure_k.%u", k);
      if (point.metrics.has(key)) {
        table.add_row({std::to_string(k), bench::cell(point.metrics, key)});
        continue;
      }
      std::snprintf(key, sizeof(key), "tenure_min_k.%u", k);
      if (!point.metrics.has(key)) break;
      table.add_row({std::to_string(k), ">= " + bench::cell(point.metrics, key)});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "E22: clusterhead tenure per level (T ~ h_k, Sec. 5.3), |V| = %zu",
                  point.n);
    std::printf("%s", table.to_string(title).c_str());
  }

  std::printf(
      "\nreading: eq. (22) holds if the q1 column stays above a fixed\n"
      "epsilon across the sweep — the quantity the paper deferred to\n"
      "simulation. p_j being comparable across levels supports the paper's\n"
      "claim that ALCA levels are statistically similar.\n");
  return 0;
}
