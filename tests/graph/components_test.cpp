#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manet::graph {
namespace {

TEST(UnionFind, InitiallyAllSeparate) {
  UnionFind uf(4);
  EXPECT_EQ(uf.component_count(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_EQ(uf.component_count(), 3u);
}

TEST(UnionFind, TransitiveConnectivityAndSizes) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(4, 5);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(2, 4));
  EXPECT_EQ(uf.component_size(0), 3u);
  EXPECT_EQ(uf.component_size(4), 2u);
  EXPECT_EQ(uf.component_size(3), 1u);
}

TEST(Components, LabelsPartitionTheGraph) {
  const Graph g(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  const auto labels = component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
  EXPECT_EQ(component_count(g), 3u);
}

TEST(Components, ConnectedDetection) {
  EXPECT_TRUE(is_connected(Graph(3, std::vector<Edge>{{0, 1}, {1, 2}})));
  EXPECT_FALSE(is_connected(Graph(3, std::vector<Edge>{{0, 1}})));
  EXPECT_FALSE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(Components, GiantComponentFindsLargest) {
  const Graph g(7, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  const auto giant = giant_component(g);
  EXPECT_EQ(giant, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Components, GiantComponentOfEmptyGraph) {
  EXPECT_TRUE(giant_component(Graph(0)).empty());
}

}  // namespace
}  // namespace manet::graph
