#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.hpp
/// A fixed-size worker pool for embarrassingly parallel Monte-Carlo work.
///
/// Replications are independent (each owns its RNG stream derived from the
/// campaign seed), so a plain FIFO queue suffices; there is no inter-task
/// communication and therefore no need for work stealing. Determinism is
/// preserved because task *results* are gathered by replication index, never
/// by completion order.

namespace manet::common {

class ThreadPool {
 public:
  /// Spawns \p n_threads workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t n_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and block until all complete.
  /// Exceptions from tasks propagate (the first one encountered, in index
  /// order) after all tasks finish.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// parallel_for with a work-unit progress hook: after each fn(i) returns,
  /// on_complete(done) fires with the number of completed iterations so far.
  /// Calls are serialized (one at a time, monotone done counts), so the hook
  /// may write checkpoints or print progress without its own locking; keep it
  /// cheap — it runs on a worker thread while siblings wait on the lock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const std::function<void(std::size_t)>& on_complete);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace manet::common
