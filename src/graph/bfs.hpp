#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file bfs.hpp
/// Breadth-first search utilities. Hop counts on the level-0 graph are the
/// library's packet-transmission metric: one LM entry moved from node a to
/// node b costs hops(a, b) transmissions (strict hierarchical routing
/// forwards along shortest paths, paper Section 2.1).

namespace manet::graph {

/// Hop distance marker for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// Single-source BFS: hop counts from \p source to every vertex.
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

/// Multi-source BFS: hop count to the *nearest* of \p sources.
std::vector<std::uint32_t> bfs_hops_multi(const Graph& g, std::span<const NodeId> sources);

/// Reusable BFS workspace: avoids reallocating the frontier and distance
/// arrays when many searches run against graphs of the same size (the
/// handoff engine performs one BFS per unique transfer source per tick).
class BfsScratch {
 public:
  /// Runs BFS from \p source and returns a view of the internal distance
  /// array, valid until the next run() call.
  std::span<const std::uint32_t> run(const Graph& g, NodeId source);

  /// Distance from the last run's source to \p v.
  std::uint32_t hops_to(NodeId v) const;

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<NodeId> queue_;
};

}  // namespace manet::graph
