#include "exp/montecarlo.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace manet::exp {

void AggregatedMetrics::add(const RunMetrics& metrics) {
  for (const auto& [name, value] : metrics.values) {
    if (!std::isnan(value)) acc_[name].add(value);
  }
  ++replications_;
}

void AggregatedMetrics::merge(const AggregatedMetrics& other) {
  for (const auto& [name, acc] : other.acc_) acc_[name].merge(acc);
  replications_ += other.replications_;
}

bool AggregatedMetrics::has(const std::string& name) const { return acc_.contains(name); }

double AggregatedMetrics::mean(const std::string& name) const {
  const auto it = acc_.find(name);
  return it == acc_.end() ? std::numeric_limits<double>::quiet_NaN() : it->second.mean();
}

analysis::Summary AggregatedMetrics::summary(const std::string& name) const {
  const auto it = acc_.find(name);
  if (it == acc_.end()) return analysis::Summary{};
  const auto& a = it->second;
  return analysis::Summary{a.count(), a.mean(), a.stddev(), a.ci95_halfwidth(), a.min(),
                           a.max()};
}

std::vector<std::string> AggregatedMetrics::names() const {
  std::vector<std::string> out;
  out.reserve(acc_.size());
  for (const auto& [name, acc] : acc_) {
    (void)acc;
    out.push_back(name);
  }
  return out;
}

AggregatedMetrics run_replications(const ScenarioConfig& base, Size replications,
                                   const RunOptions& options, common::ThreadPool* pool) {
  MANET_CHECK(replications >= 1);
  std::vector<RunMetrics> results(replications);

  auto run_one = [&](Size r) {
    ScenarioConfig cfg = base;
    cfg.seed = common::derive_seed(base.seed, r);
    results[r] = run_simulation(cfg, options);
  };

  if (pool != nullptr && pool->thread_count() > 1 && replications > 1) {
    pool->parallel_for(replications, run_one);
  } else {
    for (Size r = 0; r < replications; ++r) run_one(r);
  }

  AggregatedMetrics agg;
  for (const auto& metrics : results) agg.add(metrics);  // index order: deterministic
  return agg;
}

}  // namespace manet::exp
