#pragma once

#include <vector>

#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "graph/graph.hpp"
#include "net/radio.hpp"

/// \file unit_disk.hpp
/// Unit-disk graph construction: G = (V, E) with e = (u, v) in E iff
/// |p_u - p_v| <= R_TX. Built through a spatial hash grid, so topology
/// resampling is O(|V| + |E|) expected — the inner loop of every mobile
/// experiment.

namespace manet::net {

/// One-shot build (allocates its own grid).
graph::Graph build_unit_disk_graph(const std::vector<geom::Vec2>& positions, double tx_radius);

/// Reusable builder: keeps the spatial grid and edge buffer across ticks.
class UnitDiskBuilder {
 public:
  /// \p ensure_connected: when the sampled unit-disk graph fragments
  /// (mobile boundary nodes drift out of range), bridge every minor
  /// component to the giant one through its geometrically closest node
  /// pair. This enforces the paper's standing assumption that G is
  /// connected (Section 1.2) — physically, a node briefly out of range
  /// still reaches the network through its nearest neighbor at a higher
  /// power level. The number of augmented edges per snapshot is reported
  /// so experiments can verify the correction stays marginal.
  explicit UnitDiskBuilder(double tx_radius, bool ensure_connected = false);

  graph::Graph build(const std::vector<geom::Vec2>& positions);

  double tx_radius() const { return tx_radius_; }

  /// Edges added by connectivity augmentation in the last build() call.
  Size last_augmented_edges() const { return last_augmented_; }

 private:
  double tx_radius_;
  bool ensure_connected_;
  geom::SpatialGrid grid_;
  std::vector<graph::Edge> edge_buffer_;
  Size last_augmented_ = 0;
};

}  // namespace manet::net
