#pragma once

#include <cstddef>

/// \file radio.hpp
/// Radio/link-layer parameters for the unit-disk transmission model
/// (paper Section 1.2): an undirected link (u, v) exists iff the nodes are
/// within R_TX meters of one another.

namespace manet::net {

struct RadioParams {
  double tx_radius = 1.0;  ///< R_TX in meters
};

/// Transmission radius that keeps a constant-density random deployment
/// asymptotically connected. Gupta & Kumar (paper ref [3]): for n nodes in a
/// unit-area disk, connectivity w.h.p. requires pi r^2 >= (ln n + c)/n.
/// At constant density rho over area n/rho this becomes
///   R_TX = sqrt((ln n + c) / (pi * rho)),
/// i.e. Theta(sqrt(log n)) growth — the log factor the paper acknowledges and
/// then drops for compactness. \p margin is the additive constant c (> 0
/// makes the disconnection probability vanish; we default to 1.0 and verify
/// empirical connectivity in tests).
double connectivity_radius(std::size_t n_nodes, double density, double margin = 1.0);

/// Fixed radius chosen for a target mean degree d under constant density:
/// the expected number of neighbors in a disk of radius R is rho*pi*R^2 - 1,
/// so R = sqrt((d + 1) / (rho * pi)). Useful when experiments hold degree
/// (not connectivity probability) constant across |V|.
double radius_for_mean_degree(double target_degree, double density);

}  // namespace manet::net
