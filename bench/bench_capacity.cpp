/// E19: the paper's closing significance claim — "the capacity of MANET
/// links need only grow at a polylogarithmic rate in order to scale
/// gracefully with increasing node count." We measure total LM control
/// overhead (handoff + registration) against the data-plane load of a fixed
/// per-node session workload: data transmissions per node grow as the mean
/// path length Theta(sqrt n), so the control fraction must *vanish* as the
/// network grows.

#include "bench_util.hpp"
#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "net/unit_disk.hpp"
#include "traffic/sessions.hpp"

using namespace manet;

int main() {
  bench::print_header(
      "E19  bench_capacity — control overhead vs data-plane load",
      "control/data -> 0: links need only polylog capacity headroom (paper Sec. 6)");

  // Data workload: each node opens `kSessionsPerNodePerSec` unicast sessions
  // to uniform random peers, each carrying kPacketsPerSession packets along
  // shortest paths.
  constexpr double kSessionsPerNodePerSec = 0.2;
  constexpr double kPacketsPerSession = 10.0;

  auto cfg = bench::paper_scenario();
  exp::RunOptions opts;
  opts.track_events = false;
  opts.track_states = false;
  opts.measure_hops = false;
  opts.track_registration = true;

  analysis::TextTable table({"|V|", "control (pkts/node/s)", "data (pkts/node/s)",
                             "pkts/session", "control/data"});
  for (const Size n : bench::standard_nodes()) {
    cfg.n = n;
    const auto agg = exp::run_replications(cfg, bench::standard_replications(), opts);
    const double control = agg.mean("total_rate") + agg.mean("reg_rate");

    // Data plane: route the session workload over *strict hierarchical
    // routing* on a static snapshot of the same scenario, so stretch and
    // recovery detours are charged to the data side too.
    auto static_cfg = cfg;
    static_cfg.mobility = exp::MobilityKind::kStatic;
    auto scenario = exp::Scenario::materialize(static_cfg);
    net::UnitDiskBuilder disk(static_cfg.tx_radius(), true);
    const auto g = disk.build(scenario.mobility->positions());
    const auto h = cluster::HierarchyBuilder().build(g, scenario.ids);
    const routing::RoutingTables tables(g, h);

    traffic::SessionConfig session_cfg;
    session_cfg.sessions_per_node_per_sec = kSessionsPerNodePerSec;
    session_cfg.packets_per_session = static_cast<Size>(kPacketsPerSession);
    traffic::SessionWorkload workload(session_cfg, common::derive_seed(cfg.seed, 0xCAFE));
    for (int t = 0; t < 30; ++t) workload.tick(tables, n, 1.0);
    const double data = workload.stats().rate(n);

    table.add_row({std::to_string(n), bench::fixed(control, 5), bench::fixed(data, 5),
                   bench::fixed(workload.stats().mean_transmissions_per_session(), 4),
                   bench::fixed(control / data, 4)});
  }
  std::printf("%s", table.to_string("control-plane vs data-plane load").c_str());

  std::printf(
      "\nreading: data load grows ~sqrt(n) with the session path length while\n"
      "control grows ~log^2(n), so asymptotically the ratio falls to 0. At\n"
      "these scales the two growth rates are still close (log^2 elasticity\n"
      "~0.3 vs sqrt's 0.5), so expect the ratio to stop rising after the\n"
      "smallest scales and drift down from there — boundedness is the\n"
      "operative check; the decline is gentle. Paper Section 6.\n");
  return 0;
}
