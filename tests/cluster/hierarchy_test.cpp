#include "cluster/hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/hierarchy_builder.hpp"
#include "common/rng.hpp"
#include "geom/region.hpp"
#include "net/unit_disk.hpp"

namespace manet::cluster {
namespace {

using graph::Edge;
using graph::Graph;

/// Random connected unit-disk deployment used by the structural tests.
struct Deployment {
  std::vector<geom::Vec2> positions;
  Graph g{0};
};

Deployment make_deployment(Size n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const auto disk = geom::DiskRegion::with_density(n, 1.0);
  Deployment d;
  d.positions.resize(n);
  for (auto& p : d.positions) p = disk.sample(rng);
  net::UnitDiskBuilder builder(2.2, /*ensure_connected=*/true);
  d.g = builder.build(d.positions);
  return d;
}

TEST(Hierarchy, SingleNode) {
  const Graph g(1);
  const auto h = HierarchyBuilder().build(g);
  EXPECT_EQ(h.level_count(), 1u);
  EXPECT_EQ(h.top_level(), 0u);
  EXPECT_EQ(h.ancestor(0, 0), 0u);
}

TEST(Hierarchy, TwoNodesCollapseToOneCluster) {
  const Graph g(2, std::vector<Edge>{{0, 1}});
  const auto h = HierarchyBuilder().build(g);
  EXPECT_EQ(h.top_level(), 1u);
  EXPECT_EQ(h.cluster_count(1), 1u);
  EXPECT_EQ(h.ancestor_id(0, 1), 1u);  // head is the larger id
  EXPECT_EQ(h.ancestor_id(1, 1), 1u);
}

TEST(Hierarchy, ConnectedGraphAggregatesToSingleTopCluster) {
  const auto d = make_deployment(300, 1);
  const auto h = HierarchyBuilder().build(d.g);
  EXPECT_GE(h.top_level(), 2u);
  EXPECT_EQ(h.cluster_count(h.top_level()), 1u);
}

TEST(Hierarchy, ClusterCountsStrictlyDecrease) {
  const auto d = make_deployment(400, 2);
  const auto h = HierarchyBuilder().build(d.g);
  for (Level k = 1; k <= h.top_level(); ++k) {
    EXPECT_LT(h.cluster_count(k), h.cluster_count(k - 1)) << "level " << k;
    EXPECT_GT(h.alpha(k), 1.0);
  }
}

TEST(Hierarchy, MembershipIsAPartitionAtEveryLevel) {
  const auto d = make_deployment(350, 3);
  const auto h = HierarchyBuilder().build(d.g);
  const Size n = d.g.vertex_count();
  for (Level k = 0; k <= h.top_level(); ++k) {
    std::vector<NodeId> seen;
    for (NodeId c = 0; c < h.cluster_count(k); ++c) {
      const auto& members = h.members0(k, c);
      seen.insert(seen.end(), members.begin(), members.end());
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), n) << "level " << k;
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(seen[v], v);
  }
}

TEST(Hierarchy, AncestorConsistentWithMembers) {
  const auto d = make_deployment(250, 4);
  const auto h = HierarchyBuilder().build(d.g);
  for (Level k = 0; k <= h.top_level(); ++k) {
    for (NodeId v = 0; v < d.g.vertex_count(); ++v) {
      const NodeId c = h.ancestor(v, k);
      const auto& members = h.members0(k, c);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), v))
          << "v=" << v << " level=" << k;
    }
  }
}

TEST(Hierarchy, HeadBelongsToItsOwnCluster) {
  const auto d = make_deployment(250, 5);
  const auto h = HierarchyBuilder().build(d.g);
  for (Level k = 1; k <= h.top_level(); ++k) {
    const auto& view = h.level(k);
    for (NodeId c = 0; c < view.vertex_count(); ++c) {
      // The head's level-0 node must be a member of the cluster it leads.
      const auto& members = h.members0(k, c);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), view.node0[c]));
      // And its id matches the cluster id.
      EXPECT_EQ(h.level(0).ids[view.node0[c]], view.ids[c]);
    }
  }
}

TEST(Hierarchy, ChildrenPartitionParentLevel) {
  const auto d = make_deployment(300, 6);
  const auto h = HierarchyBuilder().build(d.g);
  for (Level k = 1; k <= h.top_level(); ++k) {
    Size total = 0;
    for (NodeId c = 0; c < h.cluster_count(k); ++c) total += h.children(k, c).size();
    EXPECT_EQ(total, h.cluster_count(k - 1));
  }
}

TEST(Hierarchy, AddressChainTopDown) {
  const auto d = make_deployment(200, 7);
  const auto h = HierarchyBuilder().build(d.g);
  for (NodeId v = 0; v < 20; ++v) {
    const auto addr = h.address(v);
    ASSERT_EQ(addr.size(), h.level_count());
    EXPECT_EQ(addr.back(), v);  // identity ids: level-0 entry is v itself
    for (Level k = 0; k < addr.size(); ++k) {
      EXPECT_EQ(addr[k], h.ancestor_id(v, h.top_level() - k));
    }
  }
}

TEST(Hierarchy, AggregationMatchesClusterCounts) {
  const auto d = make_deployment(300, 8);
  const auto h = HierarchyBuilder().build(d.g);
  for (Level k = 0; k <= h.top_level(); ++k) {
    EXPECT_NEAR(h.aggregation(k),
                static_cast<double>(d.g.vertex_count()) /
                    static_cast<double>(h.cluster_count(k)),
                1e-12);
  }
}

TEST(Hierarchy, ShuffledIdsStillYieldValidHierarchy) {
  const auto d = make_deployment(300, 9);
  common::Xoshiro256 rng(10);
  std::vector<NodeId> ids(d.g.vertex_count());
  std::iota(ids.begin(), ids.end(), 0u);
  common::shuffle(rng, ids.data(), ids.size());
  const auto h = HierarchyBuilder().build(d.g, ids);
  EXPECT_EQ(h.cluster_count(h.top_level()), 1u);
  // Top head must carry the globally maximal id.
  EXPECT_EQ(h.level(h.top_level()).ids[0],
            *std::max_element(ids.begin(), ids.end()));
}

TEST(Hierarchy, GeometricLinksProduceValidHierarchy) {
  const auto d = make_deployment(400, 11);
  HierarchyOptions options;
  options.geometric_links = true;
  options.beta = 1.0;
  options.tx_radius = 2.2;
  const auto h = HierarchyBuilder(options).build(d.g, {}, d.positions);
  EXPECT_GE(h.top_level(), 2u);
  // Partition invariant still holds.
  Size total = 0;
  for (NodeId c = 0; c < h.cluster_count(h.top_level()); ++c) {
    total += h.members0(h.top_level(), c).size();
  }
  EXPECT_EQ(total, d.g.vertex_count());
}

TEST(Hierarchy, MaxLevelCapIsRespected) {
  const auto d = make_deployment(400, 12);
  HierarchyOptions options;
  options.max_levels = 2;
  const auto h = HierarchyBuilder(options).build(d.g);
  EXPECT_LE(h.top_level(), 2u);
}

TEST(Hierarchy, DeterministicForFixedInput) {
  const auto d = make_deployment(200, 13);
  const auto h1 = HierarchyBuilder().build(d.g);
  const auto h2 = HierarchyBuilder().build(d.g);
  ASSERT_EQ(h1.level_count(), h2.level_count());
  for (Level k = 0; k <= h1.top_level(); ++k) {
    EXPECT_EQ(h1.level(k).ids, h2.level(k).ids);
  }
}

TEST(Hierarchy, ReuseSnapshotIsBitIdenticalToFreshBuild) {
  // The memoized build path (reuse = previous hierarchy) must produce the
  // exact structure a from-scratch build does, both when the input is
  // unchanged and after a perturbation invalidates some prefix of levels.
  auto d = make_deployment(250, 17);
  const HierarchyBuilder builder;
  const auto h0 = builder.build(d.g);

  auto expect_same = [](const Hierarchy& a, const Hierarchy& b) {
    ASSERT_EQ(a.level_count(), b.level_count());
    for (Level k = 0; k <= a.top_level(); ++k) {
      EXPECT_EQ(a.level(k).ids, b.level(k).ids) << "level " << k;
      EXPECT_EQ(a.level(k).parent, b.level(k).parent) << "level " << k;
      EXPECT_EQ(a.level(k).node0, b.level(k).node0) << "level " << k;
      ASSERT_EQ(a.level(k).topo.edge_count(), b.level(k).topo.edge_count()) << "level " << k;
      EXPECT_TRUE(std::equal(a.level(k).topo.edges().begin(), a.level(k).topo.edges().end(),
                             b.level(k).topo.edges().begin()))
          << "level " << k;
    }
    for (NodeId v = 0; v < a.level(0).ids.size(); ++v) {
      EXPECT_EQ(a.address(v), b.address(v));
    }
  };

  // Unchanged input: full memo hit.
  expect_same(builder.build(d.g, {}, {}, &h0), builder.build(d.g));

  // Perturbed input: drop one node's edges so level-0 membership shifts.
  std::vector<graph::Edge> kept;
  for (const auto& e : d.g.edges()) {
    if (e.first != 3 && e.second != 3) kept.push_back(e);
  }
  const graph::Graph g2(d.g.vertex_count(), kept);
  expect_same(builder.build(g2, {}, {}, &h0), builder.build(g2));
}

}  // namespace
}  // namespace manet::cluster
