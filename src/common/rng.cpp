#include "common/rng.hpp"

#include <cmath>

namespace manet::common {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t key) noexcept {
  // Mix parent and key through two SplitMix64 rounds; the intermediate add
  // of a large odd constant keeps (parent, key) and (parent', key') from
  // colliding under simple additive relations.
  std::uint64_t s = parent ^ (key * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  std::uint64_t out = splitmix64(s);
  out ^= splitmix64(s);
  return out;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is a fixed point of xoshiro; SplitMix64 cannot emit four
  // consecutive zeros, so no further guard is needed.
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL,
                                            0x77710069854EE241ULL, 0x39109BB02ACBE635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

double uniform01(Xoshiro256& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) noexcept {
  MANET_CHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double exponential(Xoshiro256& rng, double lambda) noexcept {
  MANET_CHECK(lambda > 0.0);
  // 1 - u in (0, 1] avoids log(0).
  return -std::log(1.0 - uniform01(rng)) / lambda;
}

double normal(Xoshiro256& rng) noexcept {
  // Marsaglia polar method; the loop accepts with probability pi/4.
  for (;;) {
    const double u = 2.0 * uniform01(rng) - 1.0;
    const double v = 2.0 * uniform01(rng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint64_t poisson(Xoshiro256& rng, double lambda) noexcept {
  MANET_CHECK(lambda > 0.0);
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = lambda + std::sqrt(lambda) * normal(rng) + 0.5;
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
  }
  const double threshold = std::exp(-lambda);
  std::uint64_t k = 0;
  double product = uniform01(rng);
  while (product > threshold) {
    ++k;
    product *= uniform01(rng);
  }
  return k;
}

}  // namespace manet::common
