#pragma once

#include "net/lossy_channel.hpp"

/// \file reliable.hpp
/// ARQ retransmission over the lossy control channel. Every LM transfer
/// (handoff, registration refresh, repair) is one logical message; this
/// layer retries it with timeout and exponential backoff up to a bounded
/// budget, and reports the split between the ideal cost (hops, what the
/// paper charges) and the retransmission overhead paid on top — the
/// phi_retx / gamma_retx / reg_retx accounting that makes overhead
/// inflation under loss a first-class metric.
///
/// Transfers that exhaust the budget FAIL: the caller must leave the entry
/// stale and route it through the repair path (HandoffEngine::audit_repair)
/// instead of pretending delivery.

namespace manet::lm {

/// Outcome of one reliable transfer.
struct TransferOutcome {
  bool delivered = false;
  Size attempts = 0;          ///< total attempts (first try + retries)
  PacketCount packets = 0;    ///< total transmissions consumed
  PacketCount retx = 0;       ///< packets - (delivered ? hops : 0)
  Time latency = 0.0;         ///< backoff time accumulated before success/abort
};

class ReliableTransfer {
 public:
  /// \p budget retransmissions after the first attempt; \p timeout the first
  /// retransmission timeout; \p backoff multiplies the timeout per retry.
  ReliableTransfer(net::LossyChannel& channel, Size budget, Time timeout,
                   double backoff);

  /// Deliver one control message over \p hops level-0 hops, retrying up to
  /// the budget. hops == 0 delivers instantly for free.
  TransferOutcome transfer(Size hops);

  /// Message with no usable route (endpoint down / partitioned): every
  /// attempt costs one route-probe packet and nothing is ever delivered.
  TransferOutcome transfer_unroutable();

  // --- Accumulated totals across all transfers ---
  PacketCount total_retx() const { return total_retx_; }
  Size total_retries() const { return total_retries_; }
  Size failed_transfers() const { return failed_; }

 private:
  net::LossyChannel& channel_;
  Size budget_;
  Time timeout_;
  double backoff_;
  PacketCount total_retx_ = 0;
  Size total_retries_ = 0;
  Size failed_ = 0;
};

}  // namespace manet::lm
