#pragma once

#include <cstdio>
#include <cstdlib>

/// \file check.hpp
/// Lightweight always-on invariant checks. Simulation correctness bugs
/// (broken cluster invariants, dangling LM entries) silently corrupt
/// measured overhead, so invariants stay enabled in release builds; the
/// checks are branch-predictable and outside inner loops.

namespace manet::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "MANET_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace manet::detail

#define MANET_CHECK(expr)                                                       \
  do {                                                                          \
    if (!(expr)) ::manet::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define MANET_CHECK_MSG(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::manet::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
