#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

/// \file hop_oracle.hpp
/// Landmark-guided exact hop queries for the per-tick pricing loops.
///
/// The LM handoff engine prices every server move at hops(old, new) on the
/// level-0 topology. Bidirectional BFS (graph/bfs.hpp) already avoids full
/// sweeps, but a high-mobility tick at n = 4096 issues thousands of pricing
/// queries spread almost uniformly over all distances, and at 20+ hops each
/// bidirectional ball covers most of the graph. Per-tick caching cannot help
/// — measured query streams touch ~3.4k distinct endpoints with ~4 queries
/// each, so per-source sweeps cost more than they save. What does help is a
/// stronger per-query algorithm: A* with landmark (ALT) lower bounds, which
/// expands a corridor along the path instead of distance-radius balls.
///
/// Heuristic: pick K landmarks by farthest-point sampling, run one BFS sweep
/// per landmark per prepare(), and bound
///
///   h(u) = max_k |d(L_k, u) - d(L_k, t)|  <=  d(u, t)
///
/// by the triangle inequality; the same table also upper-bounds the query
/// distance as min_k (d(L_k, s) + d(L_k, t)). The bounds need nothing but
/// the graph — they are valid on connectivity-augmentation bridges,
/// fault-stripped topologies and any other edge set, unlike a Euclidean
/// bound, which over-length bridge edges would break. (A Euclidean ceil
/// heuristic was measured on exactly this workload and shaved < 0.1% of A*
/// expansions: at the paper's degree-12 density, hop-count detours are large
/// enough that |pos(u) - pos(t)| / R sits far below the true distance, so it
/// never dominates the landmark bound.)
///
/// Exactness: each |d(L, u) - d(L, v)| changes by at most 1 across an edge
/// (both sweeps change by at most 1), so h is consistent (and h(t) = 0). A*
/// with a consistent heuristic settles every vertex at its true distance, so
/// the returned count equals plain BFS bit for bit. With unit edges, keys
/// f = g + h change by at most +2 per expansion, so a 3-slot rotating bucket
/// queue replaces the heap with O(1) push/pop.
///
/// Disconnected graphs: a landmark that reaches exactly one of the endpoints
/// proves they lie in different components (kUnreachable without any
/// search); landmarks reaching neither contribute no bound and are skipped.
namespace manet::net {

/// Exact point-to-point hop distances on one prepared graph snapshot.
///
/// prepare(g) selects landmarks and runs K BFS sweeps (O(K (V + E)), about
/// 3 ms at n = 4096 — amortized over thousands of same-tick queries);
/// hops(s, t) answers one query. The landmark table is stored interleaved
/// (all K distances of a vertex in one cache line) because the A* inner loop
/// reads all K entries of each touched vertex.
///
/// The oracle is cost-adaptive, because goal-directed search only pays off
/// when there is distance to direct across (measured crossover ~8 hops):
///
///   * Shallow graphs: prepare() estimates the diameter from its first one
///     or two sweeps (see kMinEccentricity / kMinDiameter) and, below the
///     cutoffs, skips the remaining sweeps entirely — every query passes
///     through to bidirectional BFS and the tick paid at most two sweeps
///     for the measurement.
///   * Near queries on deep graphs: hops() first evaluates the landmark
///     bounds alone (a few comparisons); below kNearCut the bidirectional
///     balls are tiny and A*'s per-vertex heuristic work would dominate, so
///     the query routes to BFS. When the lower and upper bound meet, the
///     distance is returned outright with no search at all.
///
/// Every route is exact, so the dispatch never changes a returned value.
class HopOracle {
 public:
  /// Per-caller query state: the A* visit marks / bucket queue plus the
  /// bidirectional-BFS scratch the near/shallow routes dispatch to. The
  /// prepared landmark table is shared-read, so concurrent queries against
  /// one prepared oracle are safe as long as each thread brings its own
  /// Scratch — the sharded pricing pass in lm::HandoffEngine keeps one per
  /// shard.
  struct Scratch {
    graph::BfsPairScratch pair_bfs;  ///< near-query + shallow-graph route
    // A* scratch: epoch-stamped visit marks plus the rotating bucket queue.
    std::vector<std::uint32_t> mark, dist;
    std::vector<std::uint8_t> done;
    std::vector<NodeId> buckets[3];
    std::uint32_t epoch = 0;
  };

  /// Bind the oracle to this tick's pricing graph: farthest-point landmark
  /// selection + one BFS sweep per landmark. \p g must stay alive and
  /// unchanged until the next prepare(); call again whenever the edge set
  /// changes.
  void prepare(const graph::Graph& g);

  /// True once prepare() has run (queries before that would be meaningless).
  bool ready() const { return g_ != nullptr; }

  /// Exact hop distance between \p s and \p t on the prepared graph —
  /// bit-identical to BFS, graph::kUnreachable across components.
  std::uint32_t hops(NodeId s, NodeId t) { return hops(s, t, scratch_); }

  /// Same, with caller-supplied scratch: const on the oracle, so queries
  /// with distinct Scratch instances may run concurrently between two
  /// prepare() calls.
  std::uint32_t hops(NodeId s, NodeId t, Scratch& scratch) const;

 private:
  static constexpr Size kLandmarks = 16;
  /// Below this first-sweep (vertex 0) eccentricity the whole graph is
  /// within a few bidirectional-BFS rings of anywhere and landmark prep
  /// cannot earn its sweeps back. Vertex 0's eccentricity can read as low as
  /// half the diameter, so this cutoff is intentionally conservative...
  static constexpr std::uint32_t kMinEccentricity = 13;
  /// ...and the second sweep (from the farthest-point landmark, a peripheral
  /// vertex) measures the diameter nearly exactly, deciding the rest.
  static constexpr std::uint32_t kMinDiameter = 27;
  /// Landmark lower bounds under this route to bidirectional BFS.
  static constexpr std::uint32_t kNearCut = 8;

  const graph::Graph* g_ = nullptr;
  Size n_ = 0;
  bool active_ = false;              ///< landmark table populated this bind
  std::vector<std::uint32_t> land_;  ///< interleaved: land_[v * K + k]

  // Landmark-selection scratch (farthest-point sampling).
  std::vector<std::uint32_t> min_dist_;
  std::vector<std::uint32_t> sweep_dist_;
  std::vector<NodeId> sweep_queue_;

  Scratch scratch_;  ///< backing state for the sequential hops(s, t) overload
};

}  // namespace manet::net
