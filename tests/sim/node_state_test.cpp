/// NodeStateSoA: the structure-of-arrays mirror the unit-disk delta's hot
/// loops read. The contract that matters is bit-identity — build_from /
/// write_back round-trip exactly, advance() flags precisely the nodes whose
/// Vec2 changed (memberwise !=), and pos() reconstructs committed positions
/// bit-for-bit — because the sharded tick's identity suite rests on it.

#include <gtest/gtest.h>

#include <vector>

#include "geom/vec2.hpp"
#include "sim/node_state.hpp"

using namespace manet;
using sim::NodeStateSoA;

namespace {

std::vector<geom::Vec2> sample_positions() {
  return {{0.0, 0.0}, {1.5, -2.25}, {1e-9, 3.0}, {-7.125, 0.5}};
}

TEST(NodeStateSoA, BuildFromWriteBackRoundTripsExactly) {
  NodeStateSoA state;
  EXPECT_TRUE(state.empty());
  const auto positions = sample_positions();
  state.build_from(positions);
  EXPECT_EQ(state.size(), positions.size());
  EXPECT_FALSE(state.empty());

  std::vector<geom::Vec2> out;
  state.write_back(out);
  ASSERT_EQ(out.size(), positions.size());
  for (Size v = 0; v < positions.size(); ++v) {
    EXPECT_EQ(out[v].x, positions[v].x);
    EXPECT_EQ(out[v].y, positions[v].y);
    EXPECT_EQ(state.pos(static_cast<NodeId>(v)).x, positions[v].x);
    EXPECT_EQ(state.pos(static_cast<NodeId>(v)).y, positions[v].y);
  }
}

TEST(NodeStateSoA, BuildFromZeroesVelocityAndClearsCells) {
  NodeStateSoA state;
  state.build_from(sample_positions());
  for (NodeId v = 0; v < state.size(); ++v) {
    EXPECT_EQ(state.velocity(v).x, 0.0);
    EXPECT_EQ(state.velocity(v).y, 0.0);
    EXPECT_EQ(state.cell(v), NodeStateSoA::kNoCell);
  }
}

TEST(NodeStateSoA, AdvanceFlagsExactlyTheMovedNodes) {
  NodeStateSoA state;
  auto positions = sample_positions();
  state.build_from(positions);

  // Move nodes 1 and 3; node 2 gets an exact copy (no move), node 0 is
  // untouched. Detection is the exact comparison, so equal bits == unmoved.
  positions[1] = {2.0, -2.0};
  positions[3] = {positions[3].x + 0.25, positions[3].y};
  std::vector<NodeId> moved;
  state.advance(positions, moved);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], 1u);
  EXPECT_EQ(moved[1], 3u);

  // Committed state now equals the input bit-for-bit.
  for (NodeId v = 0; v < state.size(); ++v) {
    EXPECT_EQ(state.pos(v).x, positions[v].x);
    EXPECT_EQ(state.pos(v).y, positions[v].y);
  }
}

TEST(NodeStateSoA, AdvanceRecordsDisplacementForMovedNodesOnly) {
  NodeStateSoA state;
  auto positions = sample_positions();
  state.build_from(positions);
  const geom::Vec2 before1 = positions[1];
  positions[1] = {4.0, 1.0};
  std::vector<NodeId> moved;
  state.advance(positions, moved);

  EXPECT_EQ(state.velocity(1).x, 4.0 - before1.x);
  EXPECT_EQ(state.velocity(1).y, 1.0 - before1.y);
  // Unmoved nodes keep their last committed displacement (zero post-seed).
  EXPECT_EQ(state.velocity(0).x, 0.0);
  EXPECT_EQ(state.velocity(2).y, 0.0);

  // A second advance with no changes commits nothing and flags nothing,
  // but node 1 retains the displacement from the tick that moved it.
  moved.clear();
  state.advance(positions, moved);
  EXPECT_TRUE(moved.empty());
  EXPECT_EQ(state.velocity(1).x, 4.0 - before1.x);
}

TEST(NodeStateSoA, CellArrayStoresAndClearsAnchoredBuckets) {
  NodeStateSoA state;
  state.build_from(sample_positions());
  state.set_cell(0, 7);
  state.set_cell(2, 0);
  EXPECT_EQ(state.cell(0), 7);
  EXPECT_EQ(state.cell(1), NodeStateSoA::kNoCell);
  EXPECT_EQ(state.cell(2), 0);
  state.clear_cells();
  for (NodeId v = 0; v < state.size(); ++v) {
    EXPECT_EQ(state.cell(v), NodeStateSoA::kNoCell);
  }
}

TEST(NodeStateSoA, RawArraysAreContiguousAndMatchAccessors) {
  // The hot loops read the raw pointers; they must alias the same storage
  // the accessors read.
  NodeStateSoA state;
  const auto positions = sample_positions();
  state.build_from(positions);
  const double* xs = state.x();
  const double* ys = state.y();
  for (Size v = 0; v < positions.size(); ++v) {
    EXPECT_EQ(xs[v], positions[v].x);
    EXPECT_EQ(ys[v], positions[v].y);
  }
}

TEST(NodeStateSoA, BuildFromResizesAcrossReseeds) {
  NodeStateSoA state;
  state.build_from(sample_positions());
  EXPECT_EQ(state.size(), 4u);
  std::vector<geom::Vec2> bigger(9, geom::Vec2{1.0, 2.0});
  state.build_from(bigger);
  EXPECT_EQ(state.size(), 9u);
  EXPECT_EQ(state.pos(8).x, 1.0);
  EXPECT_EQ(state.cell(8), NodeStateSoA::kNoCell);
  EXPECT_EQ(state.velocity(8).x, 0.0);
}

}  // namespace
