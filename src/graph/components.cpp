#include "graph/components.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace manet::graph {

UnionFind::UnionFind(Size n)
    : parent_(n), size_(n, 1), components_(n) {
  for (Size i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
}

NodeId UnionFind::find(NodeId v) {
  MANET_CHECK(v < parent_.size());
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(NodeId u, NodeId v) {
  NodeId ru = find(u);
  NodeId rv = find(v);
  if (ru == rv) return false;
  if (size_[ru] < size_[rv]) std::swap(ru, rv);
  parent_[rv] = ru;
  size_[ru] += size_[rv];
  --components_;
  return true;
}

bool UnionFind::connected(NodeId u, NodeId v) { return find(u) == find(v); }

Size UnionFind::component_size(NodeId v) { return size_[find(v)]; }

std::vector<std::uint32_t> component_labels(const Graph& g) {
  const Size n = g.vertex_count();
  std::vector<std::uint32_t> label(n, 0xFFFFFFFFu);
  std::vector<NodeId> stack;
  std::uint32_t next = 0;
  for (Size start = 0; start < n; ++start) {
    if (label[start] != 0xFFFFFFFFu) continue;
    label[start] = next;
    stack.push_back(static_cast<NodeId>(start));
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : g.neighbors(u)) {
        if (label[v] == 0xFFFFFFFFu) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

Size component_count(const Graph& g) {
  const auto labels = component_labels(g);
  return labels.empty() ? 0 : 1 + *std::max_element(labels.begin(), labels.end());
}

bool is_connected(const Graph& g) {
  return g.vertex_count() > 0 && component_count(g) == 1;
}

std::vector<NodeId> giant_component(const Graph& g) {
  const auto labels = component_labels(g);
  if (labels.empty()) return {};
  const std::uint32_t n_comp =
      1 + *std::max_element(labels.begin(), labels.end());
  std::vector<Size> count(n_comp, 0);
  for (const auto l : labels) ++count[l];
  const std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(count.begin(), count.end()) - count.begin());
  std::vector<NodeId> out;
  out.reserve(count[best]);
  for (Size v = 0; v < labels.size(); ++v) {
    if (labels[v] == best) out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

}  // namespace manet::graph
