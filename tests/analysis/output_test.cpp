#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/table.hpp"

namespace manet::analysis {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable table({"n", "phi", "gamma"});
  table.add_row({"128", "1.5", "2.5"});
  table.add_row({"256", "3.0", "4.0"});
  const auto text = table.to_string("demo");
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("128"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Rows and header + rule + title.
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 5);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable table({"a", "bbbb"});
  table.add_row({"xxxxxx", "y"});
  const auto text = table.to_string();
  std::istringstream iss(text);
  std::string header, rule, row;
  std::getline(iss, header);
  std::getline(iss, rule);
  std::getline(iss, row);
  // The second column starts at the same offset in header and row.
  EXPECT_EQ(header.find("bbbb"), row.find("y"));
}

TEST(TextTable, AddRowValuesFormats) {
  TextTable table({"x", "y"});
  table.add_row_values({1.5, 2.25});
  const auto text = table.to_string();
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("2.25"), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(TextTable::fmt(1234567.0, 3), "1.23e+06");
}

TEST(TextTableDeath, RowArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only one"}), "arity");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"n", "value"});
  csv.write_row({"10", "3.5"});
  csv.write_row_values({20.0, 7.25});
  EXPECT_EQ(os.str(), "n,value\n10,3.5\n20,7.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os, {"text"});
  csv.write_row({"hello, world"});
  csv.write_row({"say \"hi\""});
  EXPECT_NE(os.str().find("\"hello, world\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvWriterDeath, ArityMismatch) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_DEATH(csv.write_row({"1"}), "arity");
}

}  // namespace
}  // namespace manet::analysis
