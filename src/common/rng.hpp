#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

/// \file rng.hpp
/// Deterministic random number generation.
///
/// All stochastic components in the library draw from an explicitly seeded
/// generator so every experiment is reproducible from (seed, config) alone.
/// SplitMix64 is used for seed derivation (it is a bijective mixer, so child
/// streams derived from distinct keys never collide); xoshiro256** is the
/// workhorse generator (fast, 256-bit state, passes BigCrush).

namespace manet::common {

/// SplitMix64 step: advances *state and returns a mixed 64-bit output.
/// Used both as a standalone mixer and to expand a 64-bit seed into the
/// 256-bit xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive a statistically independent child seed from (parent seed, key).
/// Monte-Carlo replication r uses derive_seed(campaign_seed, r), so results
/// are invariant under thread scheduling.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t key) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies C++ UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 from \p seed.
  explicit Xoshiro256(std::uint64_t seed = 0xA5A5A5A5DEADBEEFULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to partition one stream
  /// into non-overlapping substreams.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Uniform double in [0, 1). Uses the top 53 bits for a dyadic rational.
double uniform01(Xoshiro256& rng) noexcept;

/// Uniform double in [lo, hi). Requires lo <= hi.
double uniform(Xoshiro256& rng, double lo, double hi) noexcept;

/// Unbiased uniform integer in [0, n) via Lemire's multiply-shift rejection.
/// Requires n > 0.
std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) noexcept;

/// Standard exponential variate with rate \p lambda (> 0).
double exponential(Xoshiro256& rng, double lambda) noexcept;

/// Standard normal variate (Marsaglia polar method).
double normal(Xoshiro256& rng) noexcept;

/// Poisson variate with mean \p lambda (> 0). Knuth multiplication for
/// small lambda, normal approximation above 64 (adequate for event counts).
std::uint64_t poisson(Xoshiro256& rng, double lambda) noexcept;

/// Fisher-Yates shuffle of [first, first+n).
template <typename T>
void shuffle(Xoshiro256& rng, T* first, std::size_t n) noexcept {
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(rng, i));
    T tmp = first[i - 1];
    first[i - 1] = first[j];
    first[j] = tmp;
  }
}

}  // namespace manet::common
