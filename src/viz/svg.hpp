#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "geom/vec2.hpp"

/// \file svg.hpp
/// Minimal SVG document builder for rendering deployment snapshots and
/// clustered hierarchies (examples/render_hierarchy). Shapes are collected
/// in draw order and written out in one pass; the world-to-viewport
/// transform flips the y axis so geometry coordinates render naturally.

namespace manet::viz {

struct Style {
  std::string fill = "none";
  std::string stroke = "black";
  double stroke_width = 1.0;
  double opacity = 1.0;
};

class SvgCanvas {
 public:
  /// World-space bounding box (min corner, max corner) mapped onto a
  /// \p pixels wide viewport (height follows the aspect ratio).
  SvgCanvas(geom::Vec2 world_min, geom::Vec2 world_max, double pixels = 900.0);

  void circle(geom::Vec2 center, double world_radius, const Style& style);
  void line(geom::Vec2 a, geom::Vec2 b, const Style& style);
  void text(geom::Vec2 at, const std::string& content, double px_size = 10.0,
            const std::string& color = "black");

  /// Number of shapes queued so far.
  Size shape_count() const { return shapes_.size(); }

  void write(std::ostream& os) const;

  /// Categorical color for cluster index i (10-color wheel).
  static std::string palette(Size i);

 private:
  geom::Vec2 to_px(geom::Vec2 world) const;
  double scale_px(double world) const;

  geom::Vec2 world_min_;
  double scale_;
  double width_px_;
  double height_px_;
  std::vector<std::string> shapes_;
};

}  // namespace manet::viz
