#include "cluster/maxmin.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace manet::cluster {

MaxMinDCluster::MaxMinDCluster(Level d) : d_(d) { MANET_CHECK(d >= 1); }

ElectionResult MaxMinDCluster::elect(const graph::Graph& g,
                                     std::span<const NodeId> ids) const {
  const Size n = g.vertex_count();
  MANET_CHECK(ids.size() == n);

  // Round logs: winners_max[r][v] / winners_min[r][v] hold the id held by v
  // after round r (r = 0 is the initial state: own id / floodmax result).
  std::vector<std::vector<NodeId>> wmax(d_ + 1, std::vector<NodeId>(n));
  for (NodeId v = 0; v < n; ++v) wmax[0][v] = ids[v];
  for (Level r = 1; r <= d_; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId best = wmax[r - 1][v];
      for (const NodeId u : g.neighbors(v)) best = std::max(best, wmax[r - 1][u]);
      wmax[r][v] = best;
    }
  }
  std::vector<std::vector<NodeId>> wmin(d_ + 1, std::vector<NodeId>(n));
  wmin[0] = wmax[d_];
  for (Level r = 1; r <= d_; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      NodeId best = wmin[r - 1][v];
      for (const NodeId u : g.neighbors(v)) best = std::min(best, wmin[r - 1][u]);
      wmin[r][v] = best;
    }
  }

  // Election rules. chosen_id[v] is the id of the head v affiliates with.
  std::vector<NodeId> chosen_id(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId self = ids[v];
    // Rule 1: own id seen in floodmin rounds.
    bool own_in_min = false;
    for (Level r = 1; r <= d_; ++r) own_in_min |= (wmin[r][v] == self);
    if (own_in_min) {
      chosen_id[v] = self;
      continue;
    }
    // Rule 2: minimum "node pair" — id present in both phases' round logs.
    NodeId best_pair = kInvalidNode;
    for (Level rm = 1; rm <= d_; ++rm) {
      const NodeId cand = wmin[rm][v];
      bool in_max = false;
      for (Level rx = 1; rx <= d_; ++rx) in_max |= (wmax[rx][v] == cand);
      if (in_max && (best_pair == kInvalidNode || cand < best_pair)) best_pair = cand;
    }
    if (best_pair != kInvalidNode) {
      chosen_id[v] = best_pair;
      continue;
    }
    // Rule 3: maximum id from floodmax.
    chosen_id[v] = wmax[d_][v];
  }

  // Map ids back to dense vertices and close the head set: every chosen id
  // must itself be a head (Amis et al. prove this for connected graphs; the
  // promotion below also covers degenerate cases so the partition is always
  // well formed).
  std::unordered_map<NodeId, NodeId> id_to_vertex;
  id_to_vertex.reserve(n);
  for (NodeId v = 0; v < n; ++v) id_to_vertex.emplace(ids[v], v);

  ElectionResult result;
  result.head_of.resize(n);
  result.votes.assign(n, 0);
  std::vector<bool> is_head(n, false);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = id_to_vertex.find(chosen_id[v]);
    MANET_CHECK_MSG(it != id_to_vertex.end(), "max-min elected an unknown id");
    result.head_of[v] = it->second;
    is_head[it->second] = true;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) {
      result.head_of[v] = v;
      result.clusterheads.push_back(v);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (result.head_of[v] != v) ++result.votes[result.head_of[v]];
  }
  return result;
}

}  // namespace manet::cluster
